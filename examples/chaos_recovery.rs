//! Chaos-test the fault-tolerance plane end to end: run a 1 000-UE
//! fleet clean, then run the *same* fleet under supervision with a
//! scripted mid-run worker panic, a sealed-snapshot corruption, an
//! over-deadline stall and a chaos-drawn schedule on top — and assert
//! the supervised result is **bit-identical** to the clean run while
//! printing the supervisor's audit trail (segments, snapshots, retries,
//! restores, degradations, virtual backoff).
//!
//! ```text
//! cargo run --release --example chaos_recovery
//! ```

use std::sync::Arc;

use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::sim::fleet::{FleetMobility, FleetSimulation, HomogeneousFleet, PolicyKind};
use fuzzy_handover::sim::resilience::{Fault, FaultPlan, RetryPolicy};
use fuzzy_handover::sim::SimConfig;

fn main() {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig::moderate();
    cfg.noise = MeasurementNoise::new(1.0);

    let spec = HomogeneousFleet {
        mobility: FleetMobility::RandomWalk(
            fuzzy_handover::mobility::RandomWalk::paper_default(8),
        ),
        policy: PolicyKind::Fuzzy,
        trajectory_seed: 7,
        cell_radius_km: cfg.layout.cell_radius_km(),
    };
    let ids: Vec<u64> = (0..1_000).collect();
    const SEED: u64 = 42;

    // --- The reference: a clean, unsupervised run ----------------------
    let clean = FleetSimulation::new(cfg.clone()).with_workers(4).run_ids(&spec, &ids, SEED);
    println!(
        "clean run      : {} UEs, {} steps, {:.3} handovers/UE",
        clean.summary.ues,
        clean.summary.steps,
        clean.summary.handovers_per_ue()
    );

    // --- The same run, under fire --------------------------------------
    // Scripted: a worker panic mid-run, bit-rot in the first sealed
    // snapshot, an over-deadline stall — plus three chaos-drawn faults.
    // (The fleet's longest walk here is ~17 lockstep steps, so every
    // scheduled step below is actually reached.)
    let mut plan = FaultPlan::scripted(vec![
        Fault::WorkerPanic { at_step: 9 },
        Fault::CorruptCheckpoint { at_snapshot: 0, byte_offset: 1_234 },
        Fault::StallWorker { at_step: 13, delay_steps: 500 },
    ]);
    plan.faults.extend(FaultPlan::chaos(SEED, 16, 3).faults);
    println!("fault plan     : {:?}", plan.faults);

    let policy = RetryPolicy {
        checkpoint_cadence: 4,
        max_retries: 16,
        stall_deadline_steps: 64,
        ..RetryPolicy::default()
    };
    let supervised = FleetSimulation::new(cfg)
        .with_workers(4)
        .with_fault_injection(Arc::new(plan.injector()))
        .run_supervised(&spec, &ids, SEED, &policy)
        .expect("every scripted fault is recoverable");

    // --- The headline property: recovery changed nothing ---------------
    assert_eq!(
        clean, supervised.result,
        "supervised result must be bit-identical to the clean run"
    );
    assert_eq!(
        clean.summary.hd_sum.to_bits(),
        supervised.result.summary.hd_sum.to_bits(),
        "even the f64 HD checksum's bit pattern survives recovery"
    );
    println!("supervised run : bit-identical to the clean run ✓");

    let r = &supervised.report;
    println!("audit trail    :");
    println!("  segments completed   : {}", r.segments);
    println!("  snapshots sealed     : {}", r.snapshots_taken);
    println!("  failed attempts      : {}", r.retries);
    println!("    worker panics      : {}", r.worker_panics);
    println!("    over-deadline stalls: {}", r.stalls);
    println!("  corrupt snaps caught : {}", r.corrupt_snapshots_detected);
    println!("  restores from seal   : {}", r.restores);
    println!("  degradations         : {}", r.degradations);
    println!("  virtual backoff steps: {}", r.virtual_backoff_steps);
    println!("  final worker count   : {}", r.final_workers);
}
