//! Drive the multi-UE fleet engine end to end: a 2 000-UE fleet on the
//! paper layout (dense and neighbour-pruned measurement), the same
//! fleet with the cell-load traffic plane attached (call admission,
//! blocking/dropping, Erlang load), then a scenario-matrix sweep — two
//! cells at a time via `matrix_workers` — over the four standard
//! mobility models, two speeds and three policies (exact fuzzy, the LUT
//! ablation, hysteresis), printing the aggregated fleet metrics, the
//! per-cell load histogram, and an ASCII plot of the handover rate
//! against MS speed.
//!
//! ```text
//! cargo run --release --example fleet_demo
//! ```

use fuzzy_handover::sim::fleet::{
    CandidateMode, FleetMobility, FleetSimulation, HomogeneousFleet, PolicyKind,
};
use fuzzy_handover::sim::matrix::{MatrixMetric, ScenarioMatrix};
use fuzzy_handover::sim::series::ascii_plot;
use fuzzy_handover::sim::{SimConfig, TrafficConfig};
use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};

fn main() {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig::moderate();
    cfg.noise = MeasurementNoise::new(1.0);

    // --- One fleet run -------------------------------------------------
    let fleet = FleetSimulation::new(cfg.clone()).with_workers(4);
    let spec = HomogeneousFleet {
        mobility: FleetMobility::RandomWalk(
            fuzzy_handover::mobility::RandomWalk::paper_default(8),
        ),
        policy: PolicyKind::Fuzzy,
        trajectory_seed: 1,
        cell_radius_km: cfg.layout.cell_radius_km(),
    };
    let result = fleet.run(&spec, 2_000, 42);
    let s = &result.summary;
    println!("fleet of {} UEs, {} total measurement steps", s.ues, s.steps);
    println!("  handovers/UE : {:.3}", s.handovers_per_ue());
    println!("  ping-pong    : {:.3}", s.ping_pong_ratio());
    println!("  outage       : {:.3}", s.outage_ratio());
    if let Some(hd) = s.mean_hd() {
        println!("  mean HD      : {hd:.3}");
    }
    let (peak_cell, peak_steps) = result.cell_load.peak();
    println!(
        "  peak cell    : ({}, {}) serving {peak_steps} UE-steps ({:.1}% of the fleet)\n",
        peak_cell.q,
        peak_cell.r,
        100.0 * result.cell_load.share(peak_cell)
    );

    // --- The same fleet through the pruned measurement plane ----------
    let pruned = FleetSimulation::new(cfg.clone())
        .with_workers(4)
        .with_candidate_mode(CandidateMode::Nearest(7));
    let p = pruned.run(&spec, 2_000, 42).summary;
    println!(
        "same fleet, CandidateMode::Nearest(7): {:.3} handovers/UE, {:.3} ping-pong \
         (the 7 index-nearest of 19 cells measured per UE-step, plus the serving \
         cell and its candidates when they fall outside that set)\n",
        p.handovers_per_ue(),
        p.ping_pong_ratio()
    );

    // --- The same fleet under call traffic -----------------------------
    let traffic = TrafficConfig {
        channels_per_cell: 8,
        guard_channels: 1,
        mean_idle_steps: 6.0,
        mean_holding_steps: 4.0,
        load_feedback: false,
    };
    let loaded = FleetSimulation::new(cfg.clone())
        .with_workers(4)
        .with_traffic(traffic)
        .run(&spec, 2_000, 42);
    let report = loaded.traffic.expect("traffic plane ran");
    println!(
        "same fleet under call traffic ({} chan/cell, {} guard, {:.2} E offered per UE):",
        traffic.channels_per_cell,
        traffic.guard_channels,
        traffic.offered_erlangs_per_ue()
    );
    println!(
        "  {} calls offered, {} blocked (P = {:.4}), {} handover attempts, {} dropped (P = {:.4})",
        report.offered_calls,
        report.blocked_calls,
        report.blocking_probability(),
        report.handover_attempts,
        report.dropped_calls,
        report.dropping_probability()
    );
    println!(
        "  offered {:.1} E, carried {:.1} E — fleet metrics bit-identical to the bare run\n",
        report.offered_erlangs, report.carried_erlangs
    );

    // --- The scenario matrix (two cells at a time) ---------------------
    let matrix = ScenarioMatrix {
        base: cfg,
        ue_counts: vec![500],
        mobilities: FleetMobility::standard_four(6),
        speeds_kmh: vec![0.0, 30.0, 60.0],
        policies: vec![
            PolicyKind::Fuzzy,
            PolicyKind::FuzzyLut,
            PolicyKind::Hysteresis { margin_db: 4.0 },
        ],
        traffics: vec![None],
        dynamics: vec![None],
        base_seed: 0xF1EE7,
        workers: 4,
        matrix_workers: 2,
        candidate_mode: CandidateMode::All,
    };
    let outcome = matrix.run();
    print!("{}", outcome.render());

    let series = outcome.series_over_speed(MatrixMetric::HandoversPerUe);
    println!();
    println!(
        "{}",
        ascii_plot(&series, 72, 18, "Handover rate vs MS speed (per UE)")
    );
}
