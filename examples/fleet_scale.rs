//! Memory-bounded fleet scaling driver: run an arbitrarily large
//! homogeneous fleet through the streaming aggregator — no UEs×cells
//! matrix, no per-UE outcome vector — and report throughput. This is
//! the binary behind the 1M-UE acceptance run in `BENCH_fleet.json`:
//!
//! ```text
//! cargo run --release --example fleet_scale -- --ues 1000000 --walks 1000 \
//!     --candidate edge --precision compact
//! ```
//!
//! Flags (all optional): `--ues N` (default 100 000), `--walks N`
//! (random-walk segments ≈ measurement steps per UE, default 1 000),
//! `--workers N` (default 4), `--mode streamed|dense`, `--candidate
//! all|nearest|edge`, `--precision full|compact`, `--seed N`.
//!
//! Malformed input never panics: a bad flag prints the typed error plus
//! the usage line and exits with status 2.

use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::server::cli::{choice_flag, parse_flag, ArgError};
use fuzzy_handover::sim::fleet::{
    CandidateMode, FleetMobility, FleetPrecision, FleetSimulation, HomogeneousFleet, PolicyKind,
};
use fuzzy_handover::sim::SimConfig;
use std::time::Instant;

const USAGE: &str = "usage: fleet_scale [--ues N] [--walks N] [--workers N] [--seed N] \
[--mode streamed|dense] [--candidate all|nearest|edge] [--precision full|compact]";

#[derive(Clone, Copy)]
enum RunMode {
    Streamed,
    Dense,
}

fn main() {
    if let Err(err) = run() {
        eprintln!("fleet_scale: {err}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), ArgError> {
    let args: Vec<String> = std::env::args().collect();
    let n_ues: u64 = parse_flag(&args, "--ues", 100_000)?;
    let walks: usize = parse_flag(&args, "--walks", 1_000)?;
    let workers: usize = parse_flag(&args, "--workers", 4)?;
    let seed: u64 = parse_flag(&args, "--seed", 7)?;
    let mode = choice_flag(
        &args,
        "--mode",
        &[("streamed", RunMode::Streamed), ("dense", RunMode::Dense)],
        RunMode::Streamed,
    )?;
    let candidate = choice_flag(
        &args,
        "--candidate",
        &[
            ("edge", CandidateMode::EdgeSet { k: 7, margin_db: 6.0 }),
            ("nearest", CandidateMode::Nearest(7)),
            ("all", CandidateMode::All),
        ],
        CandidateMode::EdgeSet { k: 7, margin_db: 6.0 },
    )?;
    let precision = choice_flag(
        &args,
        "--precision",
        &[("compact", FleetPrecision::Compact), ("full", FleetPrecision::Full)],
        FleetPrecision::Compact,
    )?;

    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig::moderate();
    cfg.noise = MeasurementNoise::new(1.0);
    let fleet = FleetSimulation::new(cfg)
        .with_workers(workers)
        .with_candidate_mode(candidate)
        .with_precision(precision);
    let spec = HomogeneousFleet {
        mobility: FleetMobility::RandomWalk(
            fuzzy_handover::mobility::RandomWalk::paper_default(walks),
        ),
        policy: PolicyKind::Fuzzy,
        trajectory_seed: seed ^ 0x5CA1E,
        cell_radius_km: 2.0,
    };

    let mode_name = match mode {
        RunMode::Streamed => "streamed",
        RunMode::Dense => "dense",
    };
    println!(
        "fleet_scale: {n_ues} UEs × {walks} walk segments (~{} steps/UE), {workers} workers, \
         {candidate:?}, {precision:?}, mode={mode_name}",
        (walks as f64 * 1.5) as u64
    );
    let t0 = Instant::now();
    let (summary, load_total) = match mode {
        RunMode::Streamed => {
            let out = fleet.run_streamed(&spec, n_ues, seed).expect("streamed run");
            let total = out.cell_load.total();
            (out.summary, total)
        }
        RunMode::Dense => {
            let out = fleet.run(&spec, n_ues, seed);
            let total = out.cell_load.total();
            (out.summary, total)
        }
    };
    let elapsed = t0.elapsed().as_secs_f64();

    assert_eq!(summary.ues, n_ues);
    assert_eq!(load_total, summary.steps);
    // Fail loudly rather than print an all-zero record: a BENCH_fleet
    // acceptance row with steps_total / elapsed_s / throughput at 0.0
    // means the run never happened, and must never look like a result.
    assert!(summary.steps > 0, "acceptance run produced zero UE-steps");
    assert!(elapsed > 0.0, "elapsed time is zero — timer did not run");
    let rate_mps = summary.steps as f64 / elapsed / 1e6;
    assert!(
        rate_mps.is_finite() && rate_mps > 0.0,
        "throughput {rate_mps} M UE-steps/s is not a positive finite number"
    );
    println!(
        "ues={} steps={} handovers={} ping_pongs={} outage_steps={} mean_hd={:.6}",
        summary.ues,
        summary.steps,
        summary.handovers,
        summary.ping_pongs,
        summary.outage_steps,
        summary.mean_hd().unwrap_or(f64::NAN)
    );
    println!("elapsed {elapsed:.2} s, {rate_mps:.3} M UE-steps/s");
    match peak_rss_kb() {
        Some(kb) => {
            assert!(kb > 0, "peak RSS reads zero — /proc/self/status is lying");
            println!("peak RSS {:.1} MiB", kb as f64 / 1024.0);
        }
        None => println!("peak RSS unavailable on this platform"),
    }
    Ok(())
}

/// Peak resident set size of this process in KiB (Linux; `None`
/// elsewhere or when `/proc` is unavailable).
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}
