//! Best-server map: which BS wins at every point of the plane, and how
//! much margin it has — the geometry/radio substrate working together.
//!
//! ```text
//! cargo run --release --example coverage_map
//! ```

use fuzzy_handover::geometry::{CellLayout, Vec2};
use fuzzy_handover::radio::BsRadio;

fn main() {
    let layout = CellLayout::hexagonal(2.0, 1);
    let radio = BsRadio::paper_default();

    // Glyph per cell, in layout (spiral) order.
    const GLYPHS: [char; 7] = ['O', 'a', 'b', 'c', 'd', 'e', 'f'];

    println!("best-server map (7 cells, R = 2 km); lowercase = margin < 3 dB\n");
    let extent = 5.0;
    let rows = 25;
    let cols = 61;
    for gy in 0..rows {
        let y = extent - 2.0 * extent * gy as f64 / (rows - 1) as f64;
        let mut line = String::new();
        for gx in 0..cols {
            let x = -extent + 2.0 * extent * gx as f64 / (cols - 1) as f64;
            let p = Vec2::new(x, y);
            let mut powers: Vec<(usize, f64)> = layout
                .cells()
                .iter()
                .enumerate()
                .map(|(k, &c)| (k, radio.received_power_dbm(layout.bs_position(c), p)))
                .collect();
            powers.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
            let (best, best_rss) = powers[0];
            let margin = best_rss - powers[1].1;
            let glyph = GLYPHS[best % GLYPHS.len()];
            line.push(if margin < 3.0 {
                glyph.to_ascii_lowercase()
            } else {
                glyph.to_ascii_uppercase()
            });
        }
        println!("{line}");
    }

    println!("\nlegend:");
    for (k, &c) in layout.cells().iter().enumerate() {
        let pos = layout.bs_position(c);
        println!(
            "  {} = BS{} at ({:+.2}, {:+.2}) km",
            GLYPHS[k % GLYPHS.len()].to_ascii_uppercase(),
            layout.paper_label(c),
            pos.x,
            pos.y
        );
    }
    println!("\nthe thin lowercase bands are exactly where ping-pong lives.");
}
