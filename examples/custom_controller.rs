//! Build a *custom* fuzzy handover controller with the library: different
//! membership functions, a hand-written rule set via the text DSL, and a
//! different defuzzifier — then drive it through the same pipeline and
//! compare it with the paper controller on the pinned scenarios.
//!
//! ```text
//! cargo run --release --example custom_controller
//! ```

use fuzzy_handover::core::{ControllerConfig, FuzzyHandoverController};
use fuzzy_handover::fuzzy::{Defuzzifier, FisBuilder, LinguisticVariable, Mf};
use fuzzy_handover::sim::{Scenario, SimConfig, Simulation};

/// A deliberately coarse two-term-per-input controller.
fn coarse_fis() -> fuzzy_handover::fuzzy::Fis {
    let cssp = LinguisticVariable::new("CSSP", -10.0, 10.0)
        .with_term("dropping", Mf::left_shoulder(-6.0, 0.0))
        .with_term("steady", Mf::right_shoulder(-6.0, 0.0));
    let ssn = LinguisticVariable::new("SSN", -120.0, -80.0)
        .with_term("weak", Mf::left_shoulder(-104.0, -90.0))
        .with_term("strong", Mf::right_shoulder(-104.0, -90.0));
    let dmb = LinguisticVariable::new("DMB", 0.0, 1.5)
        .with_term("near", Mf::left_shoulder(0.5, 0.9))
        .with_term("far", Mf::right_shoulder(0.5, 0.9));
    let hd = LinguisticVariable::new("HD", 0.0, 1.0)
        .with_term("stay", Mf::left_shoulder(0.2, 0.55))
        .with_term("go", Mf::right_shoulder(0.45, 0.8));

    FisBuilder::new("coarse-handover")
        .input(cssp)
        .input(ssn)
        .input(dmb)
        .output(hd)
        .defuzzifier(Defuzzifier::Centroid)
        .rule_str("IF CSSP IS dropping AND SSN IS strong AND DMB IS far THEN HD IS go")
        .unwrap()
        .rule_str("IF CSSP IS dropping AND SSN IS strong AND DMB IS near THEN HD IS stay")
        .unwrap()
        .rule_str("IF CSSP IS dropping AND SSN IS weak THEN HD IS stay")
        .unwrap()
        .rule_str("IF CSSP IS steady THEN HD IS stay")
        .unwrap()
        .build()
        .unwrap()
}

fn main() {
    let sim = Simulation::new(SimConfig::paper_default());
    let scenarios = [Scenario::a(), Scenario::b()];

    println!(
        "{:<22} {:>12} {:>12}",
        "controller", "A handovers", "B handovers"
    );
    for (name, fis) in [
        ("paper (64 rules)", fuzzy_handover::core::build_paper_flc()),
        ("coarse (4 rules)", coarse_fis()),
    ] {
        let mut counts = Vec::new();
        for s in &scenarios {
            let mut policy = FuzzyHandoverController::with_fis(
                fis.clone(),
                ControllerConfig::paper_default(2.0),
            );
            counts.push(sim.run(&s.trajectory(), &mut policy, 0).handover_count());
        }
        println!("{name:<22} {:>12} {:>12}", counts[0], counts[1]);
        if name.starts_with("paper") {
            assert_eq!(counts, vec![0, 3], "paper controller meets both targets");
        }
    }
    println!("\nthe 4-rule controller is a starting point — tune it against the");
    println!("`repro table3 table4` harness the same way the paper FLC was calibrated.");
}
