//! Quickstart: build the paper's fuzzy handover controller and watch it
//! decide as a mobile walks out of its serving cell.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fuzzy_handover::core::{
    ControllerConfig, Decision, FuzzyHandoverController, HandoverPolicy, MeasurementReport,
};
use fuzzy_handover::geometry::{Axial, CellLayout, Vec2};
use fuzzy_handover::radio::BsRadio;

fn main() {
    // A 2-ring hexagonal network with 2 km cells and the paper's radios.
    let layout = CellLayout::hexagonal(2.0, 2);
    let radio = BsRadio::paper_default();
    let mut controller =
        FuzzyHandoverController::new(ControllerConfig::paper_default(layout.cell_radius_km()));

    println!("walking east from the origin BS at 300 m steps…\n");
    println!("{:>6}  {:>9}  {:>9}  {:>6}  decision", "x [km]", "serving", "neighbor", "HD");

    let mut serving = Axial::ORIGIN;
    let east = Axial::new(1, 0);
    let mut x = 0.3;
    while x < 3.4 {
        let pos = Vec2::new(x, 0.0);
        let serving_rss = radio.received_power_dbm(layout.bs_position(serving), pos);
        let neighbor = if serving == Axial::ORIGIN { east } else { Axial::ORIGIN };
        let neighbor_rss = radio.received_power_dbm(layout.bs_position(neighbor), pos);
        let report = MeasurementReport {
            serving,
            serving_rss_dbm: serving_rss,
            neighbor,
            neighbor_rss_dbm: neighbor_rss,
            distance_to_serving_km: layout.distance_to_bs(serving, pos),
            distance_to_neighbor_km: layout.distance_to_bs(neighbor, pos),
        };
        let decision = controller.decide(&report);
        let (hd, what) = match decision {
            Decision::Handover { hd, target } => {
                controller.notify_handover(target);
                serving = target;
                (format!("{hd:.3}"), format!("HANDOVER to {}", layout.paper_label(target)))
            }
            Decision::Stay(reason) => (
                match reason {
                    fuzzy_handover::core::StayReason::BelowThreshold { hd }
                    | fuzzy_handover::core::StayReason::SignalRecovering { hd } => {
                        format!("{hd:.3}")
                    }
                    _ => "  -  ".to_string(),
                },
                format!("stay ({reason:?})"),
            ),
        };
        println!(
            "{x:>6.2}  {serving_rss:>8.1}  {neighbor_rss:>8.1}  {hd:>6}  {what}",
        );
        x += 0.3;
    }

    println!("\nfinal serving cell: {}", layout.paper_label(serving));
    assert_eq!(serving, east, "the walk must end attached to the east neighbour");
}
