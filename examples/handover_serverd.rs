//! `handover-serverd`: the digital-twin service over a Unix socket.
//!
//! Speaks the same length-prefixed wire codec as the in-process
//! transport (`fuzzy_handover::server::wire`), so every protocol
//! behaviour pinned by the server test suite carries over unchanged.
//!
//! Two modes:
//!
//! * default — bind `--socket PATH` and serve connections until a
//!   client sends `Shutdown`;
//! * `--demo` — self-driving CI smoke: start the daemon, connect over
//!   the socket, and drive a full tenant lifecycle (spawn → advance →
//!   query cells/UE → policy hot-swap → checkpoint → drop → hydrate →
//!   run to completion), then assert the served result is
//!   **bit-identical** to the equivalent in-process batch
//!   `run_partial` → `try_resume` chain.
//!
//! Flags: `--socket PATH` (default under the temp dir), `--workers N`
//! (default 4), `--ues N` (default 24), `--walks N` (default 6),
//! `--seed N` (default 11), `--demo`. Malformed input never panics: a
//! bad flag prints the typed error plus the usage line and exits with
//! status 2; runtime failures exit with status 1.

use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::server::cli::{has_flag, parse_flag, ArgError};
use fuzzy_handover::server::{serve, SessionConfig, TwinClient, TwinServer};
use fuzzy_handover::sim::fleet::{
    FleetMobility, FleetSimulation, HomogeneousFleet, PolicyKind,
};
use fuzzy_handover::sim::{SimConfig, TrafficConfig};
use std::error::Error;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

const USAGE: &str = "usage: handover_serverd [--socket PATH] [--workers N] [--demo] \
[--ues N] [--walks N] [--seed N]";

struct Opts {
    socket: PathBuf,
    workers: usize,
    demo: bool,
    ues: u64,
    walks: usize,
    seed: u64,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, ArgError> {
        let default_socket = std::env::temp_dir()
            .join(format!("handover-serverd-{}.sock", std::process::id()));
        let socket = parse_flag(
            args,
            "--socket",
            default_socket.to_string_lossy().into_owned(),
        )?;
        Ok(Opts {
            socket: PathBuf::from(socket),
            workers: parse_flag(args, "--workers", 4)?,
            demo: has_flag(args, "--demo"),
            ues: parse_flag(args, "--ues", 24)?,
            walks: parse_flag(args, "--walks", 6)?,
            seed: parse_flag(args, "--seed", 11)?,
        })
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let opts = match Opts::parse(&args) {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("handover_serverd: {err}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let outcome = if opts.demo { demo(&opts) } else { listen(&opts) };
    let _ = std::fs::remove_file(&opts.socket);
    if let Err(err) = outcome {
        eprintln!("handover_serverd: {err}");
        std::process::exit(1);
    }
}

/// Bind the socket and serve connections one at a time until a client
/// sends `Shutdown`. One server thread, many tenants: the parallelism
/// lives inside each advance (the fleet worker pool).
fn serve_connections(listener: UnixListener, workers: usize) -> Result<(), std::io::Error> {
    let mut server = TwinServer::new(workers);
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = stream.try_clone()?;
        match serve(&mut server, reader, stream) {
            Ok(true) => return Ok(()),
            Ok(false) => {}
            Err(err) => eprintln!("handover_serverd: connection ended: {err}"),
        }
    }
    Ok(())
}

fn bind(opts: &Opts) -> Result<UnixListener, Box<dyn Error>> {
    let _ = std::fs::remove_file(&opts.socket);
    Ok(UnixListener::bind(&opts.socket)?)
}

fn listen(opts: &Opts) -> Result<(), Box<dyn Error>> {
    let listener = bind(opts)?;
    println!("handover_serverd: listening on {}", opts.socket.display());
    Ok(serve_connections(listener, opts.workers)?)
}

/// The demo scenario bundle: the paper's measurement plane with
/// moderate shadowing and measurement noise, a traffic plane, and a
/// short supervision cadence so even a small run crosses several
/// segment boundaries.
fn demo_config(opts: &Opts) -> (SessionConfig, TrafficConfig) {
    let mut sim = SimConfig::paper_default();
    sim.shadowing = ShadowingConfig::moderate();
    sim.noise = MeasurementNoise::new(1.0);
    let traffic = TrafficConfig::erlang(8, 1, 0.35, 30.0);
    let mobility = FleetMobility::RandomWalk(
        fuzzy_handover::mobility::RandomWalk::paper_default(opts.walks),
    );
    let mut config =
        SessionConfig::new(sim, mobility, PolicyKind::Fuzzy, opts.ues, opts.seed);
    config.traffic = Some(traffic);
    config.retry.checkpoint_cadence = 4;
    (config, traffic)
}

fn demo(opts: &Opts) -> Result<(), Box<dyn Error>> {
    let listener = bind(opts)?;
    let workers = opts.workers;
    let daemon = std::thread::spawn(move || serve_connections(listener, workers));

    let stream = UnixStream::connect(&opts.socket)?;
    let mut client = TwinClient::new(stream.try_clone()?, stream);
    let (config, _traffic) = demo_config(opts);

    // Full tenant lifecycle over the socket.
    let session = client.spawn(config.clone())?;
    let status = client.advance_to(session, 6)?;
    println!(
        "demo: session {session} at step {} ({} live / {} finished)",
        status.step, status.live_ues, status.finished_ues
    );
    let cells = client.query_cells(session)?;
    let live_total: u64 = cells.iter().map(|c| c.live_ues).sum();
    println!("demo: {} cells report {live_total} live UEs", cells.len());
    let ue = client.query_ue(session, 0)?;
    println!(
        "demo: UE 0 is {:?} at step {} serving {:?}",
        ue.phase, ue.steps, ue.serving_cell
    );

    let swap = client.swap_policy(session, PolicyKind::Hysteresis { margin_db: 4.0 })?;
    println!("demo: hot-swapped to {:?} at step {}", swap.policy, swap.step);

    // Persist → drop → rehydrate as a new tenant, then finish.
    let sealed = client.checkpoint(session)?;
    let sealed_len = sealed.len();
    client.drop_session(session)?;
    let revived = client.hydrate(sealed)?;
    println!("demo: rehydrated {sealed_len} sealed bytes as session {revived}");
    let status = client.advance_to(revived, u64::MAX)?;
    assert!(status.complete, "demo session did not run to completion");
    let served = client.query_result(revived)?;
    client.shutdown()?;
    daemon
        .join()
        .map_err(|_| "daemon thread panicked")??;

    // The batch equivalent of the swap log: run the fuzzy spec to the
    // swap step, then resume under hysteresis. Bit-identical or bust.
    let (config, traffic) = demo_config(opts);
    let engine = FleetSimulation::new(config.sim.clone())
        .with_workers(opts.workers)
        .with_chunk_size(config.chunk_size)
        .with_candidate_mode(config.candidate_mode)
        .with_precision(config.precision)
        .with_traffic(traffic);
    let ids: Vec<u64> = (0..opts.ues).collect();
    let spec = |policy| HomogeneousFleet {
        mobility: config.mobility,
        policy,
        trajectory_seed: config.trajectory_seed,
        cell_radius_km: config.cell_radius_km,
    };
    let cp = engine.run_partial(&spec(PolicyKind::Fuzzy), &ids, opts.seed, swap.step)?;
    let batch = engine.try_resume(&spec(PolicyKind::Hysteresis { margin_db: 4.0 }), &cp)?;
    assert_eq!(
        served, batch,
        "served lifecycle result differs from the batch run_partial→resume chain"
    );
    println!(
        "demo: served result is bit-identical to the batch chain \
         ({} UEs, {} handovers, mean HD {:.6})",
        served.summary.ues,
        served.summary.handovers,
        served.summary.mean_hd().unwrap_or(f64::NAN)
    );
    Ok(())
}
