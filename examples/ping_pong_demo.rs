//! The headline claim, live: a mobile lingering on a cell edge under
//! shadow fading makes a naive controller ping-pong far more than the
//! fuzzy pipeline.
//!
//! Measurements arrive at the paper's walk cadence (0.6 km); shadowing is
//! moderate urban (σ = 4 dB). A zero-margin comparator chases every
//! fading wobble; the POTLC → FLC → PRTLC chain needs joint evidence
//! (sustained drop + strong neighbour + distance) and an explicit
//! downtrend, so it flips far less.
//!
//! ```text
//! cargo run --release --example ping_pong_demo
//! ```

use fuzzy_handover::core::baselines::HysteresisPolicy;
use fuzzy_handover::core::{ControllerConfig, FuzzyHandoverController};
use fuzzy_handover::geometry::Vec2;
use fuzzy_handover::mobility::Trajectory;
use fuzzy_handover::radio::ShadowingConfig;
use fuzzy_handover::sim::{SimConfig, Simulation};

fn main() {
    // Walk back and forth along the border between the origin cell and
    // its east neighbour.
    let border_x = 3.0f64.sqrt(); // inradius of a 2 km cell
    let walk = Trajectory::new(vec![
        Vec2::new(border_x, -1.2),
        Vec2::new(border_x, 1.2),
        Vec2::new(border_x, -1.2),
        Vec2::new(border_x, 1.2),
    ]);

    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig { sigma_db: 4.0, decorrelation_km: 0.05 };
    let window = cfg.pingpong_window_steps;
    let sim = Simulation::new(cfg);

    println!("edge walk under 4 dB shadowing, 20 seeds\n");
    println!("{:<22} {:>10} {:>11}", "policy", "handovers", "ping-pongs");

    let mut naive_totals = (0usize, 0usize);
    let mut fuzzy_totals = (0usize, 0usize);
    for seed in 0..20 {
        let mut naive = HysteresisPolicy::new(0.0);
        let r = sim.run(&walk, &mut naive, seed);
        naive_totals.0 += r.handover_count();
        naive_totals.1 += r.log.ping_pong_report(window).ping_pongs;

        let mut fuzzy = FuzzyHandoverController::new(ControllerConfig::paper_default(2.0));
        let r = sim.run(&walk, &mut fuzzy, seed);
        fuzzy_totals.0 += r.handover_count();
        fuzzy_totals.1 += r.log.ping_pong_report(window).ping_pongs;
    }
    println!("{:<22} {:>10} {:>11}", "hysteresis 0 dB", naive_totals.0, naive_totals.1);
    println!("{:<22} {:>10} {:>11}", "fuzzy (paper)", fuzzy_totals.0, fuzzy_totals.1);

    assert!(
        fuzzy_totals.1 * 2 <= naive_totals.1,
        "fuzzy ping-pongs ({}) must be at most half of naive ({})",
        fuzzy_totals.1,
        naive_totals.1
    );
    assert!(fuzzy_totals.0 < naive_totals.0, "and fewer handovers overall");

    println!(
        "\nfuzzy flips {:.0}% as often as the naive comparator on the same fading.",
        100.0 * fuzzy_totals.1 as f64 / naive_totals.1.max(1) as f64
    );
}
