//! A city-scale workload end to end: a 10 000-UE fleet with every
//! dynamic-workload feature live at once — birth–death UE churn, a
//! tidal offered-load wave sweeping across the layout, a scheduled BS
//! failure window that force-evacuates a cell mid-run, and a voice/data
//! service mix with guard-channel priority — on top of the cell-load
//! traffic plane. The run prints the population/fairness/failure
//! report, a small city matrix, and re-runs the fleet to prove the
//! whole workload is deterministic.
//!
//! ```text
//! cargo run --release --example city_scale
//! ```

use fuzzy_handover::geometry::Axial;
use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::sim::fleet::{
    CandidateMode, FleetMobility, FleetSimulation, HomogeneousFleet, PolicyKind,
};
use fuzzy_handover::sim::matrix::ScenarioMatrix;
use fuzzy_handover::sim::{
    CellOutage, ChurnConfig, DynamicsConfig, ServiceMix, ServiceParams, SimConfig, TidalWave,
    TrafficConfig,
};

fn city_dynamics() -> DynamicsConfig {
    DynamicsConfig {
        // A morning-rush shape: 8k UEs live at step 0, 2k more churn in
        // across the first 20 steps, ~16-step lifetimes drain the crowd
        // back out over the run.
        churn: Some(ChurnConfig {
            initial_ues: 8_000,
            horizon_steps: 20,
            mean_lifetime_steps: 16.0,
        }),
        // A commute wave: offered load swings ±60% with a phase shift
        // per axial column, so the hotspot rolls across the city.
        tide: Some(TidalWave { period_steps: 12, amplitude: 0.6, phase_per_q: 0.2 }),
        // The central BS drops out mid-run and comes back.
        failures: vec![CellOutage { cell: Axial::new(0, 0), from_step: 8, until_step: 14 }],
        // 60% voice (short calls, admission priority via the extra
        // guard channels reserved against data), 40% elastic data.
        services: Some(ServiceMix {
            voice_share: 0.6,
            voice: ServiceParams {
                mean_idle_steps: 5.0,
                mean_holding_steps: 3.0,
                extra_guard_channels: 0,
            },
            data: ServiceParams {
                mean_idle_steps: 7.0,
                mean_holding_steps: 8.0,
                extra_guard_channels: 1,
            },
        }),
    }
}

fn main() {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig::moderate();
    cfg.noise = MeasurementNoise::new(1.0);

    let traffic = TrafficConfig {
        channels_per_cell: 48,
        guard_channels: 4,
        mean_idle_steps: 6.0,
        mean_holding_steps: 4.0,
        load_feedback: false,
    };
    let spec = HomogeneousFleet {
        mobility: FleetMobility::RandomWalk(
            fuzzy_handover::mobility::RandomWalk::paper_default(8),
        ),
        policy: PolicyKind::Fuzzy,
        trajectory_seed: 7,
        cell_radius_km: cfg.layout.cell_radius_km(),
    };

    // --- The 10k-UE city run -------------------------------------------
    let run = || {
        FleetSimulation::new(cfg.clone())
            .with_workers(8)
            .with_traffic(traffic)
            .with_dynamics(city_dynamics())
            .run(&spec, 10_000, 0xC17)
    };
    let result = run();
    let s = &result.summary;
    println!("city-scale fleet: {} UE ids, {} total measurement steps", s.ues, s.steps);
    println!("  handovers/UE : {:.3}", s.handovers_per_ue());
    println!("  ping-pong    : {:.3}", s.ping_pong_ratio());
    println!("  outage       : {:.3}", s.outage_ratio());

    let d = result.dynamics.as_ref().expect("dynamics plane ran");
    println!("dynamic workload over {} timeline steps:", d.timeline_steps);
    println!("  churn        : {} arrivals, {} departures", d.arrivals, d.departures);
    println!(
        "  population   : mean {:.0}, peak {}",
        d.mean_population, d.peak_population
    );
    println!("  Jain index   : {:.3} (per-cell serving-load fairness)", d.jain_cell_load);
    println!(
        "  HO dwell     : p50 {} / p90 {} / p99 {} steps over {} handovers",
        d.ho_dwell.p50, d.ho_dwell.p90, d.ho_dwell.p99, d.ho_dwell.samples
    );
    let t = d.traffic.as_ref().expect("traffic plane ran");
    println!("  failure plan : central cell down for steps 8..14");
    println!(
        "    {} calls force-evicted, {} lost to the outage ({:.2} E)",
        t.failure_evicted_calls, t.failure_dropped_calls, t.failure_erlangs
    );
    println!(
        "    lost Erlangs by cause: blocked {:.2} / dropped {:.2} / failure {:.2}",
        t.blocked_erlangs, t.dropped_erlangs, t.failure_erlangs
    );
    for class in &t.per_class {
        println!(
            "    {:5}: {} offered, P(block) {:.4}, P(drop) {:.4}, {:.1} E offered",
            class.class.label(),
            class.offered_calls,
            class.blocking_probability(),
            class.dropping_probability(),
            class.offered_erlangs
        );
    }

    // --- Determinism self-check ----------------------------------------
    let again = run();
    assert_eq!(result, again, "city-scale runs must be bit-identical");
    println!("\ndeterminism self-check: second run bit-identical ✓\n");

    // --- A small city matrix -------------------------------------------
    let matrix = ScenarioMatrix {
        base: cfg,
        ue_counts: vec![1_000],
        mobilities: FleetMobility::standard_four(6),
        speeds_kmh: vec![30.0],
        policies: vec![PolicyKind::Fuzzy, PolicyKind::Hysteresis { margin_db: 4.0 }],
        traffics: vec![Some(traffic)],
        dynamics: vec![None, Some(city_dynamics())],
        base_seed: 0xC17F,
        workers: 4,
        matrix_workers: 2,
        candidate_mode: CandidateMode::All,
    };
    print!("{}", matrix.run().render());
}
