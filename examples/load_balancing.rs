//! Drive the cell-load traffic plane end to end.
//!
//! 1. **Erlang-B sanity sweep** — stationary single-cell fleets at three
//!    offered loads, replayed against the admission tracker; the
//!    empirical blocking probability is printed next to the analytic
//!    Erlang-B value it must reproduce.
//! 2. **Guard channels** — the same congested mobile fleet with 0, 1
//!    and 2 channels reserved for handover calls: blocking rises,
//!    dropping falls.
//! 3. **Load-aware handover** — a congested fleet under plain
//!    hysteresis vs the load-aware variant fed by the occupancy
//!    timeline (`TrafficConfig::load_feedback`): the biased margin
//!    steers UEs toward idle neighbours, carrying measurably more
//!    traffic at lower new-call blocking (the printed trade-off: more
//!    mid-call relocations, so handover dropping rises).
//!
//! ```text
//! cargo run --release --example load_balancing
//! ```

use fuzzy_handover::core::erlang_b;
use fuzzy_handover::geometry::Axial;
use fuzzy_handover::mobility::RandomWalk;
use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::sim::fleet::{
    ue_seed, FleetMobility, FleetSimulation, HomogeneousFleet, PolicyKind,
};
use fuzzy_handover::sim::traffic::{replay_traffic, TrafficConfig, UeTrace, TRAFFIC_STREAM};
use fuzzy_handover::sim::SimConfig;

fn main() {
    erlang_sanity_sweep();
    guard_channel_sweep();
    load_aware_handover();
}

/// Part 1: the M/M/c anchor. 2 000 stationary sources share one
/// 10-channel cell; the replayed blocking probability tracks Erlang-B.
fn erlang_sanity_sweep() {
    println!("Erlang-B sanity sweep (2 000 sources, 10 channels, 4 000-step timeline)");
    println!("{:>10}  {:>10}  {:>10}  {:>8}", "offered E", "Erlang-B", "measured", "calls");
    let cells = vec![Axial::ORIGIN, Axial::new(1, 0)];
    let traces: Vec<UeTrace> =
        (0..2_000).map(|ue_id| UeTrace::pinned(ue_id, 4_000, 0)).collect();
    for offered in [4.0, 7.0, 9.5] {
        let cfg = TrafficConfig::erlang(10, 0, offered / 2_000.0, 15.0);
        let (report, _) = replay_traffic(&cfg, &cells, &traces, 0xE71A);
        println!(
            "{offered:>10.1}  {:>10.4}  {:>10.4}  {:>8}",
            erlang_b(offered, 10),
            report.blocking_probability(),
            report.offered_calls
        );
    }
    println!();
}

fn congested_config() -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig::moderate();
    cfg.noise = MeasurementNoise::new(1.0);
    cfg
}

fn walkers(policy: PolicyKind) -> HomogeneousFleet {
    HomogeneousFleet {
        mobility: FleetMobility::RandomWalk(RandomWalk::paper_default(8)),
        policy,
        trajectory_seed: 1,
        cell_radius_km: 2.0,
    }
}

/// Part 2: guard channels trade new-call blocking for handover-drop
/// protection on a mobile fleet.
fn guard_channel_sweep() {
    println!("Guard-channel sweep (800 UEs, 3 channels/cell, hysteresis walkers)");
    println!("{:>6}  {:>9}  {:>9}  {:>8}  {:>8}", "guard", "P(block)", "P(drop)", "blocked", "dropped");
    for guard in [0u32, 1, 2] {
        let traffic = TrafficConfig {
            channels_per_cell: 3,
            guard_channels: guard,
            mean_idle_steps: 4.0,
            mean_holding_steps: 8.0,
            load_feedback: false,
        };
        let result = FleetSimulation::new(congested_config())
            .with_workers(4)
            .with_traffic(traffic)
            .run(&walkers(PolicyKind::Hysteresis { margin_db: 4.0 }), 800, 42);
        let report = result.traffic.expect("traffic plane ran");
        println!(
            "{guard:>6}  {:>9.4}  {:>9.4}  {:>8}  {:>8}",
            report.blocking_probability(),
            report.dropping_probability(),
            report.blocked_calls,
            report.dropped_calls
        );
    }
    println!();
}

/// Part 3: the load-aware margin steers UEs toward idle neighbours —
/// more carried Erlangs, less new-call blocking, at the cost of more
/// mid-call relocations.
fn load_aware_handover() {
    println!("Load-aware handover (800 UEs, 2 channels/cell, feedback on)");
    let traffic = TrafficConfig {
        channels_per_cell: 2,
        guard_channels: 0,
        mean_idle_steps: 4.0,
        mean_holding_steps: 8.0,
        load_feedback: true,
    };
    let fleet = FleetSimulation::new(congested_config()).with_workers(4).with_traffic(traffic);
    for (name, policy) in [
        ("hysteresis 4 dB (load-blind)", PolicyKind::Hysteresis { margin_db: 4.0 }),
        (
            "load-hysteresis 4 dB ± 8 dB/util",
            PolicyKind::LoadHysteresis { margin_db: 4.0, load_bias_db: 8.0 },
        ),
    ] {
        let result = fleet.run(&walkers(policy), 800, 42);
        let report = result.traffic.expect("traffic plane ran");
        let (peak_cell, peak_erlangs) = report.peak_cell().expect("cells exist");
        println!("  {name}");
        println!(
            "    P(block) {:.4}   P(drop) {:.4}   carried {:.1} E   peak cell ({}, {}) at {:.2} E   HO/UE {:.2}",
            report.blocking_probability(),
            report.dropping_probability(),
            report.carried_erlangs,
            peak_cell.q,
            peak_cell.r,
            peak_erlangs,
            result.summary.handovers_per_ue(),
        );
    }
    // The session streams are domain-separated from the measurement
    // streams: UE 0's call pattern never depends on its fading draws.
    debug_assert_ne!(ue_seed(42 ^ TRAFFIC_STREAM, 0), ue_seed(42, 0));
}
