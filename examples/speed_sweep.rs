//! Reproduce the paper's Tables 3 and 4 from the public API: the two
//! pinned scenarios swept over MS speeds with the 2 dB / 10 km/h penalty.
//!
//! ```text
//! cargo run --release --example speed_sweep
//! ```

use fuzzy_handover::sim::experiments::table3_4::{table3_data, table4_data};

fn main() {
    let t3 = table3_data();
    let t4 = table4_data();

    println!("scenario A (boundary walk) — max FLC output per speed:");
    for (si, speed) in t3.speeds.iter().enumerate() {
        let max = t3.hd[si]
            .iter()
            .flat_map(|p| p.iter())
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        println!("  {speed:>4} km/h: {max:.3}  (< 0.7 → no handover)");
        assert!(max < 0.7);
    }

    println!("\nscenario B (crossing walk) — min deep-sample output per speed:");
    for (si, speed) in t4.speeds.iter().enumerate() {
        let min = t4.hd[si].iter().map(|p| p[1]).fold(f64::INFINITY, f64::min);
        println!("  {speed:>4} km/h: {min:.3}  (> 0.7 → all 3 handovers execute)");
        assert!(min > 0.7);
    }

    println!("\nboth of the paper's §5 claims hold across the whole sweep:");
    println!("  * iseed=100: every averaged output below 0.7 — ping-pong avoided;");
    println!("  * iseed=200: the system does 3 handovers in all cases.");
}
