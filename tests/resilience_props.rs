//! Property tests for the fault-tolerance plane (PR 9):
//!
//! 1. **The headline recovery property**: a supervised run under an
//!    arbitrary recoverable fault schedule — worker panics, forced
//!    allocation failures, over-deadline stalls, at chaos-drawn steps —
//!    is bit-identical to the clean, unsupervised run, for any
//!    worker/chunk shape and any checkpoint cadence. Including the
//!    `f64` bit pattern of the HD checksum.
//! 2. Flipping *any single byte* of a sealed checkpoint yields a typed
//!    [`CheckpointError`] from `try_unseal` — never a silently wrong
//!    restore ("wrong-but-green").
//! 3. Arbitrary invalid configurations (non-finite sigmas, negative
//!    spacings, zero capacities, inverted outage windows, out-of-range
//!    shares) surface as [`FleetError::InvalidConfig`] from the fallible
//!    entry points — never a worker panic or a NaN-poisoned result.
//! 4. Chaining `run_partial → resume_partial → … → try_resume` at an
//!    arbitrary cadence reproduces the uninterrupted run bit for bit
//!    (the supervisor's segment primitive).

use std::sync::Arc;

use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::sim::checkpoint::{CheckpointError, FleetCheckpoint};
use fuzzy_handover::sim::fleet::{
    FleetError, FleetMobility, FleetSimulation, HomogeneousFleet, PolicyKind,
};
use fuzzy_handover::sim::resilience::{Fault, FaultPlan, RetryPolicy};
use fuzzy_handover::sim::SimConfig;
use proptest::prelude::*;

fn noisy_config() -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig { sigma_db: 4.0, decorrelation_km: 0.05 };
    cfg.noise = MeasurementNoise::new(1.0);
    cfg
}

fn fleet_spec(seed: u64, cell_radius_km: f64) -> HomogeneousFleet {
    HomogeneousFleet {
        mobility: FleetMobility::standard_four(6)[0],
        policy: PolicyKind::Fuzzy,
        trajectory_seed: seed,
        cell_radius_km,
    }
}

/// A generous policy for chaos runs: every scripted fault may consume a
/// retry, so the budget must exceed the fault count.
fn chaos_policy(cadence: u64) -> RetryPolicy {
    RetryPolicy { checkpoint_cadence: cadence, max_retries: 32, ..RetryPolicy::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property 1 — the headline: supervised-with-faults ≡ clean, bit
    /// for bit, over arbitrary chaos schedules × worker/chunk shapes ×
    /// cadences.
    #[test]
    fn supervised_run_with_chaos_faults_is_bit_identical_to_clean(
        seed in 0u64..1_000,
        chaos_seed in 0u64..1_000,
        n_faults in 0usize..5,
        workers in 1usize..5,
        chunk in 1usize..7,
        cadence in 1u64..25,
    ) {
        let cfg = noisy_config();
        let spec = fleet_spec(seed, cfg.layout.cell_radius_km());
        let ids: Vec<u64> = (0..10).collect();

        let clean = FleetSimulation::new(cfg.clone())
            .with_workers(workers)
            .with_chunk_size(chunk)
            .run_ids(&spec, &ids, seed);

        // Horizon 16: these small fleets' walks end around step 17, so a
        // tight horizon keeps most chaos faults *live* rather than
        // scheduled past the end of the run.
        let plan = FaultPlan::chaos(chaos_seed, 16, n_faults);
        let supervised = FleetSimulation::new(cfg)
            .with_workers(workers)
            .with_chunk_size(chunk)
            .with_fault_injection(Arc::new(plan.injector()))
            .run_supervised(&spec, &ids, seed, &chaos_policy(cadence))
            .expect("every chaos fault is recoverable");

        prop_assert_eq!(&clean, &supervised.result);
        prop_assert_eq!(
            clean.summary.hd_sum.to_bits(),
            supervised.result.summary.hd_sum.to_bits(),
            "even the HD checksum's f64 bit pattern survives recovery"
        );
    }

    /// Property 2: every single-byte flip of a sealed checkpoint is
    /// detected as a typed error — wrong-but-green restores are
    /// impossible.
    #[test]
    fn any_flipped_byte_of_a_sealed_checkpoint_is_detected(
        seed in 0u64..1_000,
        cut_step in 1u64..30,
        byte_selector in 0u64..u64::MAX,
    ) {
        let cfg = noisy_config();
        let spec = fleet_spec(seed, cfg.layout.cell_radius_km());
        let ids: Vec<u64> = (0..6).collect();
        let fleet = FleetSimulation::new(cfg).with_workers(2);
        let cp = fleet.run_partial(&spec, &ids, seed, cut_step).expect("partial run");
        let sealed = cp.seal();

        let mut tampered = sealed.clone();
        let idx = (byte_selector % tampered.len() as u64) as usize;
        tampered[idx] ^= 0xFF;
        prop_assert!(
            FleetCheckpoint::try_unseal(&tampered).is_err(),
            "flip at byte {} went undetected", idx
        );
        // The untampered seal still restores.
        prop_assert!(FleetCheckpoint::try_unseal(&sealed).is_ok());
    }

    /// Property 3a: non-finite / non-positive physical quantities are
    /// rejected as typed [`FleetError::InvalidConfig`] values.
    #[test]
    fn invalid_engine_configs_surface_typed_errors(
        bad in prop_oneof![
            Just(f64::NAN), Just(f64::INFINITY), Just(-1.0), Just(0.0)
        ],
        field in 0usize..3,
    ) {
        use fuzzy_handover::sim::matrix::ScenarioMatrix;
        let mut m = ScenarioMatrix::small_default();
        m.ue_counts = vec![2];
        m.mobilities.truncate(1);
        m.speeds_kmh = vec![0.0];
        m.policies.truncate(1);
        match field {
            0 => m.base.sample_spacing_km = bad,
            // sigma 0.0 is legitimately "shadowing off": substitute a
            // negative to keep every generated case invalid.
            1 => m.base.shadowing.sigma_db = if bad == 0.0 { -1.0 } else { bad },
            _ => m.base.radio.tx_power_w = bad,
        }
        prop_assert!(m.base.validated().is_err(), "field {} with {:?}", field, bad);
        // The fallible sweep rejects it as a value, before any worker
        // or engine constructor can panic.
        let err = m.try_run().expect_err("invalid sweep must not run");
        prop_assert!(matches!(err, FleetError::InvalidConfig(_)), "{:?}", err);
    }

    /// Property 3b: inverted outage windows and out-of-range traffic
    /// parameters are rejected before any worker starts.
    #[test]
    fn invalid_plane_configs_surface_typed_errors(
        from in 0u64..20,
        span in 0u64..3,
    ) {
        use fuzzy_handover::sim::dynamics::CellOutage;
        use fuzzy_handover::sim::DynamicsConfig;
        let outage = CellOutage {
            cell: fuzzy_handover::geometry::Axial::ORIGIN,
            from_step: from + span,
            until_step: from, // inverted (or empty) on purpose
        };
        prop_assert!(outage.validated().is_err());
        let dynamics = DynamicsConfig { failures: vec![outage], ..DynamicsConfig::none() };
        prop_assert!(dynamics.validated().is_err());
    }

    /// Property 4: the supervisor's segment primitive — chained
    /// `run_partial → resume_partial* → try_resume` at an arbitrary
    /// cadence — reproduces the uninterrupted run bit for bit.
    #[test]
    fn partial_chain_reproduces_the_uninterrupted_run(
        seed in 0u64..1_000,
        cadence in 1u64..20,
        workers in 1usize..4,
    ) {
        let cfg = noisy_config();
        let spec = fleet_spec(seed, cfg.layout.cell_radius_km());
        let ids: Vec<u64> = (0..8).collect();
        let fleet = FleetSimulation::new(cfg).with_workers(workers);

        let reference = fleet.run_ids(&spec, &ids, seed);

        let mut cp = fleet.run_partial(&spec, &ids, seed, cadence).expect("first segment");
        let mut guard = 0;
        while !cp.live.is_empty() {
            cp = fleet
                .resume_partial(&spec, &cp, cp.step + cadence)
                .expect("chained segment");
            guard += 1;
            prop_assert!(guard < 10_000, "chain did not converge");
        }
        let chained = fleet.try_resume(&spec, &cp).expect("final assembly");
        prop_assert_eq!(&reference, &chained);
    }
}

/// Truncations (and trailing garbage) are typed, never green.
#[test]
fn truncated_seals_yield_typed_errors() {
    let cfg = noisy_config();
    let spec = fleet_spec(3, cfg.layout.cell_radius_km());
    let ids: Vec<u64> = (0..4).collect();
    let cp = FleetSimulation::new(cfg).run_partial(&spec, &ids, 3, 7).expect("partial");
    let sealed = cp.seal();
    for cut in [0, 1, 12, sealed.len() / 2, sealed.len() - 1] {
        let err = FleetCheckpoint::try_unseal(&sealed[..cut]).expect_err("truncation detected");
        assert!(
            matches!(err, CheckpointError::Truncated { .. } | CheckpointError::BadMagic),
            "cut at {cut}: {err:?}"
        );
    }
    let mut padded = sealed;
    padded.push(0);
    assert!(matches!(
        FleetCheckpoint::try_unseal(&padded),
        Err(CheckpointError::Truncated { .. })
    ));
}

/// More scripted panics than the retry budget: the supervisor gives up
/// with a typed, audit-carrying [`FleetError::RetriesExhausted`].
#[test]
fn retries_exhausted_is_typed_and_deterministic() {
    let cfg = noisy_config();
    let spec = fleet_spec(11, cfg.layout.cell_radius_km());
    let ids: Vec<u64> = (0..6).collect();
    let plan = FaultPlan::scripted(
        (0..6).map(|s| Fault::WorkerPanic { at_step: s }).collect(),
    );
    let policy = RetryPolicy { max_retries: 2, ..RetryPolicy::default() };
    let run = |()| {
        FleetSimulation::new(noisy_config())
            .with_workers(2)
            .with_fault_injection(Arc::new(plan.injector()))
            .run_supervised(&spec, &ids, 11, &policy)
    };
    let err = run(()).expect_err("budget exceeded");
    match &err {
        FleetError::RetriesExhausted { attempts, last } => {
            assert_eq!(*attempts, 3, "max_retries + 1 attempts consumed");
            assert!(matches!(**last, FleetError::WorkerPanic(_)), "{last:?}");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert_eq!(run(()).expect_err("same budget, same outcome"), err);
}

/// Two over-deadline stalls: the supervisor halves the workers
/// (graceful degradation) and the result is still bit-identical —
/// worker-count invariance makes degradation safe.
#[test]
fn repeated_stalls_degrade_workers_without_changing_the_result() {
    let cfg = noisy_config();
    let spec = fleet_spec(5, cfg.layout.cell_radius_km());
    let ids: Vec<u64> = (0..8).collect();
    let clean = FleetSimulation::new(cfg.clone()).with_workers(4).run_ids(&spec, &ids, 5);

    let plan = FaultPlan::scripted(vec![
        Fault::StallWorker { at_step: 1, delay_steps: 500 },
        Fault::StallWorker { at_step: 9, delay_steps: 500 },
    ]);
    let policy = RetryPolicy {
        checkpoint_cadence: 4,
        stall_deadline_steps: 64,
        degrade_after_stalls: 2,
        ..RetryPolicy::default()
    };
    let supervised = FleetSimulation::new(cfg)
        .with_workers(4)
        .with_fault_injection(Arc::new(plan.injector()))
        .run_supervised(&spec, &ids, 5, &policy)
        .expect("stalls are recoverable");

    assert_eq!(supervised.report.stalls, 2);
    assert_eq!(supervised.report.degradations, 1);
    assert_eq!(supervised.report.final_workers, 2, "4 workers halved once");
    assert!(supervised.report.virtual_backoff_steps > 0);
    assert_eq!(clean, supervised.result);
}

/// Scripted snapshot corruption is detected at seal time (write-verify)
/// and the run still finishes bit-identically — a corrupted snapshot is
/// quarantined, never resumed.
#[test]
fn corrupted_snapshots_are_quarantined_and_recovery_still_succeeds() {
    let cfg = noisy_config();
    let spec = fleet_spec(21, cfg.layout.cell_radius_km());
    let ids: Vec<u64> = (0..8).collect();
    let clean = FleetSimulation::new(cfg.clone()).with_workers(2).run_ids(&spec, &ids, 21);

    let plan = FaultPlan::scripted(vec![
        Fault::CorruptCheckpoint { at_snapshot: 0, byte_offset: 45 },
        Fault::WorkerPanic { at_step: 9 },
    ]);
    let policy = RetryPolicy { checkpoint_cadence: 4, ..RetryPolicy::default() };
    let supervised = FleetSimulation::new(cfg)
        .with_workers(2)
        .with_fault_injection(Arc::new(plan.injector()))
        .run_supervised(&spec, &ids, 21, &policy)
        .expect("corruption plus a panic is still recoverable");

    assert!(supervised.report.corrupt_snapshots_detected >= 1);
    assert_eq!(supervised.report.worker_panics, 1);
    assert_eq!(clean, supervised.result);
}

/// The traffic plane (with its load-feedback second pass) recovers too:
/// a panic that fires during the feedback rerun retries the final
/// assembly, which is a pure function of the traces.
#[test]
fn supervised_recovery_with_traffic_feedback_plane() {
    use fuzzy_handover::sim::TrafficConfig;
    let traffic = TrafficConfig {
        channels_per_cell: 2,
        guard_channels: 0,
        mean_idle_steps: 4.0,
        mean_holding_steps: 6.0,
        load_feedback: true,
    };
    let cfg = noisy_config();
    let spec = fleet_spec(33, cfg.layout.cell_radius_km());
    let ids: Vec<u64> = (0..8).collect();
    let clean = FleetSimulation::new(cfg.clone())
        .with_workers(2)
        .with_traffic(traffic)
        .run_ids(&spec, &ids, 33);

    let plan = FaultPlan::chaos(99, 16, 3);
    let supervised = FleetSimulation::new(cfg)
        .with_workers(2)
        .with_traffic(traffic)
        .with_fault_injection(Arc::new(plan.injector()))
        .run_supervised(&spec, &ids, 33, &chaos_policy(8))
        .expect("traffic-plane chaos is recoverable");

    assert_eq!(clean, supervised.result);
    assert_eq!(
        clean.traffic, supervised.result.traffic,
        "the traffic report survives recovery byte for byte"
    );
}
