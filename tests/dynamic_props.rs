//! Property tests for the dynamic-workload plane's determinism
//! contracts:
//!
//! 1. a fully dynamic run (churn + tide + failures + services, with a
//!    traffic plane attached) is invariant under worker count and chunk
//!    size;
//! 2. it is invariant under UE submission order;
//! 3. a `run_partial` snapshot taken mid-run — including mid-failure
//!    window — resumes bit-identically to the uninterrupted run, under
//!    arbitrary snapshot/resume sharding shapes;
//! 4. the streaming aggregation path reproduces the dense run's summary
//!    and serving-load histogram bit for bit with engine-side dynamics
//!    (churn + failures) enabled.

use fuzzy_handover::geometry::Axial;
use fuzzy_handover::mobility::RandomWalk;
use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::sim::fleet::{
    CandidateMode, FleetMobility, FleetSimulation, HomogeneousFleet, PolicyKind,
};
use fuzzy_handover::sim::{
    CellOutage, ChurnConfig, DynamicsConfig, ServiceMix, ServiceParams, SimConfig, TidalWave,
    TrafficConfig,
};
use proptest::prelude::*;

fn config() -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig { sigma_db: 4.0, decorrelation_km: 0.05 };
    cfg.noise = MeasurementNoise::new(1.0);
    cfg.sample_spacing_km = 0.2;
    cfg
}

fn spec(policy: PolicyKind, trajectory_seed: u64) -> HomogeneousFleet {
    HomogeneousFleet {
        mobility: FleetMobility::RandomWalk(RandomWalk::paper_default(6)),
        policy,
        trajectory_seed,
        cell_radius_km: 2.0,
    }
}

fn traffic() -> TrafficConfig {
    TrafficConfig {
        channels_per_cell: 2,
        guard_channels: 1,
        mean_idle_steps: 4.0,
        mean_holding_steps: 5.0,
        load_feedback: false,
    }
}

/// Every dynamic feature live at once.
fn city_dynamics() -> DynamicsConfig {
    DynamicsConfig {
        churn: Some(ChurnConfig { initial_ues: 6, horizon_steps: 12, mean_lifetime_steps: 10.0 }),
        tide: Some(TidalWave { period_steps: 8, amplitude: 0.7, phase_per_q: 0.25 }),
        failures: vec![
            CellOutage { cell: Axial::new(0, 0), from_step: 3, until_step: 8 },
            CellOutage { cell: Axial::new(1, -1), from_step: 6, until_step: 11 },
        ],
        services: Some(ServiceMix {
            voice_share: 0.6,
            voice: ServiceParams {
                mean_idle_steps: 3.0,
                mean_holding_steps: 4.0,
                extra_guard_channels: 0,
            },
            data: ServiceParams {
                mean_idle_steps: 5.0,
                mean_holding_steps: 8.0,
                extra_guard_channels: 1,
            },
        }),
    }
}

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Fuzzy),
        Just(PolicyKind::FuzzyLut),
        Just(PolicyKind::Hysteresis { margin_db: 2.0 }),
        Just(PolicyKind::Threshold { threshold_dbm: -95.0 }),
        Just(PolicyKind::LoadHysteresis { margin_db: 4.0, load_bias_db: 8.0 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Contract 1: worker count and chunk size never change a fully
    /// dynamic result — outcomes, summary, histogram, traffic report
    /// and dynamic report included.
    #[test]
    fn dynamic_fleet_invariant_under_workers_and_chunks(
        seed in 0u64..u64::MAX,
        n_ues in 8u64..28,
        workers in 1usize..7,
        chunk in 1usize..33,
        policy in policy_strategy(),
        mode in prop_oneof![Just(CandidateMode::All), Just(CandidateMode::Nearest(7))],
    ) {
        let ue_spec = spec(policy, seed ^ 0xD17A);
        let reference = FleetSimulation::new(config())
            .with_candidate_mode(mode)
            .with_traffic(traffic())
            .with_dynamics(city_dynamics())
            .run(&ue_spec, n_ues, seed);
        let sharded = FleetSimulation::new(config())
            .with_candidate_mode(mode)
            .with_workers(workers)
            .with_chunk_size(chunk)
            .with_traffic(traffic())
            .with_dynamics(city_dynamics())
            .run(&ue_spec, n_ues, seed);
        prop_assert_eq!(&reference, &sharded);
        for (a, b) in reference.outcomes.iter().zip(&sharded.outcomes) {
            prop_assert_eq!(a.hd_sum.to_bits(), b.hd_sum.to_bits());
        }
        prop_assert!(reference.dynamics.is_some());
    }

    /// Contract 2: any permutation of the UE id list produces the same
    /// fully dynamic `FleetResult` (churn windows key off the UE id, not
    /// the submission slot).
    #[test]
    fn dynamic_fleet_invariant_under_submission_order(
        seed in 0u64..u64::MAX,
        n_ues in 8u64..24,
        rotation in 0usize..24,
        swap_a in 0usize..24,
        swap_b in 0usize..24,
    ) {
        let ue_spec = spec(PolicyKind::Fuzzy, seed.wrapping_add(29));
        let fleet = FleetSimulation::new(config())
            .with_workers(3)
            .with_chunk_size(4)
            .with_traffic(traffic())
            .with_dynamics(city_dynamics());
        let forward: Vec<u64> = (0..n_ues).collect();
        let mut permuted = forward.clone();
        let len = permuted.len();
        permuted.rotate_left(rotation % len);
        permuted.swap(swap_a % len, swap_b % len);
        permuted.reverse();
        prop_assert_eq!(
            fleet.run_ids(&ue_spec, &forward, seed),
            fleet.run_ids(&ue_spec, &permuted, seed)
        );
    }

    /// Contract 3: freeze at an arbitrary step — the `3..9` range spans
    /// the first failure window, so snapshots land before, inside and
    /// after an outage — and resume under a different sharding shape;
    /// the reassembled result is bit-identical to the uninterrupted run.
    #[test]
    fn dynamic_snapshot_resume_is_bit_identical(
        seed in 0u64..u64::MAX,
        n_ues in 8u64..20,
        snap_step in 0u64..14,
        workers_a in 1usize..5,
        chunk_a in 1usize..17,
        workers_b in 1usize..5,
        chunk_b in 1usize..17,
        policy in policy_strategy(),
    ) {
        let ue_spec = spec(policy, seed ^ 0xC1FF);
        let ids: Vec<u64> = (0..n_ues).collect();
        let full = FleetSimulation::new(config())
            .with_traffic(traffic())
            .with_dynamics(city_dynamics())
            .run_ids(&ue_spec, &ids, seed);
        let cp = FleetSimulation::new(config())
            .with_workers(workers_a)
            .with_chunk_size(chunk_a)
            .with_traffic(traffic())
            .with_dynamics(city_dynamics())
            .run_partial(&ue_spec, &ids, seed, snap_step)
            .unwrap();
        let resumed = FleetSimulation::new(config())
            .with_workers(workers_b)
            .with_chunk_size(chunk_b)
            .with_traffic(traffic())
            .with_dynamics(city_dynamics())
            .resume(&ue_spec, &cp)
            .unwrap();
        prop_assert_eq!(&full, &resumed);
        for (a, b) in full.outcomes.iter().zip(&resumed.outcomes) {
            prop_assert_eq!(a.hd_sum.to_bits(), b.hd_sum.to_bits());
            prop_assert_eq!(a.travelled_km.to_bits(), b.travelled_km.to_bits());
        }
    }

    /// Contract 4: the streaming aggregator reproduces the dense run's
    /// summary and serving-load histogram bit for bit with the
    /// engine-side dynamic features (churn + failures) enabled.
    #[test]
    fn dynamic_streamed_summary_equals_dense_run(
        seed in 0u64..u64::MAX,
        n_ues in 8u64..28,
        workers in 1usize..6,
        chunk in 1usize..33,
        policy in policy_strategy(),
    ) {
        let engine_side = DynamicsConfig {
            services: None,
            tide: None,
            ..city_dynamics()
        };
        let ue_spec = spec(policy, seed ^ 0x57E4);
        let dense = FleetSimulation::new(config())
            .with_dynamics(engine_side.clone())
            .run(&ue_spec, n_ues, seed);
        let streamed = FleetSimulation::new(config())
            .with_workers(workers)
            .with_chunk_size(chunk)
            .with_dynamics(engine_side)
            .run_streamed(&ue_spec, n_ues, seed)
            .unwrap();
        prop_assert_eq!(&dense.summary, &streamed.summary);
        prop_assert_eq!(dense.summary.hd_sum.to_bits(), streamed.summary.hd_sum.to_bits());
        prop_assert_eq!(&dense.cell_load, &streamed.cell_load);
    }
}
