//! Statistical validation of the dynamic-workload plane. Every run is
//! deterministic, so these are fixed-seed checks against analytic
//! expectations with confidence-interval-sized tolerances:
//!
//! 1. under birth–death churn sized at `initial = rate × lifetime`, the
//!    mean concurrent population matches the stationary mean;
//! 2. the tidal wave's time-rescaled arrivals preserve the mean offered
//!    load while the carried occupancy tracks the wave — crest windows
//!    carry a multiple of trough windows;
//! 3. a BS failure drops exactly the calls occupying the cell when it
//!    shuts down (an exact identity, not a CI bound);
//! 4. extra guard channels reserved against the data class push data
//!    blocking above voice blocking under congestion.

use fuzzy_handover::geometry::Axial;
use fuzzy_handover::mobility::RandomWalk;
use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::sim::fleet::{FleetMobility, FleetSimulation, HomogeneousFleet, PolicyKind};
use fuzzy_handover::sim::traffic::{replay_traffic_dynamic, UeTrace};
use fuzzy_handover::sim::{
    CellOutage, ChurnConfig, DynamicsConfig, ServiceMix, ServiceParams, SimConfig, TidalWave,
    TrafficConfig,
};

/// Contract 1: with `initial_ues = arrival_rate × mean_lifetime` the
/// churn process starts in its stationary regime (initial lifetimes are
/// exponential residuals, so the process is memoryless from step 0).
/// The mean concurrent population over the timeline must sit near the
/// stationary mean; the decay tail past the arrival horizon drags it
/// down by only a few percent.
#[test]
fn churned_population_matches_birth_death_stationarity() {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig { sigma_db: 3.0, decorrelation_km: 0.05 };
    cfg.noise = MeasurementNoise::new(1.0);
    // ~120-step trajectories: P(lifetime > trajectory) = e^{-7.5}, so
    // trajectory truncation never biases the lifetime distribution.
    let spec = HomogeneousFleet {
        mobility: FleetMobility::RandomWalk(RandomWalk::paper_default(120)),
        policy: PolicyKind::Hysteresis { margin_db: 4.0 },
        trajectory_seed: 4242,
        cell_radius_km: 2.0,
    };
    // rate = (650 − 10) / 1024 per step; rate × 16 = 10 = initial_ues.
    let churn = ChurnConfig { initial_ues: 10, horizon_steps: 1024, mean_lifetime_steps: 16.0 };
    let result = FleetSimulation::new(cfg)
        .with_workers(4)
        .with_dynamics(DynamicsConfig { churn: Some(churn), ..DynamicsConfig::none() })
        .run(&spec, 650, 77);
    let report = result.dynamics.expect("churn attaches the dynamic report");
    assert!(report.timeline_steps >= 1024, "timeline {} spans the horizon", report.timeline_steps);
    // Nearly every UE churns in after step 0 (arrival step 0 is drawn
    // with probability 1/1024 per late UE) and back out again.
    assert!(report.arrivals >= 630, "arrivals = {}", report.arrivals);
    assert!(report.departures >= 600, "departures = {}", report.departures);
    // Stationary mean 10; time-averaging over ~64 lifetime-sized
    // correlation windows gives σ ≈ 0.4, and the post-horizon decay
    // tail is worth a few percent downward — ±2 is a generous band.
    assert!(
        (report.mean_population - 10.0).abs() <= 2.0,
        "mean population {} vs stationary 10",
        report.mean_population
    );
    assert!(
        report.peak_population >= 10 && report.peak_population <= 40,
        "peak population {} should be a plausible Poisson(10) extreme",
        report.peak_population
    );
    // Conservation: mean population × timeline = total UE-steps.
    let recovered = report.mean_population * report.timeline_steps as f64;
    assert!(
        (recovered - result.summary.steps as f64).abs() < 1.0,
        "population integral {} vs summary steps {}",
        recovered,
        result.summary.steps
    );
}

fn two_cells() -> Vec<Axial> {
    vec![Axial::ORIGIN, Axial::new(1, 0)]
}

/// Contract 2: the inhomogeneous-Poisson arrival thinning preserves the
/// mean offered load (the wave's mean intensity is 1) while the carried
/// occupancy follows the wave: with amplitude 0.9 the crest-window
/// occupancy must be a clear multiple of the trough-window occupancy.
#[test]
fn tidal_carried_load_tracks_the_offered_wave() {
    let steps = 1200u64;
    let period = 400u64;
    let cfg = TrafficConfig {
        channels_per_cell: 250, // more channels than UEs: no blocking
        guard_channels: 0,
        mean_idle_steps: 6.0,
        mean_holding_steps: 4.0,
        load_feedback: false,
    };
    let traces: Vec<UeTrace> = (0..200).map(|id| UeTrace::pinned(id, steps, 0)).collect();
    let wave = TidalWave { period_steps: period, amplitude: 0.9, phase_per_q: 0.0 };
    let tidal = DynamicsConfig { tide: Some(wave), ..DynamicsConfig::none() };
    let (flat_report, _, _) =
        replay_traffic_dynamic(&cfg, &two_cells(), &traces, 99, &DynamicsConfig::none());
    let (report, field, _) = replay_traffic_dynamic(&cfg, &two_cells(), &traces, 99, &tidal);
    // Mean intensity 1 ⇒ the offered-call volume survives the rescaling.
    let ratio = report.offered_calls as f64 / flat_report.offered_calls as f64;
    assert!(
        (0.85..=1.15).contains(&ratio),
        "tidal offered {} vs flat {} (ratio {ratio:.3})",
        report.offered_calls,
        flat_report.offered_calls
    );
    assert_eq!(report.blocked_calls, 0, "capacity 100 never blocks");
    // Crest windows (intensity ≥ 1.6) vs trough windows (≤ 0.4),
    // skipping the first period while occupancy spins up.
    let mut crest = (0.0, 0u64);
    let mut trough = (0.0, 0u64);
    for s in period..steps {
        let intensity = wave.intensity(s, 0);
        let u = field.utilization(Axial::ORIGIN, s as usize);
        if intensity >= 1.6 {
            crest = (crest.0 + u, crest.1 + 1);
        } else if intensity <= 0.4 {
            trough = (trough.0 + u, trough.1 + 1);
        }
    }
    assert!(crest.1 > 0 && trough.1 > 0);
    let crest_mean = crest.0 / crest.1 as f64;
    let trough_mean = trough.0 / trough.1 as f64;
    assert!(
        crest_mean > 2.0 * trough_mean,
        "crest occupancy {crest_mean:.4} must dominate trough {trough_mean:.4}"
    );
}

/// Contract 3 (exact): when a cell shuts down, the calls lost to the
/// failure at that instant are exactly the calls occupying the cell on
/// the previous step — pinned UEs have nowhere to relocate, so every
/// occupant strands — and the occupancy timeline drops to zero for the
/// whole outage.
#[test]
fn failure_eviction_equals_occupancy_at_shutdown() {
    let steps = 60u64;
    let from = 30u64;
    let cfg = TrafficConfig {
        channels_per_cell: 5,
        guard_channels: 0,
        mean_idle_steps: 3.0,
        mean_holding_steps: 1e6, // calls never end naturally
        load_feedback: false,
    };
    let cell = Axial::new(1, 0);
    let traces: Vec<UeTrace> = (0..40).map(|id| UeTrace::pinned(id, steps, 1)).collect();
    let dynamics = DynamicsConfig {
        failures: vec![CellOutage { cell, from_step: from, until_step: steps }],
        ..DynamicsConfig::none()
    };
    let (report, field, stats) =
        replay_traffic_dynamic(&cfg, &two_cells(), &traces, 4321, &dynamics);
    let occupied_before =
        (field.utilization(cell, from as usize - 1) * cfg.channels_per_cell as f64).round() as u64;
    assert!(occupied_before > 0, "the cell must be carrying calls when it fails");
    assert_eq!(
        stats.failure_dropped_calls, occupied_before,
        "every occupant strands exactly once"
    );
    assert_eq!(stats.failure_evicted_calls, 0, "pinned UEs never relocate");
    assert!(stats.failure_erlangs > 0.0);
    for s in from..steps {
        assert_eq!(field.utilization(cell, s as usize), 0.0, "dead cell carries nothing at step {s}");
    }
    // Ordinary handover accounting is untouched: pinned traces attempt
    // no handover, so nothing lands in the dropped column.
    assert_eq!(report.handover_attempts, 0);
    assert_eq!(report.dropped_calls, 0);
}

/// Regression (churn accounting audit): a UE departing mid-call must
/// release its channel the moment its trace ends — the occupancy
/// timeline can never exceed the number of still-alive traces at any
/// step, and effectively-immortal calls make any stale-slot leak show
/// up as an occupancy floor that outlives its UE.
#[test]
fn departing_ues_release_their_channels() {
    let cfg = TrafficConfig {
        channels_per_cell: 64,
        guard_channels: 0,
        mean_idle_steps: 1.0,
        mean_holding_steps: 1e6, // a leaked slot would never clear itself
        load_feedback: false,
    };
    // Staggered departures: UE i lives 10 + 6i steps.
    let traces: Vec<UeTrace> =
        (0..12).map(|id| UeTrace::pinned(id, 10 + 6 * id, 0)).collect();
    let last = traces.last().unwrap().steps;
    let (report, field, _) =
        replay_traffic_dynamic(&cfg, &two_cells(), &traces, 2024, &DynamicsConfig::none());
    assert!(report.carried_calls > 0);
    for s in 0..last {
        let alive = traces.iter().filter(|t| s < t.steps).count();
        let occupied = (field.utilization(Axial::ORIGIN, s as usize)
            * cfg.channels_per_cell as f64)
            .round() as usize;
        assert!(
            occupied <= alive,
            "step {s}: {occupied} channels busy but only {alive} UEs alive — stale slot leak"
        );
    }
    // The last surviving UE is the only possible occupant at the end.
    let end = (field.utilization(Axial::ORIGIN, last as usize - 1)
        * cfg.channels_per_cell as f64)
        .round() as usize;
    assert!(end <= 1, "final step carries {end} calls for one alive UE");
}

/// Regression (churn histogram audit): with churn retiring UEs mid-run
/// and arenas recycling their slots, the serving-load histogram must
/// still record exactly one entry per UE-step — no double-counted or
/// dropped steps across slot reuse.
#[test]
fn churned_histogram_stays_conserved() {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig { sigma_db: 4.0, decorrelation_km: 0.05 };
    cfg.noise = MeasurementNoise::new(1.0);
    cfg.sample_spacing_km = 0.2;
    let spec = HomogeneousFleet {
        mobility: FleetMobility::RandomWalk(RandomWalk::paper_default(6)),
        policy: PolicyKind::Fuzzy,
        trajectory_seed: 88,
        cell_radius_km: 2.0,
    };
    let churn = ChurnConfig { initial_ues: 8, horizon_steps: 10, mean_lifetime_steps: 6.0 };
    // Tiny chunks force slot recycling through the arena free list.
    let result = FleetSimulation::new(cfg)
        .with_workers(2)
        .with_chunk_size(3)
        .with_dynamics(DynamicsConfig { churn: Some(churn), ..DynamicsConfig::none() })
        .run(&spec, 40, 55);
    assert_eq!(
        result.cell_load.total(),
        result.summary.steps,
        "histogram entries must equal total UE-steps under churn"
    );
    let report = result.dynamics.expect("dynamic report");
    assert!(report.departures > 0, "short lifetimes must retire UEs");
    let integral = report.mean_population * report.timeline_steps as f64;
    assert!(
        (integral - result.summary.steps as f64).abs() < 1.0,
        "population integral {} vs UE-steps {}",
        integral,
        result.summary.steps
    );
}

/// Contract 4: guard channels reserved *against* a class bite under
/// congestion — with 2 of 3 channels guarded against data, data
/// blocking must clearly exceed voice blocking at identical offered
/// rates.
#[test]
fn extra_guard_channels_prioritize_voice_admission() {
    let steps = 800u64;
    let cfg = TrafficConfig {
        channels_per_cell: 3,
        guard_channels: 0,
        mean_idle_steps: 4.0,
        mean_holding_steps: 6.0,
        load_feedback: false,
    };
    let same = |extra| ServiceParams {
        mean_idle_steps: 4.0,
        mean_holding_steps: 6.0,
        extra_guard_channels: extra,
    };
    let traces: Vec<UeTrace> = (0..30).map(|id| UeTrace::pinned(id, steps, 0)).collect();
    let dynamics = DynamicsConfig {
        services: Some(ServiceMix { voice_share: 0.5, voice: same(0), data: same(2) }),
        ..DynamicsConfig::none()
    };
    let (_, _, stats) = replay_traffic_dynamic(&cfg, &two_cells(), &traces, 555, &dynamics);
    let voice = &stats.per_class[0];
    let data = &stats.per_class[1];
    assert!(voice.offered_calls > 50 && data.offered_calls > 50, "both classes saw load");
    assert!(
        data.blocking_probability() > voice.blocking_probability() + 0.05,
        "data P(block) {:.3} must exceed voice P(block) {:.3}",
        data.blocking_probability(),
        voice.blocking_probability()
    );
}
