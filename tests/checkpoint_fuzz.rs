//! Fuzz-style totality tests for the sealed-container ingest path
//! (PR 10 bugfix sweep): [`FleetCheckpoint::try_unseal`] and
//! [`Session::hydrate`] must be *total* on arbitrary byte strings —
//! every input returns `Ok` or a typed error, never a panic, never an
//! out-of-bounds slice.
//!
//! Three adversaries:
//!
//! 1. pure noise — random bytes of random length (including the empty
//!    string and headers shorter than the 28-byte envelope);
//! 2. truncation — every random prefix of a *valid* sealed container;
//! 3. corruption — a valid sealed container with one byte XOR-flipped
//!    at a random offset (header, length field, checksum or payload).
//!
//! Corruption must additionally be *detected*: a flipped byte yields a
//! typed [`CheckpointError`], never a silently wrong restore.

use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::server::{Session, SessionConfig};
use fuzzy_handover::sim::checkpoint::{FleetCheckpoint, SEALED_HEADER_LEN};
use fuzzy_handover::sim::fleet::{FleetMobility, FleetSimulation, PolicyKind};
use fuzzy_handover::sim::SimConfig;
use proptest::prelude::*;

/// Deterministic byte noise from a drawn seed (the vendored proptest
/// draws scalars; collections are derived).
fn noise_bytes(mut state: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

fn noisy_config() -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig { sigma_db: 4.0, decorrelation_km: 0.05 };
    cfg.noise = MeasurementNoise::new(1.0);
    cfg
}

/// A small but real sealed fleet checkpoint (live + finished UEs).
fn sealed_fleet(seed: u64) -> Vec<u8> {
    let cfg = noisy_config();
    let spec = fuzzy_handover::sim::fleet::HomogeneousFleet {
        mobility: FleetMobility::standard_four(6)[0],
        policy: PolicyKind::Fuzzy,
        trajectory_seed: seed,
        cell_radius_km: cfg.layout.cell_radius_km(),
    };
    let ids: Vec<u64> = (0..6).collect();
    FleetSimulation::new(cfg)
        .run_partial(&spec, &ids, seed, 5)
        .expect("valid partial run")
        .seal()
}

/// A small but real sealed session snapshot (config + fleet state).
fn sealed_session(seed: u64) -> Vec<u8> {
    let config = SessionConfig::new(
        noisy_config(),
        FleetMobility::standard_four(6)[0],
        PolicyKind::Fuzzy,
        6,
        seed,
    );
    let mut session = Session::spawn(config, 1).expect("valid config");
    session.advance_to(5).expect("advance");
    session.sealed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adversary 1 — pure noise never panics either ingest path.
    #[test]
    fn arbitrary_bytes_never_panic_ingest(
        seed in 0u64..u64::MAX,
        len in 0usize..256,
    ) {
        // `Ok` on random noise would be astonishing but is not the
        // property under test — totality is.
        let bytes = noise_bytes(seed | 1, len);
        let _ = FleetCheckpoint::try_unseal(&bytes);
        let _ = Session::hydrate(&bytes, 1);
    }

    /// Adversary 1b — noise behind a *plausible* header: the right
    /// magic, arbitrary version/length/checksum words. Exercises the
    /// length-field arithmetic against overflow and truncation.
    #[test]
    fn forged_headers_never_panic_ingest(
        version in 0u32..=u32::MAX,
        declared_len in 0u64..u64::MAX,
        checksum in 0u64..u64::MAX,
        payload_seed in 0u64..u64::MAX,
        payload_len in 0usize..64,
    ) {
        let payload = noise_bytes(payload_seed | 1, payload_len);
        let mut bytes = Vec::with_capacity(SEALED_HEADER_LEN + payload.len());
        bytes.extend_from_slice(b"FZHOCKPT");
        bytes.extend_from_slice(&version.to_le_bytes());
        bytes.extend_from_slice(&declared_len.to_le_bytes());
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes.extend_from_slice(&payload);
        let _ = FleetCheckpoint::try_unseal(&bytes);
        let _ = Session::hydrate(&bytes, 1);
    }

    /// Adversary 2 — every truncation of a valid container is a typed
    /// error (a strict prefix can never verify: the checksum covers the
    /// full declared payload).
    #[test]
    fn truncated_valid_containers_are_typed_errors(
        seed in 0u64..100,
        frac in 0.0f64..1.0,
    ) {
        let sealed = sealed_fleet(seed);
        let cut = ((sealed.len() as f64) * frac) as usize;
        prop_assume!(cut < sealed.len());
        let err = FleetCheckpoint::try_unseal(&sealed[..cut]);
        prop_assert!(err.is_err(), "a {cut}-byte prefix of {} unsealed", sealed.len());

        let sealed = sealed_session(seed);
        let cut = ((sealed.len() as f64) * frac) as usize;
        let err = Session::hydrate(&sealed[..cut], 1);
        prop_assert!(err.is_err(), "a {cut}-byte prefix of {} hydrated", sealed.len());
    }

    /// Adversary 3 — any single flipped byte of a valid container is
    /// *detected* (typed error, never a silently wrong restore) and
    /// never panics.
    #[test]
    fn single_byte_corruption_is_detected(
        seed in 0u64..100,
        offset_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut sealed = sealed_session(seed);
        let offset = ((sealed.len() as f64) * offset_frac) as usize % sealed.len();
        sealed[offset] ^= flip;
        let outcome = Session::hydrate(&sealed, 1);
        prop_assert!(
            outcome.is_err(),
            "flipping byte {offset} by {flip:#04x} went undetected"
        );
    }
}
