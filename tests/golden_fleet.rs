//! Golden-file regression harness for the fleet checkpoint format.
//!
//! The checkpoint is an on-disk artifact: a snapshot written by one
//! build must resume under a later build (or fail loudly via the
//! version tag). This suite pins the serialized [`FleetCheckpoint`]
//! bytes of a small mid-run snapshot — RNG block positions, shadowing
//! lanes, smoother filters, policy state, traces and tallies — and
//! additionally proves the *pinned* bytes still resume bit-identically
//! to the uninterrupted run. Refresh after an *intentional* format
//! change (and a `CHECKPOINT_VERSION` bump) with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_fleet
//! ```

use fuzzy_handover::mobility::RandomWalk;
use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::sim::fleet::{FleetMobility, FleetSimulation, HomogeneousFleet, PolicyKind};
use fuzzy_handover::sim::{FleetCheckpoint, SimConfig, TrafficConfig};
use std::path::{Path, PathBuf};

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_fleet")
        .join("checkpoint.json")
}

fn engine() -> FleetSimulation {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig::moderate();
    cfg.noise = MeasurementNoise::new(1.0);
    FleetSimulation::new(cfg)
        .with_workers(3)
        .with_chunk_size(4)
        .with_traffic(TrafficConfig {
            channels_per_cell: 3,
            guard_channels: 1,
            mean_idle_steps: 5.0,
            mean_holding_steps: 4.0,
            load_feedback: false,
        })
}

fn spec() -> HomogeneousFleet {
    HomogeneousFleet {
        mobility: FleetMobility::RandomWalk(RandomWalk::paper_default(6)),
        policy: PolicyKind::Fuzzy,
        trajectory_seed: 0x601D,
        cell_radius_km: 2.0,
    }
}

const BASE_SEED: u64 = 0xC4EC_4101;
const SNAP_STEP: u64 = 7;
const N_UES: u64 = 12;

#[test]
fn checkpoint_format_matches_golden_and_resumes() {
    let engine = engine();
    let spec = spec();
    let ids: Vec<u64> = (0..N_UES).collect();
    let cp = engine
        .run_partial(&spec, &ids, BASE_SEED, SNAP_STEP)
        .expect("partial run");
    let fresh = serde_json::to_string(&cp).expect("serialize checkpoint") + "\n";

    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create dir");
        std::fs::write(&path, &fresh).expect("write golden");
        println!("refreshed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|err| {
        panic!(
            "missing golden file {} ({err}); generate with UPDATE_GOLDEN=1 cargo test --test golden_fleet",
            path.display()
        )
    });
    if golden != fresh {
        let at = golden
            .bytes()
            .zip(fresh.bytes())
            .position(|(g, f)| g != f)
            .unwrap_or_else(|| golden.len().min(fresh.len()));
        let lo = at.saturating_sub(60);
        panic!(
            "checkpoint format drifted at byte {at}:\n  golden: …{}…\n  fresh : …{}…\n\
             An on-disk snapshot from an older build would no longer restore these\n\
             bytes. If the change is intended, bump CHECKPOINT_VERSION and refresh\n\
             with UPDATE_GOLDEN=1 cargo test --test golden_fleet",
            &golden[lo..(at + 60).min(golden.len())],
            &fresh[lo..(at + 60).min(fresh.len())],
        );
    }

    // The pinned bytes are not just stable — they still resume into the
    // exact uninterrupted result.
    let parsed: FleetCheckpoint = serde_json::from_str(&golden).expect("parse golden");
    let resumed = engine.resume(&spec, &parsed).expect("resume golden");
    let full = engine.run_ids(&spec, &ids, BASE_SEED);
    assert_eq!(full, resumed, "golden checkpoint no longer resumes bit-identically");
}
