//! Golden-file regression harness for the fleet checkpoint format.
//!
//! The checkpoint is an on-disk artifact: a snapshot written by one
//! build must resume under a later build (or fail loudly via the
//! version tag). This suite pins the serialized [`FleetCheckpoint`]
//! bytes of a small mid-run snapshot — RNG block positions, shadowing
//! lanes, smoother filters, policy state, traces and tallies — and
//! additionally proves the *pinned* bytes still resume bit-identically
//! to the uninterrupted run. Refresh after an *intentional* format
//! change (and a `CHECKPOINT_VERSION` bump) with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_fleet
//! ```

use fuzzy_handover::mobility::RandomWalk;
use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::sim::checkpoint::{
    CheckpointError, SEALED_FORMAT_VERSION, SEALED_HEADER_LEN, SEALED_MAGIC,
};
use fuzzy_handover::sim::fleet::{FleetMobility, FleetSimulation, HomogeneousFleet, PolicyKind};
use fuzzy_handover::sim::{FleetCheckpoint, SimConfig, TrafficConfig};
use std::path::{Path, PathBuf};

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_fleet")
        .join("checkpoint.json")
}

fn sealed_golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_fleet")
        .join("checkpoint.sealed.bin")
}

fn engine() -> FleetSimulation {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig::moderate();
    cfg.noise = MeasurementNoise::new(1.0);
    FleetSimulation::new(cfg)
        .with_workers(3)
        .with_chunk_size(4)
        .with_traffic(TrafficConfig {
            channels_per_cell: 3,
            guard_channels: 1,
            mean_idle_steps: 5.0,
            mean_holding_steps: 4.0,
            load_feedback: false,
        })
}

fn spec() -> HomogeneousFleet {
    HomogeneousFleet {
        mobility: FleetMobility::RandomWalk(RandomWalk::paper_default(6)),
        policy: PolicyKind::Fuzzy,
        trajectory_seed: 0x601D,
        cell_radius_km: 2.0,
    }
}

const BASE_SEED: u64 = 0xC4EC_4101;
const SNAP_STEP: u64 = 7;
const N_UES: u64 = 12;

#[test]
fn checkpoint_format_matches_golden_and_resumes() {
    let engine = engine();
    let spec = spec();
    let ids: Vec<u64> = (0..N_UES).collect();
    let cp = engine
        .run_partial(&spec, &ids, BASE_SEED, SNAP_STEP)
        .expect("partial run");
    let fresh = serde_json::to_string(&cp).expect("serialize checkpoint") + "\n";

    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create dir");
        std::fs::write(&path, &fresh).expect("write golden");
        println!("refreshed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|err| {
        panic!(
            "missing golden file {} ({err}); generate with UPDATE_GOLDEN=1 cargo test --test golden_fleet",
            path.display()
        )
    });
    if golden != fresh {
        let at = golden
            .bytes()
            .zip(fresh.bytes())
            .position(|(g, f)| g != f)
            .unwrap_or_else(|| golden.len().min(fresh.len()));
        let lo = at.saturating_sub(60);
        panic!(
            "checkpoint format drifted at byte {at}:\n  golden: …{}…\n  fresh : …{}…\n\
             An on-disk snapshot from an older build would no longer restore these\n\
             bytes. If the change is intended, bump CHECKPOINT_VERSION and refresh\n\
             with UPDATE_GOLDEN=1 cargo test --test golden_fleet",
            &golden[lo..(at + 60).min(golden.len())],
            &fresh[lo..(at + 60).min(fresh.len())],
        );
    }

    // The pinned bytes are not just stable — they still resume into the
    // exact uninterrupted result.
    let parsed: FleetCheckpoint = serde_json::from_str(&golden).expect("parse golden");
    let resumed = engine.resume(&spec, &parsed).expect("resume golden");
    let full = engine.run_ids(&spec, &ids, BASE_SEED);
    assert_eq!(full, resumed, "golden checkpoint no longer resumes bit-identically");
}

/// The checksummed sealed container (format v2) is itself a pinned
/// on-disk artifact: magic + version + length + FNV-1a checksum +
/// payload, byte for byte — and the pinned bytes still unseal and
/// resume into the exact uninterrupted result.
#[test]
fn sealed_checkpoint_matches_golden_and_restores() {
    let engine = engine();
    let spec = spec();
    let ids: Vec<u64> = (0..N_UES).collect();
    let cp = engine
        .run_partial(&spec, &ids, BASE_SEED, SNAP_STEP)
        .expect("partial run");
    let fresh = cp.seal();

    let path = sealed_golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create dir");
        std::fs::write(&path, &fresh).expect("write sealed golden");
        println!("refreshed {}", path.display());
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|err| {
        panic!(
            "missing sealed golden {} ({err}); generate with UPDATE_GOLDEN=1 cargo test --test golden_fleet",
            path.display()
        )
    });
    if golden != fresh {
        let at = golden
            .iter()
            .zip(&fresh)
            .position(|(g, f)| g != f)
            .unwrap_or_else(|| golden.len().min(fresh.len()));
        panic!(
            "sealed checkpoint container drifted at byte {at} \
             (golden {} bytes, fresh {} bytes). A sealed snapshot written by an \
             older build would no longer restore. If the change is intended, bump \
             SEALED_FORMAT_VERSION and refresh with UPDATE_GOLDEN=1",
            golden.len(),
            fresh.len(),
        );
    }

    // Header invariants are part of the pinned contract.
    assert_eq!(&golden[..8], &SEALED_MAGIC);
    let version = u32::from_le_bytes(golden[8..12].try_into().expect("4 version bytes"));
    assert_eq!(version, SEALED_FORMAT_VERSION);
    let payload_len = u64::from_le_bytes(golden[12..20].try_into().expect("8 length bytes"));
    assert_eq!(golden.len(), SEALED_HEADER_LEN + payload_len as usize);

    // And the pinned container still restores bit-identically.
    let parsed = FleetCheckpoint::try_unseal(&golden).expect("unseal golden");
    let resumed = engine.try_resume(&spec, &parsed).expect("resume sealed golden");
    let full = engine.run_ids(&spec, &ids, BASE_SEED);
    assert_eq!(full, resumed, "sealed golden no longer resumes bit-identically");
}

/// Forward-compatibility gate: the v1 bare-JSON golden — exactly what a
/// pre-seal build wrote to disk — comes back as a *typed*
/// [`CheckpointError::UnsupportedVersion`], never a parse panic and
/// never a silent wrong restore.
#[test]
fn v1_bare_json_golden_yields_typed_unsupported_version() {
    let golden = std::fs::read(golden_path()).expect("v1 JSON golden present");
    match FleetCheckpoint::try_unseal(&golden) {
        Err(CheckpointError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 1, "bare JSON is recognized as the v1 container");
            assert_eq!(supported, SEALED_FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion for v1 bytes, got {other:?}"),
    }
}
