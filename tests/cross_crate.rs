//! Cross-crate consistency: properties that only hold when the substrates
//! agree with each other.

use fuzzy_handover::core::flc::{build_paper_flc, frb_lookup, Cssp, Dmb, Ssn};
use fuzzy_handover::core::{ControllerConfig, FuzzyHandoverController};
use fuzzy_handover::fuzzy::Mf;
use fuzzy_handover::geometry::{Axial, CellLayout, Vec2};
use fuzzy_handover::mobility::{MobilityModel, RandomWalk, Trajectory};
use fuzzy_handover::radio::BsRadio;
use fuzzy_handover::sim::{SimConfig, Simulation};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn flc_agrees_with_the_frb_at_term_cores() {
    // Feeding the FLC the core point of one term per variable must make
    // the printed FRB rule dominate: the crisp output lands in (or next
    // to) the consequent term's region.
    let fis = build_paper_flc();
    let core_of = |var: usize, term: usize| {
        let v = &fis.inputs()[var];
        v.terms()[term].mf.centroid_of_core(v.min, v.max)
    };
    let hd_var = &fis.outputs()[0];
    for (ci, c) in Cssp::ALL.iter().enumerate() {
        for (si, s) in Ssn::ALL.iter().enumerate() {
            for (di, d) in Dmb::ALL.iter().enumerate() {
                let x = [core_of(0, ci), core_of(1, si), core_of(2, di)];
                let out = fis.evaluate(&x).unwrap()[0];
                let expected = frb_lookup(*c, *s, *d);
                let best = hd_var.best_term(out).unwrap().0;
                let diff = (best as i32 - expected.index() as i32).abs();
                assert!(
                    diff <= 1,
                    "core input {c:?}/{s:?}/{d:?} gave {out:.3} (term {best}), FRB says {expected:?}"
                );
            }
        }
    }
}

#[test]
fn geometry_and_radio_agree_on_cell_dominance() {
    // Inside a cell's inradius, that cell's BS is the strongest signal —
    // the radio model must respect the Voronoi geometry.
    let layout = CellLayout::hexagonal(2.0, 2);
    let radio = BsRadio::paper_default();
    for &cell in layout.cells() {
        let c = layout.bs_position(cell);
        for angle_deg in (0..360).step_by(45) {
            let p = c + Vec2::from_polar(
                0.7 * layout.grid().inradius(),
                (angle_deg as f64).to_radians(),
            );
            // Skip the pattern null right at the mast: probe points are
            // 1.2 km out, far beyond it.
            let own = radio.received_power_dbm(c, p);
            for &other in layout.cells() {
                if other == cell {
                    continue;
                }
                let theirs = radio.received_power_dbm(layout.bs_position(other), p);
                assert!(
                    own > theirs,
                    "{cell} at {p:?}: own {own} vs {other} {theirs}"
                );
            }
        }
    }
}

#[test]
fn serde_round_trips_compose_across_crates() {
    // A controller config, a layout, and a radio all survive JSON.
    let cfg = SimConfig::paper_default();
    let json = serde_json::to_string(&cfg).unwrap();
    let back: SimConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);

    let fis = build_paper_flc();
    let fis_back: fuzzy_handover::fuzzy::Fis =
        serde_json::from_str(&serde_json::to_string(&fis).unwrap()).unwrap();
    let x = [-4.0, -95.0, 0.8];
    assert_eq!(fis.evaluate(&x).unwrap(), fis_back.evaluate(&x).unwrap());
}

#[test]
fn simulation_is_deterministic_across_policy_instances() {
    // Two separately constructed controllers on the same seed and walk
    // produce identical results (no hidden global state anywhere).
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = fuzzy_handover::radio::ShadowingConfig::moderate();
    cfg.noise = fuzzy_handover::radio::MeasurementNoise::new(1.0);
    let sim = Simulation::new(cfg);
    let walk = RandomWalk::paper_default(8).generate(&mut StdRng::seed_from_u64(5));
    let mut p1 = FuzzyHandoverController::new(ControllerConfig::paper_default(2.0));
    let mut p2 = FuzzyHandoverController::new(ControllerConfig::paper_default(2.0));
    assert_eq!(sim.run(&walk, &mut p1, 123), sim.run(&walk, &mut p2, 123));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any walk that never leaves the origin cell's inradius produces
    /// zero handovers: the serving signal stays strong (POTLC) and the
    /// neighbours stay weak.
    #[test]
    fn walks_inside_one_cell_never_hand_over(seed in 0u64..500) {
        let walk = RandomWalk {
            n_walks: 6,
            step_mean_km: 0.3,
            step_std_km: 0.1,
            angle: fuzzy_handover::mobility::AngleDistribution::Uniform,
            start: Vec2::ZERO,
        }
        .generate(&mut StdRng::seed_from_u64(seed));
        // Condition the property on the walk staying well inside.
        let inside = walk
            .resample(0.1)
            .iter()
            .all(|p| p.pos.norm() < 1.4);
        prop_assume!(inside);
        let sim = Simulation::new(SimConfig::paper_default());
        let mut policy = FuzzyHandoverController::new(ControllerConfig::paper_default(2.0));
        let result = sim.run(&walk, &mut policy, seed);
        prop_assert_eq!(result.handover_count(), 0);
        prop_assert_eq!(result.final_serving, Axial::ORIGIN);
    }

    /// The engine never records a neighbour equal to the serving cell and
    /// keeps HD values inside the unit interval, whatever the walk.
    #[test]
    fn engine_invariants_hold_on_random_walks(seed in 0u64..300) {
        let walk = RandomWalk::paper_default(8).generate(&mut StdRng::seed_from_u64(seed));
        let layout = SimConfig::paper_default().layout;
        prop_assume!(walk.resample(0.2).iter().all(|p| layout.containing_cell(p.pos).is_some()));
        let sim = Simulation::new(SimConfig::paper_default());
        let mut policy = FuzzyHandoverController::new(ControllerConfig::paper_default(2.0));
        let result = sim.run(&walk, &mut policy, seed);
        for s in &result.steps {
            prop_assert_ne!(s.neighbor, s.serving);
            if let Some(hd) = s.hd {
                prop_assert!((0.0..=1.0).contains(&hd));
            }
        }
        // Ping-pong count never exceeds handover count.
        let pp = result.log.ping_pong_report(6);
        prop_assert!(pp.ping_pongs <= pp.handovers);
    }

    /// Trajectory resampling preserves total length for any random walk.
    #[test]
    fn resampling_preserves_arclength(seed in 0u64..500, spacing in 0.05f64..0.7) {
        let walk = RandomWalk::paper_default(6).generate(&mut StdRng::seed_from_u64(seed));
        let pts = walk.resample(spacing);
        let last = pts.last().unwrap().cum_km;
        prop_assert!((last - walk.total_length_km()).abs() < 1e-9);
    }

    /// The paper parameterisations of Fig. 3 agree with the generic MF
    /// evaluators everywhere.
    #[test]
    fn paper_mf_forms_match_generic(x0 in -5.0f64..5.0, a0 in 0.1f64..3.0, a1 in 0.1f64..3.0, x in -10.0f64..10.0) {
        let tri = Mf::tri_center(x0, a0, a1);
        let explicit = Mf::triangular(x0 - a0, x0, x0 + a1);
        prop_assert_eq!(tri.eval(x), explicit.eval(x));
    }
}

#[test]
fn trajectory_type_flows_through_the_whole_stack() {
    // A hand-built trajectory (mobility) runs through the engine (sim)
    // over the layout (geometry) with the radio (radiolink) and the
    // controller (core) — the five crates in one call chain.
    let walk = Trajectory::new(vec![
        Vec2::new(0.0, 0.0),
        Vec2::new(2.0, 1.0),
        Vec2::new(3.5, 0.0),
    ]);
    let sim = Simulation::new(SimConfig::paper_default());
    let mut policy = FuzzyHandoverController::new(ControllerConfig::paper_default(2.0));
    let result = sim.run(&walk, &mut policy, 0);
    assert_eq!(result.steps.first().unwrap().serving, Axial::ORIGIN);
    assert!(result.steps.len() >= 5);
}
