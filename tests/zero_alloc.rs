//! Counting-allocator proof of the compiled decision plane's acceptance
//! criterion: **`CompiledFis::evaluate` performs zero heap allocations**
//! once its scratch has been sized (its first use), and the interpreted
//! `Fis::evaluate` plain path allocates only its returned output vector.
//!
//! The whole measurement lives in a single `#[test]` so no concurrent test
//! thread can perturb the global allocation counter.
//!
//! One interference source remains even then: the libtest harness's
//! *main* thread prints its per-test progress line concurrently with the
//! test body (which runs on a worker thread), and that one-shot print
//! allocates — at a random instant a few milliseconds into the process,
//! which used to land inside the first measured window often enough to
//! make this test flaky. Every window therefore measures through
//! [`min_allocations_of`]: run the workload a few times and take the
//! *minimum* count. Interference can only ever add allocations, so a
//! single clean run proves the zero-allocation property exactly.

use fuzzy_handover::core::flc::{paper_flc_lut, paper_flc_plan};
use fuzzy_handover::core::{build_paper_flc, ControllerConfig, FuzzyHandoverController};
use fuzzy_handover::core::{FlcInputs, HandoverPolicy, MeasurementReport};
use fuzzy_handover::fuzzy::EvalScratch;
use fuzzy_handover::geometry::Axial;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// `System`, with every allocation event counted.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Run `workload` up to three times and return the *fewest* allocations
/// any single run performed, stopping early once the count is within
/// `budget`. A concurrent one-shot event (the harness's progress print)
/// can only inflate a count, never deflate it, so the minimum is a sound
/// upper bound on what the workload itself allocates — and taking it
/// makes the measurement immune to that race.
fn min_allocations_of(budget: usize, mut workload: impl FnMut()) -> usize {
    let mut fewest = usize::MAX;
    for _ in 0..3 {
        let before = allocations();
        workload();
        fewest = fewest.min(allocations() - before);
        if fewest <= budget {
            break;
        }
    }
    fewest
}

const INPUTS: [[f64; 3]; 6] = [
    [-2.7, -93.4, 0.44],
    [-3.5, -89.0, 1.2],
    [-9.0, -82.0, 1.3],
    [8.0, -118.0, 0.1],
    [0.0, -100.0, 0.75],
    [-5.0, -104.0, 0.9],
];

#[test]
fn decision_plane_allocation_budget() {
    // --- CompiledFis: strictly zero allocations per call after warm-up.
    let plan = paper_flc_plan();
    let mut scratch = EvalScratch::new();
    let mut out = [0.0f64];
    plan.evaluate(&INPUTS[0], &mut scratch, &mut out).unwrap(); // sizes the scratch
    let compiled_allocs = min_allocations_of(0, || {
        for _ in 0..100 {
            for x in &INPUTS {
                plan.evaluate(x, &mut scratch, &mut out).unwrap();
            }
        }
    });
    assert_eq!(
        compiled_allocs, 0,
        "CompiledFis::evaluate must not allocate after its scratch is sized"
    );

    // --- evaluate_batch: equally allocation-free.
    let flat: Vec<f64> = INPUTS.iter().flatten().copied().collect();
    let mut hds = vec![0.0f64; INPUTS.len()];
    let batch_allocs = min_allocations_of(0, || {
        for _ in 0..100 {
            plan.evaluate_batch(&flat, &mut hds, &mut scratch).unwrap();
        }
    });
    assert_eq!(batch_allocs, 0, "evaluate_batch must not allocate");

    // --- The LUT plane: allocation-free by construction.
    let lut = paper_flc_lut();
    let lut_allocs = min_allocations_of(0, || {
        for x in &INPUTS {
            let _ = lut.evaluate(*x);
        }
    });
    assert_eq!(lut_allocs, 0, "Lut3d::evaluate must not allocate");

    // --- The full controller decision step: only gate-passing steps touch
    // the FLC, and none of them allocate (the scratch lives inside).
    let mut controller = FuzzyHandoverController::new(ControllerConfig::paper_default(2.0));
    let report = MeasurementReport {
        serving: Axial::ORIGIN,
        serving_rss_dbm: -100.0,
        neighbor: Axial::new(1, 0),
        neighbor_rss_dbm: -90.0,
        distance_to_serving_km: 2.3,
        distance_to_neighbor_km: 1.2,
    };
    controller.decide(&report); // warm the controller's scratch
    let controller_allocs = min_allocations_of(0, || {
        for _ in 0..100 {
            controller.decide(&report);
            controller.evaluate_hd(&FlcInputs {
                cssp_db: -4.0,
                ssn_dbm: -95.0,
                dmb_norm: 1.1,
            });
        }
    });
    assert_eq!(
        controller_allocs, 0,
        "a warmed FuzzyHandoverController decision must not allocate"
    );

    // --- Interpreted engine: the satellite fix routes the plain path
    // through a thread-local scratch, so after warm-up each call allocates
    // exactly its returned Vec<f64> (one allocation) — down from the
    // nested fuzzification vectors, the firing buffer and a 501-sample
    // aggregate per call.
    let fis = build_paper_flc();
    let _ = fis.evaluate(&INPUTS[0]).unwrap(); // warm the thread-local scratch
    let calls = 100;
    let interpreted_allocs = min_allocations_of(calls, || {
        for _ in 0..calls {
            let _ = fis.evaluate(&INPUTS[1]).unwrap();
        }
    });
    let per_call = interpreted_allocs as f64 / calls as f64;
    assert!(
        per_call <= 1.0 + f64::EPSILON,
        "interpreted Fis::evaluate should allocate only its output vector, got {per_call}/call"
    );
}
