//! Differential harness for the dynamic-workload plane.
//!
//! The plane's core contract: every feature off is **bitwise identical**
//! to the static engine. Each dynamic feature has a degenerate
//! configuration the static path must reproduce exactly:
//!
//! * an inert [`DynamicsConfig`] (everything `None`/empty) normalizes
//!   away inside the builder — the whole `FleetResult` matches;
//! * a flat tidal wave (amplitude 0) is dropped by normalization;
//! * failure windows that never intersect the timeline leave the engine
//!   *and* the traffic replay untouched (only the dynamic report is
//!   added);
//! * a single-class service mix whose parameters equal the base traffic
//!   config reproduces the static session draws — and therefore the
//!   static [`TrafficReport`] — bit for bit.
//!
//! All identities hold for every [`PolicyKind`], every
//! [`CandidateMode`], and every worker count / chunk size, mirroring
//! `tests/traffic_diff.rs`.

use fuzzy_handover::geometry::Axial;
use fuzzy_handover::mobility::RandomWalk;
use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::sim::fleet::{
    CandidateMode, FleetMobility, FleetSimulation, HomogeneousFleet, PolicyKind,
};
use fuzzy_handover::sim::{
    CellOutage, DynamicsConfig, ServiceMix, ServiceParams, SimConfig, TidalWave, TrafficConfig,
};

fn noisy_config() -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig { sigma_db: 4.0, decorrelation_km: 0.05 };
    cfg.noise = MeasurementNoise::new(1.0);
    cfg.sample_spacing_km = 0.2;
    cfg
}

fn spec(policy: PolicyKind) -> HomogeneousFleet {
    HomogeneousFleet {
        mobility: FleetMobility::RandomWalk(RandomWalk::paper_default(6)),
        policy,
        trajectory_seed: 17,
        cell_radius_km: 2.0,
    }
}

fn passive_traffic() -> TrafficConfig {
    TrafficConfig {
        channels_per_cell: 3,
        guard_channels: 1,
        mean_idle_steps: 5.0,
        mean_holding_steps: 4.0,
        load_feedback: false,
    }
}

/// Failure windows far past any trajectory's step count.
fn far_failures() -> DynamicsConfig {
    DynamicsConfig {
        churn: None,
        tide: None,
        failures: vec![CellOutage {
            cell: Axial::new(1, 0),
            from_step: 1_000_000,
            until_step: 1_000_100,
        }],
        services: None,
    }
}

const ALL_POLICIES: [PolicyKind; 6] = [
    PolicyKind::Fuzzy,
    PolicyKind::FuzzyLut,
    PolicyKind::Hysteresis { margin_db: 4.0 },
    PolicyKind::Threshold { threshold_dbm: -95.0 },
    PolicyKind::HysteresisThreshold { threshold_dbm: -90.0, margin_db: 3.0 },
    PolicyKind::LoadHysteresis { margin_db: 4.0, load_bias_db: 8.0 },
];

const MODES: [CandidateMode; 2] = [CandidateMode::All, CandidateMode::Nearest(7)];

/// The tentpole differential: an inert dynamics spec normalizes away
/// and the whole `FleetResult` — outcomes, summary, histogram, absent
/// reports — matches the plain run bitwise, across the whole policy ×
/// candidate-mode × sharding grid.
#[test]
fn inert_dynamics_is_bitwise_invisible_to_the_fleet() {
    for policy in ALL_POLICIES {
        for mode in MODES {
            for (workers, chunk) in [(1, 128), (3, 7)] {
                let ue_spec = spec(policy);
                let bare = FleetSimulation::new(noisy_config())
                    .with_candidate_mode(mode)
                    .with_workers(workers)
                    .with_chunk_size(chunk)
                    .run(&ue_spec, 24, 91);
                let dynamic = FleetSimulation::new(noisy_config())
                    .with_candidate_mode(mode)
                    .with_workers(workers)
                    .with_chunk_size(chunk)
                    .with_dynamics(DynamicsConfig::none())
                    .run(&ue_spec, 24, 91);
                let ctx = format!(
                    "policy={} mode={} workers={workers} chunk={chunk}",
                    policy.label(),
                    mode.label()
                );
                assert_eq!(bare, dynamic, "{ctx}");
                assert_eq!(bare.dynamics, None, "{ctx}");
            }
        }
    }
}

/// A zero-amplitude tidal wave is inert by construction: alone it
/// normalizes the whole plane away; alongside a live feature it is
/// dropped from the normalized config, leaving that feature's run
/// bit-identical.
#[test]
fn flat_tide_normalizes_away() {
    let ue_spec = spec(PolicyKind::Fuzzy);
    let flat = TidalWave { period_steps: 96, amplitude: 0.0, phase_per_q: 0.25 };
    let bare = FleetSimulation::new(noisy_config()).run(&ue_spec, 20, 33);
    let tide_only = FleetSimulation::new(noisy_config())
        .with_dynamics(DynamicsConfig { tide: Some(flat), ..DynamicsConfig::none() })
        .run(&ue_spec, 20, 33);
    assert_eq!(bare, tide_only, "a flat tide alone is the static engine");

    let with_failures = FleetSimulation::new(noisy_config())
        .with_dynamics(far_failures())
        .run(&ue_spec, 20, 33);
    let with_failures_and_flat_tide = FleetSimulation::new(noisy_config())
        .with_dynamics(DynamicsConfig { tide: Some(flat), ..far_failures() })
        .run(&ue_spec, 20, 33);
    assert_eq!(with_failures, with_failures_and_flat_tide);
}

/// Failure windows that never intersect the timeline leave every
/// engine-side artifact bitwise identical — the run only gains the
/// dynamic report. With a traffic plane attached, the `TrafficReport`
/// (now produced by the dynamic replay) matches the static replay bit
/// for bit and the failure columns stay zero.
#[test]
fn out_of_horizon_failures_are_engine_invisible() {
    for policy in ALL_POLICIES {
        for mode in MODES {
            let ue_spec = spec(policy);
            let bare = FleetSimulation::new(noisy_config())
                .with_candidate_mode(mode)
                .with_traffic(passive_traffic())
                .run(&ue_spec, 24, 91);
            let dynamic = FleetSimulation::new(noisy_config())
                .with_candidate_mode(mode)
                .with_traffic(passive_traffic())
                .with_dynamics(far_failures())
                .run(&ue_spec, 24, 91);
            let ctx = format!("policy={} mode={}", policy.label(), mode.label());
            assert_eq!(bare.outcomes, dynamic.outcomes, "{ctx}");
            assert_eq!(bare.summary, dynamic.summary, "{ctx}");
            assert_eq!(bare.cell_load, dynamic.cell_load, "{ctx}");
            assert_eq!(bare.traffic, dynamic.traffic, "{ctx}");
            for (b, d) in bare.outcomes.iter().zip(&dynamic.outcomes) {
                assert_eq!(b.hd_sum.to_bits(), d.hd_sum.to_bits(), "{ctx} ue={}", b.ue_id);
            }
            let report = dynamic.dynamics.as_ref().expect("dynamics plane ran");
            assert_eq!(report.arrivals, 0, "{ctx}: no churn, no arrivals");
            // `departures` counts every trace ending before the global
            // timeline does — heterogeneous walk lengths land there even
            // without churn, so it is not asserted to be zero here.
            let stats = report.traffic.as_ref().expect("traffic plane ran");
            assert_eq!(stats.failure_evicted_calls, 0, "{ctx}");
            assert_eq!(stats.failure_dropped_calls, 0, "{ctx}");
            assert_eq!(stats.failure_erlangs.to_bits(), 0.0f64.to_bits(), "{ctx}");
        }
    }
}

/// A single-class service mix whose class parameters equal the base
/// traffic config reproduces the static session draws — the class draw
/// runs on its own domain-separated stream, so consuming it never
/// shifts the session stream. Both the all-voice and the all-data
/// degenerate mixes must hit the identity.
#[test]
fn single_class_mix_reproduces_the_static_traffic_report() {
    let cfg = passive_traffic();
    let matching = ServiceParams {
        mean_idle_steps: cfg.mean_idle_steps,
        mean_holding_steps: cfg.mean_holding_steps,
        extra_guard_channels: 0,
    };
    let other = ServiceParams {
        mean_idle_steps: 2.0,
        mean_holding_steps: 11.0,
        extra_guard_channels: 2,
    };
    for (share, voice, data, name) in
        [(1.0, matching, other, "all-voice"), (0.0, other, matching, "all-data")]
    {
        let ue_spec = spec(PolicyKind::Fuzzy);
        let bare = FleetSimulation::new(noisy_config())
            .with_traffic(cfg)
            .run(&ue_spec, 24, 91);
        let mixed = FleetSimulation::new(noisy_config())
            .with_traffic(cfg)
            .with_dynamics(DynamicsConfig {
                services: Some(ServiceMix { voice_share: share, voice, data }),
                ..DynamicsConfig::none()
            })
            .run(&ue_spec, 24, 91);
        assert_eq!(bare.outcomes, mixed.outcomes, "{name}");
        assert_eq!(bare.summary, mixed.summary, "{name}");
        assert_eq!(bare.cell_load, mixed.cell_load, "{name}");
        assert_eq!(bare.traffic, mixed.traffic, "{name}");
        // The per-class breakdown exists and puts everything in the one
        // live class.
        let stats = mixed
            .dynamics
            .as_ref()
            .and_then(|d| d.traffic.as_ref())
            .expect("dynamic traffic stats");
        assert_eq!(stats.per_class.len(), 2, "{name}");
        let report = bare.traffic.as_ref().expect("traffic ran");
        let (live, dead) = if share == 1.0 {
            (&stats.per_class[0], &stats.per_class[1])
        } else {
            (&stats.per_class[1], &stats.per_class[0])
        };
        assert_eq!(live.offered_calls, report.offered_calls, "{name}");
        assert_eq!(live.blocked_calls, report.blocked_calls, "{name}");
        assert_eq!(live.dropped_calls, report.dropped_calls, "{name}");
        assert_eq!(dead.offered_calls, 0, "{name}");
        assert_eq!(dead.carried_calls, 0, "{name}");
    }
}

/// The fully dynamic run (churn + tide + failures + services + traffic)
/// differs from the static run — the differential must actually bite
/// when the features are live, otherwise the identities above would be
/// vacuous.
#[test]
fn live_dynamics_actually_change_the_run() {
    let ue_spec = spec(PolicyKind::Fuzzy);
    let live = DynamicsConfig {
        churn: Some(fuzzy_handover::sim::ChurnConfig {
            initial_ues: 8,
            horizon_steps: 10,
            mean_lifetime_steps: 12.0,
        }),
        tide: Some(TidalWave { period_steps: 8, amplitude: 0.6, phase_per_q: 0.25 }),
        failures: vec![CellOutage { cell: Axial::new(0, 0), from_step: 4, until_step: 9 }],
        services: Some(ServiceMix {
            voice_share: 0.5,
            voice: ServiceParams {
                mean_idle_steps: 4.0,
                mean_holding_steps: 3.0,
                extra_guard_channels: 0,
            },
            data: ServiceParams {
                mean_idle_steps: 6.0,
                mean_holding_steps: 9.0,
                extra_guard_channels: 1,
            },
        }),
    };
    let bare = FleetSimulation::new(noisy_config())
        .with_traffic(passive_traffic())
        .run(&ue_spec, 24, 91);
    let dynamic = FleetSimulation::new(noisy_config())
        .with_traffic(passive_traffic())
        .with_dynamics(live)
        .run(&ue_spec, 24, 91);
    assert_ne!(bare.summary, dynamic.summary, "churn truncates lifetimes");
    assert_ne!(bare.traffic, dynamic.traffic, "tide + services shift sessions");
    let report = dynamic.dynamics.as_ref().expect("dynamic report attached");
    assert!(report.departures > 0, "short lifetimes must retire some UEs");
}
