//! Differential harness for the cell-load traffic plane.
//!
//! The plane's core contract: without load feedback it is purely
//! *observational*. Attaching it to a fleet must leave every per-UE
//! outcome, the fleet summary and the serving-load histogram
//! **bitwise identical** to the traffic-free run — for every
//! [`PolicyKind`], every [`CandidateMode`], and every worker count /
//! chunk size — while the added [`TrafficReport`] itself must be
//! invariant to how the fleet was sharded.

use fuzzy_handover::sim::fleet::{
    CandidateMode, FleetMobility, FleetSimulation, HomogeneousFleet, PolicyKind,
};
use fuzzy_handover::sim::{SimConfig, TrafficConfig};
use fuzzy_handover::mobility::RandomWalk;
use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};

fn noisy_config() -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig { sigma_db: 4.0, decorrelation_km: 0.05 };
    cfg.noise = MeasurementNoise::new(1.0);
    cfg.sample_spacing_km = 0.2;
    cfg
}

fn spec(policy: PolicyKind) -> HomogeneousFleet {
    HomogeneousFleet {
        mobility: FleetMobility::RandomWalk(RandomWalk::paper_default(6)),
        policy,
        trajectory_seed: 17,
        cell_radius_km: 2.0,
    }
}

fn passive_traffic() -> TrafficConfig {
    TrafficConfig {
        channels_per_cell: 3,
        guard_channels: 1,
        mean_idle_steps: 5.0,
        mean_holding_steps: 4.0,
        load_feedback: false,
    }
}

const ALL_POLICIES: [PolicyKind; 6] = [
    PolicyKind::Fuzzy,
    PolicyKind::FuzzyLut,
    PolicyKind::Hysteresis { margin_db: 4.0 },
    PolicyKind::Threshold { threshold_dbm: -95.0 },
    PolicyKind::HysteresisThreshold { threshold_dbm: -90.0, margin_db: 3.0 },
    PolicyKind::LoadHysteresis { margin_db: 4.0, load_bias_db: 8.0 },
];

const MODES: [CandidateMode; 2] = [CandidateMode::All, CandidateMode::Nearest(7)];

/// The tentpole differential: traffic plane attached (passive) ≡ traffic
/// plane absent, bitwise, across the whole policy × candidate-mode ×
/// sharding grid.
#[test]
fn passive_traffic_is_bitwise_invisible_to_the_fleet() {
    for policy in ALL_POLICIES {
        for mode in MODES {
            for (workers, chunk) in [(1, 128), (3, 7)] {
                let ue_spec = spec(policy);
                let bare = FleetSimulation::new(noisy_config())
                    .with_candidate_mode(mode)
                    .with_workers(workers)
                    .with_chunk_size(chunk)
                    .run(&ue_spec, 24, 91);
                let traffic = FleetSimulation::new(noisy_config())
                    .with_candidate_mode(mode)
                    .with_workers(workers)
                    .with_chunk_size(chunk)
                    .with_traffic(passive_traffic())
                    .run(&ue_spec, 24, 91);
                let ctx = format!(
                    "policy={} mode={} workers={workers} chunk={chunk}",
                    policy.label(),
                    mode.label()
                );
                assert_eq!(bare.outcomes, traffic.outcomes, "{ctx}");
                assert_eq!(bare.summary, traffic.summary, "{ctx}");
                assert_eq!(bare.cell_load, traffic.cell_load, "{ctx}");
                assert_eq!(bare.traffic, None, "{ctx}");
                assert!(traffic.traffic.is_some(), "{ctx}");
                // The HD checksums are the bit-sensitive part: compare
                // their exact bit patterns too.
                for (b, t) in bare.outcomes.iter().zip(&traffic.outcomes) {
                    assert_eq!(b.hd_sum.to_bits(), t.hd_sum.to_bits(), "{ctx} ue={}", b.ue_id);
                }
            }
        }
    }
}

/// The traffic report itself is a pure function of `(spec, seed)`:
/// identical for every worker count and chunk size, under both candidate
/// modes and for every policy kind.
#[test]
fn traffic_report_is_sharding_invariant_for_every_policy() {
    for policy in ALL_POLICIES {
        for mode in MODES {
            let ue_spec = spec(policy);
            let reference = FleetSimulation::new(noisy_config())
                .with_candidate_mode(mode)
                .with_traffic(passive_traffic())
                .run(&ue_spec, 24, 13);
            let reference_report = reference.traffic.as_ref().expect("traffic ran");
            for (workers, chunk) in [(2, 1), (3, 7), (8, 64)] {
                let got = FleetSimulation::new(noisy_config())
                    .with_candidate_mode(mode)
                    .with_workers(workers)
                    .with_chunk_size(chunk)
                    .with_traffic(passive_traffic())
                    .run(&ue_spec, 24, 13);
                assert_eq!(
                    Some(reference_report),
                    got.traffic.as_ref(),
                    "policy={} mode={} workers={workers} chunk={chunk}",
                    policy.label(),
                    mode.label()
                );
            }
        }
    }
}

/// UE submission order must not leak into the traffic report either (the
/// replay sorts traces by UE id before walking the timeline).
#[test]
fn traffic_report_is_submission_order_invariant() {
    let ue_spec = spec(PolicyKind::Fuzzy);
    let fleet = FleetSimulation::new(noisy_config())
        .with_workers(2)
        .with_chunk_size(4)
        .with_traffic(passive_traffic());
    let forward: Vec<u64> = (0..30).collect();
    let mut shuffled = forward.clone();
    shuffled.reverse();
    shuffled.swap(3, 17);
    shuffled.rotate_left(11);
    assert_eq!(
        fleet.run_ids(&ue_spec, &forward, 4),
        fleet.run_ids(&ue_spec, &shuffled, 4)
    );
}

/// The feedback pass is also sharding-invariant: decisions read a frozen
/// field from pass 1, so pass 2 keeps the same per-UE purity.
#[test]
fn feedback_pass_is_sharding_invariant() {
    let congested = TrafficConfig {
        channels_per_cell: 2,
        guard_channels: 0,
        mean_idle_steps: 3.0,
        mean_holding_steps: 9.0,
        load_feedback: true,
    };
    let ue_spec = spec(PolicyKind::LoadHysteresis { margin_db: 4.0, load_bias_db: 10.0 });
    let reference = FleetSimulation::new(noisy_config())
        .with_traffic(congested)
        .run(&ue_spec, 30, 8);
    for (workers, chunk) in [(2, 1), (5, 16)] {
        let got = FleetSimulation::new(noisy_config())
            .with_traffic(congested)
            .with_workers(workers)
            .with_chunk_size(chunk)
            .run(&ue_spec, 30, 8);
        assert_eq!(reference, got, "workers={workers} chunk={chunk}");
    }
}
