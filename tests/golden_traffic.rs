//! Golden-file regression harness for the traffic plane.
//!
//! The 18 pre-traffic goldens (`tests/golden/`, `tests/golden_radio/`)
//! pin the traffic-free output byte for byte; this suite pins a small
//! *loaded* scenario-matrix run — traffic as a sweep axis, passive and
//! load-feedback levels, a load-aware policy next to its load-blind
//! twin — so the admission counters, Erlang loads and the feedback
//! pass can't drift silently either. Refresh after an *intentional*
//! change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_traffic
//! ```

use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::sim::fleet::{CandidateMode, FleetMobility, PolicyKind};
use fuzzy_handover::sim::matrix::ScenarioMatrix;
use fuzzy_handover::sim::{SimConfig, TrafficConfig};
use std::path::{Path, PathBuf};

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_traffic")
        .join("loaded_matrix.json")
}

fn loaded_matrix() -> ScenarioMatrix {
    let mut base = SimConfig::paper_default();
    base.shadowing = ShadowingConfig::moderate();
    base.noise = MeasurementNoise::new(1.0);
    ScenarioMatrix {
        base,
        ue_counts: vec![20],
        mobilities: vec![
            FleetMobility::RandomWalk(fuzzy_handover::mobility::RandomWalk::paper_default(6)),
            FleetMobility::GaussMarkov(fuzzy_handover::mobility::GaussMarkov::vehicular(6)),
        ],
        speeds_kmh: vec![30.0],
        policies: vec![
            PolicyKind::Fuzzy,
            PolicyKind::LoadHysteresis { margin_db: 4.0, load_bias_db: 10.0 },
        ],
        traffics: vec![
            Some(TrafficConfig {
                channels_per_cell: 2,
                guard_channels: 0,
                mean_idle_steps: 4.0,
                mean_holding_steps: 6.0,
                load_feedback: false,
            }),
            Some(TrafficConfig {
                channels_per_cell: 2,
                guard_channels: 1,
                mean_idle_steps: 4.0,
                mean_holding_steps: 6.0,
                load_feedback: true,
            }),
        ],
        dynamics: vec![None],
        base_seed: 0x10AD,
        workers: 3,
        matrix_workers: 2,
        candidate_mode: CandidateMode::All,
    }
}

#[test]
fn loaded_matrix_matches_golden() {
    let report = loaded_matrix().run().render();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create dir");
        std::fs::write(&path, serde_json::to_string(&report).expect("serialize") + "\n")
            .expect("write golden");
        println!("refreshed {}", path.display());
        return;
    }
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|err| {
        panic!(
            "missing golden file {} ({err}); generate with UPDATE_GOLDEN=1 cargo test --test golden_traffic",
            path.display()
        )
    });
    let golden: String = serde_json::from_str(&raw).expect("parse golden");
    for (n, (g, f)) in golden.lines().zip(report.lines()).enumerate() {
        assert!(
            g == f,
            "loaded-matrix report drifted at line {}:\n  golden: {g}\n  fresh : {f}\n\
             If the change is intended, refresh with UPDATE_GOLDEN=1 cargo test --test golden_traffic",
            n + 1
        );
    }
    assert_eq!(golden, report, "loaded-matrix report drifted (length)");
}
