//! Property tests pinning the compiled decision plane:
//!
//! * [`CompiledFis`] output is **bitwise identical** to the interpreted
//!   [`Fis`] engine for arbitrary in-range, edge-of-range and out-of-range
//!   CSSP/SSN/DMB inputs, for both FLC profiles and every defuzzifier —
//!   the contract that lets the fleet engine and the controllers swap the
//!   interpreted engine for the compiled plan without moving a single
//!   golden byte.
//! * The batch entry point equals the scalar path bit for bit.
//! * The paper LUT's absolute HD error stays under its documented bound.

use fuzzy_handover::core::flc::{
    build_flc_with, paper_flc_lut, paper_flc_plan, FlcProfile, CSSP_RANGE, DMB_RANGE, SSN_RANGE,
    PAPER_LUT_MAX_ABS_ERROR,
};
use fuzzy_handover::fuzzy::{CompiledFis, Defuzzifier, EvalScratch, Fis};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Every (profile, defuzzifier) variant of the paper FLC with its compiled
/// plan, built once per process.
fn variants() -> &'static Vec<(String, Fis, CompiledFis)> {
    static VARIANTS: OnceLock<Vec<(String, Fis, CompiledFis)>> = OnceLock::new();
    VARIANTS.get_or_init(|| {
        let mut out = Vec::new();
        for profile in [FlcProfile::Paper, FlcProfile::Product] {
            for defuzz in Defuzzifier::ALL {
                let fis = build_flc_with(profile, defuzz);
                let plan = fis.compile();
                out.push((format!("{profile:?}/{defuzz:?}"), fis, plan));
            }
        }
        out
    })
}

/// An axis value: mostly interior points, plus the exact universe edges
/// and clearly out-of-range values (which both engines clamp).
fn axis(range: (f64, f64)) -> impl Strategy<Value = f64> {
    let (min, max) = range;
    prop_oneof![
        min..=max,
        Just(min),
        Just(max),
        Just(min - 7.5),
        Just(max + 7.5),
    ]
}

fn flc_inputs() -> impl Strategy<Value = [f64; 3]> {
    (axis(CSSP_RANGE), axis(SSN_RANGE), axis(DMB_RANGE))
        .prop_map(|(cssp, ssn, dmb)| [cssp, ssn, dmb])
}

proptest! {
    #[test]
    fn compiled_equals_interpreted_bitwise(x in flc_inputs()) {
        let mut scratch = EvalScratch::new();
        for (label, fis, plan) in variants() {
            let interpreted = fis.evaluate(&x).unwrap()[0];
            let compiled = plan.evaluate_one(&x, &mut scratch).unwrap();
            prop_assert_eq!(
                interpreted.to_bits(),
                compiled.to_bits(),
                "{} drifted at {:?}: {} vs {}",
                label,
                x,
                interpreted,
                compiled
            );
        }
    }

    #[test]
    fn plain_evaluate_equals_traced_evaluate(x in flc_inputs()) {
        // The interpreted engine's scratch-buffer plain path must remain
        // bit-identical to the allocating traced path it replaced.
        for (label, fis, _) in variants() {
            let plain = fis.evaluate(&x).unwrap();
            let traced = fis.evaluate_with_trace(&x).unwrap().outputs;
            prop_assert_eq!(plain[0].to_bits(), traced[0].to_bits(), "{} at {:?}", label, x);
        }
    }

    #[test]
    fn batch_equals_scalar_bitwise(
        rows in (flc_inputs(), flc_inputs(), flc_inputs(), flc_inputs())
            .prop_map(|(a, b, c, d)| [a, b, c, d])
    ) {
        let plan = paper_flc_plan();
        let mut scratch = EvalScratch::new();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let mut batch = vec![0.0; rows.len()];
        plan.evaluate_batch(&flat, &mut batch, &mut scratch).unwrap();
        for (row, &hd) in rows.iter().zip(&batch) {
            let scalar = plan.evaluate_one(row, &mut scratch).unwrap();
            prop_assert_eq!(scalar.to_bits(), hd.to_bits());
        }
    }

    #[test]
    fn paper_lut_error_within_documented_bound(x in flc_inputs()) {
        let plan = paper_flc_plan();
        let lut = paper_flc_lut();
        let mut scratch = EvalScratch::new();
        let exact = plan.evaluate_one(&x, &mut scratch).unwrap();
        let approx = lut.evaluate(x);
        prop_assert!(
            (exact - approx).abs() <= PAPER_LUT_MAX_ABS_ERROR,
            "LUT error {} at {:?} exceeds the documented bound {}",
            (exact - approx).abs(),
            x,
            PAPER_LUT_MAX_ABS_ERROR
        );
    }
}

/// Deterministic off-node sweep pinning the LUT bound (denser than the
/// proptest samples, aligned *between* the 33-node grid cells).
#[test]
fn paper_lut_dense_offgrid_sweep_within_bound() {
    let plan = paper_flc_plan();
    let lut = paper_flc_lut();
    let worst = lut
        .max_abs_error(&plan, 48)
        .expect("the paper FLC fires on every probe");
    assert!(
        worst <= PAPER_LUT_MAX_ABS_ERROR,
        "48³ off-grid sweep found error {worst} above the documented bound {PAPER_LUT_MAX_ABS_ERROR}"
    );
    assert!(worst > 0.0, "trilinear interpolation of a kinked surface is not exact");
}
