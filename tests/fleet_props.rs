//! Property tests for the fleet engine's determinism contracts:
//!
//! 1. a 1-UE fleet is bit-identical to `Simulation::run` for arbitrary
//!    seeds and configurations;
//! 2. fleet results are invariant under worker count and chunk size;
//! 3. fleet results are invariant under UE submission order;
//! 4. the neighbour-pruned candidate mode with `k ≥ layout.len()` is
//!    bit-identical to the dense mode, and below that bound it is itself
//!    invariant under worker count and chunk size;
//! 5. the scenario matrix reports identical cells, in identical sweep
//!    order, for every `matrix_workers` value;
//! 6. a `run_partial` snapshot at an arbitrary step, taken and resumed
//!    under arbitrary worker/chunk shapes, reproduces the uninterrupted
//!    run bit for bit;
//! 7. the streaming aggregation path reproduces the dense run's summary
//!    and load histogram bit for bit;
//! 8. `EdgeSet` with an infinite margin is bit-identical to `Nearest`
//!    with the same `k`, and finite margins stay shard-invariant.

use fuzzy_handover::core::HandoverPolicy;
use fuzzy_handover::mobility::{MobilityModel, RandomWalk};
use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::sim::fleet::{
    CandidateMode, FleetMobility, FleetSimulation, HomogeneousFleet, PolicyKind, SingleUe,
    UeOutcome,
};
use fuzzy_handover::sim::matrix::ScenarioMatrix;
use fuzzy_handover::sim::{SimConfig, Simulation};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn config(shadow_sigma: f64, noise_sigma: f64, spacing: f64, speed: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig { sigma_db: shadow_sigma, decorrelation_km: 0.05 };
    cfg.noise = MeasurementNoise::new(noise_sigma);
    cfg.sample_spacing_km = spacing;
    cfg.speed_kmh = speed;
    cfg
}

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Fuzzy),
        Just(PolicyKind::FuzzyLut),
        Just(PolicyKind::Hysteresis { margin_db: 2.0 }),
        Just(PolicyKind::Threshold { threshold_dbm: -95.0 }),
        Just(PolicyKind::HysteresisThreshold { threshold_dbm: -90.0, margin_db: 3.0 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Contract 1: with UE 0 seeded exactly like a single run, the
    /// reduced fleet outcome equals the reduced `Simulation::run` result
    /// field by field — including the bit pattern of the `f64` HD
    /// checksum.
    #[test]
    fn one_ue_fleet_equals_single_run(
        seed in 0u64..u64::MAX,
        traj_seed in 0u64..u64::MAX,
        shadow_sigma in 0.0f64..8.0,
        noise_sigma in 0.0f64..4.0,
        spacing in 0.1f64..0.8,
        speed in 0.0f64..80.0,
        policy in policy_strategy(),
    ) {
        let cfg = config(shadow_sigma, noise_sigma, spacing, speed);
        let walk = RandomWalk::paper_default(6)
            .generate(&mut StdRng::seed_from_u64(traj_seed));
        let spec = SingleUe {
            trajectory: walk.clone(),
            make_policy: move || -> Box<dyn HandoverPolicy + Send> { policy.build(2.0) },
        };

        let fleet_outcome = FleetSimulation::new(cfg.clone()).run(&spec, 1, seed);
        let mut reference_policy = policy.build(2.0);
        let reference = Simulation::new(cfg.clone())
            .run(&walk, reference_policy.as_mut(), seed);
        let expected =
            UeOutcome::from_sim_result(0, &reference, cfg.pingpong_window_steps);

        prop_assert_eq!(fleet_outcome.outcomes.len(), 1);
        prop_assert_eq!(fleet_outcome.outcomes[0], expected);
        prop_assert_eq!(
            fleet_outcome.outcomes[0].hd_sum.to_bits(),
            expected.hd_sum.to_bits()
        );
        prop_assert_eq!(
            fleet_outcome.outcomes[0].travelled_km.to_bits(),
            expected.travelled_km.to_bits()
        );
    }

    /// Contract 2: worker count and chunk size never change the result.
    #[test]
    fn fleet_invariant_under_workers_and_chunks(
        seed in 0u64..u64::MAX,
        n_ues in 1u64..32,
        workers in 1usize..9,
        chunk in 1usize..65,
        shadow_sigma in 0.0f64..6.0,
        policy in policy_strategy(),
    ) {
        let cfg = config(shadow_sigma, 1.0, 0.3, 0.0);
        let spec = HomogeneousFleet {
            mobility: FleetMobility::RandomWalk(RandomWalk::paper_default(5)),
            policy,
            trajectory_seed: seed ^ 0xABCD,
            cell_radius_km: 2.0,
        };
        let reference = FleetSimulation::new(cfg.clone()).run(&spec, n_ues, seed);
        let sharded = FleetSimulation::new(cfg)
            .with_workers(workers)
            .with_chunk_size(chunk)
            .run(&spec, n_ues, seed);
        prop_assert_eq!(reference, sharded);
    }

    /// Contract 3: any permutation of the UE id list produces the same
    /// `FleetResult`.
    #[test]
    fn fleet_invariant_under_submission_order(
        seed in 0u64..u64::MAX,
        n_ues in 2u64..24,
        rotation in 0usize..24,
        swap_a in 0usize..24,
        swap_b in 0usize..24,
    ) {
        let cfg = config(3.0, 1.0, 0.3, 0.0);
        let spec = HomogeneousFleet {
            mobility: FleetMobility::RandomWalk(RandomWalk::paper_default(5)),
            policy: PolicyKind::Fuzzy,
            trajectory_seed: seed.wrapping_add(17),
            cell_radius_km: 2.0,
        };
        let fleet = FleetSimulation::new(cfg).with_workers(3).with_chunk_size(4);

        let forward: Vec<u64> = (0..n_ues).collect();
        let mut permuted = forward.clone();
        let len = permuted.len();
        permuted.rotate_left(rotation % len);
        let (a, b) = (swap_a % len, swap_b % len);
        permuted.swap(a, b);
        permuted.reverse();

        prop_assert_eq!(
            fleet.run_ids(&spec, &forward, seed),
            fleet.run_ids(&spec, &permuted, seed)
        );
    }

    /// Contract 4: `Nearest(k)` with `k` covering the layout takes the
    /// dense path (bit-identical to `All`); a genuinely pruned `k` is
    /// still invariant under sharding.
    #[test]
    fn pruned_mode_equivalence_and_sharding_invariance(
        seed in 0u64..u64::MAX,
        n_ues in 1u64..20,
        k_extra in 0usize..4,
        pruned_k in 7usize..12,
        workers in 1usize..6,
        chunk in 1usize..33,
        policy in policy_strategy(),
    ) {
        let cfg = config(4.0, 1.0, 0.3, 0.0);
        let n_cells = cfg.layout.len();
        let spec = HomogeneousFleet {
            mobility: FleetMobility::RandomWalk(RandomWalk::paper_default(5)),
            policy,
            trajectory_seed: seed ^ 0x5EED,
            cell_radius_km: 2.0,
        };
        // k ≥ layout.len() ⇒ the dense path, bit for bit.
        let dense = FleetSimulation::new(cfg.clone()).run(&spec, n_ues, seed);
        let covering = FleetSimulation::new(cfg.clone())
            .with_candidate_mode(CandidateMode::Nearest(n_cells + k_extra))
            .run(&spec, n_ues, seed);
        prop_assert_eq!(&dense, &covering);
        // A real pruned k: deterministic and shard-invariant.
        let pruned_ref = FleetSimulation::new(cfg.clone())
            .with_candidate_mode(CandidateMode::Nearest(pruned_k))
            .run(&spec, n_ues, seed);
        let pruned_sharded = FleetSimulation::new(cfg)
            .with_candidate_mode(CandidateMode::Nearest(pruned_k))
            .with_workers(workers)
            .with_chunk_size(chunk)
            .run(&spec, n_ues, seed);
        prop_assert_eq!(&pruned_ref, &pruned_sharded);
        // Every UE still steps its full walk under pruning.
        prop_assert_eq!(pruned_ref.summary.steps, dense.summary.steps);
    }

    /// Contract 5: the scenario-matrix report (cells *and* their sweep
    /// order) is independent of `matrix_workers`.
    #[test]
    fn matrix_report_order_is_invariant_under_matrix_workers(
        seed in 0u64..u64::MAX,
        matrix_workers in 2usize..9,
        candidate_mode in prop_oneof![
            Just(CandidateMode::All),
            Just(CandidateMode::Nearest(7)),
        ],
    ) {
        let mut base = SimConfig::paper_default();
        base.shadowing = ShadowingConfig { sigma_db: 3.0, decorrelation_km: 0.05 };
        base.noise = MeasurementNoise::new(1.0);
        let matrix = ScenarioMatrix {
            base,
            ue_counts: vec![4],
            mobilities: FleetMobility::standard_four(4),
            speeds_kmh: vec![0.0, 40.0],
            policies: vec![PolicyKind::Fuzzy, PolicyKind::Hysteresis { margin_db: 4.0 }],
            traffics: vec![None],
            dynamics: vec![None],
            base_seed: seed,
            workers: 1,
            matrix_workers: 1,
            candidate_mode,
        };
        let sequential = matrix.run();
        let parallel = ScenarioMatrix { matrix_workers, ..matrix }.run();
        prop_assert_eq!(&sequential, &parallel);
        let labels: Vec<String> = sequential.cells.iter().map(|c| c.label()).collect();
        prop_assert_eq!(labels.len(), 16);
        prop_assert!(labels[0].contains("random-walk"));
        prop_assert!(labels[0].contains("fuzzy"));
        prop_assert!(labels[1].contains("hysteresis"));
    }

    /// Contract 6: freeze at an arbitrary step under one worker/chunk
    /// shape, resume under another — the reassembled result is
    /// bit-identical to the uninterrupted run.
    #[test]
    fn snapshot_resume_is_bit_identical(
        seed in 0u64..u64::MAX,
        n_ues in 1u64..20,
        snap_step in 0u64..48,
        workers_a in 1usize..6,
        chunk_a in 1usize..33,
        workers_b in 1usize..6,
        chunk_b in 1usize..33,
        policy in policy_strategy(),
    ) {
        let cfg = config(4.0, 1.0, 0.3, 0.0);
        let spec = HomogeneousFleet {
            mobility: FleetMobility::RandomWalk(RandomWalk::paper_default(5)),
            policy,
            trajectory_seed: seed ^ 0xCAFE,
            cell_radius_km: 2.0,
        };
        let ids: Vec<u64> = (0..n_ues).collect();
        let full = FleetSimulation::new(cfg.clone()).run_ids(&spec, &ids, seed);
        let cp = FleetSimulation::new(cfg.clone())
            .with_workers(workers_a)
            .with_chunk_size(chunk_a)
            .run_partial(&spec, &ids, seed, snap_step)
            .unwrap();
        let resumed = FleetSimulation::new(cfg)
            .with_workers(workers_b)
            .with_chunk_size(chunk_b)
            .resume(&spec, &cp)
            .unwrap();
        prop_assert_eq!(&full, &resumed);
        for (a, b) in full.outcomes.iter().zip(&resumed.outcomes) {
            prop_assert_eq!(a.hd_sum.to_bits(), b.hd_sum.to_bits());
            prop_assert_eq!(a.travelled_km.to_bits(), b.travelled_km.to_bits());
        }
    }

    /// Contract 7: the streaming aggregator — which never materialises
    /// the per-UE outcome vector — reproduces the dense run's summary
    /// and serving-load histogram bit for bit under any sharding.
    #[test]
    fn streamed_summary_equals_dense_run(
        seed in 0u64..u64::MAX,
        n_ues in 1u64..32,
        workers in 1usize..6,
        chunk in 1usize..33,
        policy in policy_strategy(),
    ) {
        let cfg = config(3.0, 1.0, 0.3, 0.0);
        let spec = HomogeneousFleet {
            mobility: FleetMobility::RandomWalk(RandomWalk::paper_default(5)),
            policy,
            trajectory_seed: seed ^ 0xF00D,
            cell_radius_km: 2.0,
        };
        let dense = FleetSimulation::new(cfg.clone()).run(&spec, n_ues, seed);
        let streamed = FleetSimulation::new(cfg)
            .with_workers(workers)
            .with_chunk_size(chunk)
            .run_streamed(&spec, n_ues, seed)
            .unwrap();
        prop_assert_eq!(&dense.summary, &streamed.summary);
        prop_assert_eq!(
            dense.summary.hd_sum.to_bits(),
            streamed.summary.hd_sum.to_bits()
        );
        prop_assert_eq!(&dense.cell_load, &streamed.cell_load);
    }

    /// Contract 8: an infinite edge margin disables the interior fast
    /// path, so `EdgeSet { k, ∞ }` equals `Nearest(k)` bit for bit; a
    /// finite margin remains invariant under sharding.
    #[test]
    fn edge_set_refines_nearest(
        seed in 0u64..u64::MAX,
        n_ues in 1u64..16,
        k in 7usize..12,
        margin_db in 1.0f64..10.0,
        workers in 1usize..6,
        chunk in 1usize..33,
        policy in policy_strategy(),
    ) {
        let cfg = config(4.0, 1.0, 0.3, 0.0);
        let spec = HomogeneousFleet {
            mobility: FleetMobility::RandomWalk(RandomWalk::paper_default(5)),
            policy,
            trajectory_seed: seed ^ 0xED6E,
            cell_radius_km: 2.0,
        };
        let nearest = FleetSimulation::new(cfg.clone())
            .with_candidate_mode(CandidateMode::Nearest(k))
            .run(&spec, n_ues, seed);
        let unbounded = FleetSimulation::new(cfg.clone())
            .with_candidate_mode(CandidateMode::EdgeSet { k, margin_db: f64::INFINITY })
            .run(&spec, n_ues, seed);
        prop_assert_eq!(&nearest, &unbounded);
        let finite_ref = FleetSimulation::new(cfg.clone())
            .with_candidate_mode(CandidateMode::EdgeSet { k, margin_db })
            .run(&spec, n_ues, seed);
        let finite_sharded = FleetSimulation::new(cfg)
            .with_candidate_mode(CandidateMode::EdgeSet { k, margin_db })
            .with_workers(workers)
            .with_chunk_size(chunk)
            .run(&spec, n_ues, seed);
        prop_assert_eq!(&finite_ref, &finite_sharded);
        prop_assert_eq!(finite_ref.summary.steps, nearest.summary.steps);
    }
}
