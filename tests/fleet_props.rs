//! Property tests for the fleet engine's determinism contracts:
//!
//! 1. a 1-UE fleet is bit-identical to `Simulation::run` for arbitrary
//!    seeds and configurations;
//! 2. fleet results are invariant under worker count and chunk size;
//! 3. fleet results are invariant under UE submission order.

use fuzzy_handover::core::HandoverPolicy;
use fuzzy_handover::mobility::{MobilityModel, RandomWalk};
use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::sim::fleet::{
    FleetMobility, FleetSimulation, HomogeneousFleet, PolicyKind, SingleUe, UeOutcome,
};
use fuzzy_handover::sim::{SimConfig, Simulation};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn config(shadow_sigma: f64, noise_sigma: f64, spacing: f64, speed: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig { sigma_db: shadow_sigma, decorrelation_km: 0.05 };
    cfg.noise = MeasurementNoise::new(noise_sigma);
    cfg.sample_spacing_km = spacing;
    cfg.speed_kmh = speed;
    cfg
}

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Fuzzy),
        Just(PolicyKind::FuzzyLut),
        Just(PolicyKind::Hysteresis { margin_db: 2.0 }),
        Just(PolicyKind::Threshold { threshold_dbm: -95.0 }),
        Just(PolicyKind::HysteresisThreshold { threshold_dbm: -90.0, margin_db: 3.0 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Contract 1: with UE 0 seeded exactly like a single run, the
    /// reduced fleet outcome equals the reduced `Simulation::run` result
    /// field by field — including the bit pattern of the `f64` HD
    /// checksum.
    #[test]
    fn one_ue_fleet_equals_single_run(
        seed in 0u64..u64::MAX,
        traj_seed in 0u64..u64::MAX,
        shadow_sigma in 0.0f64..8.0,
        noise_sigma in 0.0f64..4.0,
        spacing in 0.1f64..0.8,
        speed in 0.0f64..80.0,
        policy in policy_strategy(),
    ) {
        let cfg = config(shadow_sigma, noise_sigma, spacing, speed);
        let walk = RandomWalk::paper_default(6)
            .generate(&mut StdRng::seed_from_u64(traj_seed));
        let spec = SingleUe {
            trajectory: walk.clone(),
            make_policy: move || -> Box<dyn HandoverPolicy + Send> { policy.build(2.0) },
        };

        let fleet_outcome = FleetSimulation::new(cfg.clone()).run(&spec, 1, seed);
        let mut reference_policy = policy.build(2.0);
        let reference = Simulation::new(cfg.clone())
            .run(&walk, reference_policy.as_mut(), seed);
        let expected =
            UeOutcome::from_sim_result(0, &reference, cfg.pingpong_window_steps);

        prop_assert_eq!(fleet_outcome.outcomes.len(), 1);
        prop_assert_eq!(fleet_outcome.outcomes[0], expected);
        prop_assert_eq!(
            fleet_outcome.outcomes[0].hd_sum.to_bits(),
            expected.hd_sum.to_bits()
        );
        prop_assert_eq!(
            fleet_outcome.outcomes[0].travelled_km.to_bits(),
            expected.travelled_km.to_bits()
        );
    }

    /// Contract 2: worker count and chunk size never change the result.
    #[test]
    fn fleet_invariant_under_workers_and_chunks(
        seed in 0u64..u64::MAX,
        n_ues in 1u64..32,
        workers in 1usize..9,
        chunk in 1usize..65,
        shadow_sigma in 0.0f64..6.0,
        policy in policy_strategy(),
    ) {
        let cfg = config(shadow_sigma, 1.0, 0.3, 0.0);
        let spec = HomogeneousFleet {
            mobility: FleetMobility::RandomWalk(RandomWalk::paper_default(5)),
            policy,
            trajectory_seed: seed ^ 0xABCD,
            cell_radius_km: 2.0,
        };
        let reference = FleetSimulation::new(cfg.clone()).run(&spec, n_ues, seed);
        let sharded = FleetSimulation::new(cfg)
            .with_workers(workers)
            .with_chunk_size(chunk)
            .run(&spec, n_ues, seed);
        prop_assert_eq!(reference, sharded);
    }

    /// Contract 3: any permutation of the UE id list produces the same
    /// `FleetResult`.
    #[test]
    fn fleet_invariant_under_submission_order(
        seed in 0u64..u64::MAX,
        n_ues in 2u64..24,
        rotation in 0usize..24,
        swap_a in 0usize..24,
        swap_b in 0usize..24,
    ) {
        let cfg = config(3.0, 1.0, 0.3, 0.0);
        let spec = HomogeneousFleet {
            mobility: FleetMobility::RandomWalk(RandomWalk::paper_default(5)),
            policy: PolicyKind::Fuzzy,
            trajectory_seed: seed.wrapping_add(17),
            cell_radius_km: 2.0,
        };
        let fleet = FleetSimulation::new(cfg).with_workers(3).with_chunk_size(4);

        let forward: Vec<u64> = (0..n_ues).collect();
        let mut permuted = forward.clone();
        let len = permuted.len();
        permuted.rotate_left(rotation % len);
        let (a, b) = (swap_a % len, swap_b % len);
        permuted.swap(a, b);
        permuted.reverse();

        prop_assert_eq!(
            fleet.run_ids(&spec, &forward, seed),
            fleet.run_ids(&spec, &permuted, seed)
        );
    }
}
