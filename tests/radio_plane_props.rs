//! Property tests pinning the compiled measurement plane's bit-identity
//! contracts (the radio analogue of `tests/compiled_fis_props.rs`):
//!
//! 1. `ShadowingLane::advance_all` is bit-identical to advancing a
//!    `Vec<ShadowingProcess>` in a loop, across σ/decorrelation/step
//!    sweeps (including σ = 0 and the fresh-initialisation step);
//! 2. `ShadowingLane::advance_subset` (the pruned engine's lazy update)
//!    is slot-for-slot bit-identical to scalar processes advanced by the
//!    same accumulated distances;
//! 3. `MeasurementNoise::apply_slice` is bit-identical to the scalar
//!    `apply` loop;
//! 4. `BsRadio::compiled()` reproduces the scalar link budget bit for
//!    bit over every path-loss model family;
//! 5. the block-loop batch kernels `received_power_dbm_batch` /
//!    `received_power_dbm_batch_f32` equal the scalar budget per
//!    element (the f32 lane through a single `as f32` rounding);
//! 6. the batched Rayleigh/Rician samplers (`sample_db_fill`) are the
//!    scalar sampler loops, draw for draw.

use fuzzy_handover::geometry::Vec2;
use fuzzy_handover::radio::{
    BsRadio, MeasurementNoise, PathLoss, RayleighFading, RicianFading, ShadowingConfig,
    ShadowingLane, ShadowingProcess,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn shadowing_strategy() -> impl Strategy<Value = ShadowingConfig> {
    (prop_oneof![Just(0.0f64), 0.1f64..12.0], 0.005f64..2.0).prop_map(
        |(sigma_db, decorrelation_km)| ShadowingConfig { sigma_db, decorrelation_km },
    )
}

fn pathloss_strategy() -> impl Strategy<Value = PathLoss> {
    prop_oneof![
        Just(PathLoss::paper_calibrated()),
        Just(PathLoss::paper_field()),
        (100.0f64..2000.0).prop_map(|freq_mhz| PathLoss::FreeSpace { freq_mhz }),
        (10.0f64..100.0, 1.0f64..3.0)
            .prop_map(|(h_bs_m, h_ms_m)| PathLoss::TwoRay { h_bs_m, h_ms_m }),
        (900.0f64..2000.0, 30.0f64..100.0, 1.0f64..3.0).prop_map(
            |(freq_mhz, h_bs_m, h_ms_m)| PathLoss::OkumuraHata { freq_mhz, h_bs_m, h_ms_m }
        ),
        (80.0f64..160.0, 2.0f64..5.0).prop_map(|(pl0_db, exponent)| {
            PathLoss::LogDistance { pl0_db, exponent, d0_km: 1.0 }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Contract 1: the lane is the process loop, bit for bit.
    #[test]
    fn lane_is_bit_identical_to_process_loop(
        config in shadowing_strategy(),
        seed in 0u64..u64::MAX,
        walk_seed in 0u64..u64::MAX,
        n in 1usize..40,
        steps in 1usize..60,
    ) {
        let mut lane = ShadowingLane::new(config, n);
        let mut processes: Vec<ShadowingProcess> =
            (0..n).map(|_| ShadowingProcess::new(config)).collect();
        let mut lane_rng = StdRng::seed_from_u64(seed);
        let mut loop_rng = StdRng::seed_from_u64(seed);
        let mut walk_rng = StdRng::seed_from_u64(walk_seed);
        for step in 0..steps {
            let delta: f64 = walk_rng.gen::<f64>() * 1.5;
            lane.advance_all(delta, &mut lane_rng);
            for p in &mut processes {
                p.advance(delta, &mut loop_rng);
            }
            for (slot, p) in processes.iter().enumerate() {
                prop_assert_eq!(
                    lane.values()[slot].to_bits(),
                    p.current_db().to_bits(),
                    "slot {} step {}",
                    slot,
                    step
                );
            }
        }
    }

    /// Contract 2: the lazy subset update equals scalar processes fed the
    /// same accumulated distances (the Gudmundson-composition path the
    /// pruned candidate mode takes).
    #[test]
    fn subset_update_is_bit_identical_to_lazy_scalar_processes(
        config in shadowing_strategy(),
        seed in 0u64..u64::MAX,
        walk_seed in 0u64..u64::MAX,
        n in 2usize..24,
        steps in 1usize..40,
    ) {
        let mut lane = ShadowingLane::new(config, n);
        let mut processes: Vec<ShadowingProcess> =
            (0..n).map(|_| ShadowingProcess::new(config)).collect();
        let mut lane_rng = StdRng::seed_from_u64(seed);
        let mut loop_rng = StdRng::seed_from_u64(seed);
        let mut walk_rng = StdRng::seed_from_u64(walk_seed);
        let mut last_lane = vec![0.0f64; n];
        let mut last_ref = vec![0.0f64; n];
        let mut now = 0.0;
        for step in 0..steps {
            now += walk_rng.gen::<f64>() * 0.9;
            // A pseudo-random non-empty subset; the engine's draw order
            // is the subset order, and both sides use the same one.
            let mask: u64 = walk_rng.gen();
            let subset: Vec<u32> = (0..n as u32)
                .filter(|s| mask & (1 << (s % 63)) != 0)
                .collect();
            let subset = if subset.is_empty() { vec![0u32] } else { subset };
            lane.advance_subset(&subset, now, &mut last_lane, &mut lane_rng);
            for &s in &subset {
                let k = s as usize;
                processes[k].advance(now - last_ref[k], &mut loop_rng);
                last_ref[k] = now;
            }
            for (slot, p) in processes.iter().enumerate() {
                prop_assert_eq!(
                    lane.values()[slot].to_bits(),
                    p.current_db().to_bits(),
                    "slot {} step {}",
                    slot,
                    step
                );
            }
            for k in 0..n {
                prop_assert_eq!(last_lane[k].to_bits(), last_ref[k].to_bits());
            }
        }
    }

    /// Contract 3: the batched noise sampler is the scalar loop.
    #[test]
    fn noise_slice_is_bit_identical_to_scalar_loop(
        sigma in prop_oneof![Just(0.0f64), 0.01f64..8.0],
        seed in 0u64..u64::MAX,
        clean_seed in 0u64..u64::MAX,
        len in 1usize..80,
    ) {
        let mut clean_rng = StdRng::seed_from_u64(clean_seed);
        let clean: Vec<f64> =
            (0..len).map(|_| -150.0 + 110.0 * clean_rng.gen::<f64>()).collect();
        let noise = MeasurementNoise::new(sigma);
        let mut batch = clean.clone();
        noise.apply_slice(&mut batch, &mut StdRng::seed_from_u64(seed));
        let mut rng = StdRng::seed_from_u64(seed);
        for (b, &c) in batch.iter().zip(&clean) {
            prop_assert_eq!(b.to_bits(), noise.apply(c, &mut rng).to_bits());
        }
    }

    /// Contract 4: the compiled link budget is the scalar one, for every
    /// path-loss family, TX power and geometry.
    #[test]
    fn compiled_budget_is_bit_identical_to_scalar(
        path_loss in pathloss_strategy(),
        tx_power_w in 0.5f64..50.0,
        bs_x in -5.0f64..5.0,
        bs_y in -5.0f64..5.0,
        point_seed in 0u64..u64::MAX,
        n_points in 1usize..50,
    ) {
        let radio = BsRadio { tx_power_w, path_loss, ..BsRadio::paper_default() };
        let compiled = radio.compiled();
        let bs_pos = Vec2::new(bs_x, bs_y);
        let mut rng = StdRng::seed_from_u64(point_seed);
        for _ in 0..n_points {
            let ms = Vec2::new(
                -9.0 + 18.0 * rng.gen::<f64>(),
                -9.0 + 18.0 * rng.gen::<f64>(),
            );
            prop_assert_eq!(
                radio.received_power_dbm(bs_pos, ms).to_bits(),
                compiled.received_power_dbm(bs_pos, ms).to_bits(),
                "at {:?}",
                ms
            );
        }
    }

    /// Contract 5: the fixed-width block loops (interior blocks + tail)
    /// are the scalar budget per element, across block-boundary lengths.
    #[test]
    fn batch_budget_is_bit_identical_to_scalar(
        path_loss in pathloss_strategy(),
        tx_power_w in 0.5f64..50.0,
        point_seed in 0u64..u64::MAX,
        n_points in 1usize..40,
    ) {
        let radio = BsRadio { tx_power_w, path_loss, ..BsRadio::paper_default() };
        let compiled = radio.compiled();
        let bs_pos = Vec2::new(0.4, -0.9);
        let mut rng = StdRng::seed_from_u64(point_seed);
        let positions: Vec<Vec2> = (0..n_points)
            .map(|_| Vec2::new(-9.0 + 18.0 * rng.gen::<f64>(), -9.0 + 18.0 * rng.gen::<f64>()))
            .collect();
        let mut batch = vec![0.0f64; n_points];
        compiled.received_power_dbm_batch(bs_pos, &positions, &mut batch);
        let mut batch_f32 = vec![0.0f32; n_points];
        compiled.received_power_dbm_batch_f32(bs_pos, &positions, &mut batch_f32);
        for (k, &ms) in positions.iter().enumerate() {
            let scalar = compiled.received_power_dbm(bs_pos, ms);
            prop_assert_eq!(batch[k].to_bits(), scalar.to_bits(), "slot {}", k);
            prop_assert_eq!(batch_f32[k].to_bits(), (scalar as f32).to_bits(), "slot {}", k);
        }
    }

    /// Contract 6: the batched fading samplers are the scalar loops.
    #[test]
    fn fading_fills_are_bit_identical_to_scalar_loops(
        seed in 0u64..u64::MAX,
        k_factor in 0.1f64..20.0,
        len in 0usize..70,
    ) {
        let rayleigh = RayleighFading;
        let mut batch = vec![0.0f64; len];
        rayleigh.sample_db_fill(&mut batch, &mut StdRng::seed_from_u64(seed));
        let mut rng = StdRng::seed_from_u64(seed);
        for (k, &v) in batch.iter().enumerate() {
            prop_assert_eq!(v.to_bits(), rayleigh.sample_db(&mut rng).to_bits(), "slot {}", k);
        }

        let rician = RicianFading::new(k_factor);
        let mut batch = vec![0.0f64; len];
        rician.sample_db_fill(&mut batch, &mut StdRng::seed_from_u64(seed));
        let mut rng = StdRng::seed_from_u64(seed);
        for (k, &v) in batch.iter().enumerate() {
            prop_assert_eq!(v.to_bits(), rician.sample_db(&mut rng).to_bits(), "slot {}", k);
        }
    }
}
