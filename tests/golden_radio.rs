//! Golden-file regression harness for the neighbour-pruned measurement
//! plane (`CandidateMode::Nearest`).
//!
//! The 17 paper-experiment goldens (`tests/golden/`) pin the dense
//! `CandidateMode::All` path byte for byte; the pruned mode draws a
//! different (deliberately smaller) random stream, so it gets its own
//! pinned report here: a small scenario-matrix sweep run entirely under
//! `Nearest(7)`. Refresh after an *intentional* change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_radio
//! ```

use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::sim::fleet::{CandidateMode, FleetMobility, PolicyKind};
use fuzzy_handover::sim::matrix::ScenarioMatrix;
use fuzzy_handover::sim::SimConfig;
use std::path::{Path, PathBuf};

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_radio")
        .join("pruned_matrix.json")
}

fn pruned_matrix() -> ScenarioMatrix {
    let mut base = SimConfig::paper_default();
    base.shadowing = ShadowingConfig::moderate();
    base.noise = MeasurementNoise::new(1.0);
    ScenarioMatrix {
        base,
        ue_counts: vec![30],
        mobilities: FleetMobility::standard_four(6),
        speeds_kmh: vec![0.0, 30.0],
        policies: vec![PolicyKind::Fuzzy, PolicyKind::Hysteresis { margin_db: 4.0 }],
        traffics: vec![None],
        dynamics: vec![None],
        base_seed: 0xF1EE7,
        workers: 3,
        matrix_workers: 2,
        candidate_mode: CandidateMode::Nearest(7),
    }
}

#[test]
fn pruned_matrix_matches_golden() {
    let report = pruned_matrix().run().render();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create dir");
        std::fs::write(&path, serde_json::to_string(&report).expect("serialize") + "\n")
            .expect("write golden");
        println!("refreshed {}", path.display());
        return;
    }
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|err| {
        panic!(
            "missing golden file {} ({err}); generate with UPDATE_GOLDEN=1 cargo test --test golden_radio",
            path.display()
        )
    });
    let golden: String = serde_json::from_str(&raw).expect("parse golden");
    for (n, (g, f)) in golden.lines().zip(report.lines()).enumerate() {
        assert!(
            g == f,
            "pruned-matrix report drifted at line {}:\n  golden: {g}\n  fresh : {f}\n\
             If the change is intended, refresh with UPDATE_GOLDEN=1 cargo test --test golden_radio",
            n + 1
        );
    }
    assert_eq!(golden, report, "pruned-matrix report drifted (length)");
}
