//! Counting-allocator proof of the compiled measurement plane's
//! acceptance criterion (the radio analogue of `tests/zero_alloc.rs`):
//! once its state is sized at construction, a measurement step through
//! the plane — batched link budget, shadowing-lane update (dense and
//! pruned), batched noise, neighbour-index query — performs **zero heap
//! allocations**.
//!
//! The whole measurement lives in a single `#[test]` (and its own test
//! binary) so no concurrent test thread can perturb the global
//! allocation counter. The libtest harness's *main* thread still prints
//! its one-shot per-test progress line concurrently with the test body,
//! so the window is measured as the minimum over a few runs — see the
//! sibling `tests/zero_alloc.rs` for the full story; the minimum is
//! sound because interference only ever adds allocations.

use fuzzy_handover::geometry::{CellLayout, NeighborIndex, Vec2};
use fuzzy_handover::radio::{
    standard_normal_fill, BsRadio, MeasurementNoise, RayleighFading, RicianFading,
    ShadowingConfig, ShadowingLane,
};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// `System`, with every allocation event counted.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn measurement_plane_allocation_budget() {
    // One paper layout's worth of plane state, sized up front.
    let layout = CellLayout::hexagonal(2.0, 2);
    let n = layout.len();
    let bs_positions: Vec<Vec2> = layout.cells().iter().map(|&c| layout.bs_position(c)).collect();
    let compiled = BsRadio::paper_default().compiled();
    let index = NeighborIndex::new(&layout);
    let noise = MeasurementNoise::new(1.0);
    let mut lane = ShadowingLane::new(ShadowingConfig::moderate(), n);
    let mut rng = StdRng::seed_from_u64(42);

    const CHUNK: usize = 128;
    let positions: Vec<Vec2> =
        (0..CHUNK).map(|k| Vec2::from_polar(0.1 + 0.03 * k as f64, 0.7 * k as f64)).collect();
    let mut rss_matrix = vec![0.0f64; n * CHUNK];
    let mut rss_matrix_f32 = vec![0.0f32; n * CHUNK];
    let mut measured = vec![0.0f64; n];
    let mut last_km = vec![0.0f64; n];
    let mut subset = vec![0u32; 0];
    subset.reserve(n);
    // Scratch for the bulk-RNG kernels: pre-sized once, like the fleet
    // arena's `rng_scratch` (the fused kernel's sizing rule).
    let mut words = vec![0u64; 2 * n];
    let mut normals = vec![0.0f64; 2 * n];
    let mut fading_db = vec![0.0f64; n];
    let rayleigh = RayleighFading;
    let rician = RicianFading::new(6.0);

    // Warm-up step (first lane advance flips the fresh flags; nothing
    // else in the plane is lazily sized).
    lane.advance_all(0.1, &mut rng);

    let mut fewest = usize::MAX;
    for attempt in 0..3 {
        let before = allocations();
        for step in 1..100u32 {
            let step = step + 100 * attempt;
            // Dense sweep: one batched budget per BS over the chunk.
            for (k, &bs_pos) in bs_positions.iter().enumerate() {
                compiled.received_power_dbm_batch(
                    bs_pos,
                    &positions,
                    &mut rss_matrix[k * CHUNK..(k + 1) * CHUNK],
                );
            }
            // Shadowing lane + batched noise (the per-UE step stages).
            lane.advance_all(0.05, &mut rng);
            measured.copy_from_slice(&rss_matrix[..n]);
            noise.apply_slice(&mut measured, &mut rng);
            // Pruned stages: index query + lazy subset update.
            let near = index.nearest(positions[step as usize % CHUNK], 7);
            subset.clear();
            subset.extend_from_slice(near);
            lane.advance_subset(&subset, 0.05 * step as f64, &mut last_km, &mut rng);
            // Bulk-RNG kernels: wide ChaCha12 fill, batched Box–Muller,
            // f32 budget lane, batched Rayleigh/Rician fading.
            rng.fill_u64_slice(&mut words);
            standard_normal_fill(&mut normals, &mut rng);
            compiled.received_power_dbm_batch_f32(
                bs_positions[0],
                &positions[..n],
                &mut rss_matrix_f32[..n],
            );
            rayleigh.sample_db_fill(&mut fading_db, &mut rng);
            rician.sample_db_fill(&mut fading_db, &mut rng);
        }
        fewest = fewest.min(allocations() - before);
        if fewest == 0 {
            break;
        }
    }
    assert_eq!(
        fewest, 0,
        "the compiled measurement plane must not allocate per step"
    );
}
