//! Statistical and property tests for the traffic plane.
//!
//! * The session generator's empirical arrival rate and holding time
//!   must match the configured Erlang load within confidence bounds.
//! * Per-UE session streams are deterministic and domain-separated.
//! * The [`TrafficReport`] of a fleet run is invariant to worker count,
//!   chunk size and UE submission order (property-tested).
//! * The acceptance anchor: a single-cell M/M/c configuration offered
//!   A = 15 E on c = 20 channels by a 10 000-UE fleet reproduces the
//!   Erlang-B blocking probability within two percentage points.

use fuzzy_handover::core::erlang_b;
use fuzzy_handover::geometry::Axial;
use fuzzy_handover::mobility::RandomWalk;
use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::sim::fleet::{ue_seed, FleetMobility, FleetSimulation, HomogeneousFleet, PolicyKind};
use fuzzy_handover::sim::traffic::{
    generate_sessions, replay_traffic, TrafficConfig, UeTrace, TRAFFIC_STREAM,
};
use fuzzy_handover::sim::SimConfig;
use proptest::prelude::*;

fn base_traffic() -> TrafficConfig {
    TrafficConfig {
        channels_per_cell: 4,
        guard_channels: 1,
        mean_idle_steps: 12.0,
        mean_holding_steps: 8.0,
        load_feedback: false,
    }
}

#[test]
fn session_streams_are_deterministic_and_domain_separated() {
    let cfg = base_traffic();
    for ue in [0u64, 1, 17, 9999] {
        let seed = ue_seed(42 ^ TRAFFIC_STREAM, ue);
        assert_eq!(
            generate_sessions(&cfg, seed, 3000),
            generate_sessions(&cfg, seed, 3000),
            "ue {ue} stream reruns identically"
        );
    }
    // Distinct UEs draw distinct streams.
    let a = generate_sessions(&cfg, ue_seed(42 ^ TRAFFIC_STREAM, 0), 3000);
    let b = generate_sessions(&cfg, ue_seed(42 ^ TRAFFIC_STREAM, 1), 3000);
    assert_ne!(a, b);
    // And the traffic stream never aliases the measurement stream: the
    // masked seed differs from the raw fleet seed for UE 0.
    assert_ne!(ue_seed(42 ^ TRAFFIC_STREAM, 0), ue_seed(42, 0));
}

/// Empirical arrival rate and holding time across a large source
/// population stay within ~4 standard errors of the configured values
/// (deterministic seeds, so this never flakes).
#[test]
fn empirical_session_statistics_match_the_configuration() {
    let cfg = base_traffic();
    let horizon = 2_000usize;
    let n_ues = 2_000u64;
    let mut n_sessions = 0u64;
    let mut holding_sum = 0.0f64;
    let mut call_time_in_horizon = 0.0f64;
    for ue in 0..n_ues {
        let sessions = generate_sessions(&cfg, ue_seed(7 ^ TRAFFIC_STREAM, ue), horizon);
        for s in &sessions {
            n_sessions += 1;
            holding_sum += s.duration;
            call_time_in_horizon += (s.start + s.duration).min(horizon as f64) - s.start;
        }
    }
    assert!(n_sessions > 100_000, "enough samples for tight bounds: {n_sessions}");

    // Holding time: mean of n exponential(h) draws, σ = h/√n.
    let mean_holding = holding_sum / n_sessions as f64;
    let se_holding = cfg.mean_holding_steps / (n_sessions as f64).sqrt();
    assert!(
        (mean_holding - cfg.mean_holding_steps).abs() < 4.0 * se_holding,
        "mean holding {mean_holding} vs configured {} (se {se_holding})",
        cfg.mean_holding_steps
    );

    // Session count: one renewal per (idle + holding) cycle, so the
    // expected count over the horizon is n_ues · horizon / (i + h)
    // (edge effects at the horizon are O(1/cycles) and covered by the
    // 4σ slack, σ ≈ √count for a renewal count).
    let cycle = cfg.mean_idle_steps + cfg.mean_holding_steps;
    let expected_sessions = n_ues as f64 * horizon as f64 / cycle;
    assert!(
        (n_sessions as f64 - expected_sessions).abs() < 4.0 * expected_sessions.sqrt(),
        "{n_sessions} sessions vs expected {expected_sessions}"
    );

    // Offered load: call time per UE-step ≈ h / (i + h).
    let offered = call_time_in_horizon / (n_ues as f64 * horizon as f64);
    let expected_load = cfg.offered_erlangs_per_ue();
    assert!(
        (offered - expected_load).abs() < 0.01,
        "empirical offered load {offered} vs configured {expected_load}"
    );
}

/// A trace set pinning `n_ues` stationary UEs to cell 0 for `steps`
/// steps — the M/M/c single-cell configuration.
fn pinned_traces(n_ues: u64, steps: u64) -> Vec<UeTrace> {
    (0..n_ues).map(|ue_id| UeTrace::pinned(ue_id, steps, 0)).collect()
}

fn erlang_cell() -> Vec<Axial> {
    vec![Axial::ORIGIN, Axial::new(1, 0)]
}

/// The acceptance anchor: 10 000 sources offering A = 15 E in one cell
/// with c = 20 channels and no guard. The replay's empirical blocking
/// probability must land within two percentage points of
/// Erlang-B(15, 20) ≈ 0.0456. Release-only: the full-size run walks a
/// 10k × 6k-step timeline (the debug build runs the scaled-down variant
/// below instead).
#[cfg(not(debug_assertions))]
#[test]
fn single_cell_blocking_matches_erlang_b_at_10k_ues() {
    let n_ues = 10_000u64;
    let steps = 6_000u64;
    let channels = 20u32;
    let offered_erlangs = 15.0f64;
    let holding = 20.0f64;
    // Per-UE load a = A / N; idle mean follows from a = h/(i+h).
    let cfg = TrafficConfig::erlang(channels, 0, offered_erlangs / n_ues as f64, holding);
    let (report, _) = replay_traffic(&cfg, &erlang_cell(), &pinned_traces(n_ues, steps), 0xE71A);

    let analytic = erlang_b(offered_erlangs, channels);
    let empirical = report.blocking_probability();
    assert!(
        report.offered_calls > 3_000,
        "enough arrivals for a stable estimate: {}",
        report.offered_calls
    );
    assert!(
        (empirical - analytic).abs() < 0.02,
        "blocking {empirical:.4} vs Erlang-B {analytic:.4} \
         ({} blocked of {} offered)",
        report.blocked_calls,
        report.offered_calls
    );
    // The carried load cross-checks: A · (1 − B), within a few percent.
    let expected_carried = offered_erlangs * (1.0 - analytic);
    assert!(
        (report.carried_erlangs - expected_carried).abs() < 0.08 * expected_carried,
        "carried {:.2} E vs expected {:.2} E",
        report.carried_erlangs,
        expected_carried
    );
    // Pinned UEs never hand over, so nothing can be dropped.
    assert_eq!(report.handover_attempts, 0);
    assert_eq!(report.dropped_calls, 0);
    assert!(report.per_cell[0].peak_occupancy() <= channels, "capacity is a hard ceiling");
}

/// The same anchor scaled down for the debug build (1 000 sources,
/// looser statistics, same analytic target).
#[test]
fn single_cell_blocking_tracks_erlang_b_at_1k_ues() {
    let n_ues = 1_000u64;
    let steps = 3_000u64;
    let channels = 10u32;
    let offered_erlangs = 7.0f64;
    let cfg = TrafficConfig::erlang(channels, 0, offered_erlangs / n_ues as f64, 15.0);
    let (report, _) = replay_traffic(&cfg, &erlang_cell(), &pinned_traces(n_ues, steps), 0xE71B);
    let analytic = erlang_b(offered_erlangs, channels);
    let empirical = report.blocking_probability();
    assert!(report.offered_calls > 800, "{}", report.offered_calls);
    assert!(
        (empirical - analytic).abs() < 0.03,
        "blocking {empirical:.4} vs Erlang-B {analytic:.4}"
    );
}

/// Guard channels trade blocking for dropping in the expected
/// direction on a mobile, congested fleet.
#[test]
fn guard_channels_protect_handover_calls() {
    // Two cells, UEs oscillating between them mid-call.
    let mk_traces = || -> Vec<UeTrace> {
        (0..60)
            .map(|ue_id| {
                let serving: Vec<u32> =
                    (0..600).map(|s| ((s / 30 + ue_id as usize) % 2) as u32).collect();
                UeTrace::from_serving(ue_id, &serving)
            })
            .collect()
    };
    let hot = TrafficConfig {
        channels_per_cell: 5,
        guard_channels: 0,
        mean_idle_steps: 6.0,
        mean_holding_steps: 25.0,
        load_feedback: false,
    };
    let guarded = TrafficConfig { guard_channels: 2, ..hot };
    let (plain, _) = replay_traffic(&hot, &erlang_cell(), &mk_traces(), 3);
    let (with_guard, _) = replay_traffic(&guarded, &erlang_cell(), &mk_traces(), 3);
    assert!(plain.handover_attempts > 100);
    assert!(with_guard.blocking_probability() > plain.blocking_probability());
    assert!(with_guard.dropping_probability() < plain.dropping_probability());
}

fn noisy_config() -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig { sigma_db: 4.0, decorrelation_km: 0.05 };
    cfg.noise = MeasurementNoise::new(1.0);
    cfg.sample_spacing_km = 0.2;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Session streams are pure functions of (seed, ue, horizon):
    /// rerunning any stream reproduces it bit for bit, and a longer
    /// horizon only appends (the prefix is stable).
    #[test]
    fn session_streams_are_pure_and_prefix_stable(
        seed in 0u64..u64::MAX,
        ue in 0u64..10_000,
        horizon in 1usize..800,
    ) {
        let cfg = base_traffic();
        let s = ue_seed(seed ^ TRAFFIC_STREAM, ue);
        let short = generate_sessions(&cfg, s, horizon);
        let long = generate_sessions(&cfg, s, horizon + 500);
        prop_assert_eq!(&short[..], &long[..short.len()], "prefix stability");
        for w in short.windows(2) {
            prop_assert!(w[1].start >= w[0].start + w[0].duration);
        }
    }

    /// The fleet-level TrafficReport is invariant to worker count and
    /// chunk size for arbitrary seeds and loads.
    #[test]
    fn traffic_report_invariant_to_sharding(
        seed in 0u64..u64::MAX,
        traj_seed in 0u64..u64::MAX,
        workers in 1usize..6,
        chunk in 1usize..40,
        holding in 2.0f64..20.0,
        idle in 2.0f64..20.0,
    ) {
        let traffic = TrafficConfig {
            channels_per_cell: 3,
            guard_channels: 1,
            mean_idle_steps: idle,
            mean_holding_steps: holding,
            load_feedback: false,
        };
        let spec = HomogeneousFleet {
            mobility: FleetMobility::RandomWalk(RandomWalk::paper_default(5)),
            policy: PolicyKind::Hysteresis { margin_db: 4.0 },
            trajectory_seed: traj_seed,
            cell_radius_km: 2.0,
        };
        let reference = FleetSimulation::new(noisy_config())
            .with_traffic(traffic)
            .run(&spec, 20, seed);
        let sharded = FleetSimulation::new(noisy_config())
            .with_traffic(traffic)
            .with_workers(workers)
            .with_chunk_size(chunk)
            .run(&spec, 20, seed);
        prop_assert_eq!(reference, sharded);
    }
}
