//! The paper's evaluation claims, asserted against the experiment
//! harness — this test file is the machine-checked version of
//! EXPERIMENTS.md.

use fuzzy_handover::core::flc::{frb_lookup, Cssp, Dmb, Hd, Ssn, PAPER_FRB};
use fuzzy_handover::sim::experiments::{self, table3_4};

#[test]
fn table1_frb_is_the_papers_table() {
    assert_eq!(PAPER_FRB.len(), 64);
    // One row from each CSSP block, read off the printed table.
    assert_eq!(frb_lookup(Cssp::SM, Ssn::NO, Dmb::NSN), Hd::HG); // rule 10
    assert_eq!(frb_lookup(Cssp::LC, Ssn::ST, Dmb::NR), Hd::LH); // rule 29
    assert_eq!(frb_lookup(Cssp::NC, Ssn::NSW, Dmb::FA), Hd::LO); // rule 40
    assert_eq!(frb_lookup(Cssp::BG, Ssn::NO, Dmb::NSF), Hd::LO); // rule 59
}

#[test]
fn table3_ping_pong_avoided_at_every_speed() {
    // Paper §5: "all the average values are smaller than 0.7, therefore
    // the proposed system can avoid the ping-pong effect."
    let data = table3_4::table3_data();
    assert_eq!(data.speeds, vec![0.0, 10.0, 20.0, 30.0, 40.0, 50.0]);
    assert_eq!(data.points.len(), 3);
    for (si, per_speed) in data.hd.iter().enumerate() {
        for (pi, point) in per_speed.iter().enumerate() {
            for (sub, &hd) in point.iter().enumerate() {
                assert!(
                    hd < 0.7,
                    "speed {} point {} sub {} scored {hd}",
                    data.speeds[si],
                    pi + 1,
                    sub + 1
                );
            }
        }
    }
}

#[test]
fn table4_three_handovers_in_all_cases() {
    // Paper §5: "the proposed system in all cases has done 3 handovers."
    let data = table3_4::table4_data();
    for (si, per_speed) in data.hd.iter().enumerate() {
        let above: usize = per_speed.iter().filter(|p| p[1] > 0.7).count();
        assert_eq!(
            above,
            3,
            "speed {}: {} of 3 crossing points above threshold",
            data.speeds[si],
            above
        );
    }
}

#[test]
fn tables_use_the_papers_speed_penalty_structure() {
    // The tables freeze CSSP and distance per point and shift only the
    // neighbour reading by 2 dB per 10 km/h — checked structurally here,
    // numerically in the render.
    let data = table3_4::table4_data();
    let p = &data.points[0];
    // One frozen input vector…
    assert!(p.cssp_db[0].is_finite() && p.distance_km[0] > 0.0);
    // …and HD varying with speed while the point stays fixed.
    let hd_at = |si: usize| data.hd[si][0][0];
    assert_ne!(hd_at(0), hd_at(5), "speed affects the output");
}

#[test]
fn every_experiment_renders_nonempty() {
    for e in experiments::registry() {
        let out = (e.render)();
        assert!(
            out.len() > 100,
            "experiment {} rendered only {} bytes",
            e.id,
            out.len()
        );
    }
}

#[test]
fn figures_9_to_11_have_the_papers_shape() {
    use fuzzy_handover::sim::experiments::fig9_11;
    // Fig. 9: serving power decays as the MS leaves; Figs. 10/11: the
    // entered neighbours' power rises toward their cells.
    let cells = fig9_11::plotted_cells();
    let origin = fig9_11::rx_series(cells[0]);
    let first_half_max = origin.points[..origin.points.len() / 4]
        .iter()
        .map(|&(_, y)| y)
        .fold(f64::NEG_INFINITY, f64::max);
    let overall_min = origin.points.iter().map(|&(_, y)| y).fold(f64::INFINITY, f64::min);
    assert!(first_half_max - overall_min > 15.0);

    for &cell in &cells[1..] {
        let s = fig9_11::rx_series(cell);
        let start = s.points[0].1;
        let peak = s.points.iter().map(|&(_, y)| y).fold(f64::NEG_INFINITY, f64::max);
        assert!(peak > start + 10.0, "{cell}: {start} → {peak}");
    }
}

#[test]
fn extension_baseline_comparison_favors_fuzzy() {
    // The comparison the paper left to future work, quantified.
    let rows = fuzzy_handover::sim::experiments::baselines::data();
    let sum = |name: &str, f: fn(&fuzzy_handover::sim::monte_carlo::McSummary) -> f64| -> f64 {
        rows.iter().filter(|r| r.policy == name).map(|r| f(&r.summary)).sum()
    };
    let fuzzy_pp = sum("fuzzy (paper)", |s| s.mean_ping_pongs);
    let naive_pp = sum("hysteresis 0 dB", |s| s.mean_ping_pongs);
    assert!(fuzzy_pp < naive_pp, "fuzzy {fuzzy_pp} vs naive {naive_pp}");
}
