//! Property tests pinning the bulk-RNG kernels' bit-identity contracts
//! (the vectorized-kernel analogue of `tests/radio_plane_props.rs`):
//!
//! 1. `RngCore::fill_u64_slice` on `StdRng` — the wide ChaCha12 block
//!    kernel — emits exactly the word stream of repeated `next_u64`
//!    calls, for arbitrary draw prefixes and fill lengths, and leaves
//!    the generator in the *same serialized state* (`StdRng::state`),
//!    so checkpoints taken after bulk fills are byte-identical to
//!    checkpoints taken after scalar draws;
//! 2. a checkpoint captured mid-sequence restores (`StdRng::from_state`)
//!    into a generator whose bulk fills continue the scalar stream
//!    bit-for-bit — the property the fleet's `FleetCheckpoint` resume
//!    path depends on;
//! 3. `fill_standard_uniform` is the `gen::<f64>()` loop;
//! 4. `standard_normal_fill` — the batched Box–Muller lane feeding the
//!    shadowing/noise/fading kernels — is the scalar `standard_normal`
//!    loop, for arbitrary lengths and draw offsets.

use fuzzy_handover::radio::{standard_normal, standard_normal_fill};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Contract 1: bulk fill = repeated `next_u64`, words and state.
    #[test]
    fn fill_u64_slice_is_next_u64_with_identical_state(
        seed in 0u64..u64::MAX,
        prefix in 0usize..20,
        len in 0usize..200,
        tail in 1usize..16,
    ) {
        let mut bulk = StdRng::seed_from_u64(seed);
        let mut scalar = StdRng::seed_from_u64(seed);
        // An arbitrary draw prefix puts the buffer at every possible
        // index (including the odd index-15 pair-straddling spill).
        for _ in 0..prefix {
            prop_assert_eq!(bulk.next_u64(), scalar.next_u64());
        }
        let mut words = vec![0u64; len];
        bulk.fill_u64_slice(&mut words);
        for (k, &w) in words.iter().enumerate() {
            prop_assert_eq!(w, scalar.next_u64(), "word {}", k);
        }
        // The serialized states must match byte for byte — the fleet
        // checkpoints `buf`/`index`/`counter` verbatim.
        prop_assert_eq!(bulk.state(), scalar.state());
        // And both generators continue in lockstep.
        for _ in 0..tail {
            prop_assert_eq!(bulk.next_u64(), scalar.next_u64());
        }
    }

    /// Contract 2: a mid-sequence checkpoint restores into bulk fills
    /// that continue the scalar stream exactly.
    #[test]
    fn checkpoint_resume_continues_bulk_fill_bit_identically(
        seed in 0u64..u64::MAX,
        prefix in 0usize..40,
        len_a in 0usize..120,
        len_b in 0usize..120,
    ) {
        let mut reference = StdRng::seed_from_u64(seed);
        for _ in 0..prefix {
            reference.next_u64();
        }
        let checkpoint = reference.state();

        // Unbroken run: two bulk fills straight through.
        let mut expected = vec![0u64; len_a + len_b];
        reference.fill_u64_slice(&mut expected);

        // Resumed run: restore, fill, checkpoint again mid-way, restore
        // again, fill the rest.
        let mut resumed = StdRng::from_state(checkpoint);
        let mut got = vec![0u64; len_a];
        resumed.fill_u64_slice(&mut got);
        let mid = resumed.state();
        let mut second = StdRng::from_state(mid);
        let mut rest = vec![0u64; len_b];
        second.fill_u64_slice(&mut rest);
        got.extend_from_slice(&rest);
        prop_assert_eq!(got, expected);
        prop_assert_eq!(second.state(), reference.state());
    }

    /// Contract 3: the bulk uniform lane is the `gen::<f64>()` loop.
    #[test]
    fn fill_standard_uniform_is_gen_f64_loop(
        seed in 0u64..u64::MAX,
        prefix in 0usize..10,
        len in 0usize..150,
    ) {
        let mut bulk = StdRng::seed_from_u64(seed);
        let mut scalar = StdRng::seed_from_u64(seed);
        for _ in 0..prefix {
            prop_assert_eq!(bulk.gen::<f64>().to_bits(), scalar.gen::<f64>().to_bits());
        }
        let mut uniforms = vec![0.0f64; len];
        bulk.fill_standard_uniform(&mut uniforms);
        for (k, &u) in uniforms.iter().enumerate() {
            prop_assert_eq!(u.to_bits(), scalar.gen::<f64>().to_bits(), "slot {}", k);
        }
    }

    /// Contract 4: the batched Box–Muller lane is the scalar sampler.
    #[test]
    fn standard_normal_fill_is_scalar_loop(
        seed in 0u64..u64::MAX,
        prefix in 0usize..10,
        len in 0usize..150,
    ) {
        let mut bulk = StdRng::seed_from_u64(seed);
        let mut scalar = StdRng::seed_from_u64(seed);
        // Offset both streams by some scalar draws first so the fill
        // starts at arbitrary buffer alignments.
        for _ in 0..prefix {
            prop_assert_eq!(
                standard_normal(&mut bulk).to_bits(),
                standard_normal(&mut scalar).to_bits()
            );
        }
        let mut normals = vec![0.0f64; len];
        standard_normal_fill(&mut normals, &mut bulk);
        for (k, &z) in normals.iter().enumerate() {
            prop_assert_eq!(
                z.to_bits(),
                standard_normal(&mut scalar).to_bits(),
                "slot {}",
                k
            );
        }
        // Tail draws stay in lockstep: the fill consumed exactly
        // `2 × len` u64s, no more, no fewer.
        prop_assert_eq!(bulk.next_u64(), scalar.next_u64());
    }
}
