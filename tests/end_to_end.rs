//! End-to-end integration: the whole stack driven through the public
//! umbrella API.

use fuzzy_handover::core::baselines::HysteresisPolicy;
use fuzzy_handover::core::{
    ControllerConfig, Decision, FuzzyHandoverController, HandoverPolicy, MeasurementReport,
    Rnc,
};
use fuzzy_handover::geometry::{Axial, CellLayout, Vec2};
use fuzzy_handover::mobility::{LinearMotion, MobilityModel};
use fuzzy_handover::radio::BsRadio;
use fuzzy_handover::sim::{Scenario, SimConfig, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn straight_line_walk_hands_over_every_cell_in_order() {
    // Drive 10 km straight east across three cells; the controller must
    // hand over at every crossing, never backwards, never ping-pong.
    let sim = Simulation::new(SimConfig::paper_default());
    let walk = LinearMotion::new(Vec2::ZERO, 0.0, 10.0)
        .generate(&mut StdRng::seed_from_u64(0));
    let mut policy = FuzzyHandoverController::new(ControllerConfig::paper_default(2.0));
    let result = sim.run(&walk, &mut policy, 0);

    assert!(result.handover_count() >= 2, "10 km crosses at least two borders");
    assert_eq!(
        result.log.ping_pong_report(6).ping_pongs,
        0,
        "straight-line motion never ping-pongs"
    );
    let layout = SimConfig::paper_default().layout;
    let seq = result.log.serving_sequence(Axial::ORIGIN);
    for w in seq.windows(2) {
        assert!(
            layout.bs_position(w[1]).x > layout.bs_position(w[0]).x,
            "serving sequence moves east: {seq:?}"
        );
    }
}

#[test]
fn scenario_claims_hold_through_the_public_api() {
    let sim = Simulation::new(SimConfig::paper_default());

    let mut a_policy = FuzzyHandoverController::new(ControllerConfig::paper_default(2.0));
    let a = sim.run(&Scenario::a().trajectory(), &mut a_policy, 0);
    assert_eq!(a.handover_count(), 0, "scenario A avoids the ping-pong entirely");

    let mut b_policy = FuzzyHandoverController::new(ControllerConfig::paper_default(2.0));
    let b = sim.run(&Scenario::b().trajectory(), &mut b_policy, 0);
    assert_eq!(b.handover_count(), 3, "scenario B executes its three handovers");
    assert_eq!(b.log.ping_pong_report(6).ping_pongs, 0);
    // Every executed handover cleared the paper's 0.7 threshold.
    for e in b.log.events() {
        assert!(e.hd > 0.7, "handover at {:.1} km fired with HD {}", e.at_km, e.hd);
    }
}

#[test]
fn rnc_routes_reports_like_the_bare_controller() {
    // Fig. 4's RNC wrapper must reproduce the bare controller's decisions
    // on an identical report stream.
    let cells = [Axial::ORIGIN, Axial::new(1, 0)];
    let cfg = ControllerConfig::paper_default(2.0);
    let mut rnc = Rnc::new(cells, Axial::ORIGIN, cfg);
    let mut bare = FuzzyHandoverController::new(cfg);

    let layout = CellLayout::hexagonal(2.0, 1);
    let radio = BsRadio::paper_default();
    let mut serving = Axial::ORIGIN;
    let mut x = 0.4;
    while x < 3.2 {
        let pos = Vec2::new(x, 0.0);
        let neighbor = if serving == Axial::ORIGIN { Axial::new(1, 0) } else { Axial::ORIGIN };
        let report = MeasurementReport {
            serving,
            serving_rss_dbm: radio.received_power_dbm(layout.bs_position(serving), pos),
            neighbor,
            neighbor_rss_dbm: radio.received_power_dbm(layout.bs_position(neighbor), pos),
            distance_to_serving_km: layout.distance_to_bs(serving, pos),
            distance_to_neighbor_km: layout.distance_to_bs(neighbor, pos),
        };
        let via_rnc = rnc.process(&report);
        let via_bare = bare.decide(&report);
        assert_eq!(via_rnc, via_bare, "divergence at x = {x}");
        if let Decision::Handover { target, .. } = via_bare {
            bare.notify_handover(target);
            serving = target;
        }
        assert_eq!(rnc.serving_cell(), serving);
        x += 0.4;
    }
    assert_eq!(serving, Axial::new(1, 0), "the walk ends handed over");
}

#[test]
fn policies_are_interchangeable_in_the_engine() {
    // The HandoverPolicy abstraction: both the fuzzy controller and a
    // baseline drive the same engine on the same walk.
    let sim = Simulation::new(SimConfig::paper_default());
    let walk = Scenario::b().trajectory();

    let mut fuzzy = FuzzyHandoverController::new(ControllerConfig::paper_default(2.0));
    let mut naive = HysteresisPolicy::new(0.0);
    let fr = sim.run(&walk, &mut fuzzy, 0);
    let nr = sim.run(&walk, &mut naive, 0);
    assert_eq!(fr.steps.len(), nr.steps.len(), "same measurement grid");
    // The naive policy reacts to every instantaneous advantage, so it can
    // never hand over later than the evidence-hungry fuzzy pipeline.
    assert!(nr.handover_count() >= fr.handover_count());
}

#[test]
fn speed_sweep_monotone_neighbor_degradation() {
    // Raising the speed only lowers the neighbour readings, so the fuzzy
    // handover count on any fixed walk is non-increasing in speed.
    let walk = Scenario::b().trajectory();
    let mut last = usize::MAX;
    for speed in [0.0, 10.0, 20.0, 30.0, 40.0, 50.0] {
        let mut cfg = SimConfig::paper_default();
        cfg.speed_kmh = speed;
        let sim = Simulation::new(cfg);
        let mut policy = FuzzyHandoverController::new(ControllerConfig::paper_default(2.0));
        let count = sim.run(&walk, &mut policy, 0).handover_count();
        assert!(count <= last, "handover count rose from {last} to {count} at {speed} km/h");
        last = count;
        // The pinned scenario is robust: still 3 at every speed.
        assert_eq!(count, 3);
    }
}
