//! Golden-file regression harness for the dynamic-workload plane.
//!
//! The 20 pre-dynamic goldens pin the static and traffic-only output
//! byte for byte; this suite pins a small *city-scale* scenario-matrix
//! run — the dynamics axis live with churn, a tidal wave, a scheduled
//! BS failure and a voice/data service mix next to the static level —
//! so the churn accounting, fairness index, dwell percentiles and the
//! dropped-Erlang breakdown can't drift silently either. Refresh after
//! an *intentional* change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_dynamic
//! ```

use fuzzy_handover::geometry::Axial;
use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::sim::fleet::{CandidateMode, FleetMobility, PolicyKind};
use fuzzy_handover::sim::matrix::ScenarioMatrix;
use fuzzy_handover::sim::{
    CellOutage, ChurnConfig, DynamicsConfig, ServiceMix, ServiceParams, SimConfig, TidalWave,
    TrafficConfig,
};
use std::path::{Path, PathBuf};

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_dynamic")
        .join("city_matrix.json")
}

fn city_matrix() -> ScenarioMatrix {
    let mut base = SimConfig::paper_default();
    base.shadowing = ShadowingConfig::moderate();
    base.noise = MeasurementNoise::new(1.0);
    ScenarioMatrix {
        base,
        ue_counts: vec![20],
        mobilities: vec![FleetMobility::RandomWalk(
            fuzzy_handover::mobility::RandomWalk::paper_default(6),
        )],
        speeds_kmh: vec![30.0],
        policies: vec![PolicyKind::Fuzzy, PolicyKind::Hysteresis { margin_db: 4.0 }],
        traffics: vec![Some(TrafficConfig {
            channels_per_cell: 2,
            guard_channels: 0,
            mean_idle_steps: 4.0,
            mean_holding_steps: 6.0,
            load_feedback: false,
        })],
        dynamics: vec![
            None,
            Some(DynamicsConfig {
                churn: Some(ChurnConfig {
                    initial_ues: 10,
                    horizon_steps: 12,
                    mean_lifetime_steps: 10.0,
                }),
                tide: Some(TidalWave { period_steps: 8, amplitude: 0.6, phase_per_q: 0.25 }),
                failures: vec![CellOutage {
                    cell: Axial::new(0, 0),
                    from_step: 4,
                    until_step: 9,
                }],
                services: Some(ServiceMix {
                    voice_share: 0.6,
                    voice: ServiceParams {
                        mean_idle_steps: 3.0,
                        mean_holding_steps: 4.0,
                        extra_guard_channels: 0,
                    },
                    data: ServiceParams {
                        mean_idle_steps: 5.0,
                        mean_holding_steps: 8.0,
                        extra_guard_channels: 1,
                    },
                }),
            }),
        ],
        base_seed: 0xC17D,
        workers: 3,
        matrix_workers: 2,
        candidate_mode: CandidateMode::All,
    }
}

#[test]
fn city_matrix_matches_golden() {
    let report = city_matrix().run().render();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create dir");
        std::fs::write(&path, serde_json::to_string(&report).expect("serialize") + "\n")
            .expect("write golden");
        println!("refreshed {}", path.display());
        return;
    }
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|err| {
        panic!(
            "missing golden file {} ({err}); generate with UPDATE_GOLDEN=1 cargo test --test golden_dynamic",
            path.display()
        )
    });
    let golden: String = serde_json::from_str(&raw).expect("parse golden");
    for (n, (g, f)) in golden.lines().zip(report.lines()).enumerate() {
        assert!(
            g == f,
            "city-matrix report drifted at line {}:\n  golden: {g}\n  fresh : {f}\n\
             If the change is intended, refresh with UPDATE_GOLDEN=1 cargo test --test golden_dynamic",
            n + 1
        );
    }
    assert_eq!(golden, report, "city-matrix report drifted (length)");
}
