//! Physics and reference-value validation of the substrates: numbers a
//! radio/geometry textbook pins down exactly, checked against our
//! implementations through the public API.

use fuzzy_handover::fuzzy::{Defuzzifier, Mf, SampledSet};
use fuzzy_handover::geometry::{Axial, CellLayout, HexGrid, Vec2};
use fuzzy_handover::mobility::{MobilityModel, RandomWalk};
use fuzzy_handover::radio::{db, BsRadio, DipoleAntenna, PathLoss};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn free_space_matches_friis() {
    // Friis: FSPL(dB) = 20 log10(d) + 20 log10(f) + 20 log10(4π/c).
    // At 2 GHz / 1 km the closed form gives 98.46 dB.
    let c = 299_792_458.0f64;
    let f_hz = 2000.0e6;
    let d_m = 1000.0;
    let friis = 20.0 * (4.0 * std::f64::consts::PI * d_m * f_hz / c).log10();
    let ours = PathLoss::free_space_2ghz().loss_db(1.0);
    assert!((ours - friis).abs() < 0.05, "ours {ours} vs Friis {friis}");
}

#[test]
fn db_arithmetic_identities() {
    // 3 dB ≈ ×2, 10 dB = ×10, dBm↔W at the watt point.
    assert!((db::db_to_power_ratio(3.0103) - 2.0).abs() < 1e-4);
    assert!((db::db_to_power_ratio(10.0) - 10.0).abs() < 1e-12);
    assert!((db::watt_to_dbm(1.0) - 30.0).abs() < 1e-12, "1 W = 30 dBm");
    // Combining N equal signals adds 10 log10(N).
    let four = db::combine_powers_dbm(&[-90.0; 4]);
    assert!((four - (-90.0 + 10.0 * 4f64.log10())).abs() < 1e-9);
}

#[test]
fn hex_grid_tiles_the_plane_without_gaps() {
    // Count containment over a dense probe grid: every point belongs to
    // exactly one cell (cube rounding is a partition), and the area share
    // of one interior cell matches the hexagon area R²·3√3/2 within
    // sampling error.
    let grid = HexGrid::new(1.0);
    let mut origin_hits = 0usize;
    let mut total = 0usize;
    let extent = 3.0;
    let step = 0.01;
    let n = (2.0 * extent / step) as usize;
    for i in 0..n {
        for j in 0..n {
            let p = Vec2::new(-extent + i as f64 * step, -extent + j as f64 * step);
            total += 1;
            if grid.cell_at(p) == Axial::ORIGIN {
                origin_hits += 1;
            }
        }
    }
    let probe_area = (2.0 * extent) * (2.0 * extent);
    let measured = origin_hits as f64 / total as f64 * probe_area;
    let hex_area = 3.0 * 3.0f64.sqrt() / 2.0; // circumradius 1
    assert!(
        (measured - hex_area).abs() < 0.03,
        "measured {measured} vs analytic {hex_area}"
    );
}

#[test]
fn antenna_peak_sits_on_the_tilted_beam() {
    // The pattern maximum is at depression angle = tilt; for 40 m mast,
    // 1.5 m mobile and 3° tilt that is ≈ 734 m horizontal.
    let a = DipoleAntenna::paper_default();
    let d_peak = (40.0 - 1.5) / 1000.0 / 3.0f64.to_radians().tan();
    assert!((d_peak - 0.7345).abs() < 1e-3);
    let peak_gain = a.gain_db(d_peak, 1.5);
    for d in [0.1, 0.3, 2.0, 5.0] {
        assert!(a.gain_db(d, 1.5) <= peak_gain + 1e-9, "at {d} km");
    }
}

#[test]
fn cell_edge_rss_symmetry() {
    // Exactly on the border between two BSs, both deliver the same power
    // (the ping-pong knife edge).
    let layout = CellLayout::hexagonal(2.0, 1);
    let radio = BsRadio::paper_default();
    let east = Axial::new(1, 0);
    let mid = (layout.bs_position(Axial::ORIGIN) + layout.bs_position(east)) * 0.5;
    let a = radio.received_power_dbm(layout.bs_position(Axial::ORIGIN), mid);
    let b = radio.received_power_dbm(layout.bs_position(east), mid);
    assert!((a - b).abs() < 1e-9);
}

#[test]
fn random_walk_diffusion_scales_with_sqrt_n() {
    // Mean squared displacement of an isotropic random walk grows
    // linearly in the number of steps: E[R²] = n·E[d²].
    let msd = |n_walks: usize| -> f64 {
        let model = RandomWalk::paper_default(n_walks);
        let runs = 4000;
        let mut acc = 0.0;
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..runs {
            let t = model.generate(&mut rng);
            acc += t.end().norm_sq();
        }
        acc / runs as f64
    };
    let m5 = msd(5);
    let m20 = msd(20);
    let ratio = m20 / m5;
    assert!(
        (ratio - 4.0).abs() < 0.4,
        "E[R²] must scale ×4 from 5 to 20 steps, got ×{ratio:.2}"
    );
    // And the per-step second moment matches E[d²] = μ² + σ² = 0.4.
    let per_step = m5 / 5.0;
    assert!((per_step - 0.4).abs() < 0.03, "E[d²] {per_step}");
}

#[test]
fn centroid_defuzzification_matches_closed_form() {
    // For min-clipped triangle agg sets the centroid has a closed form;
    // cross-check one case end to end through SampledSet.
    // Triangle (0, 1, 2) clipped at 0.5 is a symmetric trapezoid with
    // centroid exactly 1.
    let tri = Mf::triangular(0.0, 1.0, 2.0);
    let set = SampledSet::from_fn(0.0, 2.0, 4001, |x| tri.eval(x).min(0.5));
    let c = Defuzzifier::Centroid.defuzzify(&set).unwrap();
    assert!((c - 1.0).abs() < 1e-6);
    // Asymmetric check: right triangle (0, 2, 2) clipped at 1 (no clip):
    // centroid = (0 + 2 + 2)/3 = 4/3.
    let rt = Mf::triangular(0.0, 2.0, 2.0);
    let set = SampledSet::from_fn(0.0, 2.0, 4001, |x| rt.eval(x));
    let c = Defuzzifier::Centroid.defuzzify(&set).unwrap();
    assert!((c - 4.0 / 3.0).abs() < 1e-5);
}

#[test]
fn paper_cell_labels_match_figure_positions() {
    // Fig. 6 places (2,-1) east-north-east of the origin and (-1,2) on
    // the opposite side; verify the embedding agrees with the figure's
    // qualitative arrangement.
    let layout = CellLayout::hexagonal(2.0, 2);
    let pos = |i: i32, j: i32| -> Vec2 {
        let cell = layout
            .cell_by_paper_label(fuzzy_handover::geometry::PaperCoord::new(i, j))
            .expect("cell exists");
        layout.bs_position(cell)
    };
    // Negating a label negates its lattice position: (2,−1) ↔ (−2,1) and
    // (1,−2) ↔ (−1,2) are point-symmetric pairs.
    assert!((pos(2, -1) + pos(-2, 1)).norm() < 1e-9);
    assert!((pos(1, -2) + pos(-1, 2)).norm() < 1e-9);
    // All first-ring cells are √3·R from the origin.
    for (i, j) in [(2, -1), (1, -2), (-1, 2), (-2, 1), (1, 1), (-1, -1)] {
        let d = pos(i, j).norm();
        assert!((d - 2.0 * 3.0f64.sqrt()).abs() < 1e-9, "({i},{j}) at {d}");
    }
}
