//! The digital-twin service's determinism contract (PR 10):
//!
//! 1. **The headline**: a session driven by an *arbitrary* interleaving
//!    of `advance_to` segmentations, with at least one
//!    checkpoint → drop → hydrate cycle, is bit-identical to the
//!    equivalent batch [`FleetSimulation::run_ids`] — every `f64`
//!    included — for any checkpoint cadence and worker shape.
//! 2. Two concurrent tenants on one [`TwinServer`] do not perturb each
//!    other: a tenant interleaved with a busy neighbour produces
//!    exactly the bytes it produces alone.
//! 3. A mid-run policy hot-swap is replay-deterministic: re-driving the
//!    recorded swap log reproduces the session's result bit for bit,
//!    and both equal the manual `run_partial(old) → try_resume(new)`
//!    chain.
//! 4. The wire protocol round-trips the whole lifecycle: the same
//!    results arrive through the length-prefixed codec as through
//!    direct calls, and a malformed frame answers `BadRequest` without
//!    killing the connection.

use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::server::{
    read_frame, serve, spawn_in_process, write_frame, Request, Response, ServerError, Session,
    SessionConfig, TwinServer,
};
use fuzzy_handover::sim::fleet::{
    FleetMobility, FleetResult, FleetSimulation, HomogeneousFleet, PolicyKind,
};
use fuzzy_handover::sim::{SimConfig, TrafficConfig};
use proptest::prelude::*;

/// Shadowing + measurement noise so every per-UE RNG stream is live,
/// plus a traffic plane so the sealed snapshot carries traced state.
fn noisy_config() -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig { sigma_db: 4.0, decorrelation_km: 0.05 };
    cfg.noise = MeasurementNoise::new(1.0);
    cfg
}

fn traffic_plane() -> TrafficConfig {
    TrafficConfig::erlang(8, 1, 0.35, 30.0)
}

fn session_config(n_ues: u64, seed: u64, cadence: u64) -> SessionConfig {
    let sim = noisy_config();
    let mobility = FleetMobility::standard_four(6)[0];
    let mut config = SessionConfig::new(sim, mobility, PolicyKind::Fuzzy, n_ues, seed);
    config.traffic = Some(traffic_plane());
    config.retry.checkpoint_cadence = cadence;
    config
}

/// The engine a [`SessionConfig`] drives, rebuilt by hand — the batch
/// reference never goes through the session layer.
fn batch_engine(config: &SessionConfig, workers: usize) -> FleetSimulation {
    let mut engine = FleetSimulation::new(config.sim.clone())
        .with_workers(workers)
        .with_chunk_size(config.chunk_size)
        .with_candidate_mode(config.candidate_mode)
        .with_precision(config.precision);
    if let Some(traffic) = config.traffic {
        engine = engine.with_traffic(traffic);
    }
    engine
}

fn batch_spec(config: &SessionConfig, policy: PolicyKind) -> HomogeneousFleet {
    HomogeneousFleet {
        mobility: config.mobility,
        policy,
        trajectory_seed: config.trajectory_seed,
        cell_radius_km: config.cell_radius_km,
    }
}

fn batch_run(config: &SessionConfig, workers: usize) -> FleetResult {
    let ids: Vec<u64> = (0..config.n_ues).collect();
    batch_engine(config, workers).run_ids(
        &batch_spec(config, config.policy),
        &ids,
        config.base_seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1 — the headline: any segmentation × (≥1) seal/hydrate
    /// cycle × cadence × workers ≡ the batch run, bit for bit.
    #[test]
    fn segmented_session_with_hydrate_cycle_is_bit_identical_to_batch(
        seed in 0u64..1_000,
        n_ues in 4u64..12,
        cadence in 1u64..6,
        workers in 1usize..4,
        n_increments in 1usize..5,
        increment_seed in 0u64..u64::MAX,
        hydrate_after in 0usize..5,
    ) {
        // Derive the segmentation from a drawn seed (the vendored
        // proptest draws scalars; collections are derived).
        let mut state = increment_seed | 1;
        let increments: Vec<u64> = (0..n_increments)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                1 + (state >> 32) % 5
            })
            .collect();
        let config = session_config(n_ues, seed, cadence);
        let batch = batch_run(&config, 2);

        let mut session = Session::spawn(config, workers).unwrap();
        let mut step = 0u64;
        for (i, inc) in increments.iter().enumerate() {
            step += inc;
            session.advance_to(step).unwrap();
            if i == hydrate_after.min(increments.len() - 1) {
                // Persist, drop the live session, rehydrate from bytes.
                let sealed = session.sealed();
                session = Session::hydrate(&sealed, workers).unwrap();
            }
        }
        let result = session.run_to_completion().unwrap().clone();
        prop_assert_eq!(result, batch);
    }

    /// Property 3 — hot-swap replay determinism: the session's swap log
    /// replayed from scratch, and the manual partial/resume chain, all
    /// produce the same bytes.
    #[test]
    fn hot_swap_replay_is_bit_identical(
        seed in 0u64..1_000,
        n_ues in 4u64..10,
        cadence in 1u64..5,
        swap_step in 1u64..10,
        margin_db in 1u32..8,
    ) {
        let config = session_config(n_ues, seed, cadence);
        let new_policy = PolicyKind::Hysteresis { margin_db: f64::from(margin_db) };

        // The original run: advance, swap, finish. (Skip draws where
        // every walk already ended before the swap step — a swap only
        // makes sense mid-run.)
        let mut session = Session::spawn(config.clone(), 2).unwrap();
        session.advance_to(swap_step).unwrap();
        prop_assume!(!session.is_complete());
        let swap = session.swap_policy(new_policy).unwrap();
        let original = session.run_to_completion().unwrap().clone();
        let expected_log = [swap];
        prop_assert_eq!(session.policy_log(), expected_log.as_slice());

        // Replay the recorded log on a fresh session (different worker
        // count and a different segmentation on the tail).
        let mut replay = Session::spawn(config.clone(), 3).unwrap();
        replay.advance_to(swap.step).unwrap();
        replay.swap_policy(swap.policy).unwrap();
        replay.advance_to(swap.step + 1).unwrap();
        let replayed = replay.run_to_completion().unwrap().clone();
        prop_assert_eq!(&replayed, &original);

        // The manual batch chain under the same log.
        let engine = batch_engine(&config, 2);
        let ids: Vec<u64> = (0..config.n_ues).collect();
        let cp = engine
            .run_partial(&batch_spec(&config, PolicyKind::Fuzzy), &ids, seed, swap.step)
            .unwrap();
        let manual = engine.try_resume(&batch_spec(&config, new_policy), &cp).unwrap();
        prop_assert_eq!(&manual, &original);
    }

    /// Property 2 — tenant isolation: a tenant advanced in lockstep
    /// with a busy neighbour on the same server produces exactly the
    /// bytes it produces alone.
    #[test]
    fn concurrent_tenants_do_not_perturb_each_other(
        seed_a in 0u64..500,
        seed_b in 500u64..1_000,
        n_ues in 4u64..10,
        cadence in 1u64..5,
    ) {
        let config_a = session_config(n_ues, seed_a, cadence);
        let mut config_b = session_config(n_ues + 2, seed_b, cadence);
        config_b.policy = PolicyKind::Hysteresis { margin_db: 4.0 };
        let solo_a = batch_run(&config_a, 2);
        let solo_b = batch_run(&config_b, 2);

        let mut server = TwinServer::new(4);
        let a = server.spawn(config_a).unwrap();
        let b = server.spawn(config_b).unwrap();
        // Interleave the tenants' advances, with a seal/hydrate cycle
        // on A while B keeps running.
        server.advance_to(a, 3).unwrap();
        server.advance_to(b, 5).unwrap();
        server.advance_to(a, 7).unwrap();
        let sealed_a = server.checkpoint(a).unwrap();
        server.drop_session(a).unwrap();
        server.advance_to(b, u64::MAX).unwrap();
        let a2 = server.hydrate(&sealed_a).unwrap();
        server.advance_to(a2, u64::MAX).unwrap();

        prop_assert_eq!(server.session(a2).unwrap().result().unwrap(), &solo_a);
        prop_assert_eq!(server.session(b).unwrap().result().unwrap(), &solo_b);
    }
}

/// Property 4 — the full lifecycle through the wire codec equals the
/// batch run, and typed errors travel in-protocol.
#[test]
fn wire_lifecycle_round_trips_and_reports_typed_errors() {
    let config = session_config(8, 42, 3);
    let batch = batch_run(&config, 2);

    let mut remote = spawn_in_process(TwinServer::new(2));
    let client = &mut remote.client;
    let session = client.spawn(config).unwrap();

    // Errors are in-protocol answers, not connection failures.
    let err = client.advance_to(999, 5).unwrap_err();
    assert!(
        matches!(
            err,
            fuzzy_handover::server::ClientError::Server(ServerError::UnknownSession {
                session: 999
            })
        ),
        "{err:?}"
    );

    let status = client.advance_to(session, 4).unwrap();
    assert_eq!(status.step, 4);
    let cells = client.query_cells(session).unwrap();
    let live_total: u64 = cells.iter().map(|c| c.live_ues).sum();
    assert_eq!(live_total, status.live_ues, "live UEs must reconcile across queries");
    let ue = client.query_ue(session, 0).unwrap();
    assert_eq!(ue.ue_id, 0);

    // Seal → drop → hydrate over the wire, then finish.
    let sealed = client.checkpoint(session).unwrap();
    client.drop_session(session).unwrap();
    let revived = client.hydrate(sealed).unwrap();
    let status = client.advance_to(revived, u64::MAX).unwrap();
    assert!(status.complete);
    let result = client.query_result(revived).unwrap();
    assert_eq!(result, batch);

    let listed = client.list().unwrap();
    assert_eq!(listed.len(), 1);
    assert_eq!(listed[0].0, revived);

    let server = remote.shutdown().unwrap();
    assert_eq!(server.session_count(), 1);
}

/// A malformed frame answers `BadRequest` and the connection stays
/// usable for the next, well-formed request.
#[test]
fn malformed_frame_answers_bad_request_and_keeps_serving() {
    let mut input: Vec<u8> = Vec::new();
    let garbage = b"this is not json";
    input.extend_from_slice(&(garbage.len() as u32).to_le_bytes());
    input.extend_from_slice(garbage);
    write_frame(&mut input, &Request::List).unwrap();
    write_frame(&mut input, &Request::Shutdown).unwrap();

    let mut server = TwinServer::new(1);
    let mut output: Vec<u8> = Vec::new();
    let shutdown = serve(&mut server, input.as_slice(), &mut output).unwrap();
    assert!(shutdown, "the shutdown frame must end the loop");

    let mut frames = output.as_slice();
    let first: Response = read_frame(&mut frames).unwrap().unwrap();
    assert!(
        matches!(first, Response::Error { error: ServerError::BadRequest { .. } }),
        "{first:?}"
    );
    let second: Response = read_frame(&mut frames).unwrap().unwrap();
    assert!(matches!(second, Response::Sessions { ref sessions } if sessions.is_empty()));
    let third: Response = read_frame(&mut frames).unwrap().unwrap();
    assert!(matches!(third, Response::ShuttingDown));
}
