//! Determinism smoke tests: the simulation must be a pure function of
//! (scenario, config, seed). Future parallel Monte-Carlo work must not
//! break bit-identical reruns — these tests are the guard.

use fuzzy_handover::core::{ControllerConfig, FuzzyHandoverController};
use fuzzy_handover::sim::monte_carlo::{run_repetitions, run_repetitions_parallel};
use fuzzy_handover::sim::{Scenario, SimConfig, Simulation, SCENARIO_A_SEED, SCENARIO_B_SEED};

fn paper_policy() -> FuzzyHandoverController {
    let cell_radius = SimConfig::paper_default().layout.cell_radius_km();
    FuzzyHandoverController::new(ControllerConfig::paper_default(cell_radius))
}

/// Same scenario + same seed, run twice → bit-identical `SimResult`.
fn assert_rerun_identical(scenario: Scenario, label: &str) {
    let sim = Simulation::new(SimConfig::paper_default());
    let walk = scenario.trajectory();
    let mut policy_one = paper_policy();
    let mut policy_two = paper_policy();
    let first = sim.run(&walk, &mut policy_one, scenario.seed);
    let second = sim.run(&walk, &mut policy_two, scenario.seed);
    assert_eq!(first, second, "scenario {label} rerun diverged");
    assert!(!first.steps.is_empty(), "scenario {label} produced no steps");
}

#[test]
fn scenario_a_is_deterministic() {
    assert_eq!(Scenario::a().seed, SCENARIO_A_SEED);
    assert_rerun_identical(Scenario::a(), "A");
}

#[test]
fn scenario_b_is_deterministic() {
    assert_eq!(Scenario::b().seed, SCENARIO_B_SEED);
    assert_rerun_identical(Scenario::b(), "B");
}

/// Trajectory generation itself is a pure function of the seed.
#[test]
fn trajectories_are_reproducible() {
    for scenario in [Scenario::a(), Scenario::b()] {
        let first = scenario.trajectory();
        let second = scenario.trajectory();
        assert_eq!(first.waypoints(), second.waypoints());
    }
}

/// Parallel Monte-Carlo must match the sequential reference bit for bit,
/// regardless of worker count — each repetition owns its seed.
#[test]
fn parallel_monte_carlo_matches_sequential() {
    let sim = Simulation::new(SimConfig::paper_default());
    let walk = Scenario::b().trajectory();
    let make = || -> Box<dyn fuzzy_handover::core::HandoverPolicy + Send> {
        Box::new(paper_policy())
    };
    let sequential = run_repetitions(&sim, &walk, make, SCENARIO_B_SEED, 8);
    for threads in [1, 2, 4, 8, 16] {
        let parallel = run_repetitions_parallel(&sim, &walk, make, SCENARIO_B_SEED, 8, threads);
        assert_eq!(sequential, parallel, "diverged with {threads} threads");
    }
}
