//! Determinism smoke tests: the simulation must be a pure function of
//! (scenario, config, seed). Future parallel Monte-Carlo work must not
//! break bit-identical reruns — these tests are the guard.

use fuzzy_handover::core::{ControllerConfig, FuzzyHandoverController};
use fuzzy_handover::mobility::RandomWalk;
use fuzzy_handover::radio::{MeasurementNoise, ShadowingConfig};
use fuzzy_handover::sim::fleet::{
    FleetMobility, FleetSimulation, HomogeneousFleet, PolicyKind,
};
use fuzzy_handover::sim::monte_carlo::{run_repetitions, run_repetitions_parallel};
use fuzzy_handover::sim::{Scenario, SimConfig, Simulation, SCENARIO_A_SEED, SCENARIO_B_SEED};

fn paper_policy() -> FuzzyHandoverController {
    let cell_radius = SimConfig::paper_default().layout.cell_radius_km();
    FuzzyHandoverController::new(ControllerConfig::paper_default(cell_radius))
}

/// Same scenario + same seed, run twice → bit-identical `SimResult`.
fn assert_rerun_identical(scenario: Scenario, label: &str) {
    let sim = Simulation::new(SimConfig::paper_default());
    let walk = scenario.trajectory();
    let mut policy_one = paper_policy();
    let mut policy_two = paper_policy();
    let first = sim.run(&walk, &mut policy_one, scenario.seed);
    let second = sim.run(&walk, &mut policy_two, scenario.seed);
    assert_eq!(first, second, "scenario {label} rerun diverged");
    assert!(!first.steps.is_empty(), "scenario {label} produced no steps");
}

#[test]
fn scenario_a_is_deterministic() {
    assert_eq!(Scenario::a().seed, SCENARIO_A_SEED);
    assert_rerun_identical(Scenario::a(), "A");
}

#[test]
fn scenario_b_is_deterministic() {
    assert_eq!(Scenario::b().seed, SCENARIO_B_SEED);
    assert_rerun_identical(Scenario::b(), "B");
}

/// Trajectory generation itself is a pure function of the seed.
#[test]
fn trajectories_are_reproducible() {
    for scenario in [Scenario::a(), Scenario::b()] {
        let first = scenario.trajectory();
        let second = scenario.trajectory();
        assert_eq!(first.waypoints(), second.waypoints());
    }
}

/// Parallel Monte-Carlo must match the sequential reference bit for bit,
/// regardless of worker count — each repetition owns its seed.
#[test]
fn parallel_monte_carlo_matches_sequential() {
    let sim = Simulation::new(SimConfig::paper_default());
    let walk = Scenario::b().trajectory();
    let make = || -> Box<dyn fuzzy_handover::core::HandoverPolicy + Send> {
        Box::new(paper_policy())
    };
    let sequential = run_repetitions(&sim, &walk, make, SCENARIO_B_SEED, 8);
    for threads in [1, 2, 4, 8, 16] {
        let parallel = run_repetitions_parallel(&sim, &walk, make, SCENARIO_B_SEED, 8, threads);
        assert_eq!(sequential, parallel, "diverged with {threads} threads");
    }
}

fn fleet_config() -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig { sigma_db: 4.0, decorrelation_km: 0.05 };
    cfg.noise = MeasurementNoise::new(1.0);
    cfg.sample_spacing_km = 0.2;
    cfg
}

fn fleet_spec() -> HomogeneousFleet {
    HomogeneousFleet {
        mobility: FleetMobility::RandomWalk(RandomWalk::paper_default(6)),
        policy: PolicyKind::Fuzzy,
        trajectory_seed: 31,
        cell_radius_km: 2.0,
    }
}

/// The fleet engine is a pure function of (spec, config, base seed).
#[test]
fn fleet_reruns_are_bit_identical() {
    let fleet = FleetSimulation::new(fleet_config()).with_workers(4);
    let first = fleet.run(&fleet_spec(), 64, 12);
    let second = fleet.run(&fleet_spec(), 64, 12);
    assert_eq!(first, second, "fleet rerun diverged");
    assert_eq!(first.summary.ues, 64);
    assert!(first.summary.steps > 0);
}

/// Sharded parallel fleet stepping must match the single-worker
/// reference bit for bit for any worker count and chunk size — the
/// same contract the parallel Monte-Carlo established.
#[test]
fn parallel_fleet_matches_single_worker() {
    let reference = FleetSimulation::new(fleet_config()).run(&fleet_spec(), 48, 99);
    for workers in [2, 3, 5, 8, 16] {
        for chunk in [1, 16, 256] {
            let sharded = FleetSimulation::new(fleet_config())
                .with_workers(workers)
                .with_chunk_size(chunk)
                .run(&fleet_spec(), 48, 99);
            assert_eq!(
                reference, sharded,
                "fleet diverged with {workers} workers, chunk {chunk}"
            );
        }
    }
}
