//! Golden-file regression harness for the 17 `repro` experiments.
//!
//! Every experiment's rendered report is pinned under `tests/golden/`
//! as a JSON document; this suite regenerates each report and diffs it
//! against the pinned copy, so refactors can't silently drift the paper
//! numbers. To refresh the goldens after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_repro
//! ```
//!
//! then review the `tests/golden/*.json` diff like any other code change.

use fuzzy_handover::sim::experiments::registry;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct GoldenExperiment {
    id: String,
    title: String,
    output: String,
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn update_requested() -> bool {
    std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1")
}

/// Point at the first differing line so a drift reads like a diff, not
/// like two 3 000-character blobs.
fn first_divergence(golden: &str, fresh: &str) -> String {
    for (n, (g, f)) in golden.lines().zip(fresh.lines()).enumerate() {
        if g != f {
            return format!("first differing line {}:\n  golden: {g}\n  fresh : {f}", n + 1);
        }
    }
    format!(
        "line counts differ: golden {} vs fresh {}",
        golden.lines().count(),
        fresh.lines().count()
    )
}

#[test]
fn golden_experiments_match() {
    let dir = golden_dir();
    let update = update_requested();
    if update {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }

    let mut updated = 0usize;
    for e in registry() {
        let fresh = GoldenExperiment {
            id: e.id.to_string(),
            title: e.title.to_string(),
            output: (e.render)(),
        };
        let path = dir.join(format!("{}.json", e.id));
        if update {
            let json = serde_json::to_string(&fresh).expect("serialize golden");
            std::fs::write(&path, json + "\n").expect("write golden file");
            updated += 1;
            continue;
        }
        let raw = std::fs::read_to_string(&path).unwrap_or_else(|err| {
            panic!(
                "missing golden file {} ({err}); generate with UPDATE_GOLDEN=1 cargo test --test golden_repro",
                path.display()
            )
        });
        let golden: GoldenExperiment =
            serde_json::from_str(&raw).unwrap_or_else(|err| {
                panic!("corrupt golden file {}: {err}", path.display())
            });
        assert_eq!(
            golden.title, fresh.title,
            "experiment {} changed its title; refresh the goldens if intended",
            e.id
        );
        assert!(
            golden.output == fresh.output,
            "experiment {} drifted from tests/golden/{}.json\n{}\n\
             If the change is intended, refresh with UPDATE_GOLDEN=1 cargo test --test golden_repro",
            e.id,
            e.id,
            first_divergence(&golden.output, &fresh.output)
        );
    }
    if update {
        println!("refreshed {updated} golden files in {}", dir.display());
    }
}

#[test]
fn golden_directory_has_no_strays() {
    // Every pinned file corresponds to a current experiment — renamed or
    // deleted experiments must clean up their goldens.
    if update_requested() {
        return;
    }
    let ids: Vec<String> = registry().iter().map(|e| format!("{}.json", e.id)).collect();
    let dir = golden_dir();
    let entries = std::fs::read_dir(&dir)
        .unwrap_or_else(|err| panic!("missing {} ({err}); run UPDATE_GOLDEN=1 once", dir.display()));
    for entry in entries {
        let name = entry.expect("read dir entry").file_name();
        let name = name.to_string_lossy().to_string();
        assert!(
            ids.contains(&name),
            "stray golden file tests/golden/{name} matches no experiment"
        );
    }
}

#[test]
fn golden_covers_every_experiment() {
    if update_requested() {
        return;
    }
    assert_eq!(registry().len(), 17, "the paper reproduction pins 17 experiments");
    for e in registry() {
        assert!(
            golden_dir().join(format!("{}.json", e.id)).exists(),
            "no golden for experiment {}",
            e.id
        );
    }
}
