//! Offline drop-in subset of `crossbeam`: scoped threads, backed by
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! API shape matches `crossbeam::scope`: the closure receives a
//! [`Scope`], `Scope::spawn` passes the scope again to the spawned
//! closure (enabling nested spawns), and the whole call returns
//! `thread::Result` — `Ok` when no child panicked.
//!
//! One behavioural difference: on a child panic, `std::thread::scope`
//! resumes the panic in the parent after joining, so the `Err` branch is
//! unreachable here. Callers that `.expect()` the result (as this
//! workspace does) observe identical behaviour.

#![deny(missing_docs)]

/// Handle for spawning threads tied to a [`scope`] invocation.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives this scope so it can
    /// spawn further threads, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Create a scope for spawning borrowing threads; all threads are joined
/// before this returns.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::Mutex::new(0u64);
        scope(|s| {
            for chunk in data.chunks(2) {
                let total = &total;
                s.spawn(move |_| {
                    let sum: u64 = chunk.iter().sum();
                    *total.lock().unwrap() += sum;
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner().unwrap(), 10);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    flag.store(true, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
