//! Offline drop-in subset of `serde`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the `Serialize`/`Deserialize` traits and derive macros the
//! workspace uses, over a simplified self-describing [`Value`] data
//! model (a JSON superset: integers keep their width). `serde_json`
//! renders [`Value`] to and from JSON text.
//!
//! The derive macros generate externally-tagged enum representations
//! compatible with real serde's default JSON encoding, so persisted
//! documents remain readable if the real crates are swapped in later.

#![deny(missing_docs)]

use std::collections::VecDeque;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing intermediate value every type serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered key/value map (object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable path/expectation message.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the intermediate value model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the intermediate value model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::I64(x) => *x,
                    Value::U64(x) => i64::try_from(*x)
                        .map_err(|_| Error::msg(format!("integer {x} out of range")))?,
                    other => return Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::msg(format!("integer {wide} out of range")))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(x) => Value::I64(x),
                    Err(_) => Value::U64(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: u64 = match v {
                    Value::U64(x) => *x,
                    Value::I64(x) => u64::try_from(*x)
                        .map_err(|_| Error::msg(format!("integer {x} out of range")))?,
                    other => return Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::msg(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            // JSON text can't tell 2.0 from 2; accept integers exactly.
            Value::I64(x) => Ok(*x as f64),
            Value::U64(x) => Ok(*x as f64),
            other => Err(Error::msg(format!("expected f64, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg(format!("expected single char, got {s:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers.
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::msg(format!("expected array of {N}, got {n} items")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $name::from_value(
                                it.next().ok_or_else(|| Error::msg("tuple too short"))?
                            )?,
                        )+);
                        if it.next().is_some() {
                            return Err(Error::msg("tuple too long"));
                        }
                        Ok(out)
                    }
                    other => Err(Error::msg(format!("expected tuple, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Option::<f64>::from_value(&None::<f64>.to_value()).unwrap(), None);
        assert_eq!(Option::<f64>::from_value(&Some(2.5).to_value()).unwrap(), Some(2.5));
    }

    #[test]
    fn u64_wide_values_survive() {
        let big: u64 = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn f64_accepts_integer_values() {
        assert_eq!(f64::from_value(&Value::I64(2)).unwrap(), 2.0);
    }

    #[test]
    fn vecdeque_round_trip() {
        let d: VecDeque<f64> = vec![1.0, 2.0, 3.0].into();
        assert_eq!(VecDeque::<f64>::from_value(&d.to_value()).unwrap(), d);
    }
}
