//! JSON text layer over the offline serde subset's [`serde::Value`].
//!
//! Implements exactly what the workspace uses: [`to_string`] and
//! [`from_str`]. Numbers round-trip exactly: integers keep their width
//! and floats rely on Rust's shortest-round-trip `Display`.

#![deny(missing_docs)]

use serde::{Deserialize, Error, Serialize, Value};

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { text: s, bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's Display prints the shortest representation that
                // round-trips, without exponents — valid JSON.
                out.push_str(&x.to_string());
            } else {
                // Like real serde_json: non-finite floats become null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    // The same input twice: `text` (guaranteed valid UTF-8 by the
    // `from_str` signature) for O(1) char decoding inside strings,
    // `bytes` for position arithmetic everywhere else.
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our writer
                            // (it only escapes control characters), but
                            // accept lone BMP code points.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path: bulk-copy the run of plain bytes up
                    // to the next quote, escape or non-ASCII character.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b >= 0x80 {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.text[start..self.pos]);
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 character. `text` is
                    // valid UTF-8 and `pos` sits on a char boundary, so
                    // slicing cannot panic and decoding is O(1).
                    let c = self.text[self.pos..].chars().next().expect("non-empty rest");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number bytes"))?;
        if !is_float {
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::I64(x));
            }
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
    }

    #[test]
    fn f64_round_trip_is_exact() {
        for &x in &[0.1, 2.0, -1.5e-9, 123456.789, 1e20, f64::MIN_POSITIVE, 0.7] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "{s}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nwith \"quotes\" and \\ backslash \t unicode: héλ".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<f64>> = vec![Some(1.5), None, Some(-2.0)];
        let back: Vec<Option<f64>> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<f64> = from_str(" [ 1 , 2.5 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1.0, 2.5, 3.0]);
    }
}
