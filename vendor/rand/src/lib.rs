//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements exactly the surface the workspace uses:
//!
//! * [`RngCore`] / [`SeedableRng`] / [`Rng`] traits with the same shapes
//!   as `rand_core` 0.6 / `rand` 0.8 (including the PCG32-based
//!   [`SeedableRng::seed_from_u64`] expansion).
//! * [`rngs::StdRng`] — ChaCha with 12 rounds, the same generator family
//!   `rand` 0.8 uses for its `StdRng`, including `BlockRng`'s
//!   word-splitting rules for `next_u64`.
//!
//! Everything is deterministic: same seed, same stream, on every
//! platform. Compatibility with real `rand` 0.8 if it is ever swapped
//! back in:
//!
//! * **Bit-compatible:** the raw `next_u32`/`next_u64` stream,
//!   `seed_from_u64`, and `gen::<f64>()` (53-bit Standard) — verified
//!   by the workspace's seed search rediscovering the pinned scenario
//!   seeds, which flow through `gen::<f64>()` only.
//! * **NOT bit-compatible:** `gen_range` (real rand's `UniformFloat`
//!   uses a 52-bit `[1,2)`-minus-one transform and `UniformInt` uses
//!   32-bit zone rejection; this crate uses 53-bit scaling and 64-bit
//!   Lemire rejection) and `gen_bool` (f64 compare vs `Bernoulli`'s
//!   u64 compare). Both are correct uniform samplers, but a swap
//!   changes the value sequence of any code path using them
//!   (`RandomWaypoint`, `ManhattanGrid`).

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// Map one raw `u64` onto the 53-bit `Standard` f64 in `[0, 1)` — the
/// exact expression of `gen::<f64>()` (rand 0.8's `Standard`), shared by
/// the scalar [`StandardSample`] impl and the bulk
/// [`RngCore::fill_standard_uniform`] so the two can never drift apart.
#[inline(always)]
pub fn standard_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fill `dest` with the next `dest.len()` values of the `u64`
    /// stream. The default is the definition itself — one
    /// [`RngCore::next_u64`] per slot — so every implementation is
    /// bit-identical to repeated scalar draws by construction; block
    /// generators override it to emit whole blocks at a time
    /// ([`rngs::StdRng`] writes whole ChaCha12 blocks into `dest`).
    fn fill_u64_slice(&mut self, dest: &mut [u64]) {
        for slot in dest {
            *slot = self.next_u64();
        }
    }

    /// Fill `dest` with the next `dest.len()` draws of the 53-bit
    /// `Standard` f64 distribution — bit-identical to a loop of
    /// `gen::<f64>()` (both routes go through [`standard_f64`] on the
    /// same `u64` stream).
    fn fill_standard_uniform(&mut self, dest: &mut [f64]) {
        for slot in dest {
            *slot = standard_f64(self.next_u64());
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn fill_u64_slice(&mut self, dest: &mut [u64]) {
        (**self).fill_u64_slice(dest)
    }
    fn fill_standard_uniform(&mut self, dest: &mut [f64]) {
        (**self).fill_standard_uniform(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn fill_u64_slice(&mut self, dest: &mut [u64]) {
        (**self).fill_u64_slice(dest)
    }
    fn fill_standard_uniform(&mut self, dest: &mut [f64]) {
        (**self).fill_standard_uniform(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Create a generator from the full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with PCG32 (the exact algorithm
    /// `rand_core` 0.6 uses), then build the generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        // PCG32 constants from rand_core 0.6.
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits (the
/// `Standard` distribution of real `rand`).
pub trait StandardSample {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1) — rand 0.8's Standard for f64.
        standard_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8: sign bit of a u32.
        (rng.next_u32() as i32) < 0
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for i32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl StandardSample for i64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for u8 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl StandardSample for u16 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl StandardSample for i8 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i8
    }
}

impl StandardSample for i16 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i16
    }
}

impl StandardSample for isize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as isize
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// A range that knows how to sample one uniform value of `T`.
pub trait SampleRange<T> {
    /// Sample a single value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty or inverted range");
        let u = f64::standard_sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Floating rounding can land exactly on `end`; clamp below it.
        if v >= self.end {
            f64_before(self.end)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "inverted range");
        let u = f64::standard_sample(rng);
        let v = lo + (hi - lo) * u;
        v.clamp(lo, hi)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty or inverted range");
        let u = f32::standard_sample(rng);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            f32_before(self.end)
        } else {
            v
        }
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "inverted range");
        let u = f32::standard_sample(rng);
        (lo + (hi - lo) * u).clamp(lo, hi)
    }
}

/// Largest `f64` strictly below `x` (for half-open range clamping).
fn f64_before(x: f64) -> f64 {
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits - 1)
    } else if x < 0.0 {
        f64::from_bits(bits + 1)
    } else {
        -f64::MIN_POSITIVE
    }
}

/// Largest `f32` strictly below `x` (for half-open range clamping).
fn f32_before(x: f32) -> f32 {
    let bits = x.to_bits();
    if x > 0.0 {
        f32::from_bits(bits - 1)
    } else if x < 0.0 {
        f32::from_bits(bits + 1)
    } else {
        -f32::MIN_POSITIVE
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty, $unsigned:ty);* $(;)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty or inverted range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as $unsigned;
                self.start.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "inverted range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as $unsigned;
                if span as u64 == u64::MAX {
                    return <$t>::standard_sample(rng);
                }
                lo.wrapping_add(uniform_below(rng, (span as u64).wrapping_add(1)) as $t)
            }
        }
    )*};
}

impl_int_range! {
    i8 => i64, u64;
    i16 => i64, u64;
    i32 => i64, u64;
    i64 => i64, u64;
    u8 => u64, u64;
    u16 => u64, u64;
    u32 => u64, u64;
    u64 => u64, u64;
    usize => u64, u64;
    isize => i64, u64;
}

/// Uniform draw in `[0, bound)` via widening-multiply with rejection
/// (Lemire's method) — unbiased and deterministic.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "zero-width integer range");
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard uniform distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p not a probability: {p}");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0f64..=5.0);
            assert!((-3.0..=5.0).contains(&x));
            let k: i32 = rng.gen_range(0..4);
            assert!((0..4).contains(&k));
            let u: usize = rng.gen_range(10..=10);
            assert_eq!(u, 10);
        }
    }

    #[test]
    fn f32_narrow_half_open_range_excludes_end() {
        let mut rng = StdRng::seed_from_u64(13);
        let start = 1.0f32;
        let end = f32::from_bits(start.to_bits() + 1); // 1-ULP range
        for _ in 0..1000 {
            let v = rng.gen_range(start..end);
            assert!(v >= start && v < end, "{v} escaped [{start}, {end})");
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn next_u64_word_splitting_is_stable() {
        // next_u64 must equal (hi << 32) | lo of two consecutive next_u32
        // draws, including across the 16-word block boundary.
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..40 {
            let lo = b.next_u32() as u64;
            let hi = b.next_u32() as u64;
            assert_eq!(a.next_u64(), (hi << 32) | lo);
        }
    }
}
