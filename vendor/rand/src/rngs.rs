//! Concrete generators. [`StdRng`] is ChaCha with 12 rounds, the same
//! family real `rand` 0.8 uses, with `BlockRng`-compatible word
//! consumption so streams match the upstream crate.

use crate::{RngCore, SeedableRng};

/// The standard deterministic generator: ChaCha12, seeded explicitly.
///
/// Layout follows the djb ChaCha variant used by `rand_chacha`: a
/// 256-bit key (the seed), a 64-bit block counter starting at zero and a
/// 64-bit stream id of zero. Each 16-word block is consumed
/// word-by-word; `next_u64` takes the low half first, spilling into the
/// next block when a single word remains.
#[derive(Debug, Clone)]
pub struct StdRng {
    /// ChaCha state words 4..12 (the key).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current output block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    index: usize,
}

/// A plain-data capture of a [`StdRng`]'s exact stream position,
/// including the partially consumed output block, so a generator can be
/// serialized mid-block and resumed bit-identically. All fields are
/// public so callers can map the state onto their own (de)serialization
/// format; this crate stays format-agnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRngState {
    /// ChaCha state words 4..12 (the key).
    pub key: [u32; 8],
    /// 64-bit block counter of the *next* block to generate.
    pub counter: u64,
    /// Current output block (possibly partially consumed).
    pub buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    pub index: usize,
}

impl StdRng {
    /// Capture the generator's exact position as plain data.
    pub fn state(&self) -> StdRngState {
        StdRngState { key: self.key, counter: self.counter, buf: self.buf, index: self.index }
    }

    /// Rebuild a generator from a captured state; the resulting stream
    /// continues bit-identically from where [`StdRng::state`] was taken.
    pub fn from_state(state: StdRngState) -> Self {
        StdRng {
            key: state.key,
            counter: state.counter,
            buf: state.buf,
            index: state.index.min(16),
        }
    }
}

const CHACHA_ROUNDS: usize = 12;
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl StdRng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0; // stream id low
        state[15] = 0; // stream id high
        let initial = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buf.iter_mut().zip(state.iter().zip(initial.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        StdRng { key, counter: 0, buf: [0; 16], index: 16 }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        // BlockRng semantics: low word first; if exactly one word is
        // left in the block, it becomes the low half and the first word
        // of the next block the high half.
        if self.index >= 16 {
            self.refill();
        }
        if self.index < 15 {
            let lo = self.buf[self.index] as u64;
            let hi = self.buf[self.index + 1] as u64;
            self.index += 2;
            (hi << 32) | lo
        } else {
            let lo = self.buf[15] as u64;
            self.refill();
            let hi = self.buf[0] as u64;
            self.index = 1;
            (hi << 32) | lo
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ChaCha core sanity: with an all-zero key and 20 rounds our block
    /// function must reproduce the well-known ChaCha20 keystream head.
    /// (We can't pin ChaCha12 against an RFC vector, but the block
    /// assembly, rotation and addition logic is shared.)
    #[test]
    fn chacha20_zero_key_known_answer() {
        // Run the same refill logic with 20 rounds by hand.
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&SIGMA);
        let initial = state;
        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(initial.iter()) {
            *s = s.wrapping_add(*i);
        }
        // First 8 keystream bytes of ChaCha20 with zero key, zero nonce,
        // zero counter: 76 b8 e0 ad a0 f1 3d 90 (djb test vector).
        let mut head = [0u8; 8];
        head[..4].copy_from_slice(&state[0].to_le_bytes());
        head[4..].copy_from_slice(&state[1].to_le_bytes());
        assert_eq!(head, [0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90]);
    }

    #[test]
    fn counter_advances_blocks() {
        let mut rng = StdRng::from_seed([0; 32]);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn state_round_trip_mid_block() {
        let mut rng = StdRng::seed_from_u64(0xFEED);
        // Leave the buffer partially consumed, including the index==15
        // spill case exercised by a trailing next_u32.
        for _ in 0..7 {
            rng.next_u64();
        }
        rng.next_u32();
        let mut restored = StdRng::from_state(rng.state());
        for _ in 0..40 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn state_round_trip_before_first_draw() {
        let rng = StdRng::seed_from_u64(9);
        let mut a = rng.clone();
        let mut b = StdRng::from_state(rng.state());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..5 {
            rng.next_u32();
        }
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }
}
