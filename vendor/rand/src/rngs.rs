//! Concrete generators. [`StdRng`] is ChaCha with 12 rounds, the same
//! family real `rand` 0.8 uses, with `BlockRng`-compatible word
//! consumption so streams match the upstream crate.

use crate::{RngCore, SeedableRng};

/// The standard deterministic generator: ChaCha12, seeded explicitly.
///
/// Layout follows the djb ChaCha variant used by `rand_chacha`: a
/// 256-bit key (the seed), a 64-bit block counter starting at zero and a
/// 64-bit stream id of zero. Each 16-word block is consumed
/// word-by-word; `next_u64` takes the low half first, spilling into the
/// next block when a single word remains.
#[derive(Debug, Clone)]
pub struct StdRng {
    /// ChaCha state words 4..12 (the key).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current output block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    index: usize,
}

/// A plain-data capture of a [`StdRng`]'s exact stream position,
/// including the partially consumed output block, so a generator can be
/// serialized mid-block and resumed bit-identically. All fields are
/// public so callers can map the state onto their own (de)serialization
/// format; this crate stays format-agnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRngState {
    /// ChaCha state words 4..12 (the key).
    pub key: [u32; 8],
    /// 64-bit block counter of the *next* block to generate.
    pub counter: u64,
    /// Current output block (possibly partially consumed).
    pub buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    pub index: usize,
}

impl StdRng {
    /// Capture the generator's exact position as plain data.
    pub fn state(&self) -> StdRngState {
        StdRngState { key: self.key, counter: self.counter, buf: self.buf, index: self.index }
    }

    /// Rebuild a generator from a captured state; the resulting stream
    /// continues bit-identically from where [`StdRng::state`] was taken.
    pub fn from_state(state: StdRngState) -> Self {
        StdRng {
            key: state.key,
            counter: state.counter,
            buf: state.buf,
            index: state.index.min(16),
        }
    }
}

const CHACHA_ROUNDS: usize = 12;
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Lanes of the wide block kernel: four consecutive counter values are
/// hashed together, with every ChaCha word held as a `[u32; 4]` so the
/// quarter-round arithmetic below is plain element-wise integer math the
/// compiler autovectorizes (one 128-bit lane per op on SSE2, wider when
/// unrolled). All operations are exact integer ops, so each lane's output
/// block is identical to the scalar `refill` at the same counter.
/// Lane width of the portable wide kernel: four blocks, sized for
/// SSE2-class (128-bit) vector registers.
const WIDE: usize = 4;

/// Lane width of the AVX2 kernel: eight blocks, so one ChaCha state row
/// fills one 256-bit YMM register and the sixteen rows fill the
/// register file exactly. Selected at runtime by CPU feature detection.
#[cfg(target_arch = "x86_64")]
const WIDE_AVX2: usize = 8;

#[inline(always)]
fn add_w<const W: usize>(a: &mut [u32; W], b: &[u32; W]) {
    for l in 0..W {
        a[l] = a[l].wrapping_add(b[l]);
    }
}

#[inline(always)]
fn xor_rotl_w<const W: usize>(x: &mut [u32; W], y: &[u32; W], r: u32) {
    for l in 0..W {
        x[l] = (x[l] ^ y[l]).rotate_left(r);
    }
}

#[inline(always)]
fn quarter_round_wide<const W: usize>(
    state: &mut [[u32; W]; 16],
    a: usize,
    b: usize,
    c: usize,
    d: usize,
) {
    // Work on register copies; a `[u32; W]` is one vector register, so
    // the loads/stores fold away after inlining.
    let (mut sa, mut sb, mut sc, mut sd) = (state[a], state[b], state[c], state[d]);
    add_w(&mut sa, &sb);
    xor_rotl_w(&mut sd, &sa, 16);
    add_w(&mut sc, &sd);
    xor_rotl_w(&mut sb, &sc, 12);
    add_w(&mut sa, &sb);
    xor_rotl_w(&mut sd, &sa, 8);
    add_w(&mut sc, &sd);
    xor_rotl_w(&mut sb, &sc, 7);
    state[a] = sa;
    state[b] = sb;
    state[c] = sc;
    state[d] = sd;
}

/// Generate the `W` ChaCha12 output blocks at counters
/// `counter .. counter + W` (wrapping) into `out` (length `W * 16`),
/// block-major: `out[l * 16 + w]` is word `w` of block `l`. Exactly the
/// scalar `refill` word stream — the per-lane arithmetic is the same
/// exact integer expression, only evaluated `W` counters at a time.
#[inline(always)]
fn chacha12_wide_core<const W: usize>(key: &[u32; 8], counter: u64, out: &mut [u32]) {
    debug_assert_eq!(out.len(), W * 16);
    let mut state = [[0u32; W]; 16];
    for (w, &sigma) in SIGMA.iter().enumerate() {
        state[w] = [sigma; W];
    }
    for (w, &k) in key.iter().enumerate() {
        state[4 + w] = [k; W];
    }
    // Rows 12/13 are the split 64-bit counter, one lane per block.
    #[allow(clippy::needless_range_loop)]
    for l in 0..W {
        let c = counter.wrapping_add(l as u64);
        state[12][l] = c as u32;
        state[13][l] = (c >> 32) as u32;
    }
    // Words 14/15 stay zero (stream id), as in the scalar refill.
    let initial = state;
    for _ in 0..CHACHA_ROUNDS / 2 {
        // Column round.
        quarter_round_wide(&mut state, 0, 4, 8, 12);
        quarter_round_wide(&mut state, 1, 5, 9, 13);
        quarter_round_wide(&mut state, 2, 6, 10, 14);
        quarter_round_wide(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round_wide(&mut state, 0, 5, 10, 15);
        quarter_round_wide(&mut state, 1, 6, 11, 12);
        quarter_round_wide(&mut state, 2, 7, 8, 13);
        quarter_round_wide(&mut state, 3, 4, 9, 14);
    }
    for w in 0..16 {
        for l in 0..W {
            out[l * 16 + w] = state[w][l].wrapping_add(initial[w][l]);
        }
    }
}

/// The portable four-lane kernel (autovectorizes on baseline SSE2).
fn chacha12_wide_blocks(key: &[u32; 8], counter: u64, out: &mut [u32; WIDE * 16]) {
    chacha12_wide_core::<WIDE>(key, counter, out);
}

/// The same integer arithmetic compiled with AVX2 codegen enabled, eight
/// lanes wide. Bit-identical to the scalar refill by construction —
/// wrapping adds, xors and rotates are exact on every instruction set.
///
/// # Safety
///
/// The caller must have verified at runtime that the CPU supports AVX2
/// (`is_x86_feature_detected!("avx2")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn chacha12_wide_blocks_avx2(key: &[u32; 8], counter: u64, out: &mut [u32; WIDE_AVX2 * 16]) {
    chacha12_wide_core::<WIDE_AVX2>(key, counter, out);
}

impl StdRng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0; // stream id low
        state[15] = 0; // stream id high
        let initial = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buf.iter_mut().zip(state.iter().zip(initial.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        StdRng { key, counter: 0, buf: [0; 16], index: 16 }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        // BlockRng semantics: low word first; if exactly one word is
        // left in the block, it becomes the low half and the first word
        // of the next block the high half.
        if self.index >= 16 {
            self.refill();
        }
        if self.index < 15 {
            let lo = self.buf[self.index] as u64;
            let hi = self.buf[self.index + 1] as u64;
            self.index += 2;
            (hi << 32) | lo
        } else {
            let lo = self.buf[15] as u64;
            self.refill();
            let hi = self.buf[0] as u64;
            self.index = 1;
            (hi << 32) | lo
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Bulk block generation: emit the next `dest.len()` values of the
    /// `u64` stream by hashing whole ChaCha12 blocks straight into the
    /// caller's buffer (four counters at a time through the wide kernel),
    /// instead of one buffered word pair per call.
    ///
    /// **Bit-identity:** the `u64` stream is, by [`RngCore::next_u64`]'s
    /// `BlockRng` rule, consecutive word pairs of the concatenated block
    /// stream — including the index-15 spill, which is just the pair
    /// straddling a block boundary. This method consumes the very same
    /// word pairs: the partially consumed block drains through
    /// [`RngCore::next_u64`] itself, whole blocks are generated by the
    /// same integer arithmetic as `refill`, and the tail draws scalar
    /// again. The generator's `(counter, buf, index)` afterwards is
    /// exactly what the equivalent scalar draw sequence leaves behind, so
    /// [`StdRng::state`] checkpoints taken after (or between) bulk fills
    /// are byte-identical to scalar-path checkpoints.
    ///
    /// A stream left word-misaligned by `next_u32`/`fill_bytes` never
    /// reaches `index == 16` through `next_u64` (the 15-spill lands on
    /// index 1), so such streams simply drain entirely through the scalar
    /// path — still bit-identical, just not accelerated.
    fn fill_u64_slice(&mut self, dest: &mut [u64]) {
        let mut filled = 0;
        // Drain the partially consumed block through the scalar path.
        while filled < dest.len() && self.index != 16 {
            dest[filled] = self.next_u64();
            filled += 1;
        }
        let mut rest = &mut dest[filled..];
        // Whole blocks, several counters at a time through the widest
        // kernel the CPU supports. Keeping the last block in `self.buf`
        // (exhausted) reproduces the exact scalar post-state for mid-run
        // `state()` checkpoints.
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            while rest.len() >= WIDE_AVX2 * 8 {
                let mut words = [0u32; WIDE_AVX2 * 16];
                // SAFETY: AVX2 support was verified just above.
                unsafe { chacha12_wide_blocks_avx2(&self.key, self.counter, &mut words) };
                self.counter = self.counter.wrapping_add(WIDE_AVX2 as u64);
                for (slot, pair) in rest[..WIDE_AVX2 * 8].iter_mut().zip(words.chunks_exact(2)) {
                    *slot = ((pair[1] as u64) << 32) | pair[0] as u64;
                }
                self.buf.copy_from_slice(&words[(WIDE_AVX2 - 1) * 16..]);
                self.index = 16;
                rest = &mut rest[WIDE_AVX2 * 8..];
            }
        }
        while rest.len() >= WIDE * 8 {
            let mut words = [0u32; WIDE * 16];
            chacha12_wide_blocks(&self.key, self.counter, &mut words);
            self.counter = self.counter.wrapping_add(WIDE as u64);
            for (slot, pair) in rest[..WIDE * 8].iter_mut().zip(words.chunks_exact(2)) {
                *slot = ((pair[1] as u64) << 32) | pair[0] as u64;
            }
            self.buf.copy_from_slice(&words[(WIDE - 1) * 16..]);
            self.index = 16;
            rest = &mut rest[WIDE * 8..];
        }
        // Whole single blocks through the scalar refill.
        while rest.len() >= 8 {
            self.refill();
            for (slot, pair) in rest[..8].iter_mut().zip(self.buf.chunks_exact(2)) {
                *slot = ((pair[1] as u64) << 32) | pair[0] as u64;
            }
            self.index = 16;
            rest = &mut rest[8..];
        }
        // Tail inside a fresh block.
        for slot in rest {
            *slot = self.next_u64();
        }
    }

    /// Bulk 53-bit `Standard` f64 draws over [`StdRng::fill_u64_slice`]
    /// — bit-identical to a loop of `gen::<f64>()`.
    fn fill_standard_uniform(&mut self, dest: &mut [f64]) {
        let mut words = [0u64; 64];
        for chunk in dest.chunks_mut(words.len()) {
            let tile = &mut words[..chunk.len()];
            self.fill_u64_slice(tile);
            for (slot, &w) in chunk.iter_mut().zip(tile.iter()) {
                *slot = crate::standard_f64(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ChaCha core sanity: with an all-zero key and 20 rounds our block
    /// function must reproduce the well-known ChaCha20 keystream head.
    /// (We can't pin ChaCha12 against an RFC vector, but the block
    /// assembly, rotation and addition logic is shared.)
    #[test]
    fn chacha20_zero_key_known_answer() {
        // Run the same refill logic with 20 rounds by hand.
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&SIGMA);
        let initial = state;
        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(initial.iter()) {
            *s = s.wrapping_add(*i);
        }
        // First 8 keystream bytes of ChaCha20 with zero key, zero nonce,
        // zero counter: 76 b8 e0 ad a0 f1 3d 90 (djb test vector).
        let mut head = [0u8; 8];
        head[..4].copy_from_slice(&state[0].to_le_bytes());
        head[4..].copy_from_slice(&state[1].to_le_bytes());
        assert_eq!(head, [0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90]);
    }

    #[test]
    fn counter_advances_blocks() {
        let mut rng = StdRng::from_seed([0; 32]);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn state_round_trip_mid_block() {
        let mut rng = StdRng::seed_from_u64(0xFEED);
        // Leave the buffer partially consumed, including the index==15
        // spill case exercised by a trailing next_u32.
        for _ in 0..7 {
            rng.next_u64();
        }
        rng.next_u32();
        let mut restored = StdRng::from_state(rng.state());
        for _ in 0..40 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn state_round_trip_before_first_draw() {
        let rng = StdRng::seed_from_u64(9);
        let mut a = rng.clone();
        let mut b = StdRng::from_state(rng.state());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..5 {
            rng.next_u32();
        }
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }

    #[test]
    fn fill_u64_slice_matches_scalar_draws_and_state() {
        // Every (prefix, length) combination around the block boundaries:
        // bulk fill ≡ repeated next_u64, including the exact post-state.
        for prefix in 0..10usize {
            for len in [0, 1, 3, 7, 8, 9, 31, 32, 33, 64, 100, 129] {
                let mut bulk = StdRng::seed_from_u64(0xB10C);
                let mut scalar = StdRng::seed_from_u64(0xB10C);
                for _ in 0..prefix {
                    bulk.next_u64();
                    scalar.next_u64();
                }
                let mut dest = vec![0u64; len];
                bulk.fill_u64_slice(&mut dest);
                for (i, &word) in dest.iter().enumerate() {
                    assert_eq!(word, scalar.next_u64(), "prefix {prefix} len {len} slot {i}");
                }
                assert_eq!(bulk.state(), scalar.state(), "prefix {prefix} len {len}");
                // The streams stay in lockstep afterwards.
                assert_eq!(bulk.next_u64(), scalar.next_u64());
            }
        }
    }

    #[test]
    fn fill_u64_slice_word_misaligned_stream_matches() {
        // A next_u32 leaves the word stream odd-aligned; the bulk path
        // must still reproduce the scalar pair-with-spill sequence.
        let mut bulk = StdRng::seed_from_u64(5);
        let mut scalar = StdRng::seed_from_u64(5);
        bulk.next_u32();
        scalar.next_u32();
        let mut dest = [0u64; 40];
        bulk.fill_u64_slice(&mut dest);
        for &word in &dest {
            assert_eq!(word, scalar.next_u64());
        }
        assert_eq!(bulk.state(), scalar.state());
    }

    #[test]
    fn fill_standard_uniform_matches_gen_f64() {
        use crate::Rng;
        let mut bulk = StdRng::seed_from_u64(0xF64);
        let mut scalar = StdRng::seed_from_u64(0xF64);
        bulk.next_u64();
        scalar.next_u64();
        let mut dest = [0.0f64; 97];
        bulk.fill_standard_uniform(&mut dest);
        for (i, &u) in dest.iter().enumerate() {
            let reference: f64 = scalar.gen();
            assert_eq!(u.to_bits(), reference.to_bits(), "slot {i}");
        }
        assert_eq!(bulk.state(), scalar.state());
    }

    #[test]
    fn wide_kernel_blocks_match_scalar_refill() {
        // The wide kernels must emit the exact words of scalar refills
        // at consecutive counters, including near counter wrap.
        for counter in [0u64, 1, 17, u64::MAX - 2] {
            let key = [0x0123_4567u32, 0x89ab_cdef, 3, 5, 7, 11, 13, 17];
            let mut wide = [0u32; WIDE * 16];
            chacha12_wide_blocks(&key, counter, &mut wide);
            for l in 0..WIDE {
                let mut rng = StdRng {
                    key,
                    counter: counter.wrapping_add(l as u64),
                    buf: [0; 16],
                    index: 16,
                };
                rng.refill();
                assert_eq!(&wide[l * 16..(l + 1) * 16], &rng.buf, "lane {l} counter {counter}");
            }
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("avx2") {
                let mut wide = [0u32; WIDE_AVX2 * 16];
                // SAFETY: AVX2 support was verified just above.
                unsafe { chacha12_wide_blocks_avx2(&key, counter, &mut wide) };
                for l in 0..WIDE_AVX2 {
                    let mut rng = StdRng {
                        key,
                        counter: counter.wrapping_add(l as u64),
                        buf: [0; 16],
                        index: 16,
                    };
                    rng.refill();
                    assert_eq!(
                        &wide[l * 16..(l + 1) * 16],
                        &rng.buf,
                        "avx2 lane {l} counter {counter}"
                    );
                }
            }
        }
    }

    #[test]
    fn checkpoint_restore_mid_bulk_fill_continues_bit_identically() {
        // state() after a bulk fill restores onto the scalar stream.
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        let mut dest = [0u64; 45];
        rng.fill_u64_slice(&mut dest);
        let mut restored = StdRng::from_state(rng.state());
        let mut more_bulk = [0u64; 23];
        rng.fill_u64_slice(&mut more_bulk);
        for &word in &more_bulk {
            assert_eq!(word, restored.next_u64());
        }
    }
}
