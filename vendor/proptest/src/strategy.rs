//! Value-generation strategies (no shrinking; generation only).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value` from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, f32, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// A boxed generation function (type-erased strategy arm).
pub type BoxedGen<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Erase a strategy into a boxed generation function (for
/// [`prop_oneof!`](crate::prop_oneof)).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedGen<S::Value> {
    Box::new(move |rng| s.generate(rng))
}

/// Uniform choice between several strategies of the same value type.
pub struct Union<T> {
    arms: Vec<BoxedGen<T>>,
}

impl<T> Union<T> {
    /// Build from type-erased arms; panics if empty.
    pub fn new(arms: Vec<BoxedGen<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        (self.arms[idx])(rng)
    }
}
