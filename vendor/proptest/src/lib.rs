//! Offline drop-in subset of `proptest`.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! range and tuple strategies, [`Strategy::prop_map`], [`prop_oneof!`],
//! `prop_assert*!` and [`prop_assume!`].
//!
//! Unlike real proptest there is **no shrinking**; instead every run is
//! fully deterministic: cases derive from a pinned seed
//! ([`test_runner::DEFAULT_RNG_SEED`], overridable via the
//! `PROPTEST_RNG_SEED` environment variable), and a failure report names
//! the exact case seed so it can be replayed.

#![deny(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests. Accepts an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items annotated `#[test]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand each test fn in a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                #[allow(unreachable_code)]
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body; ::core::result::Result::Ok(()) })();
                __outcome
            });
        }
        $crate::__proptest_items!{ ($config) $($rest)* }
    };
}

/// Choose uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = &$a;
        let __b = &$b;
        if !(__a == __b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = &$a;
        let __b = &$b;
        if !(__a == __b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __a,
                __b
            )));
        }
    }};
}

/// Fail the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = &$a;
        let __b = &$b;
        if __a == __b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// Discard the current case (not a failure) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -5.0f64..5.0, k in 0i32..10, u in 1u32..=3) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((0..10).contains(&k));
            prop_assert!((1..=3).contains(&u));
        }

        #[test]
        fn prop_map_and_tuples(v in (0.0f64..1.0, 1.0f64..2.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((1.0..3.0).contains(&v));
        }

        #[test]
        fn oneof_picks_every_arm(x in prop_oneof![0i32..10, 100i32..110]) {
            prop_assert!((0..10).contains(&x) || (100..110).contains(&x));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0i32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn early_return_ok_supported(x in 0i32..100) {
            if x > 50 {
                return Ok(());
            }
            prop_assert!(x <= 50);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            crate::test_runner::run_cases(
                &ProptestConfig::with_cases(16),
                "determinism_probe",
                |rng| {
                    out.push(Strategy::generate(&(0.0f64..1.0), rng));
                    Ok(())
                },
            );
        }
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "determinism_probe_fail")]
    fn failures_panic_with_case_info() {
        crate::test_runner::run_cases(
            &ProptestConfig::with_cases(4),
            "determinism_probe_fail",
            |_rng| Err(crate::test_runner::TestCaseError::fail("boom".to_string())),
        );
    }
}
