//! Deterministic case runner: pinned seed, per-case derived RNG, no
//! shrinking — a failure report names the exact case seed to replay.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG driving value generation inside property tests.
pub type TestRng = StdRng;

/// The pinned default seed: every `cargo test` run generates the same
/// cases unless `PROPTEST_RNG_SEED` overrides it.
pub const DEFAULT_RNG_SEED: u64 = 0x5eed_cafe_f0dd_e555;

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's inputs did not satisfy a `prop_assume!` — discard.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Runner configuration (`ProptestConfig` in real proptest).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Base seed for case generation.
    pub rng_seed: u64,
    /// Max total `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let rng_seed = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_RNG_SEED);
        ProptestConfig { cases: 256, rng_seed, max_global_rejects: 65_536 }
    }
}

impl ProptestConfig {
    /// Default config with a specific case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

/// Derive the RNG seed of one attempt from the base seed
/// (SplitMix64-style mixing so neighbouring attempts decorrelate).
fn case_seed(base: u64, attempt: u64) -> u64 {
    let mut z = base.wrapping_add(attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Drive one property: generate and run cases until `config.cases`
/// succeed; panic (failing the enclosing `#[test]`) on the first
/// assertion failure, naming the case seed for replay.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while passed < config.cases {
        let seed = case_seed(config.rng_seed, attempt);
        let mut rng = TestRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property `{name}`: too many prop_assume! rejections \
                         ({rejected} rejects for {passed}/{} passes)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{name}` failed at case {passed} \
                     (attempt {attempt}, case seed {seed:#018x}, \
                     base seed {:#018x}):\n{msg}",
                    config.rng_seed
                );
            }
        }
        attempt += 1;
    }
}
