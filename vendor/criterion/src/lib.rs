//! Offline drop-in subset of `criterion`.
//!
//! Implements the API surface the bench suite uses — `criterion_group!`
//! / `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkId`], `iter`, `black_box`
//! — with a simple calibrated wall-clock measurement instead of
//! criterion's statistical machinery.
//!
//! Under `cargo test` (cargo passes `--test` to harness-less bench
//! targets) each benchmark body runs exactly once as a smoke test,
//! mirroring real criterion's behaviour.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { test_mode: false, filter: None, sample_size: 100 }
    }
}

impl Criterion {
    /// Apply CLI arguments (`--test` → run each bench once; a bare
    /// string → filter benchmarks by substring; everything else cargo
    /// passes is accepted and ignored).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--exact" | "--nocapture" | "--quiet" | "-q" => {}
                s if s.starts_with("--") => {
                    // Flags with a value (e.g. --measurement-time 5).
                    if args.peek().map(|n| !n.starts_with('-')).unwrap_or(false) {
                        args.next();
                    }
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Override the nominal sample size (scales measurement effort).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 10, "criterion requires sample_size >= 10");
        self.sample_size = n;
        self
    }

    /// Benchmark a single function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self.test_mode, &self.filter, self.sample_size, &id.0, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 10, "criterion requires sample_size >= 10");
        self.sample_size = Some(n);
        self
    }

    /// Benchmark a function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(self.criterion.test_mode, &self.criterion.filter, n, &full, &mut f);
        self
    }

    /// Benchmark a function over an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(self.criterion.test_mode, &self.criterion.filter, n, &full, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Identifier of one benchmark (function name and/or parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing harness handed to each benchmark body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    result_ns: Option<f64>,
}

impl Bencher {
    /// Measure a closure: calibrated wall-clock mean over enough
    /// iterations to cover a minimum measurement window.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.result_ns = None;
            return;
        }
        // Calibrate: double iterations until the batch takes >= 1 ms.
        let mut iters: u64 = 1;
        let calibration_floor = Duration::from_millis(1);
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= calibration_floor || iters >= 1 << 24 {
                break;
            }
            iters *= 2;
        }
        // Measure: a window proportional to the nominal sample size.
        let window = Duration::from_millis((self.sample_size as u64).clamp(10, 500));
        let mut total_iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < window {
            for _ in 0..iters {
                black_box(f());
            }
            total_iters += iters;
        }
        let elapsed = start.elapsed();
        self.result_ns = Some(elapsed.as_nanos() as f64 / total_iters as f64);
    }
}

fn run_one(
    test_mode: bool,
    filter: &Option<String>,
    sample_size: usize,
    name: &str,
    f: &mut dyn FnMut(&mut Bencher),
) {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher { test_mode, sample_size, result_ns: None };
    f(&mut bencher);
    match bencher.result_ns {
        Some(ns) if ns >= 1_000_000.0 => {
            println!("{name:<50} {:>12.3} ms/iter", ns / 1_000_000.0);
        }
        Some(ns) if ns >= 1_000.0 => {
            println!("{name:<50} {:>12.3} us/iter", ns / 1_000.0);
        }
        Some(ns) => {
            println!("{name:<50} {:>12.1} ns/iter", ns);
        }
        None => {
            println!("{name:<50} ok (test mode)");
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(c: &mut Criterion) {
        c.bench_function("probe/add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        let mut g = c.benchmark_group("probe/group");
        g.sample_size(10);
        g.bench_function(BenchmarkId::from_parameter(42), |b| b.iter(|| black_box(42)));
        g.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * black_box(x))
        });
        g.finish();
    }

    #[test]
    fn harness_runs_in_test_mode() {
        let mut c = Criterion { test_mode: true, filter: None, sample_size: 100 };
        probe(&mut c);
    }

    #[test]
    fn measurement_mode_produces_timing() {
        let mut b = Bencher { test_mode: false, sample_size: 10, result_ns: None };
        b.iter(|| black_box(3u32).wrapping_mul(5));
        assert!(b.result_ns.is_some());
        assert!(b.result_ns.unwrap() > 0.0);
    }
}
