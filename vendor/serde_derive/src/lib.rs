//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde subset.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; this crate parses the item's raw token stream directly.
//! Supported shapes (everything the workspace derives on):
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums with unit, tuple and struct variants (externally tagged,
//!   matching real serde's default JSON representation);
//! * no generics, no `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the offline subset's `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (the offline subset's `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// A minimal item model.
// ---------------------------------------------------------------------------

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

// ---------------------------------------------------------------------------
// Token-stream parsing.
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("#[derive(Serialize/Deserialize)]: generics are not supported by the offline serde subset (type `{name}`)");
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unsupported struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, found {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    }
}

/// Skip outer attributes (`#[...]`, including doc comments) and a
/// visibility qualifier (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parse `name: Type, ...` field lists, tracking `<...>` nesting so
/// commas inside generic types don't split fields.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let fname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{fname}`, found {other}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(fname);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advance past one type expression: everything up to the next comma at
/// angle-bracket depth zero. The `>` of an `->` arrow (fn-pointer
/// return types) does not close an angle bracket.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    let mut prev_was_joint_minus = false;
    while *i < tokens.len() {
        let mut joint_minus = false;
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && !prev_was_joint_minus => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            TokenTree::Punct(p) if p.as_char() == '-' => {
                joint_minus = p.spacing() == proc_macro::Spacing::Joint;
            }
            _ => {}
        }
        prev_was_joint_minus = joint_minus;
        *i += 1;
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let vname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) — same comma-splitting
        // rules as a type expression.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type(&tokens, &mut i);
        }
        variants.push((vname, fields));
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (as strings; parsed back into a TokenStream).
// ---------------------------------------------------------------------------

fn ser_named_fields(fields: &[String], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(\"{f}\".to_string(), ::serde::Serialize::to_value(&{access_prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

fn de_named_fields(fields: &[String], source: &str, type_label: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match {source}.get(\"{f}\") {{ \
                   Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                   None => return Err(::serde::Error::msg(\
                       \"missing field `{f}` in {type_label}\")) }},"
            )
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Named(fs) => ser_named_fields(fs, "self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                             ::serde::Value::Seq(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(vec![\
                             (\"{v}\".to_string(), ::serde::Value::Map(vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ \
                     match self {{ {} }} }} }}",
                arms.join(" ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Unit => format!(
                "match __v {{ ::serde::Value::Null => Ok({name}), \
                 __other => Err(::serde::Error::msg(format!(\
                     \"expected null for {name}, got {{:?}}\", __other))) }}"
            ),
            Fields::Tuple(1) => {
                format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
            }
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                    .collect();
                format!(
                    "match __v {{ \
                       ::serde::Value::Seq(__items) if __items.len() == {n} => \
                         Ok({name}({})), \
                       __other => Err(::serde::Error::msg(format!(\
                           \"expected {n}-element sequence for {name}, got {{:?}}\", __other))) }}",
                    items.join(", ")
                )
            }
            Fields::Named(fs) => {
                let fields_code = de_named_fields(fs, "__v", name);
                format!(
                    "match __v {{ \
                       ::serde::Value::Map(_) => Ok({name} {{ {fields_code} }}), \
                       __other => Err(::serde::Error::msg(format!(\
                           \"expected map for {name}, got {{:?}}\", __other))) }}"
                )
            }
        },
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => match __inner {{ \
                               ::serde::Value::Seq(__items) if __items.len() == {n} => \
                                 Ok({name}::{v}({})), \
                               __other => Err(::serde::Error::msg(format!(\
                                   \"expected {n}-element sequence for {name}::{v}, got {{:?}}\", \
                                   __other))) }},",
                            items.join(", ")
                        ))
                    }
                    Fields::Named(fs) => {
                        let fields_code = de_named_fields(fs, "__inner", &format!("{name}::{v}"));
                        Some(format!(
                            "\"{v}\" => match __inner {{ \
                               ::serde::Value::Map(_) => Ok({name}::{v} {{ {fields_code} }}), \
                               __other => Err(::serde::Error::msg(format!(\
                                   \"expected map for {name}::{v}, got {{:?}}\", __other))) }},",
                        ))
                    }
                })
                .collect();

            let mut outer_arms = Vec::new();
            if !unit_arms.is_empty() {
                outer_arms.push(format!(
                    "::serde::Value::Str(__s) => match __s.as_str() {{ {} \
                       __other => Err(::serde::Error::msg(format!(\
                           \"unknown {name} variant `{{}}`\", __other))) }},",
                    unit_arms.join(" ")
                ));
            }
            if !data_arms.is_empty() {
                outer_arms.push(format!(
                    "::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                       let (__tag, __inner) = &__entries[0]; \
                       match __tag.as_str() {{ {} \
                         __other => Err(::serde::Error::msg(format!(\
                             \"unknown {name} variant `{{}}`\", __other))) }} }},",
                    data_arms.join(" ")
                ));
            }
            outer_arms.push(format!(
                "__other => Err(::serde::Error::msg(format!(\
                     \"unexpected value for {name}: {{:?}}\", __other))),"
            ));
            format!("match __v {{ {} }}", outer_arms.join(" "))
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{ \
             {body} }} }}"
    )
}
