//! Offline drop-in subset of `parking_lot`, backed by `std::sync`.
//!
//! Only the surface the workspace uses: [`Mutex`] with panic-free
//! `lock` (poisoning is ignored, matching parking_lot semantics) and
//! [`Mutex::into_inner`].

#![deny(missing_docs)]

use std::sync::TryLockError;

/// A mutual exclusion primitive with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread. Unlike `std`,
    /// poisoning never propagates (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference to the underlying data (no locking
    /// needed: `&mut self` guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
