//! # fuzzy-handover
//!
//! A full reproduction of *"A Fuzzy-based Handover System for Avoiding
//! Ping-Pong Effect in Wireless Cellular Networks"* (Barolli, Xhafa,
//! Durresi, Koyama — ICPP Workshops 2008) as a reusable Rust workspace.
//!
//! This umbrella crate re-exports the whole stack:
//!
//! * [`fuzzy`] — the generic Mamdani/Sugeno fuzzy-inference engine.
//! * [`geometry`] — hexagonal cell layouts and the paper's `(i, j)`
//!   labels.
//! * [`radio`] — tilted-dipole antennas, path loss, shadow fading, RSS
//!   measurement.
//! * [`mobility`] — the Monte-Carlo random walk and friends.
//! * [`core`] — the paper's contribution: the 64-rule FLC and the
//!   POTLC → FLC → PRTLC handover pipeline, plus baseline algorithms.
//! * [`sim`] — the simulation engine, the multi-UE fleet engine with its
//!   scenario-matrix runner, and every table/figure experiment.
//! * [`server`] — the digital-twin service: long-running tenant
//!   sessions over the fleet engine, with incremental advance,
//!   live queries, policy hot-swap, and sealed persistence.
//!
//! ## Quickstart
//!
//! ```
//! use fuzzy_handover::core::{build_paper_flc, ControllerConfig, FuzzyHandoverController};
//! use fuzzy_handover::core::FlcInputs;
//!
//! // Raw FLC: a collapsing serving signal, a strong neighbour, far from
//! // the serving BS — clearly a handover.
//! let flc = build_paper_flc();
//! let hd = flc.evaluate(&[-6.0, -88.0, 1.2]).unwrap()[0];
//! assert!(hd > 0.7);
//!
//! // The full three-stage controller (it shares the process-wide
//! // compiled FLC plan; `mut` only feeds its evaluation scratch).
//! let mut controller =
//!     FuzzyHandoverController::new(ControllerConfig::paper_default(2.0));
//! let inputs = FlcInputs { cssp_db: -6.0, ssn_dbm: -88.0, dmb_norm: 1.2 };
//! assert!(controller.evaluate_hd(&inputs) > 0.7);
//! ```
//!
//! Run `cargo run -p handover-sim --bin repro` to regenerate every table
//! and figure of the paper; see EXPERIMENTS.md for the paper-vs-measured
//! record.

#![deny(missing_docs)]

/// The paper's contribution: FLC, controller pipeline, baselines, metrics.
pub mod core {
    pub use handover_core::*;
}

/// Generic fuzzy-inference engine.
pub mod fuzzy {
    pub use fuzzylogic::*;
}

/// Hexagonal-lattice geometry.
pub mod geometry {
    pub use cellgeom::*;
}

/// Radio propagation substrate.
pub mod radio {
    pub use ::radiolink::*;
}

/// Mobility models.
pub mod mobility {
    pub use ::mobility::*;
}

/// Simulation engine and paper experiments.
pub mod sim {
    pub use handover_sim::*;
}

/// Digital-twin simulation service: sessions, multi-tenant server, wire
/// codec.
pub mod server {
    pub use handover_server::*;
}
