//! O(1) position → nearest-cells lookup for candidate pruning.
//!
//! Fleet-scale measurement wants, per UE position, the `k` layout cells
//! whose base stations are nearest — *without* scanning the whole cell
//! list per query. A [`NeighborIndex`] precomputes, for every hex cell in
//! (and one ring around) the layout's bounding box, the full list of
//! layout cells sorted by distance from that *anchor* cell's centre. A
//! query then costs one [`HexGrid::cell_at`] cube-rounding (O(1)
//! arithmetic) and one table row lookup, independent of layout size.
//!
//! The returned candidates are sorted by distance **to the anchor cell's
//! centre**, not to the exact query position; within a cell the true
//! k-nearest set can differ near the cell boundary. Callers that prune
//! with it therefore treat the result as a *candidate superset* (take
//! `k ≥` the ring of interest) rather than an exact k-nearest answer —
//! with `k ≥ layout.len()` the answer is trivially exact and complete.

use crate::grid::HexGrid;
use crate::hex::Axial;
use crate::layout::CellLayout;
use crate::vec2::Vec2;

/// Precomputed position → k-nearest-cells table over a [`CellLayout`].
///
/// Rows are indexed by the *anchor* cell (the hex cell containing the
/// query position, clamped into the layout's bounding box plus a
/// one-ring margin); each row lists every layout cell index, nearest
/// anchor first, with ties broken by layout index so the ordering is
/// fully deterministic.
#[derive(Debug, Clone)]
pub struct NeighborIndex {
    grid: HexGrid,
    q_min: i32,
    r_min: i32,
    q_span: i32,
    r_span: i32,
    /// `q_span × r_span` rows of `cells` layout-cell indices each.
    rows: Vec<u32>,
    cells: usize,
}

impl NeighborIndex {
    /// Build the index for a layout. Cost is
    /// `O(anchors · cells log cells)` once; anchors cover the layout's
    /// axial bounding box plus one margin ring (so positions just outside
    /// the rim still anchor to an adjacent cell before clamping kicks in).
    pub fn new(layout: &CellLayout) -> Self {
        let cells = layout.cells();
        let grid = *layout.grid();
        let q_min = cells.iter().map(|c| c.q).min().expect("layout is non-empty") - 1;
        let q_max = cells.iter().map(|c| c.q).max().expect("layout is non-empty") + 1;
        let r_min = cells.iter().map(|c| c.r).min().expect("layout is non-empty") - 1;
        let r_max = cells.iter().map(|c| c.r).max().expect("layout is non-empty") + 1;
        let q_span = q_max - q_min + 1;
        let r_span = r_max - r_min + 1;

        let mut rows = Vec::with_capacity((q_span * r_span) as usize * cells.len());
        let mut scratch: Vec<(f64, u32)> = Vec::with_capacity(cells.len());
        for r in r_min..=r_max {
            for q in q_min..=q_max {
                let anchor = grid.center(Axial::new(q, r));
                scratch.clear();
                scratch.extend(
                    cells
                        .iter()
                        .enumerate()
                        .map(|(idx, &c)| (grid.center(c).distance(anchor), idx as u32)),
                );
                scratch.sort_by(|a, b| {
                    a.0.partial_cmp(&b.0).expect("distances are finite").then(a.1.cmp(&b.1))
                });
                rows.extend(scratch.iter().map(|&(_, idx)| idx));
            }
        }
        NeighborIndex { grid, q_min, r_min, q_span, r_span, rows, cells: cells.len() }
    }

    /// Number of layout cells the index covers (each row's full length).
    pub fn len(&self) -> usize {
        self.cells
    }

    /// An index over a layout is never empty.
    pub fn is_empty(&self) -> bool {
        self.cells == 0
    }

    /// The anchor cell a query position resolves to (before bounding-box
    /// clamping): the hex cell containing the position.
    pub fn anchor_cell(&self, pos: Vec2) -> Axial {
        self.grid.cell_at(pos)
    }

    /// The (up to) `k` layout cell indices nearest to `pos`'s anchor
    /// cell, nearest first. `k ≥ len()` returns every cell, i.e. the
    /// exact distance-sorted list. O(1) per query; never allocates.
    pub fn nearest(&self, pos: Vec2, k: usize) -> &[u32] {
        let anchor = self.grid.cell_at(pos);
        let q = (anchor.q - self.q_min).clamp(0, self.q_span - 1);
        let r = (anchor.r - self.r_min).clamp(0, self.r_span - 1);
        let row = (r * self.q_span + q) as usize * self.cells;
        &self.rows[row..row + k.min(self.cells)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_layout() -> CellLayout {
        CellLayout::hexagonal(2.0, 2)
    }

    #[test]
    fn full_row_is_the_exact_distance_sorted_cell_list() {
        let layout = paper_layout();
        let index = NeighborIndex::new(&layout);
        assert_eq!(index.len(), 19);
        assert!(!index.is_empty());
        for &cell in layout.cells() {
            let pos = layout.bs_position(cell);
            let got = index.nearest(pos, usize::MAX);
            assert_eq!(got.len(), 19);
            // Reference: brute-force sort by distance to the anchor centre
            // (the anchor of a BS position is its own cell).
            let expected = layout.cells_by_distance(pos, 0);
            let got_cells: Vec<_> =
                got.iter().map(|&i| layout.cells()[i as usize]).collect();
            // Same multiset and the first entry is the cell itself; exact
            // order can differ only between equidistant cells.
            assert_eq!(got_cells[0], cell);
            for (g, e) in got.iter().zip(&expected) {
                let gd = layout.bs_position(layout.cells()[*g as usize]).distance(pos);
                assert!((gd - e.1).abs() < 1e-9, "distance rank drifted at {cell}");
            }
        }
    }

    #[test]
    fn k_truncates_and_keeps_the_anchor_first() {
        let layout = paper_layout();
        let index = NeighborIndex::new(&layout);
        let pos = Vec2::new(0.1, -0.2); // well inside the origin cell
        let top1 = index.nearest(pos, 1);
        assert_eq!(layout.cells()[top1[0] as usize], Axial::ORIGIN);
        let top7 = index.nearest(pos, 7);
        assert_eq!(top7.len(), 7);
        // The 7-nearest of an interior anchor are the cell + its 6
        // lattice neighbours.
        let mut got: Vec<Axial> =
            top7.iter().map(|&i| layout.cells()[i as usize]).collect();
        let mut expected = vec![Axial::ORIGIN];
        expected.extend(Axial::ORIGIN.neighbors());
        got.sort_by_key(|c| (c.q, c.r));
        expected.sort_by_key(|c| (c.q, c.r));
        assert_eq!(got, expected);
    }

    #[test]
    fn far_outside_positions_clamp_gracefully() {
        let layout = paper_layout();
        let index = NeighborIndex::new(&layout);
        for pos in [
            Vec2::new(1000.0, 0.0),
            Vec2::new(-500.0, 700.0),
            Vec2::new(0.0, -999.0),
        ] {
            let got = index.nearest(pos, 5);
            assert_eq!(got.len(), 5);
            // All indices valid and distinct.
            let mut seen = got.to_vec();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), 5);
            assert!(got.iter().all(|&i| (i as usize) < layout.len()));
        }
    }

    #[test]
    fn margin_ring_anchors_resolve_without_clamping() {
        // A position one cell outside the rim anchors to its own (off-
        // layout) cell, whose row still lists in-layout cells nearest
        // first.
        let layout = paper_layout();
        let index = NeighborIndex::new(&layout);
        let outside = layout.grid().center(Axial::new(3, 0));
        assert_eq!(index.anchor_cell(outside), Axial::new(3, 0));
        let got = index.nearest(outside, 3);
        // Nearest layout cell to the (3, 0) centre is (2, 0).
        assert_eq!(layout.cells()[got[0] as usize], Axial::new(2, 0));
    }

    #[test]
    fn deterministic_across_rebuilds() {
        let layout = paper_layout();
        let a = NeighborIndex::new(&layout);
        let b = NeighborIndex::new(&layout);
        for k in 0..40 {
            let pos = Vec2::from_polar(0.3 * k as f64, 0.9 * k as f64);
            assert_eq!(a.nearest(pos, 7), b.nearest(pos, 7));
        }
    }

    #[test]
    fn single_cell_layout() {
        let layout = CellLayout::from_cells(1.0, [Axial::new(2, -1)]);
        let index = NeighborIndex::new(&layout);
        assert_eq!(index.len(), 1);
        assert_eq!(index.nearest(Vec2::ZERO, 4), &[0]);
    }
}
