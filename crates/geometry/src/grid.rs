//! World-space embedding of the hex lattice (pointy-top orientation).

use crate::hex::Axial;
use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// A pointy-top hexagonal grid embedded in the plane.
///
/// `circumradius` is the cell's centre-to-corner distance `R` (the paper's
/// "cell radius", 1–2 km). Adjacent cell centres are `√3 R` apart and the
/// inradius (centre-to-edge) is `√3/2 R`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HexGrid {
    /// Centre-to-corner distance `R` in kilometres.
    pub circumradius: f64,
}

impl HexGrid {
    /// Construct a grid with the given cell circumradius (must be positive
    /// and finite).
    pub fn new(circumradius: f64) -> Self {
        assert!(
            circumradius.is_finite() && circumradius > 0.0,
            "cell radius must be positive, got {circumradius}"
        );
        HexGrid { circumradius }
    }

    /// Centre-to-edge distance (`√3/2 R`).
    pub fn inradius(&self) -> f64 {
        3.0f64.sqrt() / 2.0 * self.circumradius
    }

    /// Distance between adjacent cell centres (`√3 R`).
    pub fn center_spacing(&self) -> f64 {
        3.0f64.sqrt() * self.circumradius
    }

    /// World position of a cell centre (where the paper places the BS).
    pub fn center(&self, cell: Axial) -> Vec2 {
        let r = self.circumradius;
        Vec2 {
            x: r * 3.0f64.sqrt() * (cell.q as f64 + cell.r as f64 / 2.0),
            y: r * 1.5 * cell.r as f64,
        }
    }

    /// Fractional axial coordinates of a world point (before rounding).
    fn fractional_axial(&self, p: Vec2) -> (f64, f64) {
        let r = self.circumradius;
        let q = (3.0f64.sqrt() / 3.0 * p.x - p.y / 3.0) / r;
        let s = (2.0 / 3.0 * p.y) / r;
        (q, s)
    }

    /// The cell containing a world point (cube rounding; boundary points
    /// resolve deterministically to the nearest centre).
    pub fn cell_at(&self, p: Vec2) -> Axial {
        let (qf, rf) = self.fractional_axial(p);
        cube_round(qf, rf)
    }

    /// The six corners of a cell, counter-clockwise, starting at the
    /// east-south-east corner (pointy-top: corners at −30° + 60°·k).
    pub fn corners(&self, cell: Axial) -> [Vec2; 6] {
        let c = self.center(cell);
        let mut out = [Vec2::ZERO; 6];
        for (k, o) in out.iter_mut().enumerate() {
            let angle = std::f64::consts::PI / 180.0 * (60.0 * k as f64 - 30.0);
            *o = c + Vec2::from_polar(self.circumradius, angle);
        }
        out
    }

    /// True when the world point lies in the cell (cube-rounding
    /// convention, so every point belongs to exactly one cell).
    pub fn contains(&self, cell: Axial, p: Vec2) -> bool {
        self.cell_at(p) == cell
    }

    /// Signed distance from `p` to the boundary of `cell`: positive inside,
    /// negative outside, zero on an edge.
    ///
    /// Uses the three edge-normal axes of a pointy-top hexagon (0°, 60°,
    /// 120°): the hexagon is `{ x : max_k |x · n_k| ≤ inradius }`.
    pub fn boundary_distance(&self, cell: Axial, p: Vec2) -> f64 {
        let d = p - self.center(cell);
        let axes = [
            Vec2::new(1.0, 0.0),
            Vec2::from_polar(1.0, std::f64::consts::PI / 3.0),
            Vec2::from_polar(1.0, 2.0 * std::f64::consts::PI / 3.0),
        ];
        let reach = axes.iter().map(|n| d.dot(*n).abs()).fold(0.0, f64::max);
        self.inradius() - reach
    }
}

/// Round fractional cube coordinates to the nearest lattice cell.
fn cube_round(qf: f64, rf: f64) -> Axial {
    let sf = -qf - rf;
    let mut q = qf.round();
    let mut r = rf.round();
    let s = sf.round();
    let dq = (q - qf).abs();
    let dr = (r - rf).abs();
    let ds = (s - sf).abs();
    if dq > dr && dq > ds {
        q = -r - s;
    } else if dr > ds {
        r = -q - s;
    }
    Axial { q: q as i32, r: r as i32 }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn center_positions() {
        let g = HexGrid::new(2.0);
        assert_eq!(g.center(Axial::ORIGIN), Vec2::ZERO);
        let east = g.center(Axial::new(1, 0));
        assert!((east.x - 2.0 * 3.0f64.sqrt()).abs() < EPS);
        assert!(east.y.abs() < EPS);
        let se = g.center(Axial::new(0, 1));
        assert!((se.x - 3.0f64.sqrt()).abs() < EPS);
        assert!((se.y - 3.0).abs() < EPS);
    }

    #[test]
    fn neighbor_centers_equidistant() {
        let g = HexGrid::new(1.5);
        let c = g.center(Axial::new(2, -1));
        for n in Axial::new(2, -1).neighbors() {
            let d = c.distance(g.center(n));
            assert!((d - g.center_spacing()).abs() < EPS, "spacing {d}");
        }
    }

    #[test]
    fn paper_cells_land_where_figure_shows() {
        // With R = 2 km, the paper's neighbour cell (2,-1) (axial (1,-1))
        // sits north-east of the origin; (1,-2) (axial (0,-1)) north-west.
        let g = HexGrid::new(2.0);
        let a = crate::hex::PaperCoord::new(2, -1).to_axial().unwrap();
        let p = g.center(a);
        assert!(p.x > 0.0 && p.y < 0.0 || p.y > 0.0, "off-origin");
        assert!((p.norm() - g.center_spacing()).abs() < EPS, "first ring");
    }

    #[test]
    fn cell_at_centers_round_trips() {
        let g = HexGrid::new(2.0);
        for cell in Axial::ORIGIN.spiral(4) {
            assert_eq!(g.cell_at(g.center(cell)), cell, "center of {cell}");
        }
    }

    #[test]
    fn cell_at_perturbed_centers() {
        let g = HexGrid::new(1.0);
        // Points well inside the inradius always resolve to their cell.
        for cell in Axial::ORIGIN.spiral(3) {
            let c = g.center(cell);
            for angle_deg in (0..360).step_by(30) {
                let angle = angle_deg as f64 * std::f64::consts::PI / 180.0;
                let p = c + Vec2::from_polar(0.8 * g.inradius(), angle);
                assert_eq!(g.cell_at(p), cell, "{cell} at {angle_deg}°");
            }
        }
    }

    #[test]
    fn cell_at_agrees_with_nearest_center() {
        // Cube rounding must pick the nearest cell centre (hex Voronoi).
        let g = HexGrid::new(2.0);
        let candidates = Axial::ORIGIN.spiral(6);
        let mut k = 0u32;
        for gx in -30..=30 {
            for gy in -30..=30 {
                let p = Vec2::new(gx as f64 * 0.37, gy as f64 * 0.41);
                let rounded = g.cell_at(p);
                let nearest = candidates
                    .iter()
                    .min_by(|a, b| {
                        g.center(**a)
                            .distance(p)
                            .partial_cmp(&g.center(**b).distance(p))
                            .unwrap()
                    })
                    .copied()
                    .unwrap();
                // Skip exact ties (boundary points) — both answers valid.
                let d_r = g.center(rounded).distance(p);
                let d_n = g.center(nearest).distance(p);
                assert!(d_r <= d_n + 1e-9, "point {p:?}: {rounded} vs {nearest}");
                k += 1;
            }
        }
        assert_eq!(k, 61 * 61);
    }

    #[test]
    fn corners_are_at_circumradius() {
        let g = HexGrid::new(2.0);
        let cell = Axial::new(1, 1);
        let c = g.center(cell);
        let corners = g.corners(cell);
        for corner in corners {
            assert!((corner.distance(c) - 2.0).abs() < EPS);
        }
        // Pointy top: one corner straight up from the centre.
        assert!(corners.iter().any(|p| (p.x - c.x).abs() < EPS && p.y > c.y));
        // Consecutive corners are one side length apart (side = R).
        for k in 0..6 {
            let d = corners[k].distance(corners[(k + 1) % 6]);
            assert!((d - 2.0).abs() < EPS, "side {k} length {d}");
        }
    }

    #[test]
    fn boundary_distance_signs() {
        let g = HexGrid::new(2.0);
        let cell = Axial::ORIGIN;
        assert!((g.boundary_distance(cell, Vec2::ZERO) - g.inradius()).abs() < EPS);
        // Edge midpoint towards the east neighbour: exactly on the boundary.
        let edge_mid = Vec2::new(g.inradius(), 0.0);
        assert!(g.boundary_distance(cell, edge_mid).abs() < EPS);
        // Outside.
        assert!(g.boundary_distance(cell, Vec2::new(3.0 * g.inradius(), 0.0)) < 0.0);
        // Inside but off-centre.
        assert!(g.boundary_distance(cell, Vec2::new(0.3, 0.2)) > 0.0);
    }

    #[test]
    fn boundary_distance_consistent_with_cell_at() {
        let g = HexGrid::new(1.0);
        for gx in -20..=20 {
            for gy in -20..=20 {
                let p = Vec2::new(gx as f64 * 0.17, gy as f64 * 0.19);
                let cell = g.cell_at(p);
                let d = g.boundary_distance(cell, p);
                assert!(d >= -1e-9, "containing cell has non-negative distance, got {d} at {p:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_radius_rejected() {
        let _ = HexGrid::new(0.0);
    }

    #[test]
    fn serde_round_trip() {
        let g = HexGrid::new(1.25);
        let back: HexGrid = serde_json::from_str(&serde_json::to_string(&g).unwrap()).unwrap();
        assert_eq!(g, back);
    }
}
