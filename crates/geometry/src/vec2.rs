//! Plain 2-D vector and point arithmetic.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector (or point) in kilometres, matching the paper's plots.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// East–west component.
    pub x: f64,
    /// North–south component.
    pub y: f64,
}

impl Vec2 {
    /// The origin.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Construct from components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Construct from polar form: `(r cos θ, r sin θ)`.
    ///
    /// This is exactly the paper's random-walk step, eq. (1):
    /// `Δx = d cos θ, Δy = d sin θ`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Vec2 { x: r * theta.cos(), y: r * theta.sin() }
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Polar angle in radians, in `(-π, π]` (via `atan2`).
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Rotate counter-clockwise by `theta` radians.
    pub fn rotate(self, theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Vec2 { x: c * self.x - s * self.y, y: s * self.x + c * self.y }
    }

    /// Unit vector in the same direction; `None` for (near-)zero vectors.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Linear interpolation: `self + t (other - self)`.
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// True when both components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2 { x: self.x + rhs.x, y: self.y + rhs.y }
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2 { x: self.x - rhs.x, y: self.y - rhs.y }
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2 { x: self.x * rhs, y: self.y * rhs }
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2 { x: self.x / rhs, y: self.y / rhs }
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2 { x: -self.x, y: -self.y }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, Vec2::new(2.0, 4.0));
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn dot_cross_norm() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.dot(a), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        let b = Vec2::new(-4.0, 3.0);
        assert_eq!(a.dot(b), 0.0, "perpendicular");
        assert_eq!(a.cross(b), 25.0);
        assert_eq!(b.cross(a), -25.0);
    }

    #[test]
    fn distance_and_lerp() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.5, 2.0));
    }

    #[test]
    fn polar_round_trip() {
        let v = Vec2::from_polar(2.0, PI / 6.0);
        assert!((v.x - 3.0f64.sqrt()).abs() < EPS);
        assert!((v.y - 1.0).abs() < EPS);
        assert!((v.norm() - 2.0).abs() < EPS);
        assert!((v.angle() - PI / 6.0).abs() < EPS);
    }

    #[test]
    fn rotation() {
        let v = Vec2::new(1.0, 0.0);
        let r = v.rotate(FRAC_PI_2);
        assert!((r.x).abs() < EPS);
        assert!((r.y - 1.0).abs() < EPS);
        let back = r.rotate(-FRAC_PI_2);
        assert!((back.x - 1.0).abs() < EPS && back.y.abs() < EPS);
        // Rotation preserves norms.
        let w = Vec2::new(-2.5, 1.75);
        assert!((w.rotate(1.234).norm() - w.norm()).abs() < EPS);
    }

    #[test]
    fn normalization() {
        let v = Vec2::new(3.0, 4.0);
        let n = v.normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < EPS);
        assert!((n.x - 0.6).abs() < EPS);
        assert_eq!(Vec2::ZERO.normalized(), None);
    }

    #[test]
    fn finiteness() {
        assert!(Vec2::new(1.0, 2.0).is_finite());
        assert!(!Vec2::new(f64::NAN, 0.0).is_finite());
        assert!(!Vec2::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn serde_round_trip() {
        let v = Vec2::new(1.25, -3.5);
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(v, serde_json::from_str::<Vec2>(&json).unwrap());
    }
}
