//! Finite cellular layouts: a set of cells with base stations at centres.

use crate::grid::HexGrid;
use crate::hex::{Axial, PaperCoord};
use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// A finite hexagonal cellular layout (paper Fig. 6): `rings` concentric
/// rings of cells around the origin, BS at every cell centre.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLayout {
    grid: HexGrid,
    cells: Vec<Axial>,
}

impl CellLayout {
    /// Layout with all cells within `rings` steps of the origin
    /// (`3 rings (rings+1) + 1` cells; the paper draws 2 rings = 19 cells).
    pub fn hexagonal(cell_radius_km: f64, rings: u32) -> Self {
        CellLayout {
            grid: HexGrid::new(cell_radius_km),
            cells: Axial::ORIGIN.spiral(rings),
        }
    }

    /// Layout from an explicit cell list (deduplicated, order preserved).
    pub fn from_cells(cell_radius_km: f64, cells: impl IntoIterator<Item = Axial>) -> Self {
        let mut seen = Vec::new();
        for c in cells {
            if !seen.contains(&c) {
                seen.push(c);
            }
        }
        assert!(!seen.is_empty(), "a layout needs at least one cell");
        CellLayout { grid: HexGrid::new(cell_radius_km), cells: seen }
    }

    /// The underlying world-space grid.
    pub fn grid(&self) -> &HexGrid {
        &self.grid
    }

    /// Cell circumradius in kilometres.
    pub fn cell_radius_km(&self) -> f64 {
        self.grid.circumradius
    }

    /// All cells, in construction (spiral) order.
    pub fn cells(&self) -> &[Axial] {
        &self.cells
    }

    /// Number of cells (= number of base stations).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// A layout is never empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// True when the cell is part of this layout.
    pub fn contains_cell(&self, cell: Axial) -> bool {
        self.cells.contains(&cell)
    }

    /// World position of the cell's base station (the centre).
    pub fn bs_position(&self, cell: Axial) -> Vec2 {
        self.grid.center(cell)
    }

    /// The layout cell containing the point, if any. Points outside every
    /// layout cell return `None` (the MS has left the network).
    pub fn containing_cell(&self, p: Vec2) -> Option<Axial> {
        let cell = self.grid.cell_at(p);
        self.contains_cell(cell).then_some(cell)
    }

    /// The layout cell whose BS is nearest to the point (always defined).
    pub fn nearest_cell(&self, p: Vec2) -> Axial {
        *self
            .cells
            .iter()
            .min_by(|a, b| {
                self.grid
                    .center(**a)
                    .distance(p)
                    .partial_cmp(&self.grid.center(**b).distance(p))
                    .expect("distances are finite")
            })
            .expect("layout is non-empty")
    }

    /// Distance from the point to the cell's BS, in km.
    pub fn distance_to_bs(&self, cell: Axial, p: Vec2) -> f64 {
        self.bs_position(cell).distance(p)
    }

    /// In-layout neighbours of a cell (up to 6).
    pub fn neighbors_of(&self, cell: Axial) -> Vec<Axial> {
        cell.neighbors().into_iter().filter(|n| self.contains_cell(*n)).collect()
    }

    /// Cells sorted by BS distance to the point: `(cell, distance)` pairs,
    /// nearest first. `k = 0` returns all cells.
    pub fn cells_by_distance(&self, p: Vec2, k: usize) -> Vec<(Axial, f64)> {
        let mut v: Vec<(Axial, f64)> = self
            .cells
            .iter()
            .map(|c| (*c, self.grid.center(*c).distance(p)))
            .collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"));
        if k > 0 {
            v.truncate(k);
        }
        v
    }

    /// Paper label of a cell.
    pub fn paper_label(&self, cell: Axial) -> PaperCoord {
        cell.to_paper()
    }

    /// Look up a cell by its paper label.
    pub fn cell_by_paper_label(&self, label: PaperCoord) -> Option<Axial> {
        let axial = label.to_axial()?;
        self.contains_cell(axial).then_some(axial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_layout() -> CellLayout {
        CellLayout::hexagonal(2.0, 2)
    }

    #[test]
    fn hexagonal_layout_counts() {
        assert_eq!(CellLayout::hexagonal(1.0, 0).len(), 1);
        assert_eq!(CellLayout::hexagonal(1.0, 1).len(), 7);
        assert_eq!(paper_layout().len(), 19);
        assert!(!paper_layout().is_empty());
    }

    #[test]
    fn from_cells_dedups() {
        let l = CellLayout::from_cells(
            1.0,
            [Axial::ORIGIN, Axial::new(1, 0), Axial::ORIGIN],
        );
        assert_eq!(l.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_layout_rejected() {
        let _ = CellLayout::from_cells(1.0, []);
    }

    #[test]
    fn bs_positions_match_grid_centers() {
        let l = paper_layout();
        for &c in l.cells() {
            assert_eq!(l.bs_position(c), l.grid().center(c));
        }
        assert_eq!(l.bs_position(Axial::ORIGIN), Vec2::ZERO);
    }

    #[test]
    fn containing_cell_inside_and_outside() {
        let l = paper_layout();
        assert_eq!(l.containing_cell(Vec2::ZERO), Some(Axial::ORIGIN));
        // A point far outside the 2-ring layout.
        assert_eq!(l.containing_cell(Vec2::new(100.0, 0.0)), None);
        // A point inside the first-ring east cell.
        let east = Axial::new(1, 0);
        let p = l.bs_position(east);
        assert_eq!(l.containing_cell(p), Some(east));
    }

    #[test]
    fn nearest_cell_always_defined() {
        let l = paper_layout();
        assert_eq!(l.nearest_cell(Vec2::ZERO), Axial::ORIGIN);
        // Far east: nearest is the outer east cell (2, 0).
        assert_eq!(l.nearest_cell(Vec2::new(1000.0, 0.0)), Axial::new(2, 0));
    }

    #[test]
    fn distance_to_bs() {
        let l = paper_layout();
        let p = Vec2::new(1.0, 0.0);
        assert!((l.distance_to_bs(Axial::ORIGIN, p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_clipped_to_layout() {
        let l = paper_layout();
        assert_eq!(l.neighbors_of(Axial::ORIGIN).len(), 6, "interior cell");
        // A corner cell of the outer ring has 3 in-layout neighbours.
        let corner = Axial::new(2, 0);
        let n = l.neighbors_of(corner);
        assert_eq!(n.len(), 3, "corner cell neighbours: {n:?}");
    }

    #[test]
    fn cells_by_distance_sorted_and_truncated() {
        let l = paper_layout();
        let p = Vec2::new(0.5, 0.5);
        let all = l.cells_by_distance(p, 0);
        assert_eq!(all.len(), 19);
        for w in all.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        let top3 = l.cells_by_distance(p, 3);
        assert_eq!(top3.len(), 3);
        assert_eq!(top3[0].0, Axial::ORIGIN);
    }

    #[test]
    fn paper_labels_round_trip() {
        let l = paper_layout();
        for &c in l.cells() {
            let label = l.paper_label(c);
            assert_eq!(l.cell_by_paper_label(label), Some(c));
        }
        // The paper's named neighbours exist in a 2-ring layout... within
        // ring distance 1 they do:
        for (i, j) in [(2, -1), (1, -2), (-1, 2), (-2, 1), (1, 1), (-1, -1)] {
            assert!(
                l.cell_by_paper_label(PaperCoord::new(i, j)).is_some(),
                "({i},{j}) present"
            );
        }
        // Invalid or out-of-layout labels give None.
        assert_eq!(l.cell_by_paper_label(PaperCoord::new(1, 0)), None);
        assert_eq!(l.cell_by_paper_label(PaperCoord::new(30, 30)), None);
    }

    #[test]
    fn serde_round_trip() {
        let l = paper_layout();
        let back: CellLayout =
            serde_json::from_str(&serde_json::to_string(&l).unwrap()).unwrap();
        assert_eq!(l, back);
    }
}
