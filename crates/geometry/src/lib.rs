//! # cellgeom
//!
//! Geometry substrate for hexagonal cellular layouts (paper Fig. 6).
//!
//! * [`Vec2`] — plain 2-D vector/point math with polar conversions.
//! * [`Axial`] — hex-lattice coordinates (axial/cube), neighbours, rings,
//!   distance and spiral enumeration.
//! * [`PaperCoord`] — the `(i, j)` labelling used in the paper's Fig. 6,
//!   with loss-free conversion to and from [`Axial`].
//! * [`HexGrid`] — world-space embedding of the lattice (pointy-top
//!   orientation): cell centres, corners, point→cell lookup, signed
//!   distance to a cell boundary.
//! * [`CellLayout`] — a finite set of cells (rings around an origin) with
//!   base stations at the centres, as simulated in the paper.
//! * [`NeighborIndex`] — precomputed O(1) position → k-nearest-cells
//!   lookup used by the fleet engine's neighbour-pruned candidate mode.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod grid;
pub mod hex;
pub mod index;
pub mod layout;
pub mod vec2;

pub use grid::HexGrid;
pub use hex::{Axial, PaperCoord, AXIAL_DIRECTIONS};
pub use index::NeighborIndex;
pub use layout::CellLayout;
pub use vec2::Vec2;
