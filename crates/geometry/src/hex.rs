//! Hexagonal lattice coordinates.
//!
//! Two coordinate systems are supported:
//!
//! * [`Axial`] `(q, r)` — the standard axial/cube system (pointy-top
//!   convention), used internally for all lattice algorithms.
//! * [`PaperCoord`] `(i, j)` — the labelling of the paper's Fig. 6, whose
//!   neighbour offsets are `±(1,1)`, `±(1,−2)` and `±(2,−1)`. Valid paper
//!   labels satisfy `i − j ≡ 0 (mod 3)`; the bijection with axial
//!   coordinates is `(i, j) = (q − r, q + 2r)`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Axial hex coordinate (pointy-top). The implicit cube coordinate is
/// `s = −q − r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Axial {
    /// Column axis.
    pub q: i32,
    /// Diagonal axis.
    pub r: i32,
}

/// The six axial neighbour offsets, counter-clockwise starting east.
pub const AXIAL_DIRECTIONS: [Axial; 6] = [
    Axial { q: 1, r: 0 },
    Axial { q: 1, r: -1 },
    Axial { q: 0, r: -1 },
    Axial { q: -1, r: 0 },
    Axial { q: -1, r: 1 },
    Axial { q: 0, r: 1 },
];

impl Axial {
    /// The origin cell.
    pub const ORIGIN: Axial = Axial { q: 0, r: 0 };

    /// Construct from axial components.
    pub const fn new(q: i32, r: i32) -> Self {
        Axial { q, r }
    }

    /// The implicit third cube coordinate `s = −q − r`.
    pub const fn s(self) -> i32 {
        -self.q - self.r
    }

    /// Lattice (hex) distance to another cell: minimum number of steps.
    pub fn distance(self, other: Axial) -> u32 {
        let d = self - other;
        ((d.q.abs() + d.r.abs() + d.s().abs()) / 2) as u32
    }

    /// The six adjacent cells, counter-clockwise starting east.
    pub fn neighbors(self) -> [Axial; 6] {
        let mut out = [Axial::ORIGIN; 6];
        for (o, d) in out.iter_mut().zip(AXIAL_DIRECTIONS) {
            *o = self + d;
        }
        out
    }

    /// True when `other` shares an edge with `self`.
    pub fn is_neighbor(self, other: Axial) -> bool {
        self.distance(other) == 1
    }

    /// All cells at exactly `radius` steps, counter-clockwise. Ring 0 is
    /// the cell itself.
    pub fn ring(self, radius: u32) -> Vec<Axial> {
        if radius == 0 {
            return vec![self];
        }
        let mut out = Vec::with_capacity(6 * radius as usize);
        // Start at the cell `radius` steps in direction 4 (south-west),
        // then walk each of the six sides.
        let mut cur = self + AXIAL_DIRECTIONS[4] * radius as i32;
        for dir in AXIAL_DIRECTIONS {
            for _ in 0..radius {
                out.push(cur);
                cur = cur + dir;
            }
        }
        out
    }

    /// All cells within `radius` steps (a filled hexagon), in spiral order
    /// from the centre outward. Contains `3 r (r + 1) + 1` cells.
    pub fn spiral(self, radius: u32) -> Vec<Axial> {
        let mut out = Vec::with_capacity((3 * radius * (radius + 1) + 1) as usize);
        for k in 0..=radius {
            out.extend(self.ring(k));
        }
        out
    }

    /// Convert to the paper's `(i, j)` labelling.
    pub fn to_paper(self) -> PaperCoord {
        PaperCoord { i: self.q - self.r, j: self.q + 2 * self.r }
    }
}

impl Add for Axial {
    type Output = Axial;
    fn add(self, rhs: Axial) -> Axial {
        Axial { q: self.q + rhs.q, r: self.r + rhs.r }
    }
}

impl Sub for Axial {
    type Output = Axial;
    fn sub(self, rhs: Axial) -> Axial {
        Axial { q: self.q - rhs.q, r: self.r - rhs.r }
    }
}

impl Mul<i32> for Axial {
    type Output = Axial;
    fn mul(self, rhs: i32) -> Axial {
        Axial { q: self.q * rhs, r: self.r * rhs }
    }
}

impl Neg for Axial {
    type Output = Axial;
    fn neg(self) -> Axial {
        Axial { q: -self.q, r: -self.r }
    }
}

impl fmt::Display for Axial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{},{}⟩", self.q, self.r)
    }
}

/// The paper's Fig. 6 cell label `(i, j)`.
///
/// Only labels with `i − j ≡ 0 (mod 3)` denote lattice cells; the six
/// neighbours of `(i, j)` are `(i±1, j±1)`, `(i±1, j∓2)`, `(i±2, j∓1)`
/// exactly as drawn in the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PaperCoord {
    /// First label component.
    pub i: i32,
    /// Second label component.
    pub j: i32,
}

impl PaperCoord {
    /// Construct a label (validity is *not* checked; see
    /// [`PaperCoord::is_valid`]).
    pub const fn new(i: i32, j: i32) -> Self {
        PaperCoord { i, j }
    }

    /// True when the label denotes a lattice cell.
    pub const fn is_valid(self) -> bool {
        (self.i - self.j).rem_euclid(3) == 0
    }

    /// Convert to axial coordinates; `None` for invalid labels.
    pub fn to_axial(self) -> Option<Axial> {
        if !self.is_valid() {
            return None;
        }
        Some(Axial { q: (2 * self.i + self.j) / 3, r: (self.j - self.i) / 3 })
    }

    /// The six neighbour labels, as listed in the paper's Fig. 6.
    pub fn neighbors(self) -> [PaperCoord; 6] {
        const OFFSETS: [(i32, i32); 6] =
            [(1, 1), (-1, -1), (1, -2), (-1, 2), (2, -1), (-2, 1)];
        let mut out = [PaperCoord::new(0, 0); 6];
        for (o, (di, dj)) in out.iter_mut().zip(OFFSETS) {
            *o = PaperCoord::new(self.i + di, self.j + dj);
        }
        out
    }
}

impl fmt::Display for PaperCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.i, self.j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_invariant() {
        for a in Axial::ORIGIN.spiral(3) {
            assert_eq!(a.q + a.r + a.s(), 0);
        }
    }

    #[test]
    fn distance_properties() {
        let a = Axial::new(0, 0);
        let b = Axial::new(2, -1);
        let c = Axial::new(-3, 2);
        assert_eq!(a.distance(a), 0);
        assert_eq!(a.distance(b), b.distance(a), "symmetry");
        assert!(a.distance(c) <= a.distance(b) + b.distance(c), "triangle inequality");
        assert_eq!(a.distance(Axial::new(1, 0)), 1);
        assert_eq!(a.distance(Axial::new(2, 0)), 2);
        assert_eq!(a.distance(Axial::new(1, -1)), 1);
        assert_eq!(a.distance(Axial::new(1, 1)), 2);
    }

    #[test]
    fn neighbors_are_at_distance_one() {
        let c = Axial::new(3, -2);
        let n = c.neighbors();
        assert_eq!(n.len(), 6);
        for x in n {
            assert_eq!(c.distance(x), 1);
            assert!(c.is_neighbor(x));
        }
        // All six are distinct.
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert_ne!(n[i], n[j]);
            }
        }
    }

    #[test]
    fn ring_sizes_and_membership() {
        let c = Axial::new(1, 1);
        assert_eq!(c.ring(0), vec![c]);
        for radius in 1..5u32 {
            let ring = c.ring(radius);
            assert_eq!(ring.len(), (6 * radius) as usize);
            for x in &ring {
                assert_eq!(c.distance(*x), radius, "cell {x} on ring {radius}");
            }
        }
    }

    #[test]
    fn spiral_counts_and_uniqueness() {
        let c = Axial::ORIGIN;
        for radius in 0..5u32 {
            let cells = c.spiral(radius);
            assert_eq!(cells.len(), (3 * radius * (radius + 1) + 1) as usize);
            let mut sorted = cells.clone();
            sorted.sort_by_key(|a| (a.q, a.r));
            sorted.dedup();
            assert_eq!(sorted.len(), cells.len(), "no duplicates");
            assert!(cells.iter().all(|x| c.distance(*x) <= radius));
        }
        assert_eq!(c.spiral(2).len(), 19, "paper-style 2-ring layout");
    }

    #[test]
    fn paper_validity_rule() {
        // Cells named in the paper are all valid.
        for (i, j) in [(0, 0), (2, -1), (1, -2), (-1, 2), (-2, 1), (1, 1), (-1, -1)] {
            assert!(PaperCoord::new(i, j).is_valid(), "({i},{j})");
        }
        // Off-lattice labels are invalid.
        for (i, j) in [(1, 0), (0, 1), (2, 0), (1, -1)] {
            assert!(!PaperCoord::new(i, j).is_valid(), "({i},{j})");
        }
    }

    #[test]
    fn paper_axial_round_trip() {
        for a in Axial::ORIGIN.spiral(4) {
            let p = a.to_paper();
            assert!(p.is_valid());
            assert_eq!(p.to_axial(), Some(a), "round trip through {p}");
        }
        assert_eq!(PaperCoord::new(1, 0).to_axial(), None);
    }

    #[test]
    fn paper_neighbors_match_figure_six() {
        // Fig. 6: the cells around (i, j) are (i−2, j+1), (i−1, j−1),
        // (i−1, j+2), (i+1, j+1), (i+1, j−2), (i+2, j−1).
        let c = PaperCoord::new(0, 0);
        let mut labels: Vec<(i32, i32)> = c.neighbors().iter().map(|p| (p.i, p.j)).collect();
        labels.sort_unstable();
        let mut expected = vec![(-2, 1), (-1, -1), (-1, 2), (1, 1), (1, -2), (2, -1)];
        expected.sort_unstable();
        assert_eq!(labels, expected);
    }

    #[test]
    fn paper_neighbors_are_lattice_neighbors() {
        let c = PaperCoord::new(1, -2);
        let ca = c.to_axial().unwrap();
        for n in c.neighbors() {
            assert!(n.is_valid(), "{n} valid");
            let na = n.to_axial().unwrap();
            assert_eq!(ca.distance(na), 1, "{n} adjacent to {c}");
        }
    }

    #[test]
    fn negation_and_scaling() {
        let a = Axial::new(2, -3);
        assert_eq!(-a, Axial::new(-2, 3));
        assert_eq!(a * 2, Axial::new(4, -6));
        assert_eq!(a + (-a), Axial::ORIGIN);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Axial::new(1, -2).to_string(), "⟨1,-2⟩");
        assert_eq!(PaperCoord::new(2, -1).to_string(), "(2,-1)");
    }

    #[test]
    fn serde_round_trip() {
        let a = Axial::new(-4, 7);
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(a, serde_json::from_str::<Axial>(&json).unwrap());
        let p = PaperCoord::new(2, -1);
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(p, serde_json::from_str::<PaperCoord>(&json).unwrap());
    }
}
