//! Property-based invariants for the hex-lattice geometry.

use cellgeom::{Axial, CellLayout, HexGrid, PaperCoord, Vec2};
use proptest::prelude::*;

fn arb_axial() -> impl Strategy<Value = Axial> {
    (-50i32..=50, -50i32..=50).prop_map(|(q, r)| Axial::new(q, r))
}

fn arb_point() -> impl Strategy<Value = Vec2> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Vec2::new(x, y))
}

proptest! {
    /// Hex distance is a metric.
    #[test]
    fn hex_distance_metric(a in arb_axial(), b in arb_axial(), c in arb_axial()) {
        prop_assert_eq!(a.distance(a), 0);
        prop_assert_eq!(a.distance(b), b.distance(a));
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c));
        if a != b {
            prop_assert!(a.distance(b) > 0);
        }
    }

    /// Axial -> paper -> axial round trip is the identity, and every
    /// produced paper label is valid.
    #[test]
    fn paper_round_trip(a in arb_axial()) {
        let p = a.to_paper();
        prop_assert!(p.is_valid());
        prop_assert_eq!(p.to_axial(), Some(a));
    }

    /// One third of labels are valid; invalid labels convert to None.
    #[test]
    fn invalid_paper_labels_rejected(i in -60i32..=60, j in -60i32..=60) {
        let p = PaperCoord::new(i, j);
        prop_assert_eq!(p.is_valid(), (i - j).rem_euclid(3) == 0);
        prop_assert_eq!(p.to_axial().is_some(), p.is_valid());
    }

    /// World round trip: the centre of any cell resolves back to the cell.
    #[test]
    fn center_round_trip(a in arb_axial(), radius in 0.1f64..10.0) {
        let g = HexGrid::new(radius);
        prop_assert_eq!(g.cell_at(g.center(a)), a);
    }

    /// Any point strictly inside the inradius of a cell resolves to it.
    #[test]
    fn inradius_points_resolve(
        a in arb_axial(),
        radius in 0.1f64..10.0,
        rho in 0.0f64..0.95,
        angle in 0.0f64..std::f64::consts::TAU,
    ) {
        let g = HexGrid::new(radius);
        let p = g.center(a) + Vec2::from_polar(rho * g.inradius(), angle);
        prop_assert_eq!(g.cell_at(p), a);
    }

    /// cell_at picks a centre at least as near as any neighbour's centre.
    #[test]
    fn cell_at_is_voronoi(p in arb_point(), radius in 0.5f64..5.0) {
        let g = HexGrid::new(radius);
        let cell = g.cell_at(p);
        let d0 = g.center(cell).distance(p);
        for n in cell.neighbors() {
            prop_assert!(d0 <= g.center(n).distance(p) + 1e-9);
        }
    }

    /// The signed boundary distance is positive exactly inside (up to
    /// boundary tolerance) and bounded by the inradius.
    #[test]
    fn boundary_distance_bounds(p in arb_point(), radius in 0.5f64..5.0) {
        let g = HexGrid::new(radius);
        let cell = g.cell_at(p);
        let d = g.boundary_distance(cell, p);
        prop_assert!(d >= -1e-9, "containing cell: {d}");
        prop_assert!(d <= g.inradius() + 1e-9);
        // A non-containing far cell must be negative.
        let far = cell + Axial::new(3, 3);
        prop_assert!(g.boundary_distance(far, p) < 0.0);
    }

    /// Rings partition the spiral.
    #[test]
    fn spiral_is_union_of_rings(radius in 0u32..6) {
        let c = Axial::new(2, -1);
        let spiral = c.spiral(radius);
        let from_rings: usize = (0..=radius).map(|k| c.ring(k).len()).sum();
        prop_assert_eq!(spiral.len(), from_rings);
    }

    /// nearest_cell and containing_cell agree whenever the point lies in a
    /// layout cell.
    #[test]
    fn layout_lookup_consistency(p in arb_point(), rings in 0u32..4) {
        let layout = CellLayout::hexagonal(2.0, rings);
        if let Some(cell) = layout.containing_cell(p) {
            prop_assert_eq!(layout.nearest_cell(p), cell);
        }
        // cells_by_distance(_, 1) agrees with nearest_cell.
        let nearest = layout.nearest_cell(p);
        let top = layout.cells_by_distance(p, 1);
        prop_assert!((layout.bs_position(nearest).distance(p) - top[0].1).abs() < 1e-9);
    }

    /// Vector algebra: rotation preserves norm, polar round-trips.
    #[test]
    fn vec2_rotation_isometry(x in -50.0f64..50.0, y in -50.0f64..50.0, t in -7.0f64..7.0) {
        let v = Vec2::new(x, y);
        prop_assert!((v.rotate(t).norm() - v.norm()).abs() < 1e-9);
        let w = v.rotate(t).rotate(-t);
        prop_assert!((w.x - v.x).abs() < 1e-9 && (w.y - v.y).abs() < 1e-9);
    }

    #[test]
    fn vec2_polar_round_trip(r in 0.001f64..100.0, theta in -3.1f64..3.1) {
        let v = Vec2::from_polar(r, theta);
        prop_assert!((v.norm() - r).abs() < 1e-9);
        prop_assert!((v.angle() - theta).abs() < 1e-9);
    }
}
