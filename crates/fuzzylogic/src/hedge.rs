//! Linguistic hedges.
//!
//! A hedge transforms a membership degree to model adverbs such as "very"
//! or "somewhat" in rule antecedents: `IF error IS very large ...`.

use serde::{Deserialize, Serialize};

/// A linguistic hedge applied to a term's membership degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Hedge {
    /// No transformation.
    #[default]
    Identity,
    /// Concentration: `μ²` ("very").
    Very,
    /// Strong concentration: `μ³` ("extremely").
    Extremely,
    /// Dilation: `√μ` ("somewhat" / "more or less").
    Somewhat,
    /// Weak dilation: `μ^(1/3)` ("slightly").
    Slightly,
    /// Intensification: doubles contrast around μ = 0.5.
    Intensify,
    /// Complement: `1 - μ` ("not").
    Not,
}

impl Hedge {
    /// Apply the hedge to a membership degree (clamped into `[0, 1]`).
    #[inline]
    pub fn apply(&self, mu: f64) -> f64 {
        let mu = mu.clamp(0.0, 1.0);
        match self {
            Hedge::Identity => mu,
            Hedge::Very => mu * mu,
            Hedge::Extremely => mu * mu * mu,
            Hedge::Somewhat => mu.sqrt(),
            Hedge::Slightly => mu.cbrt(),
            Hedge::Intensify => {
                if mu <= 0.5 {
                    2.0 * mu * mu
                } else {
                    1.0 - 2.0 * (1.0 - mu) * (1.0 - mu)
                }
            }
            Hedge::Not => 1.0 - mu,
        }
    }

    /// Parse the textual form used by the rule DSL (case-insensitive).
    pub fn from_keyword(word: &str) -> Option<Hedge> {
        match word.to_ascii_lowercase().as_str() {
            "very" => Some(Hedge::Very),
            "extremely" => Some(Hedge::Extremely),
            "somewhat" => Some(Hedge::Somewhat),
            "slightly" => Some(Hedge::Slightly),
            "intensify" => Some(Hedge::Intensify),
            "not" => Some(Hedge::Not),
            _ => None,
        }
    }

    /// All variants, for exhaustive tests.
    pub const ALL: [Hedge; 7] = [
        Hedge::Identity,
        Hedge::Very,
        Hedge::Extremely,
        Hedge::Somewhat,
        Hedge::Slightly,
        Hedge::Intensify,
        Hedge::Not,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_preservation() {
        // Every hedge maps {0, 1} into {0, 1}.
        for h in Hedge::ALL {
            let at0 = h.apply(0.0);
            let at1 = h.apply(1.0);
            assert!(at0 == 0.0 || at0 == 1.0, "{h:?}(0) = {at0}");
            assert!(at1 == 0.0 || at1 == 1.0, "{h:?}(1) = {at1}");
        }
    }

    #[test]
    fn concentration_reduces_membership() {
        for mu in [0.1, 0.3, 0.5, 0.9] {
            assert!(Hedge::Very.apply(mu) < mu);
            assert!(Hedge::Extremely.apply(mu) < Hedge::Very.apply(mu));
        }
    }

    #[test]
    fn dilation_increases_membership() {
        for mu in [0.1, 0.3, 0.5, 0.9] {
            assert!(Hedge::Somewhat.apply(mu) > mu);
            assert!(Hedge::Slightly.apply(mu) > Hedge::Somewhat.apply(mu));
        }
    }

    #[test]
    fn intensify_fixed_points_and_contrast() {
        assert_eq!(Hedge::Intensify.apply(0.0), 0.0);
        assert!((Hedge::Intensify.apply(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(Hedge::Intensify.apply(1.0), 1.0);
        assert!(Hedge::Intensify.apply(0.25) < 0.25, "below 0.5 pushed down");
        assert!(Hedge::Intensify.apply(0.75) > 0.75, "above 0.5 pushed up");
    }

    #[test]
    fn not_is_involutive() {
        for mu in [0.0, 0.2, 0.5, 0.8, 1.0] {
            assert!((Hedge::Not.apply(Hedge::Not.apply(mu)) - mu).abs() < 1e-12);
        }
    }

    #[test]
    fn keyword_parsing() {
        assert_eq!(Hedge::from_keyword("very"), Some(Hedge::Very));
        assert_eq!(Hedge::from_keyword("VERY"), Some(Hedge::Very));
        assert_eq!(Hedge::from_keyword("not"), Some(Hedge::Not));
        assert_eq!(Hedge::from_keyword("quite"), None);
    }

    #[test]
    fn outputs_stay_in_unit_interval() {
        for h in Hedge::ALL {
            for i in 0..=100 {
                let mu = i as f64 / 100.0;
                let y = h.apply(mu);
                assert!((0.0..=1.0).contains(&y), "{h:?}({mu}) = {y}");
            }
        }
    }

    #[test]
    fn clamps_out_of_range_inputs() {
        assert_eq!(Hedge::Very.apply(1.5), 1.0);
        assert_eq!(Hedge::Not.apply(-0.5), 1.0);
    }
}
