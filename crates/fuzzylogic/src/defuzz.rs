//! Defuzzification: reducing an output fuzzy set to a crisp value.

use crate::fuzzyset::{grid_x, slice_area, slice_first_moment, slice_height, SampledSet};
use serde::{Deserialize, Serialize};

/// Defuzzification strategy.
///
/// All strategies operate on the aggregated, sampled output set. `Centroid`
/// is the paper's (and the industry's) default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Defuzzifier {
    /// Center of gravity: `∫ x μ(x) dx / ∫ μ(x) dx`.
    #[default]
    Centroid,
    /// The abscissa that splits the area under μ into two equal halves.
    Bisector,
    /// Mean of the maxima.
    MeanOfMax,
    /// Smallest abscissa attaining the maximum.
    SmallestOfMax,
    /// Largest abscissa attaining the maximum.
    LargestOfMax,
}

impl Defuzzifier {
    /// Defuzzify `set`; `None` when the set is identically zero (no rule
    /// fired).
    pub fn defuzzify(&self, set: &SampledSet) -> Option<f64> {
        self.defuzzify_slice(set.min, set.max, &set.mu)
    }

    /// Defuzzify a membership curve given as raw samples over `[min, max]`
    /// (endpoints included, uniform spacing) without constructing a
    /// [`SampledSet`].
    ///
    /// This is the allocation-free core behind [`Defuzzifier::defuzzify`];
    /// the compiled engine ([`CompiledFis`](crate::CompiledFis)) calls it on
    /// its reusable scratch buffer. `None` when the curve is identically
    /// zero (no rule fired) — or when fewer than two samples are supplied,
    /// since a grid needs two endpoints to span a universe (every engine
    /// path enforces `resolution >= 2` at build time).
    pub fn defuzzify_slice(&self, min: f64, max: f64, mu: &[f64]) -> Option<f64> {
        if mu.len() < 2 {
            return None;
        }
        let height = slice_height(mu);
        if height <= 0.0 {
            return None;
        }
        match self {
            Defuzzifier::Centroid => {
                let area = slice_area(min, max, mu);
                if area <= 0.0 {
                    // Degenerate: positive height but measure-zero area
                    // (single non-zero sample); fall back to mean-of-max.
                    return Defuzzifier::MeanOfMax.defuzzify_slice(min, max, mu);
                }
                Some(slice_first_moment(min, max, mu) / area)
            }
            Defuzzifier::Bisector => {
                let total = slice_area(min, max, mu);
                if total <= 0.0 {
                    return Defuzzifier::MeanOfMax.defuzzify_slice(min, max, mu);
                }
                // Walk trapezoid panels until the running area crosses half.
                let dx = (max - min) / (mu.len() - 1) as f64;
                let mut acc = 0.0;
                let half = total / 2.0;
                for i in 0..mu.len() - 1 {
                    let panel = 0.5 * (mu[i] + mu[i + 1]) * dx;
                    if acc + panel >= half {
                        // Linear interpolation within the panel.
                        let frac = if panel > 0.0 { (half - acc) / panel } else { 0.5 };
                        return Some(grid_x(min, max, mu.len(), i) + frac * dx);
                    }
                    acc += panel;
                }
                Some(max)
            }
            Defuzzifier::MeanOfMax => {
                let (sum, count) = max_positions(min, max, mu, height)
                    .fold((0.0, 0usize), |(s, c), x| (s + x, c + 1));
                Some(sum / count as f64)
            }
            Defuzzifier::SmallestOfMax => max_positions(min, max, mu, height).next(),
            Defuzzifier::LargestOfMax => max_positions(min, max, mu, height).last(),
        }
    }

    /// All variants, for ablation sweeps.
    pub const ALL: [Defuzzifier; 5] = [
        Defuzzifier::Centroid,
        Defuzzifier::Bisector,
        Defuzzifier::MeanOfMax,
        Defuzzifier::SmallestOfMax,
        Defuzzifier::LargestOfMax,
    ];
}

/// Iterator over grid positions whose membership ties the maximum (within a
/// small tolerance that absorbs floating-point jitter).
fn max_positions(
    min: f64,
    max: f64,
    mu: &[f64],
    height: f64,
) -> impl Iterator<Item = f64> + '_ {
    const TOL: f64 = 1e-12;
    (0..mu.len()).filter_map(move |i| {
        if (mu[i] - height).abs() <= TOL {
            Some(grid_x(min, max, mu.len(), i))
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::Mf;

    fn sampled(mf: Mf, min: f64, max: f64) -> SampledSet {
        SampledSet::from_fn(min, max, 4001, |x| mf.eval(x))
    }

    #[test]
    fn centroid_of_symmetric_triangle() {
        let s = sampled(Mf::triangular(0.0, 1.0, 2.0), 0.0, 2.0);
        let c = Defuzzifier::Centroid.defuzzify(&s).unwrap();
        assert!((c - 1.0).abs() < 1e-6);
    }

    #[test]
    fn centroid_of_asymmetric_triangle() {
        // Triangle (0, 0, 3): centroid x = (0 + 0 + 3)/3 = 1.
        let s = sampled(Mf::triangular(0.0, 0.0, 3.0), 0.0, 3.0);
        let c = Defuzzifier::Centroid.defuzzify(&s).unwrap();
        assert!((c - 1.0).abs() < 1e-5, "got {c}");
    }

    #[test]
    fn bisector_of_symmetric_set_equals_centroid() {
        let s = sampled(Mf::trapezoidal(0.0, 1.0, 3.0, 4.0), 0.0, 4.0);
        let c = Defuzzifier::Centroid.defuzzify(&s).unwrap();
        let b = Defuzzifier::Bisector.defuzzify(&s).unwrap();
        assert!((c - 2.0).abs() < 1e-6);
        assert!((b - 2.0).abs() < 1e-3);
    }

    #[test]
    fn bisector_skewed() {
        // Right-angled triangle rising (0,3,3): most area near x=3, so the
        // bisector sits right of the midpoint 1.5 and right of nothing else.
        let s = sampled(Mf::triangular(0.0, 3.0, 3.0), 0.0, 3.0);
        let b = Defuzzifier::Bisector.defuzzify(&s).unwrap();
        // Area left of t: t²/9 of total -> half at t = 3/sqrt(2) ≈ 2.121.
        assert!((b - 3.0 / 2.0f64.sqrt()).abs() < 1e-3, "got {b}");
    }

    #[test]
    fn maxima_family_on_plateau() {
        let s = sampled(Mf::trapezoidal(0.0, 1.0, 3.0, 4.0), 0.0, 4.0);
        let mom = Defuzzifier::MeanOfMax.defuzzify(&s).unwrap();
        let som = Defuzzifier::SmallestOfMax.defuzzify(&s).unwrap();
        let lom = Defuzzifier::LargestOfMax.defuzzify(&s).unwrap();
        assert!((mom - 2.0).abs() < 1e-3, "mean of plateau [1,3]");
        assert!((som - 1.0).abs() < 1e-3);
        assert!((lom - 3.0).abs() < 1e-3);
        assert!(som <= mom && mom <= lom);
    }

    #[test]
    fn empty_set_defuzzifies_to_none() {
        let s = SampledSet::empty(0.0, 1.0, 101);
        for d in Defuzzifier::ALL {
            assert_eq!(d.defuzzify(&s), None, "{d:?}");
        }
    }

    #[test]
    fn degenerate_slices_defuzzify_to_none() {
        // Fewer than two samples cannot span a universe: the raw-slice API
        // declines instead of panicking on the trapezoid arithmetic.
        for d in Defuzzifier::ALL {
            assert_eq!(d.defuzzify_slice(0.0, 1.0, &[]), None, "{d:?} on empty");
            assert_eq!(d.defuzzify_slice(0.0, 1.0, &[0.5]), None, "{d:?} on singleton");
        }
    }

    #[test]
    fn all_results_inside_universe() {
        let s = sampled(Mf::gaussian(0.3, 0.1), 0.0, 1.0);
        for d in Defuzzifier::ALL {
            let v = d.defuzzify(&s).unwrap();
            assert!((0.0..=1.0).contains(&v), "{d:?} gave {v}");
        }
    }

    #[test]
    fn single_spike_falls_back_sanely() {
        // One non-zero sample: centroid's area is ~0 at machine precision
        // but the maxima family still locates the spike.
        let mut s = SampledSet::empty(0.0, 1.0, 101);
        s.mu[50] = 1.0;
        for d in Defuzzifier::ALL {
            let v = d.defuzzify(&s).unwrap();
            assert!((v - 0.5).abs() < 0.02, "{d:?} gave {v}");
        }
    }

    #[test]
    fn clipped_output_still_centers() {
        // Aggregate of a clipped symmetric triangle keeps centroid at peak.
        let tri = Mf::triangular(0.0, 1.0, 2.0);
        let s = SampledSet::from_fn(0.0, 2.0, 2001, |x| tri.eval(x).min(0.4));
        let c = Defuzzifier::Centroid.defuzzify(&s).unwrap();
        assert!((c - 1.0).abs() < 1e-6);
    }
}
