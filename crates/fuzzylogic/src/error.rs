//! Error type shared by every fallible operation in the crate.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FuzzyError>;

/// Errors produced while constructing or evaluating fuzzy systems.
#[derive(Debug, Clone, PartialEq)]
pub enum FuzzyError {
    /// A membership function was built with parameters that violate its
    /// ordering constraints (e.g. a triangular MF with `a > b`).
    InvalidMf {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A variable was declared with an empty or inverted universe.
    InvalidUniverse {
        /// Variable name.
        variable: String,
        /// Offending lower bound.
        min: f64,
        /// Offending upper bound.
        max: f64,
    },
    /// A rule referenced a variable that the system does not declare.
    UnknownVariable {
        /// The unresolved name.
        name: String,
    },
    /// A rule referenced a term that its variable does not declare.
    UnknownTerm {
        /// The variable that was searched.
        variable: String,
        /// The unresolved term name.
        term: String,
    },
    /// A rule index was out of bounds for the rule set.
    RuleIndexOutOfBounds {
        /// Requested index.
        index: usize,
        /// Number of rules available.
        len: usize,
    },
    /// `evaluate` was called with the wrong number of crisp inputs.
    InputArity {
        /// Number of inputs the system declares.
        expected: usize,
        /// Number of inputs supplied by the caller.
        got: usize,
    },
    /// An input value was not a finite number.
    NonFiniteInput {
        /// Index of the offending input.
        index: usize,
        /// The offending value (NaN or ±inf).
        value: f64,
    },
    /// A named evaluation ([`Fis::evaluate_named`](crate::Fis::evaluate_named))
    /// supplied no value for a declared input.
    MissingInput {
        /// Name of the input that received no value.
        name: String,
    },
    /// The system has no rules, so no output can be inferred.
    EmptyRuleSet,
    /// A system was built without inputs or without outputs.
    EmptySystem {
        /// Which side is missing: `"inputs"` or `"outputs"`.
        what: &'static str,
    },
    /// No rule fired (all firing strengths are zero) and the engine was
    /// configured to treat this as an error rather than return a default.
    NoRuleFired,
    /// Rule-text could not be parsed.
    Parse {
        /// Description of the syntax problem.
        reason: String,
        /// The original rule text.
        text: String,
    },
    /// A rule weight was outside `[0, 1]` or not finite.
    InvalidWeight {
        /// The offending weight.
        weight: f64,
    },
    /// A duplicate variable or term name was declared.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
}

impl fmt::Display for FuzzyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzyError::InvalidMf { reason } => {
                write!(f, "invalid membership function: {reason}")
            }
            FuzzyError::InvalidUniverse { variable, min, max } => {
                write!(f, "variable `{variable}` has invalid universe [{min}, {max}]")
            }
            FuzzyError::UnknownVariable { name } => {
                write!(f, "unknown variable `{name}`")
            }
            FuzzyError::UnknownTerm { variable, term } => {
                write!(f, "variable `{variable}` has no term `{term}`")
            }
            FuzzyError::RuleIndexOutOfBounds { index, len } => {
                write!(f, "rule index {index} out of bounds (only {len} rules)")
            }
            FuzzyError::InputArity { expected, got } => {
                write!(f, "expected {expected} crisp inputs, got {got}")
            }
            FuzzyError::NonFiniteInput { index, value } => {
                write!(f, "input #{index} is not finite ({value})")
            }
            FuzzyError::MissingInput { name } => {
                write!(f, "no value supplied for input `{name}`")
            }
            FuzzyError::EmptyRuleSet => write!(f, "the rule set is empty"),
            FuzzyError::EmptySystem { what } => {
                write!(f, "the system declares no {what}")
            }
            FuzzyError::NoRuleFired => write!(f, "no rule fired for the given inputs"),
            FuzzyError::Parse { reason, text } => {
                write!(f, "cannot parse rule `{text}`: {reason}")
            }
            FuzzyError::InvalidWeight { weight } => {
                write!(f, "rule weight {weight} must be a finite value in [0, 1]")
            }
            FuzzyError::DuplicateName { name } => {
                write!(f, "duplicate name `{name}`")
            }
        }
    }
}

impl std::error::Error for FuzzyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let cases: Vec<(FuzzyError, &str)> = vec![
            (
                FuzzyError::InvalidMf { reason: "a > b".into() },
                "invalid membership function: a > b",
            ),
            (
                FuzzyError::UnknownVariable { name: "speed".into() },
                "unknown variable `speed`",
            ),
            (
                FuzzyError::UnknownTerm { variable: "speed".into(), term: "warp".into() },
                "variable `speed` has no term `warp`",
            ),
            (FuzzyError::InputArity { expected: 3, got: 1 }, "expected 3 crisp inputs, got 1"),
            (FuzzyError::EmptyRuleSet, "the rule set is empty"),
            (FuzzyError::NoRuleFired, "no rule fired for the given inputs"),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_std_error(_: &dyn std::error::Error) {}
        takes_std_error(&FuzzyError::EmptyRuleSet);
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(FuzzyError::EmptyRuleSet, FuzzyError::EmptyRuleSet);
        assert_ne!(
            FuzzyError::EmptyRuleSet,
            FuzzyError::EmptySystem { what: "inputs" }
        );
    }
}
