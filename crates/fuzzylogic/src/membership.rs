//! Parametric membership functions.
//!
//! The paper (Fig. 3) uses triangular and trapezoidal functions "because
//! they are suitable for real-time operation"; this module provides those
//! plus the other families commonly found in fuzzy-control libraries.
//!
//! All functions map a crisp value `x` to a membership degree `μ(x) ∈ [0, 1]`.

use crate::error::{FuzzyError, Result};
use serde::{Deserialize, Serialize};

/// A parametric membership function.
///
/// The linear families (`Triangular`, `Trapezoidal`, `LeftShoulder`,
/// `RightShoulder`) support *exact* area/centroid computation which the
/// centroid defuzzifier exploits; the smooth families are integrated
/// numerically by sampling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Mf {
    /// Triangle with feet at `a` and `c` and peak at `b` (`a <= b <= c`).
    Triangular {
        /// Left foot (μ = 0).
        a: f64,
        /// Peak (μ = 1).
        b: f64,
        /// Right foot (μ = 0).
        c: f64,
    },
    /// Trapezoid with feet at `a`, `d` and plateau `[b, c]`
    /// (`a <= b <= c <= d`).
    Trapezoidal {
        /// Left foot (μ = 0).
        a: f64,
        /// Left plateau edge (μ = 1).
        b: f64,
        /// Right plateau edge (μ = 1).
        c: f64,
        /// Right foot (μ = 0).
        d: f64,
    },
    /// Open-left shoulder: μ = 1 for `x <= a`, falling linearly to 0 at `b`.
    LeftShoulder {
        /// End of the unit plateau.
        a: f64,
        /// Foot (μ = 0).
        b: f64,
    },
    /// Open-right shoulder: μ = 0 for `x <= a`, rising linearly to 1 at `b`
    /// and staying 1 beyond.
    RightShoulder {
        /// Foot (μ = 0).
        a: f64,
        /// Start of the unit plateau.
        b: f64,
    },
    /// Gaussian bell `exp(-(x-mean)^2 / (2 sigma^2))`.
    Gaussian {
        /// Center (μ = 1).
        mean: f64,
        /// Standard deviation (`> 0`).
        sigma: f64,
    },
    /// Generalized bell `1 / (1 + |(x-c)/a|^(2b))`.
    Bell {
        /// Half-width at μ = 0.5 (`> 0`).
        a: f64,
        /// Slope exponent (`> 0`).
        b: f64,
        /// Center.
        c: f64,
    },
    /// Sigmoid `1 / (1 + exp(-a (x - c)))`; `a > 0` opens right,
    /// `a < 0` opens left.
    Sigmoid {
        /// Steepness (non-zero).
        a: f64,
        /// Inflection point (μ = 0.5).
        c: f64,
    },
    /// Crisp singleton: μ = 1 at `x0` (within tolerance), 0 elsewhere.
    Singleton {
        /// The support point.
        x0: f64,
    },
}

/// Tolerance used when matching a [`Mf::Singleton`] support point.
const SINGLETON_EPS: f64 = 1e-9;

impl Mf {
    /// Triangle constructor with validation (`a <= b <= c`, not degenerate).
    pub fn try_triangular(a: f64, b: f64, c: f64) -> Result<Self> {
        if !(a.is_finite() && b.is_finite() && c.is_finite()) {
            return Err(FuzzyError::InvalidMf { reason: format!("non-finite triangle ({a}, {b}, {c})") });
        }
        if !(a <= b && b <= c) {
            return Err(FuzzyError::InvalidMf {
                reason: format!("triangle vertices must satisfy a <= b <= c, got ({a}, {b}, {c})"),
            });
        }
        if a == c {
            return Err(FuzzyError::InvalidMf {
                reason: format!("triangle is degenerate (a == c == {a}); use Mf::singleton instead"),
            });
        }
        Ok(Mf::Triangular { a, b, c })
    }

    /// Triangle with feet `a`, `c` and peak `b`. Panics on invalid ordering;
    /// use [`Mf::try_triangular`] for fallible construction.
    pub fn triangular(a: f64, b: f64, c: f64) -> Self {
        Self::try_triangular(a, b, c).expect("invalid triangular membership function")
    }

    /// The paper's Fig. 3 `f(x; x0, a0, a1)` form: peak at `x0`, left width
    /// `a0`, right width `a1`.
    pub fn tri_center(x0: f64, a0: f64, a1: f64) -> Self {
        Self::triangular(x0 - a0, x0, x0 + a1)
    }

    /// Trapezoid constructor with validation (`a <= b <= c <= d`).
    pub fn try_trapezoidal(a: f64, b: f64, c: f64, d: f64) -> Result<Self> {
        if !(a.is_finite() && b.is_finite() && c.is_finite() && d.is_finite()) {
            return Err(FuzzyError::InvalidMf {
                reason: format!("non-finite trapezoid ({a}, {b}, {c}, {d})"),
            });
        }
        if !(a <= b && b <= c && c <= d) {
            return Err(FuzzyError::InvalidMf {
                reason: format!("trapezoid vertices must satisfy a <= b <= c <= d, got ({a}, {b}, {c}, {d})"),
            });
        }
        if a == d {
            return Err(FuzzyError::InvalidMf {
                reason: format!("trapezoid is degenerate (a == d == {a}); use Mf::singleton instead"),
            });
        }
        Ok(Mf::Trapezoidal { a, b, c, d })
    }

    /// Trapezoid with feet `a`, `d` and plateau `[b, c]`. Panics on invalid
    /// ordering; use [`Mf::try_trapezoidal`] for fallible construction.
    pub fn trapezoidal(a: f64, b: f64, c: f64, d: f64) -> Self {
        Self::try_trapezoidal(a, b, c, d).expect("invalid trapezoidal membership function")
    }

    /// The paper's Fig. 3 `g(x; x0, x1, a0, a1)` form: plateau `[x0, x1]`,
    /// left width `a0`, right width `a1`.
    pub fn trap_edges(x0: f64, x1: f64, a0: f64, a1: f64) -> Self {
        Self::trapezoidal(x0 - a0, x0, x1, x1 + a1)
    }

    /// Open-left shoulder (`a < b`): saturated at 1 for all `x <= a`.
    pub fn left_shoulder(a: f64, b: f64) -> Self {
        assert!(a < b, "left shoulder requires a < b, got ({a}, {b})");
        Mf::LeftShoulder { a, b }
    }

    /// Open-right shoulder (`a < b`): saturated at 1 for all `x >= b`.
    pub fn right_shoulder(a: f64, b: f64) -> Self {
        assert!(a < b, "right shoulder requires a < b, got ({a}, {b})");
        Mf::RightShoulder { a, b }
    }

    /// Gaussian with `sigma > 0`.
    pub fn gaussian(mean: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "gaussian sigma must be positive, got {sigma}");
        Mf::Gaussian { mean, sigma }
    }

    /// Generalized bell with `a > 0`, `b > 0`.
    pub fn bell(a: f64, b: f64, c: f64) -> Self {
        assert!(a > 0.0 && b > 0.0, "bell requires a > 0 and b > 0, got ({a}, {b})");
        Mf::Bell { a, b, c }
    }

    /// Sigmoid with non-zero steepness.
    pub fn sigmoid(a: f64, c: f64) -> Self {
        assert!(a != 0.0, "sigmoid steepness must be non-zero");
        Mf::Sigmoid { a, c }
    }

    /// Crisp singleton at `x0`.
    pub fn singleton(x0: f64) -> Self {
        Mf::Singleton { x0 }
    }

    /// Membership degree `μ(x) ∈ [0, 1]`.
    ///
    /// NaN inputs yield 0 (no membership), so the engine never propagates
    /// NaN through an inference pass.
    pub fn eval(&self, x: f64) -> f64 {
        if x.is_nan() {
            return 0.0;
        }
        match *self {
            Mf::Triangular { a, b, c } => {
                if x <= a || x >= c {
                    // The peak itself may sit on a foot (right-angled
                    // triangle); honour μ(b) = 1 in that case.
                    if x == b {
                        1.0
                    } else {
                        0.0
                    }
                } else if x == b {
                    1.0
                } else if x < b {
                    (x - a) / (b - a)
                } else {
                    (c - x) / (c - b)
                }
            }
            Mf::Trapezoidal { a, b, c, d } => {
                if (b..=c).contains(&x) {
                    1.0
                } else if x <= a || x >= d {
                    0.0
                } else if x < b {
                    (x - a) / (b - a)
                } else {
                    (d - x) / (d - c)
                }
            }
            Mf::LeftShoulder { a, b } => {
                if x <= a {
                    1.0
                } else if x >= b {
                    0.0
                } else {
                    (b - x) / (b - a)
                }
            }
            Mf::RightShoulder { a, b } => {
                if x <= a {
                    0.0
                } else if x >= b {
                    1.0
                } else {
                    (x - a) / (b - a)
                }
            }
            Mf::Gaussian { mean, sigma } => {
                let t = (x - mean) / sigma;
                (-0.5 * t * t).exp()
            }
            Mf::Bell { a, b, c } => {
                let t = ((x - c) / a).abs();
                1.0 / (1.0 + t.powf(2.0 * b))
            }
            Mf::Sigmoid { a, c } => 1.0 / (1.0 + (-a * (x - c)).exp()),
            Mf::Singleton { x0 } => {
                if (x - x0).abs() <= SINGLETON_EPS {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// The closed interval outside which μ is (effectively) zero.
    ///
    /// For open shoulders and sigmoids the unbounded side is reported as
    /// ±infinity; callers clip to the variable universe. Gaussians use the
    /// conventional ±4σ support.
    pub fn support(&self) -> (f64, f64) {
        match *self {
            Mf::Triangular { a, c, .. } => (a, c),
            Mf::Trapezoidal { a, d, .. } => (a, d),
            Mf::LeftShoulder { b, .. } => (f64::NEG_INFINITY, b),
            Mf::RightShoulder { a, .. } => (a, f64::INFINITY),
            Mf::Gaussian { mean, sigma } => (mean - 4.0 * sigma, mean + 4.0 * sigma),
            Mf::Bell { a, c, .. } => (c - 8.0 * a, c + 8.0 * a),
            Mf::Sigmoid { a, c } => {
                if a > 0.0 {
                    (c - 8.0 / a.abs(), f64::INFINITY)
                } else {
                    (f64::NEG_INFINITY, c + 8.0 / a.abs())
                }
            }
            Mf::Singleton { x0 } => (x0, x0),
        }
    }

    /// The interval on which μ attains its maximum (the *core* for normal
    /// functions).
    pub fn core(&self) -> (f64, f64) {
        match *self {
            Mf::Triangular { b, .. } => (b, b),
            Mf::Trapezoidal { b, c, .. } => (b, c),
            Mf::LeftShoulder { a, .. } => (f64::NEG_INFINITY, a),
            Mf::RightShoulder { b, .. } => (b, f64::INFINITY),
            Mf::Gaussian { mean, .. } => (mean, mean),
            Mf::Bell { c, .. } => (c, c),
            Mf::Sigmoid { a, c } => {
                if a > 0.0 {
                    (c + 8.0 / a.abs(), f64::INFINITY)
                } else {
                    (f64::NEG_INFINITY, c - 8.0 / a.abs())
                }
            }
            Mf::Singleton { x0 } => (x0, x0),
        }
    }

    /// Representative crisp value of the term: midpoint of the core, with
    /// unbounded sides replaced by the given universe bounds.
    ///
    /// Used by height/weighted-average defuzzification and by the Sugeno
    /// bridge.
    pub fn centroid_of_core(&self, lo: f64, hi: f64) -> f64 {
        let (a, b) = self.core();
        let a = a.max(lo);
        let b = b.min(hi);
        0.5 * (a + b)
    }

    /// Area under μ clipped at `height` between `lo` and `hi`, computed
    /// exactly for the piecewise-linear families and by Simpson sampling
    /// (1024 intervals) otherwise.
    pub fn clipped_area(&self, height: f64, lo: f64, hi: f64) -> f64 {
        self.clipped_moments(height, lo, hi).0
    }

    /// `(area, first_moment)` of `min(μ(x), height)` over `[lo, hi]`.
    ///
    /// The linear families are decomposed into linear pieces and integrated
    /// in closed form; smooth families fall back to composite Simpson.
    pub fn clipped_moments(&self, height: f64, lo: f64, hi: f64) -> (f64, f64) {
        let h = height.clamp(0.0, 1.0);
        if h == 0.0 || lo >= hi {
            return (0.0, 0.0);
        }
        match *self {
            Mf::Triangular { .. }
            | Mf::Trapezoidal { .. }
            | Mf::LeftShoulder { .. }
            | Mf::RightShoulder { .. } => self.linear_clipped_moments(h, lo, hi),
            _ => self.sampled_clipped_moments(h, lo, hi),
        }
    }

    /// Exact integration for piecewise-linear μ clipped at `h`.
    fn linear_clipped_moments(&self, h: f64, lo: f64, hi: f64) -> (f64, f64) {
        // Collect breakpoints of the piecewise-linear clipped function:
        // the MF's own vertices plus the points where μ(x) == h.
        let mut xs: Vec<f64> = vec![lo, hi];
        let mut push = |x: f64| {
            if x > lo && x < hi {
                xs.push(x);
            }
        };
        match *self {
            Mf::Triangular { a, b, c } => {
                push(a);
                push(b);
                push(c);
                if b > a {
                    push(a + h * (b - a)); // rising edge crosses h
                }
                if c > b {
                    push(c - h * (c - b)); // falling edge crosses h
                }
            }
            Mf::Trapezoidal { a, b, c, d } => {
                push(a);
                push(b);
                push(c);
                push(d);
                if b > a {
                    push(a + h * (b - a));
                }
                if d > c {
                    push(d - h * (d - c));
                }
            }
            Mf::LeftShoulder { a, b } => {
                push(a);
                push(b);
                push(b - h * (b - a));
            }
            Mf::RightShoulder { a, b } => {
                push(a);
                push(b);
                push(a + h * (b - a));
            }
            _ => unreachable!("linear_clipped_moments called on a non-linear MF"),
        }
        xs.sort_by(|p, q| p.partial_cmp(q).expect("breakpoints are finite"));
        xs.dedup();

        // On each sub-interval the clipped function is linear; integrate the
        // trapezoid exactly. For a linear segment from (x0, y0) to (x1, y1):
        //   area   = (y0 + y1)/2 * w
        //   moment = ∫ x y dx = w/6 * (x0 (2 y0 + y1) + x1 (y0 + 2 y1))
        let mut area = 0.0;
        let mut moment = 0.0;
        for w in xs.windows(2) {
            let (x0, x1) = (w[0], w[1]);
            let y0 = self.eval(x0).min(h);
            let y1 = self.eval(x1).min(h);
            let width = x1 - x0;
            area += 0.5 * (y0 + y1) * width;
            moment += width / 6.0 * (x0 * (2.0 * y0 + y1) + x1 * (y0 + 2.0 * y1));
        }
        (area, moment)
    }

    /// Composite-Simpson integration for smooth μ clipped at `h`.
    fn sampled_clipped_moments(&self, h: f64, lo: f64, hi: f64) -> (f64, f64) {
        const N: usize = 1024; // even
        let step = (hi - lo) / N as f64;
        let mut area = 0.0;
        let mut moment = 0.0;
        for i in 0..=N {
            let x = lo + i as f64 * step;
            let y = self.eval(x).min(h);
            let w = if i == 0 || i == N {
                1.0
            } else if i % 2 == 1 {
                4.0
            } else {
                2.0
            };
            area += w * y;
            moment += w * x * y;
        }
        let scale = step / 3.0;
        (area * scale, moment * scale)
    }

    /// True when the function attains μ = 1 somewhere (is *normal*).
    pub fn is_normal(&self) -> bool {
        // All families in this enum are normal by construction except the
        // sigmoid/bell families, which approach 1 asymptotically. The core
        // edge sits 8/|a| past the inflection, where μ = 1/(1+e⁻⁸) ≈ 0.99967,
        // so "effectively normal" is judged at the 0.999 level.
        match self {
            Mf::Sigmoid { .. } | Mf::Bell { .. } => {
                let (a, b) = self.core();
                let probe = if a.is_finite() { a } else { b };
                probe.is_finite() && self.eval(probe) >= 0.999
            }
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn triangular_vertices() {
        let mf = Mf::triangular(0.0, 1.0, 3.0);
        assert_eq!(mf.eval(-1.0), 0.0);
        assert_eq!(mf.eval(0.0), 0.0);
        assert!((mf.eval(0.5) - 0.5).abs() < EPS);
        assert_eq!(mf.eval(1.0), 1.0);
        assert!((mf.eval(2.0) - 0.5).abs() < EPS);
        assert_eq!(mf.eval(3.0), 0.0);
        assert_eq!(mf.eval(4.0), 0.0);
    }

    #[test]
    fn triangular_right_angled_left() {
        // a == b: vertical rising edge.
        let mf = Mf::triangular(0.0, 0.0, 2.0);
        assert_eq!(mf.eval(0.0), 1.0);
        assert!((mf.eval(1.0) - 0.5).abs() < EPS);
        assert_eq!(mf.eval(2.0), 0.0);
        assert_eq!(mf.eval(-0.1), 0.0);
    }

    #[test]
    fn triangular_right_angled_right() {
        let mf = Mf::triangular(0.0, 2.0, 2.0);
        assert_eq!(mf.eval(2.0), 1.0);
        assert!((mf.eval(1.0) - 0.5).abs() < EPS);
        assert_eq!(mf.eval(2.1), 0.0);
    }

    #[test]
    fn tri_center_matches_paper_parameterization() {
        // f(x; x0 = 5, a0 = 2, a1 = 3) -> triangle (3, 5, 8).
        let mf = Mf::tri_center(5.0, 2.0, 3.0);
        assert_eq!(mf, Mf::Triangular { a: 3.0, b: 5.0, c: 8.0 });
    }

    #[test]
    fn trapezoidal_plateau() {
        let mf = Mf::trapezoidal(0.0, 1.0, 2.0, 4.0);
        assert_eq!(mf.eval(1.0), 1.0);
        assert_eq!(mf.eval(1.5), 1.0);
        assert_eq!(mf.eval(2.0), 1.0);
        assert!((mf.eval(0.5) - 0.5).abs() < EPS);
        assert!((mf.eval(3.0) - 0.5).abs() < EPS);
        assert_eq!(mf.eval(4.0), 0.0);
    }

    #[test]
    fn trap_edges_matches_paper_parameterization() {
        // g(x; x0 = 1, x1 = 2, a0 = 1, a1 = 2) -> trapezoid (0, 1, 2, 4).
        let mf = Mf::trap_edges(1.0, 2.0, 1.0, 2.0);
        assert_eq!(mf, Mf::Trapezoidal { a: 0.0, b: 1.0, c: 2.0, d: 4.0 });
    }

    #[test]
    fn shoulders_saturate() {
        let l = Mf::left_shoulder(-5.0, 0.0);
        assert_eq!(l.eval(-100.0), 1.0);
        assert_eq!(l.eval(-5.0), 1.0);
        assert!((l.eval(-2.5) - 0.5).abs() < EPS);
        assert_eq!(l.eval(0.0), 0.0);
        assert_eq!(l.eval(10.0), 0.0);

        let r = Mf::right_shoulder(0.0, 5.0);
        assert_eq!(r.eval(-1.0), 0.0);
        assert_eq!(r.eval(0.0), 0.0);
        assert!((r.eval(2.5) - 0.5).abs() < EPS);
        assert_eq!(r.eval(5.0), 1.0);
        assert_eq!(r.eval(100.0), 1.0);
    }

    #[test]
    fn gaussian_properties() {
        let g = Mf::gaussian(0.0, 1.0);
        assert_eq!(g.eval(0.0), 1.0);
        assert!((g.eval(1.0) - (-0.5f64).exp()).abs() < EPS);
        assert!((g.eval(-1.0) - g.eval(1.0)).abs() < EPS, "symmetric");
        assert!(g.eval(10.0) < 1e-20);
    }

    #[test]
    fn bell_properties() {
        let b = Mf::bell(2.0, 4.0, 6.0);
        assert_eq!(b.eval(6.0), 1.0);
        assert!((b.eval(4.0) - 0.5).abs() < EPS, "half-width at a");
        assert!((b.eval(8.0) - 0.5).abs() < EPS);
        assert!(b.eval(100.0) < 1e-6);
    }

    #[test]
    fn sigmoid_properties() {
        let s = Mf::sigmoid(2.0, 1.0);
        assert!((s.eval(1.0) - 0.5).abs() < EPS);
        assert!(s.eval(10.0) > 0.999);
        assert!(s.eval(-10.0) < 0.001);
        let neg = Mf::sigmoid(-2.0, 1.0);
        assert!(neg.eval(-10.0) > 0.999, "negative steepness opens left");
    }

    #[test]
    fn singleton_matches_only_its_point() {
        let s = Mf::singleton(3.0);
        assert_eq!(s.eval(3.0), 1.0);
        assert_eq!(s.eval(3.0 + 1e-6), 0.0);
        assert_eq!(s.eval(2.0), 0.0);
    }

    #[test]
    fn nan_input_gives_zero_membership() {
        for mf in [
            Mf::triangular(0.0, 1.0, 2.0),
            Mf::gaussian(0.0, 1.0),
            Mf::sigmoid(1.0, 0.0),
            Mf::singleton(0.0),
        ] {
            assert_eq!(mf.eval(f64::NAN), 0.0);
        }
    }

    #[test]
    fn invalid_constructions_are_rejected() {
        assert!(Mf::try_triangular(2.0, 1.0, 3.0).is_err());
        assert!(Mf::try_triangular(0.0, 0.0, 0.0).is_err());
        assert!(Mf::try_trapezoidal(0.0, 2.0, 1.0, 3.0).is_err());
        assert!(Mf::try_trapezoidal(1.0, 1.0, 1.0, 1.0).is_err());
        assert!(Mf::try_triangular(f64::NAN, 0.0, 1.0).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid triangular")]
    fn panicking_constructor_panics() {
        let _ = Mf::triangular(3.0, 2.0, 1.0);
    }

    #[test]
    fn support_and_core() {
        let t = Mf::triangular(0.0, 1.0, 3.0);
        assert_eq!(t.support(), (0.0, 3.0));
        assert_eq!(t.core(), (1.0, 1.0));

        let tr = Mf::trapezoidal(0.0, 1.0, 2.0, 4.0);
        assert_eq!(tr.support(), (0.0, 4.0));
        assert_eq!(tr.core(), (1.0, 2.0));

        let l = Mf::left_shoulder(1.0, 2.0);
        assert_eq!(l.support().1, 2.0);
        assert!(l.support().0.is_infinite());
        assert_eq!(l.core().1, 1.0);
    }

    #[test]
    fn centroid_of_core_clips_to_universe() {
        let l = Mf::left_shoulder(1.0, 2.0);
        // Core is (-inf, 1]; clipped to [0, 10] -> midpoint of [0, 1].
        assert!((l.centroid_of_core(0.0, 10.0) - 0.5).abs() < EPS);
        let r = Mf::right_shoulder(8.0, 9.0);
        assert!((r.centroid_of_core(0.0, 10.0) - 9.5).abs() < EPS);
    }

    #[test]
    fn triangle_full_area_and_centroid() {
        // Triangle (0, 1, 3): area = 1.5, centroid x = (0 + 1 + 3)/3 = 4/3.
        let t = Mf::triangular(0.0, 1.0, 3.0);
        let (area, moment) = t.clipped_moments(1.0, -1.0, 4.0);
        assert!((area - 1.5).abs() < 1e-9, "area {area}");
        assert!((moment / area - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn clipped_triangle_area() {
        // Symmetric triangle (0, 1, 2) clipped at h = 0.5 becomes a
        // trapezoid with parallel sides 2 (bottom) and 1 (top), height 0.5:
        // area = (2 + 1)/2 * 0.5 = 0.75.
        let t = Mf::triangular(0.0, 1.0, 2.0);
        let (area, moment) = t.clipped_moments(0.5, 0.0, 2.0);
        assert!((area - 0.75).abs() < 1e-9, "area {area}");
        assert!((moment / area - 1.0).abs() < 1e-9, "symmetric centroid at 1");
    }

    #[test]
    fn clipped_shoulder_area() {
        // Right shoulder (0, 1) clipped at 1 over [0, 3]: ramp area 0.5 plus
        // plateau 2.0 = 2.5.
        let r = Mf::right_shoulder(0.0, 1.0);
        let (area, _) = r.clipped_moments(1.0, 0.0, 3.0);
        assert!((area - 2.5).abs() < 1e-9, "area {area}");
        // Clipped at 0.5: ramp reaches 0.5 at x = 0.5: triangle 0.5*0.5/2 =
        // 0.125, plateau 2.5 long * 0.5 = 1.25 -> 1.375.
        let (area, _) = r.clipped_moments(0.5, 0.0, 3.0);
        assert!((area - 1.375).abs() < 1e-9, "area {area}");
    }

    #[test]
    fn gaussian_area_matches_closed_form() {
        // ∫ exp(-x²/2) over wide range = sqrt(2π) σ.
        let g = Mf::gaussian(0.0, 1.0);
        let (area, moment) = g.clipped_moments(1.0, -8.0, 8.0);
        let expected = (2.0 * std::f64::consts::PI).sqrt();
        assert!((area - expected).abs() < 1e-6, "area {area} vs {expected}");
        assert!(moment.abs() < 1e-9, "symmetric first moment");
    }

    #[test]
    fn zero_height_clips_to_nothing() {
        let t = Mf::triangular(0.0, 1.0, 2.0);
        assert_eq!(t.clipped_moments(0.0, 0.0, 2.0), (0.0, 0.0));
        assert_eq!(t.clipped_moments(1.0, 2.0, 1.0), (0.0, 0.0), "empty interval");
    }

    #[test]
    fn all_families_are_normal_or_detected() {
        assert!(Mf::triangular(0.0, 1.0, 2.0).is_normal());
        assert!(Mf::trapezoidal(0.0, 1.0, 2.0, 3.0).is_normal());
        assert!(Mf::gaussian(0.0, 1.0).is_normal());
        assert!(Mf::singleton(1.0).is_normal());
        assert!(Mf::sigmoid(5.0, 0.0).is_normal(), "steep sigmoid saturates");
    }

    #[test]
    fn serde_round_trip() {
        let mfs = vec![
            Mf::triangular(0.0, 1.0, 2.0),
            Mf::trapezoidal(0.0, 1.0, 2.0, 3.0),
            Mf::left_shoulder(0.0, 1.0),
            Mf::right_shoulder(0.0, 1.0),
            Mf::gaussian(0.0, 1.0),
            Mf::bell(1.0, 2.0, 3.0),
            Mf::sigmoid(1.0, 0.0),
            Mf::singleton(2.0),
        ];
        let json = serde_json::to_string(&mfs).unwrap();
        let back: Vec<Mf> = serde_json::from_str(&json).unwrap();
        assert_eq!(mfs, back);
    }
}
