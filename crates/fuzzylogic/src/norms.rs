//! Triangular norms and co-norms, implication and aggregation operators.
//!
//! A Mamdani engine is parameterised by four operators:
//!
//! * a **t-norm** for AND-connected antecedents,
//! * an **s-norm** for OR-connected antecedents,
//! * an **implication** operator that shapes each fired consequent,
//! * an **aggregation** operator that merges fired consequents into one
//!   output fuzzy set.
//!
//! The paper uses the classic min/max (Zadeh) family; the alternatives here
//! power the ablation benchmarks.

use serde::{Deserialize, Serialize};

/// Triangular norm (fuzzy AND).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TNorm {
    /// Zadeh minimum: `min(a, b)`. The paper's choice.
    #[default]
    Min,
    /// Algebraic product: `a * b`.
    Product,
    /// Łukasiewicz (bounded difference): `max(0, a + b - 1)`.
    Lukasiewicz,
    /// Drastic product: `min` if one operand is 1, else 0.
    Drastic,
    /// Nilpotent minimum: `min(a, b)` if `a + b > 1`, else 0.
    NilpotentMin,
    /// Hamacher product: `ab / (a + b - ab)` (0 when both are 0).
    Hamacher,
}

impl TNorm {
    /// Apply the norm to two membership degrees. Both operands are clamped
    /// into `[0, 1]` first so numerical noise cannot escape the lattice.
    #[inline]
    pub fn apply(&self, a: f64, b: f64) -> f64 {
        let a = a.clamp(0.0, 1.0);
        let b = b.clamp(0.0, 1.0);
        match self {
            TNorm::Min => a.min(b),
            TNorm::Product => a * b,
            TNorm::Lukasiewicz => (a + b - 1.0).max(0.0),
            TNorm::Drastic => {
                if a == 1.0 {
                    b
                } else if b == 1.0 {
                    a
                } else {
                    0.0
                }
            }
            TNorm::NilpotentMin => {
                if a + b > 1.0 {
                    a.min(b)
                } else {
                    0.0
                }
            }
            TNorm::Hamacher => {
                let denom = a + b - a * b;
                if denom == 0.0 {
                    0.0
                } else {
                    a * b / denom
                }
            }
        }
    }

    /// Fold the norm over an iterator of degrees; the empty conjunction is 1.
    pub fn fold(&self, values: impl IntoIterator<Item = f64>) -> f64 {
        values.into_iter().fold(1.0, |acc, v| self.apply(acc, v))
    }

    /// All variants, for exhaustive ablation sweeps.
    pub const ALL: [TNorm; 6] = [
        TNorm::Min,
        TNorm::Product,
        TNorm::Lukasiewicz,
        TNorm::Drastic,
        TNorm::NilpotentMin,
        TNorm::Hamacher,
    ];
}

/// Triangular co-norm (fuzzy OR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SNorm {
    /// Zadeh maximum: `max(a, b)`. The paper's choice.
    #[default]
    Max,
    /// Probabilistic (algebraic) sum: `a + b - ab`.
    ProbabilisticSum,
    /// Bounded sum: `min(1, a + b)`.
    BoundedSum,
    /// Drastic sum: `max` if one operand is 0, else 1.
    Drastic,
    /// Nilpotent maximum: `max(a, b)` if `a + b < 1`, else 1.
    NilpotentMax,
    /// Einstein sum: `(a + b) / (1 + ab)`.
    Einstein,
}

impl SNorm {
    /// Apply the co-norm to two membership degrees (clamped to `[0, 1]`).
    #[inline]
    pub fn apply(&self, a: f64, b: f64) -> f64 {
        let a = a.clamp(0.0, 1.0);
        let b = b.clamp(0.0, 1.0);
        match self {
            SNorm::Max => a.max(b),
            SNorm::ProbabilisticSum => a + b - a * b,
            SNorm::BoundedSum => (a + b).min(1.0),
            SNorm::Drastic => {
                if a == 0.0 {
                    b
                } else if b == 0.0 {
                    a
                } else {
                    1.0
                }
            }
            SNorm::NilpotentMax => {
                if a + b < 1.0 {
                    a.max(b)
                } else {
                    1.0
                }
            }
            SNorm::Einstein => (a + b) / (1.0 + a * b),
        }
    }

    /// Fold the co-norm over an iterator of degrees; the empty disjunction
    /// is 0.
    pub fn fold(&self, values: impl IntoIterator<Item = f64>) -> f64 {
        values.into_iter().fold(0.0, |acc, v| self.apply(acc, v))
    }

    /// All variants, for exhaustive ablation sweeps.
    pub const ALL: [SNorm; 6] = [
        SNorm::Max,
        SNorm::ProbabilisticSum,
        SNorm::BoundedSum,
        SNorm::Drastic,
        SNorm::NilpotentMax,
        SNorm::Einstein,
    ];
}

/// Implication operator: shapes the consequent MF by the firing strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Implication {
    /// Mamdani clipping: `min(w, μ(x))`. The paper's choice.
    #[default]
    Min,
    /// Larsen scaling: `w * μ(x)`.
    Product,
}

impl Implication {
    /// Apply the implication of firing strength `w` to membership `mu`.
    #[inline]
    pub fn apply(&self, w: f64, mu: f64) -> f64 {
        match self {
            Implication::Min => w.min(mu),
            Implication::Product => w * mu,
        }
    }
}

/// Aggregation operator: merges all fired consequents into the output set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Aggregation {
    /// Pointwise maximum. The paper's choice.
    #[default]
    Max,
    /// Bounded sum `min(1, Σ)`, emphasising consensus between rules.
    BoundedSum,
    /// Probabilistic sum `a + b - ab` applied pairwise.
    ProbabilisticSum,
}

impl Aggregation {
    /// Combine an accumulated degree with a new fired degree.
    #[inline]
    pub fn apply(&self, acc: f64, v: f64) -> f64 {
        match self {
            Aggregation::Max => acc.max(v),
            Aggregation::BoundedSum => (acc + v).min(1.0),
            Aggregation::ProbabilisticSum => acc + v - acc * v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: [f64; 7] = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];

    #[test]
    fn tnorm_identity_and_annihilator() {
        // T(a, 1) = a and T(a, 0) = 0 for every t-norm.
        for t in TNorm::ALL {
            for &a in &SAMPLES {
                assert!((t.apply(a, 1.0) - a).abs() < 1e-12, "{t:?} identity at {a}");
                assert_eq!(t.apply(a, 0.0), 0.0, "{t:?} annihilator at {a}");
            }
        }
    }

    #[test]
    fn tnorm_commutative_and_bounded() {
        for t in TNorm::ALL {
            for &a in &SAMPLES {
                for &b in &SAMPLES {
                    let ab = t.apply(a, b);
                    let ba = t.apply(b, a);
                    assert!((ab - ba).abs() < 1e-12, "{t:?} commutativity");
                    assert!((0.0..=1.0).contains(&ab), "{t:?} in [0,1]");
                    assert!(ab <= a.min(b) + 1e-12, "{t:?} below min");
                }
            }
        }
    }

    #[test]
    fn tnorm_monotone() {
        for t in TNorm::ALL {
            for &a in &SAMPLES {
                for w in SAMPLES.windows(2) {
                    assert!(
                        t.apply(a, w[0]) <= t.apply(a, w[1]) + 1e-12,
                        "{t:?} monotone in second arg"
                    );
                }
            }
        }
    }

    #[test]
    fn snorm_identity_and_annihilator() {
        // S(a, 0) = a and S(a, 1) = 1 for every s-norm.
        for s in SNorm::ALL {
            for &a in &SAMPLES {
                assert!((s.apply(a, 0.0) - a).abs() < 1e-12, "{s:?} identity at {a}");
                assert!((s.apply(a, 1.0) - 1.0).abs() < 1e-12, "{s:?} annihilator at {a}");
            }
        }
    }

    #[test]
    fn snorm_commutative_bounded_above_max() {
        for s in SNorm::ALL {
            for &a in &SAMPLES {
                for &b in &SAMPLES {
                    let ab = s.apply(a, b);
                    assert!((ab - s.apply(b, a)).abs() < 1e-12, "{s:?} commutativity");
                    assert!((0.0..=1.0).contains(&ab), "{s:?} in [0,1]");
                    assert!(ab >= a.max(b) - 1e-12, "{s:?} above max");
                }
            }
        }
    }

    #[test]
    fn de_morgan_for_zadeh_pair() {
        // max(a, b) = 1 - min(1-a, 1-b).
        for &a in &SAMPLES {
            for &b in &SAMPLES {
                let lhs = SNorm::Max.apply(a, b);
                let rhs = 1.0 - TNorm::Min.apply(1.0 - a, 1.0 - b);
                assert!((lhs - rhs).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn specific_values() {
        assert_eq!(TNorm::Min.apply(0.3, 0.7), 0.3);
        assert!((TNorm::Product.apply(0.5, 0.5) - 0.25).abs() < 1e-12);
        assert!((TNorm::Lukasiewicz.apply(0.7, 0.7) - 0.4).abs() < 1e-12);
        assert_eq!(TNorm::Lukasiewicz.apply(0.3, 0.3), 0.0);
        assert_eq!(TNorm::Drastic.apply(0.4, 0.9), 0.0);
        assert_eq!(TNorm::NilpotentMin.apply(0.6, 0.7), 0.6);
        assert_eq!(TNorm::NilpotentMin.apply(0.3, 0.3), 0.0);
        assert!((TNorm::Hamacher.apply(0.5, 0.5) - (0.25 / 0.75)).abs() < 1e-12);
        assert_eq!(TNorm::Hamacher.apply(0.0, 0.0), 0.0, "no division by zero");

        assert_eq!(SNorm::Max.apply(0.3, 0.7), 0.7);
        assert!((SNorm::ProbabilisticSum.apply(0.5, 0.5) - 0.75).abs() < 1e-12);
        assert_eq!(SNorm::BoundedSum.apply(0.7, 0.7), 1.0);
        assert_eq!(SNorm::Drastic.apply(0.4, 0.9), 1.0);
        assert_eq!(SNorm::NilpotentMax.apply(0.3, 0.3), 0.3);
        assert_eq!(SNorm::NilpotentMax.apply(0.6, 0.7), 1.0);
        assert!((SNorm::Einstein.apply(0.5, 0.5) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn fold_neutral_elements() {
        assert_eq!(TNorm::Min.fold(std::iter::empty()), 1.0);
        assert_eq!(SNorm::Max.fold(std::iter::empty()), 0.0);
        assert_eq!(TNorm::Min.fold([0.8, 0.3, 0.5]), 0.3);
        assert_eq!(SNorm::Max.fold([0.8, 0.3, 0.5]), 0.8);
        assert!((TNorm::Product.fold([0.5, 0.5, 0.5]) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn clamping_guards_against_numeric_noise() {
        assert_eq!(TNorm::Min.apply(1.2, 0.5), 0.5);
        assert_eq!(TNorm::Product.apply(-0.1, 0.5), 0.0);
        assert_eq!(SNorm::Max.apply(1.5, 0.2), 1.0);
    }

    #[test]
    fn implication_operators() {
        assert_eq!(Implication::Min.apply(0.4, 0.9), 0.4);
        assert_eq!(Implication::Min.apply(0.9, 0.4), 0.4);
        assert!((Implication::Product.apply(0.5, 0.6) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn aggregation_operators() {
        assert_eq!(Aggregation::Max.apply(0.3, 0.6), 0.6);
        assert_eq!(Aggregation::BoundedSum.apply(0.7, 0.6), 1.0);
        assert!((Aggregation::ProbabilisticSum.apply(0.5, 0.5) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn defaults_match_the_paper() {
        assert_eq!(TNorm::default(), TNorm::Min);
        assert_eq!(SNorm::default(), SNorm::Max);
        assert_eq!(Implication::default(), Implication::Min);
        assert_eq!(Aggregation::default(), Aggregation::Max);
    }

    #[test]
    fn serde_round_trip() {
        let t = TNorm::Lukasiewicz;
        let s: TNorm = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
        assert_eq!(t, s);
    }
}
