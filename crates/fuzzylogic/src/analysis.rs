//! Rule-base analytics: static and numeric diagnostics for authored
//! systems.
//!
//! Large hand-written rule tables (like the paper's 64 rules) accumulate
//! authoring mistakes silently: terms nobody references, rules that can
//! never dominate, regions of the input space where nothing fires
//! strongly. This module surfaces them.

use crate::engine::mamdani::Fis;
use crate::error::Result;

/// Static report over a system's rule base.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleBaseReport {
    /// Input terms never referenced by any antecedent:
    /// `(variable index, term index)`.
    pub unused_input_terms: Vec<(usize, usize)>,
    /// Output terms never referenced by any consequent.
    pub unused_output_terms: Vec<(usize, usize)>,
    /// Pairs of rules with identical antecedents but different
    /// consequents.
    pub conflicts: Vec<(usize, usize)>,
    /// Rules that never reached the maximal firing strength anywhere on
    /// the probe grid (candidates for dead weight). Indices into the rule
    /// set.
    pub never_dominant: Vec<usize>,
    /// The lowest maximum firing strength observed at any probe point
    /// (coverage floor): near zero means holes in the partition.
    pub min_best_firing: f64,
}

/// Analyse a system: static term usage plus a numeric sweep on a uniform
/// grid with `per_axis` points along every input universe.
///
/// Grid size is `per_axis ^ n_inputs`; keep `per_axis` modest for systems
/// with many inputs.
pub fn analyze(fis: &Fis, per_axis: usize) -> Result<RuleBaseReport> {
    assert!(per_axis >= 2, "need at least two probe points per axis");

    // --- static usage --------------------------------------------------
    let mut input_used: Vec<Vec<bool>> =
        fis.inputs().iter().map(|v| vec![false; v.term_count()]).collect();
    let mut output_used: Vec<Vec<bool>> =
        fis.outputs().iter().map(|v| vec![false; v.term_count()]).collect();
    for rule in fis.rules().rules() {
        for a in &rule.antecedents {
            if let Some(slot) = input_used.get_mut(a.var).and_then(|t| t.get_mut(a.term)) {
                *slot = true;
            }
        }
        for c in &rule.consequents {
            if let Some(slot) = output_used.get_mut(c.var).and_then(|t| t.get_mut(c.term)) {
                *slot = true;
            }
        }
    }
    let collect_unused = |used: &[Vec<bool>]| -> Vec<(usize, usize)> {
        used.iter()
            .enumerate()
            .flat_map(|(v, terms)| {
                terms
                    .iter()
                    .enumerate()
                    .filter(|(_, &u)| !u)
                    .map(move |(t, _)| (v, t))
                    .collect::<Vec<_>>()
            })
            .collect()
    };

    // --- numeric sweep --------------------------------------------------
    let axes: Vec<Vec<f64>> =
        fis.inputs().iter().map(|v| v.sample_universe(per_axis)).collect();
    let n_inputs = axes.len();
    let n_points: usize = per_axis.pow(n_inputs as u32);
    let mut ever_dominant = vec![false; fis.rules().len()];
    let mut min_best_firing = f64::INFINITY;
    let mut crisp = vec![0.0; n_inputs];
    for flat in 0..n_points {
        let mut rem = flat;
        for (i, axis) in axes.iter().enumerate() {
            crisp[i] = axis[rem % per_axis];
            rem /= per_axis;
        }
        let firing = fis.firing_strengths(&crisp)?;
        let best = firing.iter().cloned().fold(0.0, f64::max);
        min_best_firing = min_best_firing.min(best);
        if best > 0.0 {
            for (k, &w) in firing.iter().enumerate() {
                if w == best {
                    ever_dominant[k] = true;
                }
            }
        }
    }

    Ok(RuleBaseReport {
        unused_input_terms: collect_unused(&input_used),
        unused_output_terms: collect_unused(&output_used),
        conflicts: fis.rules().conflicting_pairs(),
        never_dominant: ever_dominant
            .iter()
            .enumerate()
            .filter(|(_, &d)| !d)
            .map(|(k, _)| k)
            .collect(),
        min_best_firing,
    })
}

impl RuleBaseReport {
    /// True when the analysis found nothing suspicious at the given
    /// coverage floor.
    pub fn is_clean(&self, min_coverage: f64) -> bool {
        self.unused_input_terms.is_empty()
            && self.unused_output_terms.is_empty()
            && self.conflicts.is_empty()
            && self.min_best_firing >= min_coverage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::mamdani::FisBuilder;
    use crate::membership::Mf;
    use crate::variable::LinguisticVariable;

    fn two_by_two(rules: &[&str]) -> Fis {
        let x = LinguisticVariable::new("x", 0.0, 1.0)
            .with_term("lo", Mf::left_shoulder(0.0, 1.0))
            .with_term("hi", Mf::right_shoulder(0.0, 1.0));
        let y = LinguisticVariable::new("y", 0.0, 1.0)
            .with_term("a", Mf::triangular(0.0, 0.0, 1.0))
            .with_term("b", Mf::triangular(0.0, 1.0, 1.0));
        let mut b = FisBuilder::new("t").input(x).output(y);
        for r in rules {
            b = b.rule_str(r).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn clean_system_reports_clean() {
        let fis = two_by_two(&["IF x IS lo THEN y IS a", "IF x IS hi THEN y IS b"]);
        let report = analyze(&fis, 11).unwrap();
        assert!(report.unused_input_terms.is_empty());
        assert!(report.unused_output_terms.is_empty());
        assert!(report.conflicts.is_empty());
        assert!(report.never_dominant.is_empty());
        assert!(report.min_best_firing >= 0.5, "{}", report.min_best_firing);
        assert!(report.is_clean(0.45));
    }

    #[test]
    fn unused_terms_detected() {
        let fis = two_by_two(&["IF x IS lo THEN y IS a"]);
        let report = analyze(&fis, 11).unwrap();
        assert_eq!(report.unused_input_terms, vec![(0, 1)], "hi unused");
        assert_eq!(report.unused_output_terms, vec![(0, 1)], "b unused");
        assert!(!report.is_clean(0.0));
    }

    #[test]
    fn coverage_hole_detected() {
        // Narrow antecedent: most of the universe fires nothing.
        let x = LinguisticVariable::new("x", 0.0, 1.0)
            .with_term("spike", Mf::triangular(0.45, 0.5, 0.55));
        let y = LinguisticVariable::new("y", 0.0, 1.0)
            .with_term("out", Mf::triangular(0.0, 0.5, 1.0));
        let fis = FisBuilder::new("holey")
            .input(x)
            .output(y)
            .rule_str("IF x IS spike THEN y IS out")
            .unwrap()
            .build()
            .unwrap();
        let report = analyze(&fis, 21).unwrap();
        assert_eq!(report.min_best_firing, 0.0, "holes found");
        assert!(!report.is_clean(0.1));
    }

    #[test]
    fn never_dominant_rule_detected() {
        // A duplicate of rule 0 with weight 0.1 can never reach the max.
        let x = LinguisticVariable::new("x", 0.0, 1.0)
            .with_term("lo", Mf::left_shoulder(0.0, 1.0))
            .with_term("hi", Mf::right_shoulder(0.0, 1.0));
        let y = LinguisticVariable::new("y", 0.0, 1.0)
            .with_term("a", Mf::triangular(0.0, 0.0, 1.0));
        let weak = crate::rule::Rule::new(
            vec![crate::rule::Antecedent::new(0, 0)],
            crate::rule::Connective::And,
            vec![crate::rule::Consequent::new(0, 0)],
        )
        .with_weight(0.1);
        let fis = FisBuilder::new("dead")
            .input(x)
            .output(y)
            .rule_str("IF x IS lo THEN y IS a")
            .unwrap()
            .rule_str("IF x IS hi THEN y IS a")
            .unwrap()
            .rule(weak)
            .build()
            .unwrap();
        let report = analyze(&fis, 11).unwrap();
        assert_eq!(report.never_dominant, vec![2]);
    }

    #[test]
    #[should_panic(expected = "probe points")]
    fn tiny_grid_rejected() {
        let fis = two_by_two(&["IF x IS lo THEN y IS a"]);
        let _ = analyze(&fis, 1);
    }
}
