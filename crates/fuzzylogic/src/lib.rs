//! # fuzzylogic
//!
//! A self-contained, production-quality fuzzy inference library.
//!
//! This crate implements everything needed to build and evaluate fuzzy
//! inference systems (FIS) of the kind used by the fuzzy handover controller
//! of Barolli et al. (ICPP-W 2008), but it is fully generic and reusable:
//!
//! * [`Mf`] — parametric membership functions (triangular, trapezoidal,
//!   shoulders, Gaussian, generalized bell, sigmoid, singleton) with exact
//!   piecewise-linear integration for the linear families.
//! * [`LinguisticVariable`] / [`Term`] — named variables over a crisp
//!   universe of discourse, partitioned into linguistic terms.
//! * [`Rule`] / [`RuleSet`] — weighted IF/THEN rules with AND/OR
//!   connectives, hedges and negation, plus a small text DSL
//!   ([`parse_rule`](parser::parse_rule)).
//! * [`Fis`] — a Mamdani-style engine with configurable conjunction,
//!   disjunction, implication, aggregation and defuzzification.
//! * [`CompiledFis`] / [`EvalScratch`] — a [`Fis`] compiled once into
//!   dense arrays with pre-sampled consequents: bit-identical outputs,
//!   zero heap allocation per call, plus a batch entry point.
//! * [`Lut3d`] — a precomputed 3-D lookup table over a compiled
//!   3-input system (trilinear interpolation, documented error bound).
//! * [`SugenoFis`] — a zero/first-order Takagi–Sugeno–Kang engine.
//! * [`Defuzzifier`] — centroid, bisector, mean/smallest/largest of maxima
//!   and height (weighted-average) defuzzification.
//!
//! ## Quick example
//!
//! ```
//! use fuzzylogic::prelude::*;
//!
//! // The classic two-input "tipper": service and food quality in [0, 10],
//! // tip percentage in [0, 30].
//! let service = LinguisticVariable::new("service", 0.0, 10.0)
//!     .with_term("poor", Mf::left_shoulder(0.0, 5.0))
//!     .with_term("good", Mf::triangular(0.0, 5.0, 10.0))
//!     .with_term("excellent", Mf::right_shoulder(5.0, 10.0));
//! let tip = LinguisticVariable::new("tip", 0.0, 30.0)
//!     .with_term("cheap", Mf::triangular(0.0, 5.0, 10.0))
//!     .with_term("average", Mf::triangular(10.0, 15.0, 20.0))
//!     .with_term("generous", Mf::triangular(20.0, 25.0, 30.0));
//!
//! let fis = FisBuilder::new("tipper")
//!     .input(service)
//!     .output(tip)
//!     .rule_str("IF service IS poor THEN tip IS cheap").unwrap()
//!     .rule_str("IF service IS good THEN tip IS average").unwrap()
//!     .rule_str("IF service IS excellent THEN tip IS generous").unwrap()
//!     .build()
//!     .unwrap();
//!
//! let out = fis.evaluate(&[9.5]).unwrap();
//! assert!(out[0] > 20.0, "excellent service earns a generous tip");
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod analysis;
pub mod defuzz;
pub mod engine;
pub mod error;
pub mod fuzzyset;
pub mod hedge;
pub mod membership;
pub mod norms;
pub mod parser;
pub mod rule;
pub mod variable;

pub use analysis::{analyze, RuleBaseReport};
pub use defuzz::Defuzzifier;
pub use engine::compiled::{CompiledFis, EvalScratch};
pub use engine::lut::Lut3d;
pub use engine::mamdani::{EngineConfig, Fis, FisBuilder};
pub use engine::sugeno::{SugenoFis, SugenoFisBuilder, SugenoOutput, SugenoRule};
pub use error::{FuzzyError, Result};
pub use fuzzyset::SampledSet;
pub use hedge::Hedge;
pub use membership::Mf;
pub use norms::{Aggregation, Implication, SNorm, TNorm};
pub use rule::{Antecedent, Connective, Consequent, Rule, RuleSet};
pub use variable::{LinguisticVariable, Term};

/// Convenience re-exports for users who want everything in scope.
pub mod prelude {
    pub use crate::defuzz::Defuzzifier;
    pub use crate::engine::compiled::{CompiledFis, EvalScratch};
    pub use crate::engine::lut::Lut3d;
    pub use crate::engine::mamdani::{EngineConfig, Fis, FisBuilder};
    pub use crate::engine::sugeno::{SugenoFis, SugenoFisBuilder, SugenoOutput, SugenoRule};
    pub use crate::error::{FuzzyError, Result};
    pub use crate::fuzzyset::SampledSet;
    pub use crate::hedge::Hedge;
    pub use crate::membership::Mf;
    pub use crate::norms::{Aggregation, Implication, SNorm, TNorm};
    pub use crate::rule::{Antecedent, Connective, Consequent, Rule, RuleSet};
    pub use crate::variable::{LinguisticVariable, Term};
}
