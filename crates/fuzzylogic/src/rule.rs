//! IF/THEN rules and rule sets.
//!
//! Rules reference variables and terms by *index* into the owning system's
//! declarations; the builder and the text DSL resolve names to indices at
//! construction time so evaluation never does string lookups.

use crate::error::{FuzzyError, Result};
use crate::hedge::Hedge;
use crate::norms::{SNorm, TNorm};
use serde::{Deserialize, Serialize};

/// How a rule's antecedent clauses are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Connective {
    /// All clauses must hold (t-norm). The paper's 64-rule FRB is pure AND.
    #[default]
    And,
    /// Any clause may hold (s-norm).
    Or,
}

/// A single antecedent clause: `variable IS [hedge] term`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Antecedent {
    /// Index of the input variable within the system.
    pub var: usize,
    /// Index of the term within that variable.
    pub term: usize,
    /// Optional hedge (`Identity` when absent).
    pub hedge: Hedge,
}

impl Antecedent {
    /// Plain clause without a hedge.
    pub fn new(var: usize, term: usize) -> Self {
        Antecedent { var, term, hedge: Hedge::Identity }
    }

    /// Clause with a hedge.
    pub fn hedged(var: usize, term: usize, hedge: Hedge) -> Self {
        Antecedent { var, term, hedge }
    }
}

/// A consequent clause: `output-variable IS term`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Consequent {
    /// Index of the output variable within the system.
    pub var: usize,
    /// Index of the term within that variable.
    pub term: usize,
}

impl Consequent {
    /// Construct a consequent clause.
    pub fn new(var: usize, term: usize) -> Self {
        Consequent { var, term }
    }
}

/// A weighted fuzzy production rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Antecedent clauses (must be non-empty to ever fire).
    pub antecedents: Vec<Antecedent>,
    /// AND/OR combination of the antecedents.
    pub connective: Connective,
    /// Consequent clauses (one per affected output).
    pub consequents: Vec<Consequent>,
    /// Rule weight in `[0, 1]`, multiplied into the firing strength.
    pub weight: f64,
}

impl Rule {
    /// Construct a rule with weight 1.
    pub fn new(
        antecedents: Vec<Antecedent>,
        connective: Connective,
        consequents: Vec<Consequent>,
    ) -> Self {
        Rule { antecedents, connective, consequents, weight: 1.0 }
    }

    /// Builder-style weight override.
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Validate the weight.
    pub fn check_weight(&self) -> Result<()> {
        if !self.weight.is_finite() || !(0.0..=1.0).contains(&self.weight) {
            return Err(FuzzyError::InvalidWeight { weight: self.weight });
        }
        Ok(())
    }

    /// Firing strength given per-variable fuzzified inputs.
    ///
    /// `memberships[v][t]` is the membership of input `v` in its term `t`.
    pub fn firing_strength(
        &self,
        memberships: &[Vec<f64>],
        and: TNorm,
        or: SNorm,
    ) -> f64 {
        let degrees = self.antecedents.iter().map(|a| {
            let mu = memberships
                .get(a.var)
                .and_then(|terms| terms.get(a.term))
                .copied()
                .unwrap_or(0.0);
            a.hedge.apply(mu)
        });
        let strength = match self.connective {
            Connective::And => and.fold(degrees),
            Connective::Or => or.fold(degrees),
        };
        strength * self.weight
    }
}

/// An ordered collection of rules with consistency checks.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Empty rule set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// The rules, in insertion order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules have been added.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Rule at `index`.
    pub fn get(&self, index: usize) -> Result<&Rule> {
        self.rules
            .get(index)
            .ok_or(FuzzyError::RuleIndexOutOfBounds { index, len: self.rules.len() })
    }

    /// Validate every rule against the declared variable/term shapes.
    ///
    /// `input_terms[v]` / `output_terms[v]` give the number of terms of each
    /// input/output variable.
    pub fn validate(&self, input_terms: &[usize], output_terms: &[usize]) -> Result<()> {
        for rule in &self.rules {
            rule.check_weight()?;
            for a in &rule.antecedents {
                let nt = input_terms.get(a.var).ok_or(FuzzyError::UnknownVariable {
                    name: format!("input #{}", a.var),
                })?;
                if a.term >= *nt {
                    return Err(FuzzyError::UnknownTerm {
                        variable: format!("input #{}", a.var),
                        term: format!("term #{}", a.term),
                    });
                }
            }
            for c in &rule.consequents {
                let nt = output_terms.get(c.var).ok_or(FuzzyError::UnknownVariable {
                    name: format!("output #{}", c.var),
                })?;
                if c.term >= *nt {
                    return Err(FuzzyError::UnknownTerm {
                        variable: format!("output #{}", c.var),
                        term: format!("term #{}", c.term),
                    });
                }
            }
        }
        Ok(())
    }

    /// Detect pairs of rules with identical antecedents but different
    /// consequents — usually an authoring mistake in large rule tables.
    pub fn conflicting_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.rules.len() {
            for j in (i + 1)..self.rules.len() {
                let (a, b) = (&self.rules[i], &self.rules[j]);
                if a.antecedents == b.antecedents
                    && a.connective == b.connective
                    && a.consequents != b.consequents
                {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

impl FromIterator<Rule> for RuleSet {
    fn from_iter<T: IntoIterator<Item = Rule>>(iter: T) -> Self {
        RuleSet { rules: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_rule() -> Rule {
        Rule::new(
            vec![Antecedent::new(0, 1), Antecedent::new(1, 0)],
            Connective::And,
            vec![Consequent::new(0, 2)],
        )
    }

    #[test]
    fn firing_strength_and() {
        let rule = simple_rule();
        let memberships = vec![vec![0.0, 0.8, 0.2], vec![0.5, 0.5]];
        let w = rule.firing_strength(&memberships, TNorm::Min, SNorm::Max);
        assert!((w - 0.5).abs() < 1e-12, "min(0.8, 0.5) = 0.5");
    }

    #[test]
    fn firing_strength_or() {
        let mut rule = simple_rule();
        rule.connective = Connective::Or;
        let memberships = vec![vec![0.0, 0.8, 0.2], vec![0.5, 0.5]];
        let w = rule.firing_strength(&memberships, TNorm::Min, SNorm::Max);
        assert!((w - 0.8).abs() < 1e-12, "max(0.8, 0.5) = 0.8");
    }

    #[test]
    fn weight_scales_strength() {
        let rule = simple_rule().with_weight(0.5);
        let memberships = vec![vec![0.0, 1.0, 0.0], vec![1.0, 0.0]];
        let w = rule.firing_strength(&memberships, TNorm::Min, SNorm::Max);
        assert!((w - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hedges_transform_membership() {
        let rule = Rule::new(
            vec![Antecedent::hedged(0, 0, Hedge::Very)],
            Connective::And,
            vec![Consequent::new(0, 0)],
        );
        let memberships = vec![vec![0.5]];
        let w = rule.firing_strength(&memberships, TNorm::Min, SNorm::Max);
        assert!((w - 0.25).abs() < 1e-12, "very(0.5) = 0.25");
    }

    #[test]
    fn negation_hedge() {
        let rule = Rule::new(
            vec![Antecedent::hedged(0, 0, Hedge::Not)],
            Connective::And,
            vec![Consequent::new(0, 0)],
        );
        let memberships = vec![vec![0.3]];
        let w = rule.firing_strength(&memberships, TNorm::Min, SNorm::Max);
        assert!((w - 0.7).abs() < 1e-12);
    }

    #[test]
    fn missing_membership_is_zero() {
        let rule = Rule::new(
            vec![Antecedent::new(5, 0)],
            Connective::And,
            vec![Consequent::new(0, 0)],
        );
        let memberships = vec![vec![1.0]];
        assert_eq!(rule.firing_strength(&memberships, TNorm::Min, SNorm::Max), 0.0);
    }

    #[test]
    fn weight_validation() {
        assert!(simple_rule().check_weight().is_ok());
        assert!(simple_rule().with_weight(1.5).check_weight().is_err());
        assert!(simple_rule().with_weight(-0.1).check_weight().is_err());
        assert!(simple_rule().with_weight(f64::NAN).check_weight().is_err());
    }

    #[test]
    fn ruleset_validation() {
        let mut rs = RuleSet::new();
        rs.push(simple_rule());
        assert!(rs.validate(&[3, 2], &[3]).is_ok());
        // Input 1 has only 2 terms, but not if we claim it has 0.
        assert!(rs.validate(&[3, 0], &[3]).is_err());
        // Output term 2 does not exist if output has 2 terms.
        assert!(rs.validate(&[3, 2], &[2]).is_err());
        // Input variable 1 missing entirely.
        assert!(rs.validate(&[3], &[3]).is_err());
    }

    #[test]
    fn ruleset_get_bounds() {
        let mut rs = RuleSet::new();
        rs.push(simple_rule());
        assert!(rs.get(0).is_ok());
        assert_eq!(
            rs.get(3),
            Err(FuzzyError::RuleIndexOutOfBounds { index: 3, len: 1 })
        );
    }

    #[test]
    fn conflict_detection() {
        let mut rs = RuleSet::new();
        rs.push(simple_rule());
        let mut conflicting = simple_rule();
        conflicting.consequents = vec![Consequent::new(0, 0)];
        rs.push(conflicting);
        rs.push(simple_rule()); // identical duplicate: not a conflict
        let pairs = rs.conflicting_pairs();
        assert_eq!(pairs, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn from_iterator() {
        let rs: RuleSet = vec![simple_rule(), simple_rule()].into_iter().collect();
        assert_eq!(rs.len(), 2);
        assert!(!rs.is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let mut rs = RuleSet::new();
        rs.push(simple_rule().with_weight(0.75));
        let json = serde_json::to_string(&rs).unwrap();
        let back: RuleSet = serde_json::from_str(&json).unwrap();
        assert_eq!(rs, back);
    }
}
