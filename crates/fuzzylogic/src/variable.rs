//! Linguistic variables and their term partitions.

use crate::error::{FuzzyError, Result};
use crate::membership::Mf;
use serde::{Deserialize, Serialize};

/// A named linguistic term: a label plus its membership function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Term {
    /// The linguistic label, e.g. `"WK"` or `"Strong"`.
    pub name: String,
    /// The membership function associated with the label.
    pub mf: Mf,
}

impl Term {
    /// Construct a term.
    pub fn new(name: impl Into<String>, mf: Mf) -> Self {
        Term { name: name.into(), mf }
    }
}

/// A linguistic variable: a crisp universe of discourse `[min, max]`
/// partitioned into named terms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinguisticVariable {
    /// Variable name, e.g. `"CSSP"`.
    pub name: String,
    /// Lower bound of the universe of discourse.
    pub min: f64,
    /// Upper bound of the universe of discourse.
    pub max: f64,
    terms: Vec<Term>,
}

impl LinguisticVariable {
    /// Create a variable over `[min, max]`. Panics if the universe is empty
    /// or non-finite; use [`LinguisticVariable::try_new`] to handle errors.
    pub fn new(name: impl Into<String>, min: f64, max: f64) -> Self {
        Self::try_new(name, min, max).expect("invalid universe of discourse")
    }

    /// Fallible constructor.
    pub fn try_new(name: impl Into<String>, min: f64, max: f64) -> Result<Self> {
        let name = name.into();
        if !(min.is_finite() && max.is_finite()) || min >= max {
            return Err(FuzzyError::InvalidUniverse { variable: name, min, max });
        }
        Ok(LinguisticVariable { name, min, max, terms: Vec::new() })
    }

    /// Add a term (builder style). Panics on duplicate labels; use
    /// [`LinguisticVariable::try_add_term`] to handle errors.
    #[must_use]
    pub fn with_term(mut self, name: impl Into<String>, mf: Mf) -> Self {
        self.try_add_term(name, mf).expect("duplicate term label");
        self
    }

    /// Add a term in place.
    pub fn try_add_term(&mut self, name: impl Into<String>, mf: Mf) -> Result<()> {
        let name = name.into();
        if self.term_index(&name).is_some() {
            return Err(FuzzyError::DuplicateName { name });
        }
        self.terms.push(Term::new(name, mf));
        Ok(())
    }

    /// The declared terms, in insertion order.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Number of terms (`|T(x)|` in the paper's notation).
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Index of the term with the given label (case-sensitive first, then
    /// case-insensitive fallback so DSL text can use any case).
    pub fn term_index(&self, name: &str) -> Option<usize> {
        self.terms
            .iter()
            .position(|t| t.name == name)
            .or_else(|| self.terms.iter().position(|t| t.name.eq_ignore_ascii_case(name)))
    }

    /// The term at `index`.
    pub fn term(&self, index: usize) -> Option<&Term> {
        self.terms.get(index)
    }

    /// Clamp a crisp value into the universe of discourse.
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.min, self.max)
    }

    /// Fuzzify a crisp value: membership degree per term, in term order.
    ///
    /// The value is clamped to the universe first — a reading just outside
    /// the declared range (e.g. an RSS of −121 dBm on a [−120, −80]
    /// universe) saturates instead of silently falling off every term.
    pub fn fuzzify(&self, x: f64) -> Vec<f64> {
        let x = self.clamp(x);
        self.terms.iter().map(|t| t.mf.eval(x)).collect()
    }

    /// Membership of a clamped crisp value in a single term.
    pub fn membership(&self, term_index: usize, x: f64) -> f64 {
        let x = self.clamp(x);
        self.terms.get(term_index).map_or(0.0, |t| t.mf.eval(x))
    }

    /// The term with the highest membership for `x`, with its degree.
    /// Ties resolve to the first-declared term. `None` if no terms exist.
    pub fn best_term(&self, x: f64) -> Option<(usize, f64)> {
        let mus = self.fuzzify(x);
        mus.iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                a.partial_cmp(b)
                    .expect("memberships are finite")
                    // Prefer the earlier term on ties: max_by keeps the last
                    // maximal element, so order by index descending as the
                    // tiebreak.
                    .then(ib.cmp(ia))
            })
            .map(|(i, &mu)| (i, mu))
    }

    /// Sample `n >= 2` evenly spaced points of the universe.
    pub fn sample_universe(&self, n: usize) -> Vec<f64> {
        assert!(n >= 2, "need at least two sample points");
        let step = (self.max - self.min) / (n - 1) as f64;
        (0..n).map(|i| self.min + i as f64 * step).collect()
    }

    /// Find sub-intervals of the universe where **no** term reaches the
    /// given membership level (coverage gaps). A well-formed controller
    /// partition usually has none at level ~0.3–0.5.
    pub fn coverage_gaps(&self, level: f64, resolution: usize) -> Vec<(f64, f64)> {
        let xs = self.sample_universe(resolution.max(2));
        let mut gaps = Vec::new();
        let mut open: Option<f64> = None;
        for &x in &xs {
            let covered = self.terms.iter().any(|t| t.mf.eval(x) >= level);
            match (covered, open) {
                (false, None) => open = Some(x),
                (true, Some(start)) => {
                    gaps.push((start, x));
                    open = None;
                }
                _ => {}
            }
        }
        if let Some(start) = open {
            gaps.push((start, self.max));
        }
        gaps
    }

    /// Maximum over the universe of `|Σ_terms μ(x) − 1|`; zero for an exact
    /// Ruspini partition. Useful as a partition-quality diagnostic.
    pub fn ruspini_deviation(&self, resolution: usize) -> f64 {
        self.sample_universe(resolution.max(2))
            .iter()
            .map(|&x| {
                let sum: f64 = self.terms.iter().map(|t| t.mf.eval(x)).sum();
                (sum - 1.0).abs()
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_term_var() -> LinguisticVariable {
        LinguisticVariable::new("level", 0.0, 10.0)
            .with_term("low", Mf::left_shoulder(0.0, 5.0))
            .with_term("mid", Mf::triangular(0.0, 5.0, 10.0))
            .with_term("high", Mf::right_shoulder(5.0, 10.0))
    }

    #[test]
    fn construction_and_lookup() {
        let v = three_term_var();
        assert_eq!(v.term_count(), 3);
        assert_eq!(v.term_index("mid"), Some(1));
        assert_eq!(v.term_index("MID"), Some(1), "case-insensitive fallback");
        assert_eq!(v.term_index("none"), None);
        assert_eq!(v.term(0).unwrap().name, "low");
    }

    #[test]
    fn invalid_universes_rejected() {
        assert!(LinguisticVariable::try_new("x", 1.0, 1.0).is_err());
        assert!(LinguisticVariable::try_new("x", 2.0, 1.0).is_err());
        assert!(LinguisticVariable::try_new("x", f64::NAN, 1.0).is_err());
        assert!(LinguisticVariable::try_new("x", 0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn duplicate_terms_rejected() {
        let mut v = LinguisticVariable::new("x", 0.0, 1.0);
        v.try_add_term("a", Mf::singleton(0.5)).unwrap();
        assert_eq!(
            v.try_add_term("a", Mf::singleton(0.6)),
            Err(FuzzyError::DuplicateName { name: "a".into() })
        );
    }

    #[test]
    fn fuzzify_returns_term_order() {
        let v = three_term_var();
        let mus = v.fuzzify(0.0);
        assert_eq!(mus.len(), 3);
        assert_eq!(mus[0], 1.0, "low saturates at 0");
        assert_eq!(mus[1], 0.0);
        assert_eq!(mus[2], 0.0);

        let mus = v.fuzzify(5.0);
        assert_eq!(mus, vec![0.0, 1.0, 0.0]);

        let mus = v.fuzzify(7.5);
        assert!((mus[1] - 0.5).abs() < 1e-12);
        assert!((mus[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let v = three_term_var();
        assert_eq!(v.fuzzify(-100.0), v.fuzzify(0.0));
        assert_eq!(v.fuzzify(100.0), v.fuzzify(10.0));
    }

    #[test]
    fn best_term_selection() {
        let v = three_term_var();
        assert_eq!(v.best_term(1.0).unwrap().0, 0);
        assert_eq!(v.best_term(5.0).unwrap().0, 1);
        assert_eq!(v.best_term(9.0).unwrap().0, 2);
        // Exact tie at 7.5 between mid and high resolves to mid (declared
        // first).
        assert_eq!(v.best_term(7.5).unwrap().0, 1);
        let empty = LinguisticVariable::new("e", 0.0, 1.0);
        assert_eq!(empty.best_term(0.5), None);
    }

    #[test]
    fn membership_by_index() {
        let v = three_term_var();
        assert_eq!(v.membership(0, 0.0), 1.0);
        assert_eq!(v.membership(7, 0.0), 0.0, "out-of-range term index");
    }

    #[test]
    fn sample_universe_endpoints() {
        let v = three_term_var();
        let xs = v.sample_universe(11);
        assert_eq!(xs.len(), 11);
        assert_eq!(xs[0], 0.0);
        assert_eq!(*xs.last().unwrap(), 10.0);
        assert!((xs[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_gap_detection() {
        // Partition with a hole between 4 and 6.
        let v = LinguisticVariable::new("gappy", 0.0, 10.0)
            .with_term("a", Mf::triangular(0.0, 2.0, 4.0))
            .with_term("b", Mf::triangular(6.0, 8.0, 10.0));
        let gaps = v.coverage_gaps(0.1, 1001);
        assert_eq!(gaps.len(), 3, "edges plus the middle hole: {gaps:?}");
        let mid_gap = gaps
            .iter()
            .find(|(a, b)| *a > 3.0 && *b < 7.0)
            .expect("middle gap found");
        assert!(mid_gap.0 < 4.2 && mid_gap.1 > 5.8);

        let full = three_term_var();
        assert!(full.coverage_gaps(0.4, 1001).is_empty(), "no gaps at level 0.4");
    }

    #[test]
    fn ruspini_deviation_of_perfect_partition() {
        // left shoulder + triangle + right shoulder with matched slopes sum
        // to exactly 1 everywhere.
        let v = LinguisticVariable::new("p", 0.0, 10.0)
            .with_term("l", Mf::left_shoulder(0.0, 5.0))
            .with_term("m", Mf::triangular(0.0, 5.0, 10.0))
            .with_term("h", Mf::right_shoulder(5.0, 10.0));
        assert!(v.ruspini_deviation(501) < 1e-9);

        let bad = LinguisticVariable::new("q", 0.0, 10.0)
            .with_term("only", Mf::triangular(4.0, 5.0, 6.0));
        assert!(bad.ruspini_deviation(501) > 0.9);
    }

    #[test]
    fn serde_round_trip() {
        let v = three_term_var();
        let json = serde_json::to_string(&v).unwrap();
        let back: LinguisticVariable = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
