//! A small text DSL for authoring rules.
//!
//! Grammar (case-insensitive keywords, whitespace-separated):
//!
//! ```text
//! IF <var> IS [<hedge>] <term> {AND|OR <var> IS [<hedge>] <term>}
//!     THEN <var> IS <term> {AND <var> IS <term>} [WITH <weight>]
//! ```
//!
//! Example: `IF cssp IS SM AND ssn IS NOT WK THEN hd IS LO WITH 0.9`.

use crate::error::{FuzzyError, Result};
use crate::hedge::Hedge;
use crate::rule::{Antecedent, Connective, Consequent, Rule};
use crate::variable::LinguisticVariable;

/// Parse one rule against the declared input and output variables.
pub fn parse_rule(
    text: &str,
    inputs: &[LinguisticVariable],
    outputs: &[LinguisticVariable],
) -> Result<Rule> {
    let err = |reason: &str| FuzzyError::Parse { reason: reason.to_string(), text: text.to_string() };

    let tokens: Vec<&str> = text.split_whitespace().collect();
    if tokens.is_empty() {
        return Err(err("empty rule"));
    }
    let mut pos = 0usize;

    let expect_kw = |pos: &mut usize, kw: &str, tokens: &[&str]| -> Result<()> {
        match tokens.get(*pos) {
            Some(t) if t.eq_ignore_ascii_case(kw) => {
                *pos += 1;
                Ok(())
            }
            Some(t) => Err(FuzzyError::Parse {
                reason: format!("expected `{kw}`, found `{t}`"),
                text: text.to_string(),
            }),
            None => Err(FuzzyError::Parse {
                reason: format!("expected `{kw}`, found end of rule"),
                text: text.to_string(),
            }),
        }
    };

    expect_kw(&mut pos, "IF", &tokens)?;

    // --- antecedents -----------------------------------------------------
    let mut antecedents = Vec::new();
    let mut connective: Option<Connective> = None;
    loop {
        let var_name = *tokens.get(pos).ok_or_else(|| err("expected a variable name"))?;
        pos += 1;
        let var = lookup_variable(var_name, inputs)
            .ok_or_else(|| FuzzyError::UnknownVariable { name: var_name.to_string() })?;
        expect_kw(&mut pos, "IS", &tokens)?;

        // Optional single hedge keyword before the term label. A token is
        // treated as a hedge only when it is NOT itself a term of the
        // variable, so term sets may legally contain labels like "NOT".
        let mut hedge = Hedge::Identity;
        let mut term_tok = *tokens.get(pos).ok_or_else(|| err("expected a term name"))?;
        pos += 1;
        if inputs[var].term_index(term_tok).is_none() {
            if let Some(h) = Hedge::from_keyword(term_tok) {
                hedge = h;
                term_tok = *tokens.get(pos).ok_or_else(|| err("expected a term after hedge"))?;
                pos += 1;
            }
        }
        let term = inputs[var].term_index(term_tok).ok_or_else(|| FuzzyError::UnknownTerm {
            variable: inputs[var].name.clone(),
            term: term_tok.to_string(),
        })?;
        antecedents.push(Antecedent::hedged(var, term, hedge));

        match tokens.get(pos).map(|t| t.to_ascii_uppercase()) {
            Some(ref t) if t == "AND" => {
                if connective == Some(Connective::Or) {
                    return Err(err("mixed AND/OR antecedents are not supported"));
                }
                connective = Some(Connective::And);
                pos += 1;
            }
            Some(ref t) if t == "OR" => {
                if connective == Some(Connective::And) {
                    return Err(err("mixed AND/OR antecedents are not supported"));
                }
                connective = Some(Connective::Or);
                pos += 1;
            }
            Some(ref t) if t == "THEN" => break,
            Some(t) => {
                return Err(FuzzyError::Parse {
                    reason: format!("expected AND/OR/THEN, found `{t}`"),
                    text: text.to_string(),
                })
            }
            None => return Err(err("rule has no THEN clause")),
        }
    }
    expect_kw(&mut pos, "THEN", &tokens)?;

    // --- consequents -----------------------------------------------------
    let mut consequents = Vec::new();
    let mut weight = 1.0f64;
    loop {
        let var_name = *tokens.get(pos).ok_or_else(|| err("expected an output variable"))?;
        pos += 1;
        let var = lookup_variable(var_name, outputs)
            .ok_or_else(|| FuzzyError::UnknownVariable { name: var_name.to_string() })?;
        expect_kw(&mut pos, "IS", &tokens)?;
        let term_tok = *tokens.get(pos).ok_or_else(|| err("expected an output term"))?;
        pos += 1;
        let term = outputs[var].term_index(term_tok).ok_or_else(|| FuzzyError::UnknownTerm {
            variable: outputs[var].name.clone(),
            term: term_tok.to_string(),
        })?;
        consequents.push(Consequent::new(var, term));

        match tokens.get(pos).map(|t| t.to_ascii_uppercase()) {
            Some(ref t) if t == "AND" => {
                pos += 1;
            }
            Some(ref t) if t == "WITH" => {
                pos += 1;
                let w_tok = *tokens.get(pos).ok_or_else(|| err("expected a weight after WITH"))?;
                pos += 1;
                weight = w_tok
                    .parse::<f64>()
                    .map_err(|_| FuzzyError::Parse {
                        reason: format!("`{w_tok}` is not a number"),
                        text: text.to_string(),
                    })?;
                if tokens.len() != pos {
                    return Err(err("unexpected tokens after the weight"));
                }
                break;
            }
            Some(t) => {
                return Err(FuzzyError::Parse {
                    reason: format!("expected AND/WITH/end, found `{t}`"),
                    text: text.to_string(),
                })
            }
            None => break,
        }
    }

    let rule = Rule::new(antecedents, connective.unwrap_or_default(), consequents)
        .with_weight(weight);
    rule.check_weight()?;
    Ok(rule)
}

fn lookup_variable(name: &str, vars: &[LinguisticVariable]) -> Option<usize> {
    vars.iter()
        .position(|v| v.name == name)
        .or_else(|| vars.iter().position(|v| v.name.eq_ignore_ascii_case(name)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::Mf;

    fn vars() -> (Vec<LinguisticVariable>, Vec<LinguisticVariable>) {
        let a = LinguisticVariable::new("temp", 0.0, 100.0)
            .with_term("cold", Mf::left_shoulder(0.0, 50.0))
            .with_term("hot", Mf::right_shoulder(50.0, 100.0));
        let b = LinguisticVariable::new("humidity", 0.0, 1.0)
            .with_term("dry", Mf::left_shoulder(0.0, 0.5))
            .with_term("wet", Mf::right_shoulder(0.5, 1.0));
        let o = LinguisticVariable::new("fan", 0.0, 10.0)
            .with_term("slow", Mf::left_shoulder(0.0, 5.0))
            .with_term("fast", Mf::right_shoulder(5.0, 10.0));
        (vec![a, b], vec![o])
    }

    #[test]
    fn simple_rule() {
        let (i, o) = vars();
        let r = parse_rule("IF temp IS hot THEN fan IS fast", &i, &o).unwrap();
        assert_eq!(r.antecedents, vec![Antecedent::new(0, 1)]);
        assert_eq!(r.consequents, vec![Consequent::new(0, 1)]);
        assert_eq!(r.connective, Connective::And);
        assert_eq!(r.weight, 1.0);
    }

    #[test]
    fn multi_antecedent_and() {
        let (i, o) = vars();
        let r = parse_rule("IF temp IS hot AND humidity IS wet THEN fan IS fast", &i, &o).unwrap();
        assert_eq!(r.antecedents.len(), 2);
        assert_eq!(r.antecedents[1], Antecedent::new(1, 1));
        assert_eq!(r.connective, Connective::And);
    }

    #[test]
    fn or_connective() {
        let (i, o) = vars();
        let r = parse_rule("IF temp IS hot OR humidity IS dry THEN fan IS fast", &i, &o).unwrap();
        assert_eq!(r.connective, Connective::Or);
    }

    #[test]
    fn mixed_connectives_rejected() {
        let (i, o) = vars();
        let e = parse_rule(
            "IF temp IS hot AND humidity IS dry OR temp IS cold THEN fan IS fast",
            &i,
            &o,
        );
        assert!(matches!(e, Err(FuzzyError::Parse { .. })));
    }

    #[test]
    fn hedges_and_not() {
        let (i, o) = vars();
        let r = parse_rule("IF temp IS very hot THEN fan IS fast", &i, &o).unwrap();
        assert_eq!(r.antecedents[0].hedge, Hedge::Very);
        let r = parse_rule("IF temp IS NOT cold THEN fan IS fast", &i, &o).unwrap();
        assert_eq!(r.antecedents[0].hedge, Hedge::Not);
        assert_eq!(r.antecedents[0].term, 0);
    }

    #[test]
    fn weight_clause() {
        let (i, o) = vars();
        let r = parse_rule("IF temp IS hot THEN fan IS fast WITH 0.25", &i, &o).unwrap();
        assert_eq!(r.weight, 0.25);
        assert!(parse_rule("IF temp IS hot THEN fan IS fast WITH 2.0", &i, &o).is_err());
        assert!(parse_rule("IF temp IS hot THEN fan IS fast WITH abc", &i, &o).is_err());
    }

    #[test]
    fn multi_consequent() {
        let (i, mut o) = vars();
        o.push(
            LinguisticVariable::new("vent", 0.0, 1.0)
                .with_term("closed", Mf::left_shoulder(0.0, 0.5))
                .with_term("open", Mf::right_shoulder(0.5, 1.0)),
        );
        let r = parse_rule("IF temp IS hot THEN fan IS fast AND vent IS open", &i, &o).unwrap();
        assert_eq!(r.consequents.len(), 2);
        assert_eq!(r.consequents[1], Consequent::new(1, 1));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let (i, o) = vars();
        let r = parse_rule("if TEMP is HOT then FAN is FAST with 0.5", &i, &o).unwrap();
        assert_eq!(r.weight, 0.5);
        assert_eq!(r.antecedents[0].term, 1);
    }

    #[test]
    fn unknown_names_are_reported() {
        let (i, o) = vars();
        assert_eq!(
            parse_rule("IF pressure IS hot THEN fan IS fast", &i, &o),
            Err(FuzzyError::UnknownVariable { name: "pressure".into() })
        );
        assert_eq!(
            parse_rule("IF temp IS tepid THEN fan IS fast", &i, &o),
            Err(FuzzyError::UnknownTerm { variable: "temp".into(), term: "tepid".into() })
        );
        assert!(parse_rule("IF temp IS hot THEN turbine IS fast", &i, &o).is_err());
    }

    #[test]
    fn syntax_errors_are_reported() {
        let (i, o) = vars();
        for bad in [
            "",
            "temp IS hot THEN fan IS fast",
            "IF temp hot THEN fan IS fast",
            "IF temp IS hot",
            "IF temp IS hot THEN fan IS fast EXTRA",
            "IF temp IS hot THEN fan IS fast WITH 0.5 junk",
            "IF temp IS THEN fan IS fast",
        ] {
            let res = parse_rule(bad, &i, &o);
            assert!(res.is_err(), "`{bad}` should not parse, got {res:?}");
        }
    }
}
