//! Discretised fuzzy sets over a variable's universe.
//!
//! The Mamdani engine aggregates fired consequents into a [`SampledSet`],
//! which the sampling-based defuzzifiers then reduce to a crisp value.

use crate::norms::Aggregation;
use serde::{Deserialize, Serialize};

/// The `i`-th coordinate of `n` evenly spaced grid points spanning
/// `[min, max]`, endpoints included.
///
/// This is the one formula shared by every universe discretisation in the
/// crate — [`SampledSet`], the interpreted Mamdani engine, the compiled
/// engine's pre-sampled consequent tables and the LUT grids all call it, so
/// their sample coordinates are bit-identical by construction.
///
/// `n` must be at least 2 (a grid needs both endpoints); every grid in the
/// crate enforces that at construction time, and debug builds assert it.
#[inline]
pub fn grid_x(min: f64, max: f64, n: usize, i: usize) -> f64 {
    debug_assert!(n >= 2, "a sample grid needs at least two points, got {n}");
    min + (max - min) * i as f64 / (n - 1) as f64
}

/// Maximum membership degree of a sampled curve (its *height*). The one
/// implementation behind [`SampledSet::height`] and the slice-based
/// defuzzifiers, so both paths agree bit for bit.
pub(crate) fn slice_height(mu: &[f64]) -> f64 {
    mu.iter().cloned().fold(0.0, f64::max)
}

/// Trapezoidal-rule area of a sampled curve over `[min, max]` (`mu.len()`
/// must be ≥ 2). The one implementation behind [`SampledSet::area`] and
/// the slice-based defuzzifiers.
pub(crate) fn slice_area(min: f64, max: f64, mu: &[f64]) -> f64 {
    let n = mu.len();
    let dx = (max - min) / (n - 1) as f64;
    let interior: f64 = mu[1..n - 1].iter().sum();
    dx * (0.5 * (mu[0] + mu[n - 1]) + interior)
}

/// Trapezoidal-rule first moment `∫ x μ(x) dx` of a sampled curve over
/// `[min, max]` (`mu.len()` must be ≥ 2). The one implementation behind
/// [`SampledSet::first_moment`] and the slice-based defuzzifiers.
pub(crate) fn slice_first_moment(min: f64, max: f64, mu: &[f64]) -> f64 {
    let n = mu.len();
    let dx = (max - min) / (n - 1) as f64;
    let ends = 0.5
        * (mu[0] * grid_x(min, max, n, 0) + mu[n - 1] * grid_x(min, max, n, n - 1));
    let interior: f64 = (1..n - 1).map(|i| mu[i] * grid_x(min, max, n, i)).sum();
    dx * (ends + interior)
}

/// A fuzzy set represented by membership degrees sampled on a uniform grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampledSet {
    /// Lower bound of the sampled universe.
    pub min: f64,
    /// Upper bound of the sampled universe.
    pub max: f64,
    /// Membership degrees at `len()` evenly spaced points, endpoints
    /// included.
    pub mu: Vec<f64>,
}

impl SampledSet {
    /// An all-zero (empty) set sampled at `n >= 2` points.
    pub fn empty(min: f64, max: f64, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        assert!(min < max, "empty universe [{min}, {max}]");
        SampledSet { min, max, mu: vec![0.0; n] }
    }

    /// Build from an arbitrary membership closure.
    pub fn from_fn(min: f64, max: f64, n: usize, f: impl Fn(f64) -> f64) -> Self {
        let mut s = Self::empty(min, max, n);
        for i in 0..n {
            s.mu[i] = f(s.x_at(i)).clamp(0.0, 1.0);
        }
        s
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.mu.len()
    }

    /// True when the set holds no samples (never constructible via public
    /// API, but required for a well-behaved `len`).
    pub fn is_empty(&self) -> bool {
        self.mu.is_empty()
    }

    /// The grid coordinate of sample `i`.
    #[inline]
    pub fn x_at(&self, i: usize) -> f64 {
        grid_x(self.min, self.max, self.mu.len(), i)
    }

    /// Grid spacing.
    #[inline]
    pub fn dx(&self) -> f64 {
        (self.max - self.min) / (self.mu.len() - 1) as f64
    }

    /// Membership at an arbitrary `x` by linear interpolation between grid
    /// points; zero outside the universe.
    pub fn interp(&self, x: f64) -> f64 {
        if x < self.min || x > self.max {
            return 0.0;
        }
        let t = (x - self.min) / (self.max - self.min) * (self.mu.len() - 1) as f64;
        let i = (t.floor() as usize).min(self.mu.len() - 2);
        let frac = t - i as f64;
        self.mu[i] * (1.0 - frac) + self.mu[i + 1] * frac
    }

    /// Accumulate another membership closure into this set under the given
    /// aggregation operator. Used per fired rule.
    pub fn aggregate_fn(&mut self, agg: Aggregation, f: impl Fn(f64) -> f64) {
        for i in 0..self.mu.len() {
            let x = self.x_at(i);
            self.mu[i] = agg.apply(self.mu[i], f(x).clamp(0.0, 1.0));
        }
    }

    /// Pointwise union (max) with another set on the same grid.
    pub fn union(&self, other: &SampledSet) -> SampledSet {
        self.zip_with(other, f64::max)
    }

    /// Pointwise intersection (min) with another set on the same grid.
    pub fn intersection(&self, other: &SampledSet) -> SampledSet {
        self.zip_with(other, f64::min)
    }

    /// Pointwise complement.
    pub fn complement(&self) -> SampledSet {
        SampledSet {
            min: self.min,
            max: self.max,
            mu: self.mu.iter().map(|&m| 1.0 - m).collect(),
        }
    }

    fn zip_with(&self, other: &SampledSet, f: impl Fn(f64, f64) -> f64) -> SampledSet {
        assert_eq!(self.min, other.min, "sets must share a universe");
        assert_eq!(self.max, other.max, "sets must share a universe");
        assert_eq!(self.len(), other.len(), "sets must share a grid");
        SampledSet {
            min: self.min,
            max: self.max,
            mu: self.mu.iter().zip(&other.mu).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Maximum membership degree (the set's *height*).
    pub fn height(&self) -> f64 {
        slice_height(&self.mu)
    }

    /// Trapezoidal-rule area under the sampled membership curve.
    pub fn area(&self) -> f64 {
        slice_area(self.min, self.max, &self.mu)
    }

    /// Trapezoidal-rule first moment `∫ x μ(x) dx`.
    pub fn first_moment(&self) -> f64 {
        slice_first_moment(self.min, self.max, &self.mu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::Mf;

    #[test]
    fn grid_coordinates() {
        let s = SampledSet::empty(0.0, 10.0, 11);
        assert_eq!(s.len(), 11);
        assert_eq!(s.x_at(0), 0.0);
        assert_eq!(s.x_at(10), 10.0);
        assert!((s.x_at(3) - 3.0).abs() < 1e-12);
        assert!((s.dx() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_fn_clamps() {
        let s = SampledSet::from_fn(0.0, 1.0, 3, |x| 2.0 * x - 0.5);
        assert_eq!(s.mu, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn interpolation() {
        let s = SampledSet::from_fn(0.0, 2.0, 3, |x| x / 2.0);
        assert!((s.interp(0.5) - 0.25).abs() < 1e-12);
        assert!((s.interp(1.5) - 0.75).abs() < 1e-12);
        assert_eq!(s.interp(-0.1), 0.0, "outside universe");
        assert_eq!(s.interp(2.1), 0.0);
        assert!((s.interp(2.0) - 1.0).abs() < 1e-12, "right endpoint exact");
    }

    #[test]
    fn aggregation_max_accumulates() {
        let tri1 = Mf::triangular(0.0, 2.0, 4.0);
        let tri2 = Mf::triangular(2.0, 4.0, 6.0);
        let mut s = SampledSet::empty(0.0, 6.0, 61);
        s.aggregate_fn(Aggregation::Max, |x| tri1.eval(x));
        s.aggregate_fn(Aggregation::Max, |x| tri2.eval(x));
        // At the crossover x = 3 both triangles give 0.5.
        assert!((s.interp(3.0) - 0.5).abs() < 1e-9);
        assert!((s.interp(2.0) - 1.0).abs() < 1e-9);
        assert!((s.interp(4.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn union_intersection_complement() {
        let a = SampledSet::from_fn(0.0, 1.0, 5, |x| x);
        let b = SampledSet::from_fn(0.0, 1.0, 5, |x| 1.0 - x);
        let u = a.union(&b);
        let i = a.intersection(&b);
        for k in 0..5 {
            assert!(u.mu[k] >= i.mu[k]);
            assert!((u.mu[k] - a.mu[k].max(b.mu[k])).abs() < 1e-12);
            assert!((i.mu[k] - a.mu[k].min(b.mu[k])).abs() < 1e-12);
        }
        let c = a.complement();
        for k in 0..5 {
            assert!((c.mu[k] - (1.0 - a.mu[k])).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "share a universe")]
    fn mismatched_universes_panic() {
        let a = SampledSet::empty(0.0, 1.0, 5);
        let b = SampledSet::empty(0.0, 2.0, 5);
        let _ = a.union(&b);
    }

    #[test]
    fn height_area_moment() {
        // Unit-height triangle (0, 1, 2): area 1, centroid 1.
        let tri = Mf::triangular(0.0, 1.0, 2.0);
        let s = SampledSet::from_fn(0.0, 2.0, 2001, |x| tri.eval(x));
        assert!((s.height() - 1.0).abs() < 1e-9);
        assert!((s.area() - 1.0).abs() < 1e-6);
        assert!((s.first_moment() / s.area() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_set_has_zero_everything() {
        let s = SampledSet::empty(0.0, 1.0, 16);
        assert_eq!(s.height(), 0.0);
        assert_eq!(s.area(), 0.0);
        assert_eq!(s.first_moment(), 0.0);
        assert!(!s.is_empty(), "has samples, just all-zero");
    }
}
