//! The Mamdani inference engine.
//!
//! Evaluation pipeline for each output variable:
//!
//! 1. **Fuzzify** every crisp input against every term of its variable.
//! 2. **Fire** each rule: combine antecedent memberships with the
//!    configured t-norm/s-norm and scale by the rule weight.
//! 3. **Imply**: clip (min) or scale (product) the consequent term's MF by
//!    the firing strength.
//! 4. **Aggregate** all implied consequents into one sampled output set.
//! 5. **Defuzzify** the aggregate into a crisp output.

use crate::defuzz::Defuzzifier;
use crate::engine::compiled::CompiledFis;
use crate::error::{FuzzyError, Result};
use crate::fuzzyset::{grid_x, SampledSet};
use crate::norms::{Aggregation, Implication, SNorm, TNorm};
use crate::parser::parse_rule;
use crate::rule::{Connective, Rule, RuleSet};
use crate::variable::LinguisticVariable;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Reusable buffers of the plain (untraced) evaluation path; one per
/// thread, grown on first use and reused for every subsequent call.
#[derive(Debug, Default)]
struct PlainScratch {
    /// Fuzzified degrees of every (input, term), flat in declaration order.
    memberships: Vec<f64>,
    /// `offsets[v]..offsets[v + 1]` delimits input `v`'s terms.
    offsets: Vec<usize>,
    /// Firing strength per rule.
    firing: Vec<f64>,
    /// Aggregated output samples (one output variable at a time).
    mu: Vec<f64>,
}

thread_local! {
    static PLAIN_SCRATCH: RefCell<PlainScratch> = RefCell::new(PlainScratch::default());
}

/// Behaviour when no rule fires for a given input vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum NoFirePolicy {
    /// Return [`FuzzyError::NoRuleFired`].
    #[default]
    Error,
    /// Return the midpoint of each output universe.
    UniverseMidpoint,
}

/// Operator and discretisation configuration for a [`Fis`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// t-norm for AND-connected antecedents.
    pub and: TNorm,
    /// s-norm for OR-connected antecedents.
    pub or: SNorm,
    /// Implication (consequent shaping) operator.
    pub implication: Implication,
    /// Aggregation (consequent merging) operator.
    pub aggregation: Aggregation,
    /// Defuzzifier applied to the aggregated output set.
    pub defuzzifier: Defuzzifier,
    /// Number of samples per output universe (>= 2).
    pub resolution: usize,
    /// What to do when no rule fires.
    pub no_fire: NoFirePolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            and: TNorm::Min,
            or: SNorm::Max,
            implication: Implication::Min,
            aggregation: Aggregation::Max,
            defuzzifier: Defuzzifier::Centroid,
            resolution: 501,
            no_fire: NoFirePolicy::Error,
        }
    }
}

/// Per-evaluation diagnostic trace (for explainability and tests).
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// `memberships[v][t]`: fuzzified degree of input `v` in its term `t`.
    pub memberships: Vec<Vec<f64>>,
    /// Firing strength of each rule, in rule order.
    pub firing: Vec<f64>,
    /// Aggregated output set per output variable.
    pub output_sets: Vec<SampledSet>,
    /// Crisp outputs, in output-variable order.
    pub outputs: Vec<f64>,
}

/// A complete Mamdani fuzzy inference system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fis {
    name: String,
    inputs: Vec<LinguisticVariable>,
    outputs: Vec<LinguisticVariable>,
    rules: RuleSet,
    config: EngineConfig,
}

impl Fis {
    /// System name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared input variables, in declaration order.
    pub fn inputs(&self) -> &[LinguisticVariable] {
        &self.inputs
    }

    /// Declared output variables, in declaration order.
    pub fn outputs(&self) -> &[LinguisticVariable] {
        &self.outputs
    }

    /// The rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Replace the engine configuration (used by the ablation benches).
    #[must_use]
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Index of the input variable with the given name.
    pub fn input_index(&self, name: &str) -> Option<usize> {
        self.inputs.iter().position(|v| v.name.eq_ignore_ascii_case(name))
    }

    /// Index of the output variable with the given name.
    pub fn output_index(&self, name: &str) -> Option<usize> {
        self.outputs.iter().position(|v| v.name.eq_ignore_ascii_case(name))
    }

    fn check_inputs(&self, crisp: &[f64]) -> Result<()> {
        if crisp.len() != self.inputs.len() {
            return Err(FuzzyError::InputArity { expected: self.inputs.len(), got: crisp.len() });
        }
        for (i, &x) in crisp.iter().enumerate() {
            if !x.is_finite() {
                return Err(FuzzyError::NonFiniteInput { index: i, value: x });
            }
        }
        Ok(())
    }

    /// Step 1: fuzzify all crisp inputs.
    pub fn fuzzify(&self, crisp: &[f64]) -> Result<Vec<Vec<f64>>> {
        self.check_inputs(crisp)?;
        Ok(self
            .inputs
            .iter()
            .zip(crisp)
            .map(|(var, &x)| var.fuzzify(x))
            .collect())
    }

    /// Step 2: firing strength of every rule for the given inputs.
    pub fn firing_strengths(&self, crisp: &[f64]) -> Result<Vec<f64>> {
        let memberships = self.fuzzify(crisp)?;
        Ok(self
            .rules
            .rules()
            .iter()
            .map(|r| r.firing_strength(&memberships, self.config.and, self.config.or))
            .collect())
    }

    /// Steps 3–4: the aggregated output fuzzy set for output `out_idx`.
    pub fn output_set(&self, crisp: &[f64], out_idx: usize) -> Result<SampledSet> {
        let firing = self.firing_strengths(crisp)?;
        Ok(self.aggregate(&firing, out_idx))
    }

    fn aggregate(&self, firing: &[f64], out_idx: usize) -> SampledSet {
        let var = &self.outputs[out_idx];
        let mut set = SampledSet::empty(var.min, var.max, self.config.resolution);
        for (rule, &w) in self.rules.rules().iter().zip(firing) {
            if w <= 0.0 {
                continue;
            }
            for cons in rule.consequents.iter().filter(|c| c.var == out_idx) {
                let mf = var.terms()[cons.term].mf;
                let implication = self.config.implication;
                set.aggregate_fn(self.config.aggregation, |x| implication.apply(w, mf.eval(x)));
            }
        }
        set
    }

    /// Full pipeline: crisp inputs to crisp outputs.
    ///
    /// The plain path runs through a thread-local scratch buffer, so after
    /// the first call on a thread the only per-call heap allocation is the
    /// returned output vector; use [`CompiledFis`](crate::CompiledFis) for
    /// a strictly allocation-free hot path. Results are bit-identical to
    /// [`Fis::evaluate_with_trace`].
    pub fn evaluate(&self, crisp: &[f64]) -> Result<Vec<f64>> {
        PLAIN_SCRATCH.with(|cell| self.evaluate_scratch(crisp, &mut cell.borrow_mut()))
    }

    /// The scratch-buffer evaluation core behind [`Fis::evaluate`]. Performs
    /// the same fuzzify → fire → imply/aggregate → defuzzify arithmetic as
    /// the traced path, but reuses flat buffers instead of allocating the
    /// intermediate vectors and sampled sets.
    fn evaluate_scratch(&self, crisp: &[f64], s: &mut PlainScratch) -> Result<Vec<f64>> {
        self.check_inputs(crisp)?;

        // Step 1 — fuzzify into one flat buffer (term degrees per variable,
        // in declaration order, delimited by `offsets`).
        s.offsets.clear();
        s.memberships.clear();
        s.offsets.push(0);
        for (var, &x) in self.inputs.iter().zip(crisp) {
            let x = var.clamp(x);
            for term in var.terms() {
                s.memberships.push(term.mf.eval(x));
            }
            s.offsets.push(s.memberships.len());
        }

        // Step 2 — firing strengths (same degree lookup semantics as
        // `Rule::firing_strength`: unknown variable/term indices read as 0).
        s.firing.clear();
        for rule in self.rules.rules() {
            let degrees = rule.antecedents.iter().map(|a| {
                let mu = if a.var + 1 < s.offsets.len()
                    && a.term < s.offsets[a.var + 1] - s.offsets[a.var]
                {
                    s.memberships[s.offsets[a.var] + a.term]
                } else {
                    0.0
                };
                a.hedge.apply(mu)
            });
            let strength = match rule.connective {
                Connective::And => self.config.and.fold(degrees),
                Connective::Or => self.config.or.fold(degrees),
            };
            s.firing.push(strength * rule.weight);
        }

        // Steps 3–5 — imply, aggregate and defuzzify per output, reusing
        // one sample buffer.
        let res = self.config.resolution;
        let mut outputs = Vec::with_capacity(self.outputs.len());
        for (oi, var) in self.outputs.iter().enumerate() {
            s.mu.clear();
            s.mu.resize(res, 0.0);
            for (rule, &w) in self.rules.rules().iter().zip(&s.firing) {
                if w <= 0.0 {
                    continue;
                }
                for cons in rule.consequents.iter().filter(|c| c.var == oi) {
                    let mf = var.terms()[cons.term].mf;
                    let implication = self.config.implication;
                    let aggregation = self.config.aggregation;
                    for (i, slot) in s.mu.iter_mut().enumerate() {
                        let x = grid_x(var.min, var.max, res, i);
                        *slot = aggregation
                            .apply(*slot, implication.apply(w, mf.eval(x)).clamp(0.0, 1.0));
                    }
                }
            }
            let crisp_out = match self.config.defuzzifier.defuzzify_slice(var.min, var.max, &s.mu)
            {
                Some(v) => v,
                None => match self.config.no_fire {
                    NoFirePolicy::Error => return Err(FuzzyError::NoRuleFired),
                    NoFirePolicy::UniverseMidpoint => 0.5 * (var.min + var.max),
                },
            };
            outputs.push(crisp_out);
        }
        Ok(outputs)
    }

    /// Full pipeline with a diagnostic [`Trace`].
    pub fn evaluate_with_trace(&self, crisp: &[f64]) -> Result<Trace> {
        let memberships = self.fuzzify(crisp)?;
        let firing: Vec<f64> = self
            .rules
            .rules()
            .iter()
            .map(|r| r.firing_strength(&memberships, self.config.and, self.config.or))
            .collect();

        let mut output_sets = Vec::with_capacity(self.outputs.len());
        let mut outputs = Vec::with_capacity(self.outputs.len());
        for (oi, var) in self.outputs.iter().enumerate() {
            let set = self.aggregate(&firing, oi);
            let crisp_out = match self.config.defuzzifier.defuzzify(&set) {
                Some(v) => v,
                None => match self.config.no_fire {
                    NoFirePolicy::Error => return Err(FuzzyError::NoRuleFired),
                    NoFirePolicy::UniverseMidpoint => 0.5 * (var.min + var.max),
                },
            };
            output_sets.push(set);
            outputs.push(crisp_out);
        }
        Ok(Trace { memberships, firing, output_sets, outputs })
    }

    /// Sample the control surface of output `out_idx` over a grid of two
    /// inputs, holding the remaining inputs at `fixed`.
    ///
    /// Returns `surface[iy][ix]` for `ny × nx` samples spanning the two
    /// input universes; `fixed` must contain a value for every input (the
    /// swept entries are overwritten). Useful for plotting and for
    /// verifying rule-base monotonicity numerically.
    pub fn control_surface(
        &self,
        x_input: usize,
        y_input: usize,
        fixed: &[f64],
        nx: usize,
        ny: usize,
        out_idx: usize,
    ) -> Result<Vec<Vec<f64>>> {
        if x_input >= self.inputs.len() || y_input >= self.inputs.len() {
            return Err(FuzzyError::UnknownVariable {
                name: format!("input #{}", x_input.max(y_input)),
            });
        }
        if x_input == y_input {
            return Err(FuzzyError::DuplicateName {
                name: self.inputs[x_input].name.clone(),
            });
        }
        if out_idx >= self.outputs.len() {
            return Err(FuzzyError::UnknownVariable { name: format!("output #{out_idx}") });
        }
        self.check_inputs(fixed)?;
        assert!(nx >= 2 && ny >= 2, "need at least a 2x2 surface");
        let xs = self.inputs[x_input].sample_universe(nx);
        let ys = self.inputs[y_input].sample_universe(ny);
        let mut crisp = fixed.to_vec();
        let mut surface = Vec::with_capacity(ny);
        for &y in &ys {
            let mut row = Vec::with_capacity(nx);
            for &x in &xs {
                crisp[x_input] = x;
                crisp[y_input] = y;
                row.push(self.evaluate(&crisp)?[out_idx]);
            }
            surface.push(row);
        }
        Ok(surface)
    }

    /// Evaluate with inputs given as `(name, value)` pairs in any order.
    ///
    /// Every declared input must receive exactly one value:
    /// a missing input is a [`FuzzyError::MissingInput`] and a repeated
    /// name is a [`FuzzyError::DuplicateName`] (an earlier version used
    /// `NaN` as the "unset" sentinel, which conflated an explicitly passed
    /// non-finite value with a forgotten input).
    pub fn evaluate_named(&self, named: &[(&str, f64)]) -> Result<Vec<f64>> {
        let mut crisp = vec![0.0; self.inputs.len()];
        let mut supplied = vec![false; self.inputs.len()];
        for &(name, value) in named {
            let idx = self
                .input_index(name)
                .ok_or_else(|| FuzzyError::UnknownVariable { name: name.to_string() })?;
            if supplied[idx] {
                return Err(FuzzyError::DuplicateName { name: name.to_string() });
            }
            crisp[idx] = value;
            supplied[idx] = true;
        }
        if let Some(missing) = supplied.iter().position(|&set| !set) {
            return Err(FuzzyError::MissingInput {
                name: self.inputs[missing].name.clone(),
            });
        }
        self.evaluate(&crisp)
    }

    /// Compile this system into a [`CompiledFis`]: a flattened, pre-sampled
    /// plan whose evaluation is bit-identical to [`Fis::evaluate`] but
    /// performs no heap allocation per call. See the
    /// [`compiled`](crate::engine::compiled) module docs.
    pub fn compile(&self) -> CompiledFis {
        CompiledFis::compile(self)
    }
}

/// Fluent builder for [`Fis`].
#[derive(Debug, Clone, Default)]
pub struct FisBuilder {
    name: String,
    inputs: Vec<LinguisticVariable>,
    outputs: Vec<LinguisticVariable>,
    rules: RuleSet,
    config: EngineConfig,
    pending_error: Option<FuzzyError>,
}

impl FisBuilder {
    /// Start building a system with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        FisBuilder { name: name.into(), ..Default::default() }
    }

    /// Declare an input variable.
    #[must_use]
    pub fn input(mut self, var: LinguisticVariable) -> Self {
        self.inputs.push(var);
        self
    }

    /// Declare an output variable.
    #[must_use]
    pub fn output(mut self, var: LinguisticVariable) -> Self {
        self.outputs.push(var);
        self
    }

    /// Add a pre-built rule.
    #[must_use]
    pub fn rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Parse and add a rule from DSL text. Returns `Err` immediately on a
    /// syntax problem so authoring mistakes surface at the offending line.
    pub fn rule_str(mut self, text: &str) -> Result<Self> {
        let rule = parse_rule(text, &self.inputs, &self.outputs)?;
        self.rules.push(rule);
        Ok(self)
    }

    /// Set the AND t-norm.
    #[must_use]
    pub fn and(mut self, t: TNorm) -> Self {
        self.config.and = t;
        self
    }

    /// Set the OR s-norm.
    #[must_use]
    pub fn or(mut self, s: SNorm) -> Self {
        self.config.or = s;
        self
    }

    /// Set the implication operator.
    #[must_use]
    pub fn implication(mut self, i: Implication) -> Self {
        self.config.implication = i;
        self
    }

    /// Set the aggregation operator.
    #[must_use]
    pub fn aggregation(mut self, a: Aggregation) -> Self {
        self.config.aggregation = a;
        self
    }

    /// Set the defuzzifier.
    #[must_use]
    pub fn defuzzifier(mut self, d: Defuzzifier) -> Self {
        self.config.defuzzifier = d;
        self
    }

    /// Set the output-universe sampling resolution.
    #[must_use]
    pub fn resolution(mut self, n: usize) -> Self {
        self.config.resolution = n;
        self
    }

    /// Set the no-fire policy.
    #[must_use]
    pub fn no_fire(mut self, p: NoFirePolicy) -> Self {
        self.config.no_fire = p;
        self
    }

    /// Validate and build the system.
    pub fn build(self) -> Result<Fis> {
        if let Some(e) = self.pending_error {
            return Err(e);
        }
        if self.inputs.is_empty() {
            return Err(FuzzyError::EmptySystem { what: "inputs" });
        }
        if self.outputs.is_empty() {
            return Err(FuzzyError::EmptySystem { what: "outputs" });
        }
        if self.rules.is_empty() {
            return Err(FuzzyError::EmptyRuleSet);
        }
        if self.config.resolution < 2 {
            return Err(FuzzyError::InvalidMf {
                reason: format!("resolution {} < 2", self.config.resolution),
            });
        }
        check_unique_names(self.inputs.iter().chain(&self.outputs))?;
        let in_terms: Vec<usize> = self.inputs.iter().map(|v| v.term_count()).collect();
        let out_terms: Vec<usize> = self.outputs.iter().map(|v| v.term_count()).collect();
        self.rules.validate(&in_terms, &out_terms)?;
        Ok(Fis {
            name: self.name,
            inputs: self.inputs,
            outputs: self.outputs,
            rules: self.rules,
            config: self.config,
        })
    }
}

fn check_unique_names<'a>(vars: impl Iterator<Item = &'a LinguisticVariable>) -> Result<()> {
    let mut seen: Vec<&str> = Vec::new();
    for v in vars {
        if seen.iter().any(|s| s.eq_ignore_ascii_case(&v.name)) {
            return Err(FuzzyError::DuplicateName { name: v.name.clone() });
        }
        seen.push(&v.name);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::Mf;

    /// The classic tipper: well-known input/output pairs pin the engine.
    fn tipper() -> Fis {
        let service = LinguisticVariable::new("service", 0.0, 10.0)
            .with_term("poor", Mf::gaussian(0.0, 1.5))
            .with_term("good", Mf::gaussian(5.0, 1.5))
            .with_term("excellent", Mf::gaussian(10.0, 1.5));
        let food = LinguisticVariable::new("food", 0.0, 10.0)
            .with_term("rancid", Mf::trapezoidal(0.0, 0.0, 1.0, 3.0))
            .with_term("delicious", Mf::trapezoidal(7.0, 9.0, 10.0, 10.0));
        let tip = LinguisticVariable::new("tip", 0.0, 30.0)
            .with_term("cheap", Mf::triangular(0.0, 5.0, 10.0))
            .with_term("average", Mf::triangular(10.0, 15.0, 20.0))
            .with_term("generous", Mf::triangular(20.0, 25.0, 30.0));
        FisBuilder::new("tipper")
            .input(service)
            .input(food)
            .output(tip)
            .rule_str("IF service IS poor OR food IS rancid THEN tip IS cheap")
            .unwrap()
            .rule_str("IF service IS good THEN tip IS average")
            .unwrap()
            .rule_str("IF service IS excellent OR food IS delicious THEN tip IS generous")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn tipper_matches_reference_behaviour() {
        let fis = tipper();
        // Terrible service and food -> cheap region.
        let t = fis.evaluate(&[0.0, 0.0]).unwrap()[0];
        assert!(t < 10.0, "cheap tip, got {t}");
        // Average everything -> near 15%.
        let t = fis.evaluate(&[5.0, 5.0]).unwrap()[0];
        assert!((t - 15.0).abs() < 1.0, "average tip, got {t}");
        // Stellar service and food -> generous region.
        let t = fis.evaluate(&[10.0, 10.0]).unwrap()[0];
        assert!(t > 20.0, "generous tip, got {t}");
        // Monotonicity along the service axis at fixed food.
        let lo = fis.evaluate(&[2.0, 5.0]).unwrap()[0];
        let hi = fis.evaluate(&[8.0, 5.0]).unwrap()[0];
        assert!(lo < hi);
    }

    #[test]
    fn named_evaluation_matches_positional() {
        let fis = tipper();
        let a = fis.evaluate(&[3.0, 8.0]).unwrap();
        let b = fis.evaluate_named(&[("food", 8.0), ("service", 3.0)]).unwrap();
        assert_eq!(a, b);
        assert!(fis.evaluate_named(&[("service", 3.0)]).is_err(), "missing food");
        assert!(fis.evaluate_named(&[("bogus", 1.0), ("service", 1.0)]).is_err());
    }

    #[test]
    fn named_evaluation_rejects_missing_and_duplicate_inputs() {
        let fis = tipper();
        // A missing input is a dedicated error naming the input, not a NaN
        // silently fuzzified into zero memberships.
        assert_eq!(
            fis.evaluate_named(&[("service", 3.0)]),
            Err(FuzzyError::MissingInput { name: "food".into() })
        );
        // An explicitly supplied non-finite value is reported as such, not
        // misdiagnosed as a missing input (the old NaN-sentinel conflated
        // the two).
        assert!(matches!(
            fis.evaluate_named(&[("service", f64::NAN), ("food", 2.0)]),
            Err(FuzzyError::NonFiniteInput { index: 0, .. })
        ));
        // A repeated name no longer silently last-wins.
        assert_eq!(
            fis.evaluate_named(&[("service", 3.0), ("service", 4.0), ("food", 2.0)]),
            Err(FuzzyError::DuplicateName { name: "service".into() })
        );
    }

    #[test]
    fn arity_and_finiteness_checks() {
        let fis = tipper();
        assert_eq!(
            fis.evaluate(&[1.0]),
            Err(FuzzyError::InputArity { expected: 2, got: 1 })
        );
        assert!(matches!(
            fis.evaluate(&[f64::NAN, 1.0]),
            Err(FuzzyError::NonFiniteInput { index: 0, .. })
        ));
        assert!(matches!(
            fis.evaluate(&[1.0, f64::INFINITY]),
            Err(FuzzyError::NonFiniteInput { index: 1, .. })
        ));
    }

    #[test]
    fn trace_exposes_pipeline_internals() {
        let fis = tipper();
        let trace = fis.evaluate_with_trace(&[5.0, 5.0]).unwrap();
        assert_eq!(trace.memberships.len(), 2);
        assert_eq!(trace.memberships[0].len(), 3);
        assert_eq!(trace.firing.len(), 3);
        assert!((trace.firing[1] - 1.0).abs() < 1e-9, "good-service rule fully fires");
        assert_eq!(trace.output_sets.len(), 1);
        assert_eq!(trace.outputs.len(), 1);
        assert!(trace.output_sets[0].height() > 0.9);
    }

    #[test]
    fn no_fire_policy() {
        let input = LinguisticVariable::new("x", 0.0, 10.0)
            .with_term("edge", Mf::triangular(0.0, 0.0, 1.0));
        let output = LinguisticVariable::new("y", 0.0, 10.0)
            .with_term("t", Mf::triangular(0.0, 5.0, 10.0));
        let build = |p: NoFirePolicy| {
            FisBuilder::new("nf")
                .input(input.clone())
                .output(output.clone())
                .rule_str("IF x IS edge THEN y IS t")
                .unwrap()
                .no_fire(p)
                .build()
                .unwrap()
        };
        let strict = build(NoFirePolicy::Error);
        assert_eq!(strict.evaluate(&[5.0]), Err(FuzzyError::NoRuleFired));
        let lenient = build(NoFirePolicy::UniverseMidpoint);
        assert_eq!(lenient.evaluate(&[5.0]).unwrap()[0], 5.0);
    }

    #[test]
    fn builder_validation() {
        let x = LinguisticVariable::new("x", 0.0, 1.0).with_term("a", Mf::singleton(0.5));
        let y = LinguisticVariable::new("y", 0.0, 1.0).with_term("b", Mf::singleton(0.5));
        assert_eq!(
            FisBuilder::new("f").output(y.clone()).build().unwrap_err(),
            FuzzyError::EmptySystem { what: "inputs" }
        );
        assert_eq!(
            FisBuilder::new("f").input(x.clone()).build().unwrap_err(),
            FuzzyError::EmptySystem { what: "outputs" }
        );
        assert_eq!(
            FisBuilder::new("f").input(x.clone()).output(y.clone()).build().unwrap_err(),
            FuzzyError::EmptyRuleSet
        );
        // Duplicate variable names across inputs and outputs.
        let dup = LinguisticVariable::new("x", 0.0, 1.0).with_term("b", Mf::singleton(0.5));
        let err = FisBuilder::new("f")
            .input(x.clone())
            .output(dup)
            .rule(Rule::new(
                vec![crate::rule::Antecedent::new(0, 0)],
                crate::rule::Connective::And,
                vec![crate::rule::Consequent::new(0, 0)],
            ))
            .build()
            .unwrap_err();
        assert_eq!(err, FuzzyError::DuplicateName { name: "x".into() });
    }

    #[test]
    fn rule_referencing_missing_term_fails_build() {
        let x = LinguisticVariable::new("x", 0.0, 1.0).with_term("a", Mf::singleton(0.5));
        let y = LinguisticVariable::new("y", 0.0, 1.0).with_term("b", Mf::singleton(0.5));
        let err = FisBuilder::new("f")
            .input(x)
            .output(y)
            .rule(Rule::new(
                vec![crate::rule::Antecedent::new(0, 7)],
                crate::rule::Connective::And,
                vec![crate::rule::Consequent::new(0, 0)],
            ))
            .build()
            .unwrap_err();
        assert!(matches!(err, FuzzyError::UnknownTerm { .. }));
    }

    #[test]
    fn implication_product_softens_output() {
        // With product implication the clipped area shrinks relative to min
        // when the firing strength is below 1, but the centroid of a
        // symmetric consequent is unchanged.
        let x = LinguisticVariable::new("x", 0.0, 1.0)
            .with_term("a", Mf::triangular(0.0, 0.0, 1.0));
        let y = LinguisticVariable::new("y", 0.0, 10.0)
            .with_term("mid", Mf::triangular(2.0, 5.0, 8.0));
        let base = FisBuilder::new("f")
            .input(x.clone())
            .output(y.clone())
            .rule_str("IF x IS a THEN y IS mid")
            .unwrap();
        let min_fis = base.clone().implication(Implication::Min).build().unwrap();
        let prod_fis = base.implication(Implication::Product).build().unwrap();
        let vmin = min_fis.evaluate(&[0.5]).unwrap()[0];
        let vprod = prod_fis.evaluate(&[0.5]).unwrap()[0];
        assert!((vmin - 5.0).abs() < 0.05);
        assert!((vprod - 5.0).abs() < 0.05);
        let smin = min_fis.output_set(&[0.5], 0).unwrap();
        let sprod = prod_fis.output_set(&[0.5], 0).unwrap();
        assert!(sprod.area() < smin.area());
    }

    #[test]
    fn resolution_bounds_checked() {
        let x = LinguisticVariable::new("x", 0.0, 1.0).with_term("a", Mf::singleton(0.5));
        let y = LinguisticVariable::new("y", 0.0, 1.0).with_term("b", Mf::singleton(0.5));
        let err = FisBuilder::new("f")
            .input(x)
            .output(y)
            .rule(Rule::new(
                vec![crate::rule::Antecedent::new(0, 0)],
                crate::rule::Connective::And,
                vec![crate::rule::Consequent::new(0, 0)],
            ))
            .resolution(1)
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn control_surface_shape_and_bounds() {
        let fis = tipper();
        let surface = fis.control_surface(0, 1, &[5.0, 5.0], 9, 7, 0).unwrap();
        assert_eq!(surface.len(), 7);
        assert_eq!(surface[0].len(), 9);
        for row in &surface {
            for &v in row {
                assert!((0.0..=30.0).contains(&v), "tip {v} out of range");
            }
        }
        // Better service (x axis) never lowers the tip, row by row.
        for row in &surface {
            for w in row.windows(2) {
                assert!(w[1] >= w[0] - 0.6, "non-monotone row: {row:?}");
            }
        }
    }

    #[test]
    fn control_surface_argument_validation() {
        let fis = tipper();
        assert!(fis.control_surface(0, 0, &[5.0, 5.0], 4, 4, 0).is_err(), "same axis");
        assert!(fis.control_surface(0, 7, &[5.0, 5.0], 4, 4, 0).is_err(), "bad input");
        assert!(fis.control_surface(0, 1, &[5.0, 5.0], 4, 4, 3).is_err(), "bad output");
        assert!(fis.control_surface(0, 1, &[5.0], 4, 4, 0).is_err(), "bad arity");
    }

    #[test]
    fn serde_round_trip_preserves_behaviour() {
        let fis = tipper();
        let json = serde_json::to_string(&fis).unwrap();
        let back: Fis = serde_json::from_str(&json).unwrap();
        let a = fis.evaluate(&[7.0, 4.0]).unwrap();
        let b = back.evaluate(&[7.0, 4.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn two_output_system() {
        let x = LinguisticVariable::new("x", 0.0, 1.0)
            .with_term("lo", Mf::left_shoulder(0.0, 1.0))
            .with_term("hi", Mf::right_shoulder(0.0, 1.0));
        let y1 = LinguisticVariable::new("y1", 0.0, 1.0)
            .with_term("a", Mf::triangular(0.0, 0.25, 0.5))
            .with_term("b", Mf::triangular(0.5, 0.75, 1.0));
        let y2 = LinguisticVariable::new("y2", 0.0, 1.0)
            .with_term("c", Mf::triangular(0.0, 0.25, 0.5))
            .with_term("d", Mf::triangular(0.5, 0.75, 1.0));
        let fis = FisBuilder::new("dual")
            .input(x)
            .output(y1)
            .output(y2)
            .rule_str("IF x IS lo THEN y1 IS a AND y2 IS d")
            .unwrap()
            .rule_str("IF x IS hi THEN y1 IS b AND y2 IS c")
            .unwrap()
            .build()
            .unwrap();
        let out = fis.evaluate(&[0.05]).unwrap();
        assert!(out[0] < 0.5, "y1 low");
        assert!(out[1] > 0.5, "y2 high");
        let out = fis.evaluate(&[0.95]).unwrap();
        assert!(out[0] > 0.5);
        assert!(out[1] < 0.5);
    }
}
