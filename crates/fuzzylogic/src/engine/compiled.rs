//! A compiled, allocation-free Mamdani evaluation plan.
//!
//! [`CompiledFis`] is built once from a [`Fis`] and flattens everything the
//! hot path touches into dense, index-based arrays:
//!
//! * input variables become `(min, max)` bounds plus a flat array of term
//!   membership functions delimited by offsets — no nested `Vec<Vec<_>>`
//!   during fuzzification;
//! * rules become flat antecedent/consequent tables with pre-resolved
//!   membership indices — no bounds-checked nested lookups per clause;
//! * every output term's membership function is **pre-sampled** over the
//!   fixed-resolution output universe, so the imply/aggregate loop reads a
//!   contiguous `f64` row instead of re-evaluating the MF at every grid
//!   point of every call.
//!
//! Evaluation writes into a caller-owned [`EvalScratch`], so after the
//! scratch has grown to the plan's dimensions (its first use) a call to
//! [`CompiledFis::evaluate`] performs **zero heap allocations** — verified
//! by a counting-allocator test in the workspace test suite.
//!
//! The compiled plan is **bit-identical** to the interpreted engine: it
//! runs the same fuzzify → fire → imply/aggregate → defuzzify arithmetic in
//! the same order on the same grid coordinates ([`grid_x`] is shared by
//! both paths), so `CompiledFis::evaluate` and [`Fis::evaluate`] return the
//! same `f64` bits for every input. A property test pins this.
//!
//! Because the plan is immutable and `Send + Sync`, many consumers (e.g.
//! thousands of per-UE handover controllers) can share one plan behind an
//! `Arc` while each owns only a small scratch.

use crate::engine::mamdani::{EngineConfig, Fis, NoFirePolicy};
use crate::error::{FuzzyError, Result};
use crate::fuzzyset::grid_x;
use crate::hedge::Hedge;
use crate::membership::Mf;
use crate::rule::Connective;

/// Sentinel membership index for antecedents whose variable/term index does
/// not resolve (the interpreted engine reads those as degree 0).
const NO_MEMBERSHIP: u32 = u32::MAX;

/// One flattened antecedent clause: a pre-resolved index into the scratch
/// membership buffer plus the hedge to apply.
#[derive(Debug, Clone, Copy)]
struct FlatAntecedent {
    /// Index into [`EvalScratch::memberships`], or [`NO_MEMBERSHIP`].
    mu_index: u32,
    hedge: Hedge,
}

/// One flattened consequent clause of a specific output variable: which
/// rule gates it and which pre-sampled row shapes it.
#[derive(Debug, Clone, Copy)]
struct FlatConsequent {
    /// Index of the gating rule (into the firing-strength buffer).
    rule: u32,
    /// Row index into [`CompiledFis::samples`].
    row: u32,
}

/// A [`Fis`] compiled into dense arrays with pre-sampled consequent shapes.
///
/// Build with [`CompiledFis::compile`] (or [`Fis::compile`]), evaluate with
/// [`CompiledFis::evaluate`] / [`CompiledFis::evaluate_batch`] against a
/// reusable [`EvalScratch`]. See the [module docs](self) for the layout and
/// the bit-identity guarantee.
#[derive(Debug, Clone)]
pub struct CompiledFis {
    name: String,
    /// Universe bounds per input (for clamping before fuzzification).
    input_bounds: Vec<(f64, f64)>,
    /// `input_offsets[v]..input_offsets[v + 1]` delimits input `v`'s terms
    /// in both `input_mfs` and the scratch membership buffer.
    input_offsets: Vec<u32>,
    /// Flat input-term membership functions, in declaration order.
    input_mfs: Vec<Mf>,
    /// `ant_offsets[r]..ant_offsets[r + 1]` delimits rule `r`'s antecedents.
    ant_offsets: Vec<u32>,
    antecedents: Vec<FlatAntecedent>,
    connectives: Vec<Connective>,
    weights: Vec<f64>,
    /// Universe bounds per output.
    output_bounds: Vec<(f64, f64)>,
    /// `cons_offsets[o]..cons_offsets[o + 1]` delimits output `o`'s
    /// consequent table, in (rule, consequent) declaration order — the
    /// exact aggregation order of the interpreted engine.
    cons_offsets: Vec<u32>,
    consequents: Vec<FlatConsequent>,
    /// Pre-sampled output-term shapes: row `k` holds `resolution` samples
    /// of one output term's MF over its variable's universe.
    samples: Vec<f64>,
    config: EngineConfig,
}

impl CompiledFis {
    /// Compile a [`Fis`] into a dense evaluation plan.
    pub fn compile(fis: &Fis) -> Self {
        let config = *fis.config();
        let res = config.resolution;

        let mut input_bounds = Vec::with_capacity(fis.inputs().len());
        let mut input_offsets = Vec::with_capacity(fis.inputs().len() + 1);
        let mut input_mfs = Vec::new();
        input_offsets.push(0);
        for var in fis.inputs() {
            input_bounds.push((var.min, var.max));
            input_mfs.extend(var.terms().iter().map(|t| t.mf));
            input_offsets.push(input_mfs.len() as u32);
        }

        let rules = fis.rules().rules();
        let mut ant_offsets = Vec::with_capacity(rules.len() + 1);
        let mut antecedents = Vec::new();
        let mut connectives = Vec::with_capacity(rules.len());
        let mut weights = Vec::with_capacity(rules.len());
        ant_offsets.push(0);
        for rule in rules {
            for a in &rule.antecedents {
                let in_range = a.var < fis.inputs().len()
                    && a.term < fis.inputs()[a.var].term_count();
                antecedents.push(FlatAntecedent {
                    mu_index: if in_range {
                        input_offsets[a.var] + a.term as u32
                    } else {
                        NO_MEMBERSHIP
                    },
                    hedge: a.hedge,
                });
            }
            ant_offsets.push(antecedents.len() as u32);
            connectives.push(rule.connective);
            weights.push(rule.weight);
        }

        // Pre-sample every output term once; consequent tables reference
        // the rows. `grid_x` makes the sample coordinates bit-identical to
        // the interpreted engine's `SampledSet` grid.
        let mut output_bounds = Vec::with_capacity(fis.outputs().len());
        let mut cons_offsets = Vec::with_capacity(fis.outputs().len() + 1);
        let mut consequents = Vec::new();
        let mut samples = Vec::new();
        cons_offsets.push(0);
        let mut row_of = Vec::new(); // (output, term) -> row, built lazily
        for (oi, var) in fis.outputs().iter().enumerate() {
            output_bounds.push((var.min, var.max));
            for (ri, rule) in rules.iter().enumerate() {
                for cons in rule.consequents.iter().filter(|c| c.var == oi) {
                    let key = (oi, cons.term);
                    let row = match row_of.iter().find(|(k, _)| *k == key) {
                        Some(&(_, row)) => row,
                        None => {
                            let row = (samples.len() / res) as u32;
                            let mf = var.terms()[cons.term].mf;
                            samples
                                .extend((0..res).map(|i| mf.eval(grid_x(var.min, var.max, res, i))));
                            row_of.push((key, row));
                            row
                        }
                    };
                    consequents.push(FlatConsequent { rule: ri as u32, row });
                }
            }
            cons_offsets.push(consequents.len() as u32);
        }

        CompiledFis {
            name: fis.name().to_string(),
            input_bounds,
            input_offsets,
            input_mfs,
            ant_offsets,
            antecedents,
            connectives,
            weights,
            output_bounds,
            cons_offsets,
            consequents,
            samples,
            config,
        }
    }

    /// System name (inherited from the source [`Fis`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of crisp inputs.
    pub fn n_inputs(&self) -> usize {
        self.input_bounds.len()
    }

    /// Number of crisp outputs.
    pub fn n_outputs(&self) -> usize {
        self.output_bounds.len()
    }

    /// Number of rules.
    pub fn n_rules(&self) -> usize {
        self.weights.len()
    }

    /// Engine configuration (operators, resolution, defuzzifier).
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Universe bounds `(min, max)` of input `v`.
    pub fn input_bounds(&self, v: usize) -> (f64, f64) {
        self.input_bounds[v]
    }

    /// Universe bounds `(min, max)` of output `o`.
    pub fn output_bounds(&self, o: usize) -> (f64, f64) {
        self.output_bounds[o]
    }

    /// A scratch pre-sized for this plan (a fresh [`EvalScratch::new`]
    /// works too; it grows to the right size on first use).
    pub fn scratch(&self) -> EvalScratch {
        let mut s = EvalScratch::new();
        s.prepare(self);
        s
    }

    /// Evaluate crisp inputs into `outputs` (one slot per declared output)
    /// using the caller's scratch. Zero heap allocations once `scratch` has
    /// been used with this plan (or was created by [`CompiledFis::scratch`]).
    ///
    /// Bit-identical to [`Fis::evaluate`] on the source system.
    ///
    /// # Panics
    ///
    /// Panics if `outputs.len()` differs from [`CompiledFis::n_outputs`]
    /// (a caller bug, unlike data-dependent errors which are returned).
    pub fn evaluate(
        &self,
        crisp: &[f64],
        scratch: &mut EvalScratch,
        outputs: &mut [f64],
    ) -> Result<()> {
        if crisp.len() != self.n_inputs() {
            return Err(FuzzyError::InputArity { expected: self.n_inputs(), got: crisp.len() });
        }
        for (i, &x) in crisp.iter().enumerate() {
            if !x.is_finite() {
                return Err(FuzzyError::NonFiniteInput { index: i, value: x });
            }
        }
        assert_eq!(
            outputs.len(),
            self.n_outputs(),
            "output buffer must have one slot per declared output"
        );
        scratch.prepare(self);

        // Step 1 — fuzzify (clamp to the universe, then every term MF).
        for (v, &(lo, hi)) in self.input_bounds.iter().enumerate() {
            let x = crisp[v].clamp(lo, hi);
            let start = self.input_offsets[v] as usize;
            let end = self.input_offsets[v + 1] as usize;
            for k in start..end {
                scratch.memberships[k] = self.input_mfs[k].eval(x);
            }
        }

        // Step 2 — firing strengths.
        for r in 0..self.n_rules() {
            let clauses =
                &self.antecedents[self.ant_offsets[r] as usize..self.ant_offsets[r + 1] as usize];
            let degrees = clauses.iter().map(|a| {
                let mu = if a.mu_index == NO_MEMBERSHIP {
                    0.0
                } else {
                    scratch.memberships[a.mu_index as usize]
                };
                a.hedge.apply(mu)
            });
            let strength = match self.connectives[r] {
                Connective::And => self.config.and.fold(degrees),
                Connective::Or => self.config.or.fold(degrees),
            };
            scratch.firing[r] = strength * self.weights[r];
        }

        // Steps 3–5 — imply/aggregate from the pre-sampled rows, then
        // defuzzify the scratch curve in place.
        let res = self.config.resolution;
        for (oi, out) in outputs.iter_mut().enumerate() {
            let (lo, hi) = self.output_bounds[oi];
            let mu = &mut scratch.mu[..res];
            mu.fill(0.0);
            let table = &self.consequents
                [self.cons_offsets[oi] as usize..self.cons_offsets[oi + 1] as usize];
            for cons in table {
                let w = scratch.firing[cons.rule as usize];
                if w <= 0.0 {
                    continue;
                }
                let row = &self.samples[cons.row as usize * res..][..res];
                let implication = self.config.implication;
                let aggregation = self.config.aggregation;
                for (slot, &sample) in mu.iter_mut().zip(row) {
                    *slot =
                        aggregation.apply(*slot, implication.apply(w, sample).clamp(0.0, 1.0));
                }
            }
            *out = match self.config.defuzzifier.defuzzify_slice(lo, hi, mu) {
                Some(v) => v,
                None => match self.config.no_fire {
                    NoFirePolicy::Error => return Err(FuzzyError::NoRuleFired),
                    NoFirePolicy::UniverseMidpoint => 0.5 * (lo + hi),
                },
            };
        }
        Ok(())
    }

    /// Single-output convenience: evaluate and return the one crisp output.
    ///
    /// # Panics
    ///
    /// Panics if the system declares more than one output.
    pub fn evaluate_one(&self, crisp: &[f64], scratch: &mut EvalScratch) -> Result<f64> {
        assert_eq!(self.n_outputs(), 1, "evaluate_one requires a single-output system");
        let mut out = [0.0f64];
        self.evaluate(crisp, scratch, &mut out)?;
        Ok(out[0])
    }

    /// Evaluate a batch of input rows.
    ///
    /// `inputs` is row-major with [`CompiledFis::n_inputs`] values per row;
    /// `outputs` receives [`CompiledFis::n_outputs`] values per row. Each
    /// row is evaluated exactly like [`CompiledFis::evaluate`] (and is
    /// therefore bit-identical to the scalar path); the batch form
    /// amortises scratch reuse and keeps the plan's tables cache-hot across
    /// rows. Stops at the first row that fails.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a multiple of the input arity or
    /// `outputs` does not hold exactly one output row per input row.
    pub fn evaluate_batch(
        &self,
        inputs: &[f64],
        outputs: &mut [f64],
        scratch: &mut EvalScratch,
    ) -> Result<()> {
        let ni = self.n_inputs();
        let no = self.n_outputs();
        assert_eq!(inputs.len() % ni, 0, "inputs must be whole rows of {ni} values");
        let rows = inputs.len() / ni;
        assert_eq!(outputs.len(), rows * no, "outputs must hold {no} values per input row");
        for r in 0..rows {
            self.evaluate(
                &inputs[r * ni..(r + 1) * ni],
                scratch,
                &mut outputs[r * no..(r + 1) * no],
            )?;
        }
        Ok(())
    }
}

/// Reusable working memory for [`CompiledFis`] evaluation.
///
/// Holds the fuzzified membership degrees, the per-rule firing strengths
/// and the aggregated output curve. Buffers grow to the plan's dimensions
/// on first use and are reused (never freed, never reallocated) afterwards,
/// which is what makes the evaluation loop allocation-free. A scratch may
/// be reused across different plans; it simply grows to the largest.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    memberships: Vec<f64>,
    firing: Vec<f64>,
    mu: Vec<f64>,
}

impl EvalScratch {
    /// An empty scratch; it sizes itself on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow the buffers to `fis`'s dimensions (no-op once large enough).
    fn prepare(&mut self, fis: &CompiledFis) {
        if self.memberships.len() < fis.input_mfs.len() {
            self.memberships.resize(fis.input_mfs.len(), 0.0);
        }
        if self.firing.len() < fis.n_rules() {
            self.firing.resize(fis.n_rules(), 0.0);
        }
        if self.mu.len() < fis.config.resolution {
            self.mu.resize(fis.config.resolution, 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defuzz::Defuzzifier;
    use crate::engine::mamdani::FisBuilder;
    use crate::membership::Mf;
    use crate::norms::{Aggregation, Implication, SNorm, TNorm};
    use crate::variable::LinguisticVariable;

    fn tipper() -> Fis {
        let service = LinguisticVariable::new("service", 0.0, 10.0)
            .with_term("poor", Mf::gaussian(0.0, 1.5))
            .with_term("good", Mf::gaussian(5.0, 1.5))
            .with_term("excellent", Mf::gaussian(10.0, 1.5));
        let food = LinguisticVariable::new("food", 0.0, 10.0)
            .with_term("rancid", Mf::trapezoidal(0.0, 0.0, 1.0, 3.0))
            .with_term("delicious", Mf::trapezoidal(7.0, 9.0, 10.0, 10.0));
        let tip = LinguisticVariable::new("tip", 0.0, 30.0)
            .with_term("cheap", Mf::triangular(0.0, 5.0, 10.0))
            .with_term("average", Mf::triangular(10.0, 15.0, 20.0))
            .with_term("generous", Mf::triangular(20.0, 25.0, 30.0));
        FisBuilder::new("tipper")
            .input(service)
            .input(food)
            .output(tip)
            .rule_str("IF service IS poor OR food IS rancid THEN tip IS cheap")
            .unwrap()
            .rule_str("IF service IS good THEN tip IS average")
            .unwrap()
            .rule_str("IF service IS excellent OR food IS delicious THEN tip IS generous")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn matches_interpreted_engine_bitwise() {
        let fis = tipper();
        let plan = fis.compile();
        let mut scratch = plan.scratch();
        let mut out = [0.0f64];
        for x in [0.0, 0.5, 2.5, 5.0, 7.7, 10.0, -3.0, 13.0] {
            for y in [0.0, 1.0, 4.9, 8.1, 10.0, 42.0] {
                let interpreted = fis.evaluate(&[x, y]).unwrap()[0];
                plan.evaluate(&[x, y], &mut scratch, &mut out).unwrap();
                assert_eq!(
                    interpreted.to_bits(),
                    out[0].to_bits(),
                    "compiled drifted at ({x}, {y}): {interpreted} vs {}",
                    out[0]
                );
            }
        }
    }

    #[test]
    fn matches_across_operator_families_and_defuzzifiers() {
        for d in Defuzzifier::ALL {
            for (and, or, imp, agg) in [
                (TNorm::Min, SNorm::Max, Implication::Min, Aggregation::Max),
                (
                    TNorm::Product,
                    SNorm::ProbabilisticSum,
                    Implication::Product,
                    Aggregation::ProbabilisticSum,
                ),
                (TNorm::Lukasiewicz, SNorm::BoundedSum, Implication::Min, Aggregation::BoundedSum),
            ] {
                let fis = tipper().with_config(EngineConfig {
                    and,
                    or,
                    implication: imp,
                    aggregation: agg,
                    defuzzifier: d,
                    resolution: 301,
                    no_fire: NoFirePolicy::Error,
                });
                let plan = fis.compile();
                let mut scratch = EvalScratch::new();
                for x in [0.3, 4.2, 9.6] {
                    let a = fis.evaluate(&[x, 10.0 - x]).unwrap()[0];
                    let b = plan.evaluate_one(&[x, 10.0 - x], &mut scratch).unwrap();
                    assert_eq!(a.to_bits(), b.to_bits(), "{d:?}/{and:?} drifted at {x}");
                }
            }
        }
    }

    #[test]
    fn batch_equals_scalar() {
        let plan = tipper().compile();
        let mut scratch = plan.scratch();
        let inputs: Vec<f64> = (0..32).flat_map(|k| [k as f64 * 0.3, 10.0 - k as f64 * 0.25]).collect();
        let mut batch = vec![0.0; 32];
        plan.evaluate_batch(&inputs, &mut batch, &mut scratch).unwrap();
        for k in 0..32 {
            let scalar = plan.evaluate_one(&inputs[2 * k..2 * k + 2], &mut scratch).unwrap();
            assert_eq!(scalar.to_bits(), batch[k].to_bits());
        }
    }

    #[test]
    fn error_paths_match_interpreted() {
        let fis = tipper();
        let plan = fis.compile();
        let mut scratch = plan.scratch();
        let mut out = [0.0f64];
        assert_eq!(
            plan.evaluate(&[1.0], &mut scratch, &mut out),
            Err(FuzzyError::InputArity { expected: 2, got: 1 })
        );
        assert!(matches!(
            plan.evaluate(&[f64::NAN, 1.0], &mut scratch, &mut out),
            Err(FuzzyError::NonFiniteInput { index: 0, .. })
        ));
    }

    #[test]
    fn no_fire_policies_match() {
        let input = LinguisticVariable::new("x", 0.0, 10.0)
            .with_term("edge", Mf::triangular(0.0, 0.0, 1.0));
        let output = LinguisticVariable::new("y", 0.0, 10.0)
            .with_term("t", Mf::triangular(0.0, 5.0, 10.0));
        let build = |p: NoFirePolicy| {
            FisBuilder::new("nf")
                .input(input.clone())
                .output(output.clone())
                .rule_str("IF x IS edge THEN y IS t")
                .unwrap()
                .no_fire(p)
                .build()
                .unwrap()
        };
        let strict = build(NoFirePolicy::Error).compile();
        let mut scratch = EvalScratch::new();
        assert_eq!(strict.evaluate_one(&[5.0], &mut scratch), Err(FuzzyError::NoRuleFired));
        let lenient = build(NoFirePolicy::UniverseMidpoint).compile();
        assert_eq!(lenient.evaluate_one(&[5.0], &mut scratch).unwrap(), 5.0);
    }

    #[test]
    fn two_output_systems_compile() {
        let x = LinguisticVariable::new("x", 0.0, 1.0)
            .with_term("lo", Mf::left_shoulder(0.0, 1.0))
            .with_term("hi", Mf::right_shoulder(0.0, 1.0));
        let y1 = LinguisticVariable::new("y1", 0.0, 1.0)
            .with_term("a", Mf::triangular(0.0, 0.25, 0.5))
            .with_term("b", Mf::triangular(0.5, 0.75, 1.0));
        let y2 = LinguisticVariable::new("y2", 0.0, 1.0)
            .with_term("c", Mf::triangular(0.0, 0.25, 0.5))
            .with_term("d", Mf::triangular(0.5, 0.75, 1.0));
        let fis = FisBuilder::new("dual")
            .input(x)
            .output(y1)
            .output(y2)
            .rule_str("IF x IS lo THEN y1 IS a AND y2 IS d")
            .unwrap()
            .rule_str("IF x IS hi THEN y1 IS b AND y2 IS c")
            .unwrap()
            .build()
            .unwrap();
        let plan = fis.compile();
        assert_eq!(plan.n_outputs(), 2);
        let mut scratch = plan.scratch();
        let mut out = [0.0f64; 2];
        for x in [0.05, 0.5, 0.95] {
            plan.evaluate(&[x], &mut scratch, &mut out).unwrap();
            let reference = fis.evaluate(&[x]).unwrap();
            assert_eq!(out[0].to_bits(), reference[0].to_bits());
            assert_eq!(out[1].to_bits(), reference[1].to_bits());
        }
    }

    #[test]
    fn plan_reports_shape() {
        let plan = tipper().compile();
        assert_eq!(plan.name(), "tipper");
        assert_eq!(plan.n_inputs(), 2);
        assert_eq!(plan.n_outputs(), 1);
        assert_eq!(plan.n_rules(), 3);
        assert_eq!(plan.input_bounds(0), (0.0, 10.0));
        assert_eq!(plan.output_bounds(0), (0.0, 30.0));
        assert_eq!(plan.config().resolution, 501);
    }
}
