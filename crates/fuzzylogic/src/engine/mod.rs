//! Inference engines.
//!
//! * [`mamdani`] — the classic clip-and-aggregate engine used by the paper.
//! * [`sugeno`] — Takagi–Sugeno–Kang functional-consequent engine, provided
//!   for the ablation studies.

pub mod mamdani;
pub mod sugeno;
