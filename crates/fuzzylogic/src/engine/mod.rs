//! Inference engines.
//!
//! * [`mamdani`] — the classic clip-and-aggregate engine used by the paper.
//! * [`compiled`] — a [`Fis`](mamdani::Fis) compiled into dense arrays with
//!   pre-sampled consequents: bit-identical results, zero heap allocation
//!   per evaluation.
//! * [`lut`] — a precomputed 3-D lookup table with trilinear
//!   interpolation: approximate but constant-time.
//! * [`sugeno`] — Takagi–Sugeno–Kang functional-consequent engine, provided
//!   for the ablation studies.

pub mod compiled;
pub mod lut;
pub mod mamdani;
pub mod sugeno;
