//! A precomputed 3-D lookup table over a three-input, single-output plan.
//!
//! [`Lut3d`] samples a [`CompiledFis`]'s crisp output on a regular
//! `d₀ × d₁ × d₂` grid spanning the three input universes and answers
//! queries by **trilinear interpolation** between the eight surrounding
//! grid nodes. This trades exactness for speed and constant-time
//! evaluation:
//!
//! * node values are *exact* (computed through the compiled engine), so a
//!   query that lands on a grid node reproduces the engine bit for bit;
//! * off-node queries incur an interpolation error bounded by the surface
//!   curvature between nodes — measure it for a concrete system with
//!   [`Lut3d::max_abs_error`] and pin the bound in a test before relying
//!   on it;
//! * inputs are clamped to the universes first, exactly like the exact
//!   engines, so out-of-range queries saturate instead of extrapolating.
//!
//! Use the exact [`CompiledFis`] when decisions must be bit-reproducible
//! (e.g. golden-file regression paths); use the LUT for ablations and
//! throughput experiments where a documented small absolute error is an
//! acceptable price.

use crate::engine::compiled::CompiledFis;
use crate::error::{FuzzyError, Result};
use crate::fuzzyset::grid_x;

/// A trilinear-interpolated lookup table of a 3-input/1-output system.
#[derive(Debug, Clone)]
pub struct Lut3d {
    dims: [usize; 3],
    mins: [f64; 3],
    maxs: [f64; 3],
    /// Node values, indexed `(i * dims[1] + j) * dims[2] + k`.
    values: Vec<f64>,
}

impl Lut3d {
    /// Build a table with `dims[a]` nodes along input axis `a` (each ≥ 2)
    /// by evaluating `plan` at every grid node.
    ///
    /// Errors if the plan is not 3-input/1-output, a dimension is below 2,
    /// or any node evaluation fails (e.g. no rule fires there under
    /// [`NoFirePolicy::Error`](crate::engine::mamdani::NoFirePolicy)).
    pub fn build(plan: &CompiledFis, dims: [usize; 3]) -> Result<Self> {
        if plan.n_inputs() != 3 {
            return Err(FuzzyError::InputArity { expected: 3, got: plan.n_inputs() });
        }
        if plan.n_outputs() != 1 {
            return Err(FuzzyError::InvalidMf {
                reason: format!(
                    "a 3-D LUT requires a single-output system, got {} outputs",
                    plan.n_outputs()
                ),
            });
        }
        for d in dims {
            if d < 2 {
                return Err(FuzzyError::InvalidMf {
                    reason: format!("LUT needs at least 2 nodes per axis, got {d}"),
                });
            }
        }
        let mut mins = [0.0; 3];
        let mut maxs = [0.0; 3];
        for a in 0..3 {
            let (lo, hi) = plan.input_bounds(a);
            mins[a] = lo;
            maxs[a] = hi;
        }
        let mut values = Vec::with_capacity(dims[0] * dims[1] * dims[2]);
        let mut scratch = plan.scratch();
        for i in 0..dims[0] {
            let x = grid_x(mins[0], maxs[0], dims[0], i);
            for j in 0..dims[1] {
                let y = grid_x(mins[1], maxs[1], dims[1], j);
                for k in 0..dims[2] {
                    let z = grid_x(mins[2], maxs[2], dims[2], k);
                    values.push(plan.evaluate_one(&[x, y, z], &mut scratch)?);
                }
            }
        }
        Ok(Lut3d { dims, mins, maxs, values })
    }

    /// Grid dimensions per axis.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Universe bounds `(min, max)` of input axis `a`.
    pub fn bounds(&self, a: usize) -> (f64, f64) {
        (self.mins[a], self.maxs[a])
    }

    /// Number of stored node values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the table holds no nodes (not constructible via
    /// [`Lut3d::build`], but required for a well-behaved `len`).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Locate `v` on axis `a`: the lower node index and the fractional
    /// position within the cell, after clamping into the universe. A NaN
    /// input saturates to the lower bound — the exact engines *reject*
    /// non-finite inputs, but this infallible path must still return a
    /// finite value rather than let a NaN poison downstream aggregates.
    #[inline]
    fn locate(&self, a: usize, v: f64) -> (usize, f64) {
        let (lo, hi) = (self.mins[a], self.maxs[a]);
        let v = if v.is_nan() { lo } else { v };
        let t = (v.clamp(lo, hi) - lo) / (hi - lo) * (self.dims[a] - 1) as f64;
        let i = (t.floor() as usize).min(self.dims[a] - 2);
        (i, t - i as f64)
    }

    #[inline]
    fn node(&self, i: usize, j: usize, k: usize) -> f64 {
        self.values[(i * self.dims[1] + j) * self.dims[2] + k]
    }

    /// Evaluate by trilinear interpolation; inputs outside the universes
    /// clamp to the boundary (like the exact engines), and NaN inputs
    /// saturate to the lower bound (where the exact engines would error —
    /// this path stays infallible and NaN-free instead). Never allocates
    /// and never fails.
    pub fn evaluate(&self, x: [f64; 3]) -> f64 {
        let (i, fx) = self.locate(0, x[0]);
        let (j, fy) = self.locate(1, x[1]);
        let (k, fz) = self.locate(2, x[2]);
        // Interpolate along z, then y, then x.
        let lerp = |a: f64, b: f64, t: f64| a + (b - a) * t;
        let c00 = lerp(self.node(i, j, k), self.node(i, j, k + 1), fz);
        let c01 = lerp(self.node(i, j + 1, k), self.node(i, j + 1, k + 1), fz);
        let c10 = lerp(self.node(i + 1, j, k), self.node(i + 1, j, k + 1), fz);
        let c11 = lerp(self.node(i + 1, j + 1, k), self.node(i + 1, j + 1, k + 1), fz);
        lerp(lerp(c00, c01, fy), lerp(c10, c11, fy), fx)
    }

    /// Measure the maximum absolute error of the table against the exact
    /// plan on a dense probe grid of `probes_per_axis ≥ 2` points per axis
    /// (which deliberately does *not* coincide with the table nodes unless
    /// the counts match, so cell interiors are exercised).
    pub fn max_abs_error(&self, plan: &CompiledFis, probes_per_axis: usize) -> Result<f64> {
        let n = probes_per_axis.max(2);
        let mut scratch = plan.scratch();
        let mut worst = 0.0f64;
        for i in 0..n {
            let x = grid_x(self.mins[0], self.maxs[0], n, i);
            for j in 0..n {
                let y = grid_x(self.mins[1], self.maxs[1], n, j);
                for k in 0..n {
                    let z = grid_x(self.mins[2], self.maxs[2], n, k);
                    let exact = plan.evaluate_one(&[x, y, z], &mut scratch)?;
                    worst = worst.max((self.evaluate([x, y, z]) - exact).abs());
                }
            }
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::mamdani::{Fis, FisBuilder};
    use crate::membership::Mf;
    use crate::variable::LinguisticVariable;

    /// A small 3-input system with a smooth surface.
    fn three_input() -> Fis {
        let mk = |name: &str| {
            LinguisticVariable::new(name, 0.0, 10.0)
                .with_term("lo", Mf::left_shoulder(0.0, 10.0))
                .with_term("hi", Mf::right_shoulder(0.0, 10.0))
        };
        let out = LinguisticVariable::new("out", 0.0, 1.0)
            .with_term("small", Mf::triangular(0.0, 0.0, 1.0))
            .with_term("large", Mf::triangular(0.0, 1.0, 1.0));
        FisBuilder::new("tri")
            .input(mk("a"))
            .input(mk("b"))
            .input(mk("c"))
            .output(out)
            .rule_str("IF a IS lo THEN out IS small")
            .unwrap()
            .rule_str("IF a IS hi THEN out IS large")
            .unwrap()
            .rule_str("IF b IS hi AND c IS lo THEN out IS small")
            .unwrap()
            .rule_str("IF b IS lo AND c IS hi THEN out IS large")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn nodes_are_exact() {
        let plan = three_input().compile();
        let lut = Lut3d::build(&plan, [9, 9, 9]).unwrap();
        let mut scratch = plan.scratch();
        for i in [0usize, 4, 8] {
            let x = grid_x(0.0, 10.0, 9, i);
            let exact = plan.evaluate_one(&[x, x, x], &mut scratch).unwrap();
            let approx = lut.evaluate([x, x, x]);
            assert!((approx - exact).abs() < 1e-12, "node ({x}) drifted: {approx} vs {exact}");
        }
    }

    #[test]
    fn error_shrinks_with_resolution() {
        let plan = three_input().compile();
        let coarse = Lut3d::build(&plan, [5, 5, 5]).unwrap();
        let fine = Lut3d::build(&plan, [17, 17, 17]).unwrap();
        let e_coarse = coarse.max_abs_error(&plan, 13).unwrap();
        let e_fine = fine.max_abs_error(&plan, 13).unwrap();
        assert!(e_fine <= e_coarse, "refining the grid must not hurt: {e_fine} vs {e_coarse}");
        assert!(e_fine < 0.1, "a 17³ table approximates this smooth surface well: {e_fine}");
    }

    #[test]
    fn out_of_range_queries_clamp() {
        let plan = three_input().compile();
        let lut = Lut3d::build(&plan, [9, 9, 9]).unwrap();
        assert_eq!(
            lut.evaluate([-50.0, 5.0, 5.0]).to_bits(),
            lut.evaluate([0.0, 5.0, 5.0]).to_bits()
        );
        assert_eq!(
            lut.evaluate([3.0, 999.0, 5.0]).to_bits(),
            lut.evaluate([3.0, 10.0, 5.0]).to_bits()
        );
        // Infinities clamp like any out-of-range value; NaN saturates to
        // the lower bound — the result is always finite.
        assert_eq!(
            lut.evaluate([f64::INFINITY, 5.0, 5.0]).to_bits(),
            lut.evaluate([10.0, 5.0, 5.0]).to_bits()
        );
        assert_eq!(
            lut.evaluate([f64::NAN, 5.0, 5.0]).to_bits(),
            lut.evaluate([0.0, 5.0, 5.0]).to_bits()
        );
        assert!(lut.evaluate([f64::NAN, f64::NAN, f64::NAN]).is_finite());
    }

    #[test]
    fn shape_validation() {
        let plan = three_input().compile();
        assert!(Lut3d::build(&plan, [1, 9, 9]).is_err(), "degenerate axis");
        let lut = Lut3d::build(&plan, [4, 5, 6]).unwrap();
        assert_eq!(lut.dims(), [4, 5, 6]);
        assert_eq!(lut.len(), 4 * 5 * 6);
        assert!(!lut.is_empty());
        assert_eq!(lut.bounds(0), (0.0, 10.0));

        // Wrong arity: a 2-input system cannot back a 3-D LUT.
        let two_in = {
            let x = LinguisticVariable::new("x", 0.0, 1.0).with_term("t", Mf::triangular(0.0, 0.5, 1.0));
            let y = LinguisticVariable::new("y", 0.0, 1.0).with_term("t", Mf::triangular(0.0, 0.5, 1.0));
            let o = LinguisticVariable::new("o", 0.0, 1.0).with_term("t", Mf::triangular(0.0, 0.5, 1.0));
            FisBuilder::new("2in")
                .input(x)
                .input(y)
                .output(o)
                .rule_str("IF x IS t THEN o IS t")
                .unwrap()
                .build()
                .unwrap()
        };
        assert!(Lut3d::build(&two_in.compile(), [4, 4, 4]).is_err());
    }
}
