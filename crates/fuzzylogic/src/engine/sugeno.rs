//! Takagi–Sugeno–Kang (TSK) inference.
//!
//! Sugeno consequents are crisp functions of the inputs rather than fuzzy
//! sets; the crisp output is the firing-strength-weighted average of the
//! rule outputs. Zero-order (constant) and first-order (affine) consequents
//! are supported.

use crate::error::{FuzzyError, Result};
use crate::norms::{SNorm, TNorm};
use crate::rule::{Antecedent, Connective};
use crate::variable::LinguisticVariable;
use serde::{Deserialize, Serialize};

/// A Sugeno consequent: a crisp function of the crisp inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SugenoOutput {
    /// Zero-order: a constant.
    Constant(f64),
    /// First-order: `offset + Σ coeffs[i] * x[i]`.
    Linear {
        /// Per-input coefficients (length must equal the input arity).
        coeffs: Vec<f64>,
        /// Constant offset.
        offset: f64,
    },
}

impl SugenoOutput {
    /// Evaluate the consequent for the given crisp inputs.
    pub fn eval(&self, inputs: &[f64]) -> f64 {
        match self {
            SugenoOutput::Constant(c) => *c,
            SugenoOutput::Linear { coeffs, offset } => {
                offset + coeffs.iter().zip(inputs).map(|(c, x)| c * x).sum::<f64>()
            }
        }
    }
}

/// A Sugeno rule: fuzzy antecedents, functional consequent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SugenoRule {
    /// Antecedent clauses (same shape as Mamdani rules).
    pub antecedents: Vec<Antecedent>,
    /// AND/OR combination.
    pub connective: Connective,
    /// One consequent per declared output.
    pub outputs: Vec<SugenoOutput>,
    /// Rule weight in `[0, 1]`.
    pub weight: f64,
}

impl SugenoRule {
    /// Rule with weight 1.
    pub fn new(antecedents: Vec<Antecedent>, connective: Connective, outputs: Vec<SugenoOutput>) -> Self {
        SugenoRule { antecedents, connective, outputs, weight: 1.0 }
    }

    /// Builder-style weight override.
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }
}

/// A Takagi–Sugeno–Kang inference system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SugenoFis {
    name: String,
    inputs: Vec<LinguisticVariable>,
    n_outputs: usize,
    rules: Vec<SugenoRule>,
    and: TNorm,
    or: SNorm,
}

impl SugenoFis {
    /// System name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared input variables.
    pub fn inputs(&self) -> &[LinguisticVariable] {
        &self.inputs
    }

    /// Number of outputs.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// The rules.
    pub fn rules(&self) -> &[SugenoRule] {
        &self.rules
    }

    /// Evaluate crisp inputs to crisp outputs (weighted average).
    pub fn evaluate(&self, crisp: &[f64]) -> Result<Vec<f64>> {
        if crisp.len() != self.inputs.len() {
            return Err(FuzzyError::InputArity { expected: self.inputs.len(), got: crisp.len() });
        }
        for (i, &x) in crisp.iter().enumerate() {
            if !x.is_finite() {
                return Err(FuzzyError::NonFiniteInput { index: i, value: x });
            }
        }
        let memberships: Vec<Vec<f64>> =
            self.inputs.iter().zip(crisp).map(|(v, &x)| v.fuzzify(x)).collect();

        let mut num = vec![0.0; self.n_outputs];
        let mut den = 0.0;
        for rule in &self.rules {
            let degrees = rule.antecedents.iter().map(|a| {
                a.hedge.apply(
                    memberships
                        .get(a.var)
                        .and_then(|t| t.get(a.term))
                        .copied()
                        .unwrap_or(0.0),
                )
            });
            let w = match rule.connective {
                Connective::And => self.and.fold(degrees),
                Connective::Or => self.or.fold(degrees),
            } * rule.weight;
            if w <= 0.0 {
                continue;
            }
            den += w;
            for (o, out) in rule.outputs.iter().enumerate() {
                num[o] += w * out.eval(crisp);
            }
        }
        if den <= 0.0 {
            return Err(FuzzyError::NoRuleFired);
        }
        Ok(num.into_iter().map(|n| n / den).collect())
    }
}

/// Builder for [`SugenoFis`].
#[derive(Debug, Clone, Default)]
pub struct SugenoFisBuilder {
    name: String,
    inputs: Vec<LinguisticVariable>,
    n_outputs: usize,
    rules: Vec<SugenoRule>,
    and: TNorm,
    or: SNorm,
}

impl SugenoFisBuilder {
    /// Start building a system with `n_outputs` crisp outputs.
    pub fn new(name: impl Into<String>, n_outputs: usize) -> Self {
        SugenoFisBuilder { name: name.into(), n_outputs, ..Default::default() }
    }

    /// Declare an input variable.
    #[must_use]
    pub fn input(mut self, var: LinguisticVariable) -> Self {
        self.inputs.push(var);
        self
    }

    /// Add a rule.
    #[must_use]
    pub fn rule(mut self, rule: SugenoRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Set the AND t-norm.
    #[must_use]
    pub fn and(mut self, t: TNorm) -> Self {
        self.and = t;
        self
    }

    /// Set the OR s-norm.
    #[must_use]
    pub fn or(mut self, s: SNorm) -> Self {
        self.or = s;
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<SugenoFis> {
        if self.inputs.is_empty() {
            return Err(FuzzyError::EmptySystem { what: "inputs" });
        }
        if self.n_outputs == 0 {
            return Err(FuzzyError::EmptySystem { what: "outputs" });
        }
        if self.rules.is_empty() {
            return Err(FuzzyError::EmptyRuleSet);
        }
        for rule in &self.rules {
            if !rule.weight.is_finite() || !(0.0..=1.0).contains(&rule.weight) {
                return Err(FuzzyError::InvalidWeight { weight: rule.weight });
            }
            if rule.outputs.len() != self.n_outputs {
                return Err(FuzzyError::InputArity {
                    expected: self.n_outputs,
                    got: rule.outputs.len(),
                });
            }
            for a in &rule.antecedents {
                let var = self.inputs.get(a.var).ok_or(FuzzyError::UnknownVariable {
                    name: format!("input #{}", a.var),
                })?;
                if a.term >= var.term_count() {
                    return Err(FuzzyError::UnknownTerm {
                        variable: var.name.clone(),
                        term: format!("term #{}", a.term),
                    });
                }
            }
            for out in &rule.outputs {
                if let SugenoOutput::Linear { coeffs, .. } = out {
                    if coeffs.len() != self.inputs.len() {
                        return Err(FuzzyError::InputArity {
                            expected: self.inputs.len(),
                            got: coeffs.len(),
                        });
                    }
                }
            }
        }
        Ok(SugenoFis {
            name: self.name,
            inputs: self.inputs,
            n_outputs: self.n_outputs,
            rules: self.rules,
            and: self.and,
            or: self.or,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::Mf;

    fn xvar() -> LinguisticVariable {
        LinguisticVariable::new("x", 0.0, 10.0)
            .with_term("low", Mf::left_shoulder(0.0, 10.0))
            .with_term("high", Mf::right_shoulder(0.0, 10.0))
    }

    #[test]
    fn zero_order_interpolates_between_rule_constants() {
        let fis = SugenoFisBuilder::new("s", 1)
            .input(xvar())
            .rule(SugenoRule::new(
                vec![Antecedent::new(0, 0)],
                Connective::And,
                vec![SugenoOutput::Constant(0.0)],
            ))
            .rule(SugenoRule::new(
                vec![Antecedent::new(0, 1)],
                Connective::And,
                vec![SugenoOutput::Constant(100.0)],
            ))
            .build()
            .unwrap();
        assert_eq!(fis.evaluate(&[0.0]).unwrap()[0], 0.0);
        assert_eq!(fis.evaluate(&[10.0]).unwrap()[0], 100.0);
        let mid = fis.evaluate(&[5.0]).unwrap()[0];
        assert!((mid - 50.0).abs() < 1e-9, "linear blend, got {mid}");
        let quarter = fis.evaluate(&[2.5]).unwrap()[0];
        assert!((quarter - 25.0).abs() < 1e-9);
    }

    #[test]
    fn first_order_consequent() {
        let fis = SugenoFisBuilder::new("s", 1)
            .input(xvar())
            .rule(SugenoRule::new(
                vec![Antecedent::new(0, 0)],
                Connective::And,
                vec![SugenoOutput::Linear { coeffs: vec![2.0], offset: 1.0 }],
            ))
            .build()
            .unwrap();
        // Only one rule: output = 1 + 2x regardless of firing strength,
        // as long as it fires at all.
        let y = fis.evaluate(&[3.0]).unwrap()[0];
        assert!((y - 7.0).abs() < 1e-12);
    }

    #[test]
    fn weights_bias_the_average() {
        let build = |w: f64| {
            SugenoFisBuilder::new("s", 1)
                .input(xvar())
                .rule(
                    SugenoRule::new(
                        vec![Antecedent::new(0, 0)],
                        Connective::And,
                        vec![SugenoOutput::Constant(0.0)],
                    )
                    .with_weight(w),
                )
                .rule(SugenoRule::new(
                    vec![Antecedent::new(0, 1)],
                    Connective::And,
                    vec![SugenoOutput::Constant(100.0)],
                ))
                .build()
                .unwrap()
        };
        let balanced = build(1.0).evaluate(&[5.0]).unwrap()[0];
        let damped = build(0.25).evaluate(&[5.0]).unwrap()[0];
        assert!(damped > balanced, "down-weighting the low rule raises output");
    }

    #[test]
    fn multi_output() {
        let fis = SugenoFisBuilder::new("s", 2)
            .input(xvar())
            .rule(SugenoRule::new(
                vec![Antecedent::new(0, 0)],
                Connective::And,
                vec![SugenoOutput::Constant(1.0), SugenoOutput::Constant(-1.0)],
            ))
            .build()
            .unwrap();
        let out = fis.evaluate(&[1.0]).unwrap();
        assert_eq!(out, vec![1.0, -1.0]);
    }

    #[test]
    fn no_rule_fired() {
        let x = LinguisticVariable::new("x", 0.0, 10.0)
            .with_term("edge", Mf::triangular(0.0, 0.0, 1.0));
        let fis = SugenoFisBuilder::new("s", 1)
            .input(x)
            .rule(SugenoRule::new(
                vec![Antecedent::new(0, 0)],
                Connective::And,
                vec![SugenoOutput::Constant(1.0)],
            ))
            .build()
            .unwrap();
        assert_eq!(fis.evaluate(&[5.0]), Err(FuzzyError::NoRuleFired));
    }

    #[test]
    fn builder_validation() {
        assert!(SugenoFisBuilder::new("s", 1).build().is_err(), "no inputs");
        assert!(
            SugenoFisBuilder::new("s", 0).input(xvar()).build().is_err(),
            "no outputs"
        );
        assert!(SugenoFisBuilder::new("s", 1).input(xvar()).build().is_err(), "no rules");
        // Wrong number of consequents.
        let err = SugenoFisBuilder::new("s", 2)
            .input(xvar())
            .rule(SugenoRule::new(
                vec![Antecedent::new(0, 0)],
                Connective::And,
                vec![SugenoOutput::Constant(1.0)],
            ))
            .build();
        assert!(err.is_err());
        // Wrong linear arity.
        let err = SugenoFisBuilder::new("s", 1)
            .input(xvar())
            .rule(SugenoRule::new(
                vec![Antecedent::new(0, 0)],
                Connective::And,
                vec![SugenoOutput::Linear { coeffs: vec![1.0, 2.0], offset: 0.0 }],
            ))
            .build();
        assert!(err.is_err());
        // Bad term index.
        let err = SugenoFisBuilder::new("s", 1)
            .input(xvar())
            .rule(SugenoRule::new(
                vec![Antecedent::new(0, 9)],
                Connective::And,
                vec![SugenoOutput::Constant(1.0)],
            ))
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn arity_checked_at_eval() {
        let fis = SugenoFisBuilder::new("s", 1)
            .input(xvar())
            .rule(SugenoRule::new(
                vec![Antecedent::new(0, 0)],
                Connective::And,
                vec![SugenoOutput::Constant(1.0)],
            ))
            .build()
            .unwrap();
        assert!(fis.evaluate(&[]).is_err());
        assert!(fis.evaluate(&[f64::NAN]).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let fis = SugenoFisBuilder::new("s", 1)
            .input(xvar())
            .rule(SugenoRule::new(
                vec![Antecedent::new(0, 0)],
                Connective::And,
                vec![SugenoOutput::Constant(2.5)],
            ))
            .build()
            .unwrap();
        let json = serde_json::to_string(&fis).unwrap();
        let back: SugenoFis = serde_json::from_str(&json).unwrap();
        assert_eq!(fis, back);
    }
}
