//! Property-based invariants for the fuzzy engine.

use fuzzylogic::prelude::*;
use proptest::prelude::*;

/// Strategy producing a valid triangular/trapezoidal/shoulder MF over
/// roughly [-100, 100].
fn arb_linear_mf() -> impl Strategy<Value = Mf> {
    let point = -100.0f64..100.0;
    prop_oneof![
        (point.clone(), 0.1f64..50.0, 0.1f64..50.0)
            .prop_map(|(x0, a0, a1)| Mf::tri_center(x0, a0, a1)),
        (point.clone(), 0.1f64..30.0, 0.1f64..30.0, 0.1f64..30.0)
            .prop_map(|(x0, w, a0, a1)| Mf::trap_edges(x0, x0 + w, a0, a1)),
        (point.clone(), 0.1f64..50.0).prop_map(|(a, w)| Mf::left_shoulder(a, a + w)),
        (point, 0.1f64..50.0).prop_map(|(a, w)| Mf::right_shoulder(a, a + w)),
    ]
}

fn arb_any_mf() -> impl Strategy<Value = Mf> {
    prop_oneof![
        arb_linear_mf(),
        (-100.0f64..100.0, 0.1f64..30.0).prop_map(|(m, s)| Mf::gaussian(m, s)),
        (0.1f64..30.0, 0.5f64..6.0, -100.0f64..100.0).prop_map(|(a, b, c)| Mf::bell(a, b, c)),
        (-100.0f64..100.0).prop_map(Mf::singleton),
    ]
}

proptest! {
    /// μ(x) always lies in [0, 1] for any input, including extremes.
    #[test]
    fn membership_in_unit_interval(mf in arb_any_mf(), x in -1e6f64..1e6) {
        let mu = mf.eval(x);
        prop_assert!((0.0..=1.0).contains(&mu), "{mf:?}({x}) = {mu}");
    }

    /// Exact clipped moments agree with brute-force numerical integration
    /// for the piecewise-linear families.
    #[test]
    fn clipped_moments_match_numeric(
        mf in arb_linear_mf(),
        h in 0.05f64..1.0,
        lo in -120.0f64..0.0,
        width in 1.0f64..240.0,
    ) {
        let hi = lo + width;
        let (area, moment) = mf.clipped_moments(h, lo, hi);
        // Brute force with midpoint rule.
        let n = 20_000;
        let dx = (hi - lo) / n as f64;
        let mut num_area = 0.0;
        let mut num_moment = 0.0;
        for i in 0..n {
            let x = lo + (i as f64 + 0.5) * dx;
            let y = mf.eval(x).min(h);
            num_area += y * dx;
            num_moment += x * y * dx;
        }
        let tol_area = 1e-3 * (1.0 + num_area.abs());
        let tol_m = 1e-3 * (1.0 + num_moment.abs());
        prop_assert!((area - num_area).abs() < tol_area,
            "{mf:?} clipped at {h} over [{lo}, {hi}]: exact {area} vs numeric {num_area}");
        prop_assert!((moment - num_moment).abs() < tol_m,
            "moment: exact {moment} vs numeric {num_moment}");
    }

    /// Triangle peaks at its center parameter; trapezoid plateau is 1.
    #[test]
    fn normality_at_core(mf in arb_linear_mf()) {
        let (a, b) = mf.core();
        let probe = match (a.is_finite(), b.is_finite()) {
            (true, true) => 0.5 * (a + b),
            (true, false) => a,
            (false, true) => b,
            _ => return Ok(()),
        };
        prop_assert!(mf.eval(probe) >= 1.0 - 1e-12);
    }

    /// Hedges keep membership in the unit interval.
    #[test]
    fn hedges_preserve_unit_interval(mu in 0.0f64..=1.0) {
        for h in Hedge::ALL {
            let y = h.apply(mu);
            prop_assert!((0.0..=1.0).contains(&y), "{h:?}({mu}) = {y}");
        }
    }

    /// t-norm ≤ min ≤ max ≤ s-norm for all operator choices.
    #[test]
    fn norm_ordering(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        for t in TNorm::ALL {
            prop_assert!(t.apply(a, b) <= a.min(b) + 1e-12, "{t:?}");
        }
        for s in SNorm::ALL {
            prop_assert!(s.apply(a, b) >= a.max(b) - 1e-12, "{s:?}");
        }
    }
}

/// A small, totally covered two-input system used for engine invariants.
fn covered_fis(defuzz: Defuzzifier) -> Fis {
    let x = LinguisticVariable::new("x", 0.0, 10.0)
        .with_term("lo", Mf::left_shoulder(0.0, 5.0))
        .with_term("mid", Mf::triangular(0.0, 5.0, 10.0))
        .with_term("hi", Mf::right_shoulder(5.0, 10.0));
    let y = LinguisticVariable::new("y", 0.0, 10.0)
        .with_term("lo", Mf::left_shoulder(0.0, 5.0))
        .with_term("hi", Mf::right_shoulder(0.0, 10.0));
    let z = LinguisticVariable::new("z", 0.0, 1.0)
        .with_term("small", Mf::triangular(0.0, 0.0, 0.5))
        .with_term("med", Mf::triangular(0.0, 0.5, 1.0))
        .with_term("large", Mf::triangular(0.5, 1.0, 1.0));
    FisBuilder::new("covered")
        .input(x)
        .input(y)
        .output(z)
        .defuzzifier(defuzz)
        .rule_str("IF x IS lo AND y IS lo THEN z IS small").unwrap()
        .rule_str("IF x IS lo AND y IS hi THEN z IS small").unwrap()
        .rule_str("IF x IS mid THEN z IS med").unwrap()
        .rule_str("IF x IS hi AND y IS lo THEN z IS med").unwrap()
        .rule_str("IF x IS hi AND y IS hi THEN z IS large").unwrap()
        .build()
        .unwrap()
}

proptest! {
    /// A totally covered system always produces an output inside the output
    /// universe, for every defuzzifier.
    #[test]
    fn outputs_stay_in_universe(x in 0.0f64..=10.0, y in 0.0f64..=10.0) {
        for d in Defuzzifier::ALL {
            let fis = covered_fis(d);
            let out = fis.evaluate(&[x, y]).unwrap();
            prop_assert!((0.0..=1.0).contains(&out[0]), "{d:?} gave {}", out[0]);
        }
    }

    /// Firing strengths are in [0, 1] and at least one rule fires anywhere.
    #[test]
    fn firing_strengths_valid(x in 0.0f64..=10.0, y in 0.0f64..=10.0) {
        let fis = covered_fis(Defuzzifier::Centroid);
        let firing = fis.firing_strengths(&[x, y]).unwrap();
        prop_assert_eq!(firing.len(), 5);
        prop_assert!(firing.iter().all(|w| (0.0..=1.0).contains(w)));
        prop_assert!(firing.iter().any(|&w| w > 0.0), "total coverage");
    }

    /// Evaluation is deterministic.
    #[test]
    fn evaluation_deterministic(x in 0.0f64..=10.0, y in 0.0f64..=10.0) {
        let fis = covered_fis(Defuzzifier::Centroid);
        let a = fis.evaluate(&[x, y]).unwrap();
        let b = fis.evaluate(&[x, y]).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Out-of-range inputs clamp: evaluating past the universe edge equals
    /// evaluating at the edge.
    #[test]
    fn inputs_clamp_at_universe_edges(over in 0.0f64..1e3) {
        let fis = covered_fis(Defuzzifier::Centroid);
        let at_edge = fis.evaluate(&[10.0, 5.0]).unwrap();
        let past_edge = fis.evaluate(&[10.0 + over, 5.0]).unwrap();
        prop_assert_eq!(at_edge, past_edge);
    }

    /// Serde round-trips preserve evaluation results exactly.
    #[test]
    fn serde_preserves_semantics(x in 0.0f64..=10.0, y in 0.0f64..=10.0) {
        let fis = covered_fis(Defuzzifier::Centroid);
        let back: Fis = serde_json::from_str(&serde_json::to_string(&fis).unwrap()).unwrap();
        prop_assert_eq!(fis.evaluate(&[x, y]).unwrap(), back.evaluate(&[x, y]).unwrap());
    }

    /// Monotone rule bases give monotone outputs along the x axis: moving
    /// x from the "lo" region to the "hi" region can only increase z.
    #[test]
    fn coarse_monotonicity(x1 in 0.0f64..=10.0, x2 in 0.0f64..=10.0, y in 0.0f64..=10.0) {
        let (xa, xb) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let fis = covered_fis(Defuzzifier::Centroid);
        let za = fis.evaluate(&[xa, y]).unwrap()[0];
        let zb = fis.evaluate(&[xb, y]).unwrap()[0];
        // Tolerance absorbs centroid discretisation wobble.
        prop_assert!(zb >= za - 0.02, "x {xa} -> {za}, x {xb} -> {zb}");
    }
}

// Sugeno systems interpolate between rule constants, so outputs stay in
// the convex hull of the constants.
proptest! {
    #[test]
    fn sugeno_output_in_convex_hull(x in 0.0f64..=10.0) {
        let var = LinguisticVariable::new("x", 0.0, 10.0)
            .with_term("lo", Mf::left_shoulder(0.0, 10.0))
            .with_term("hi", Mf::right_shoulder(0.0, 10.0));
        let fis = SugenoFisBuilder::new("s", 1)
            .input(var)
            .rule(SugenoRule::new(
                vec![Antecedent::new(0, 0)],
                Connective::And,
                vec![SugenoOutput::Constant(-5.0)],
            ))
            .rule(SugenoRule::new(
                vec![Antecedent::new(0, 1)],
                Connective::And,
                vec![SugenoOutput::Constant(7.0)],
            ))
            .build()
            .unwrap();
        let out = fis.evaluate(&[x]).unwrap()[0];
        prop_assert!((-5.0..=7.0).contains(&out));
    }
}
