//! Edge-case coverage for trajectories and resampling: zero-length
//! walks, single-point trajectories, and resampling coarser than the
//! whole path. The fleet engine streams arbitrary model output through
//! these paths, so the degenerate cases must be well defined.

use cellgeom::Vec2;
use mobility::{TracePoint, Trajectory};

/// A trajectory whose waypoints never move: total length zero.
fn pinned(n: usize) -> Trajectory {
    Trajectory::new(vec![Vec2::new(0.4, -0.2); n])
}

#[test]
fn zero_length_walk_resamples_to_its_single_position() {
    for n in [2, 3, 10] {
        let t = pinned(n);
        assert_eq!(t.total_length_km(), 0.0);
        let pts = t.resample(0.5);
        assert_eq!(pts.len(), 1, "{n} coincident waypoints collapse to one sample");
        assert_eq!(pts[0], TracePoint { pos: Vec2::new(0.4, -0.2), cum_km: 0.0 });
        let lazy: Vec<TracePoint> = t.resample_iter(0.5).collect();
        assert_eq!(pts, lazy);
    }
}

#[test]
fn zero_length_walk_position_at_is_constant() {
    let t = pinned(4);
    for s in [-1.0, 0.0, 0.3, 100.0] {
        assert_eq!(t.position_at(s), Vec2::new(0.4, -0.2));
    }
}

#[test]
fn single_point_trajectory_is_fully_degenerate() {
    let t = Trajectory::new(vec![Vec2::new(-1.0, 2.5)]);
    assert_eq!(t.len(), 1);
    assert_eq!(t.start(), t.end());
    assert_eq!(t.total_length_km(), 0.0);
    let pts = t.resample(0.1);
    assert_eq!(pts, vec![TracePoint { pos: Vec2::new(-1.0, 2.5), cum_km: 0.0 }]);
    assert_eq!(t.resample_len(0.1), 1);
    let mut it = t.resample_iter(0.1);
    assert!(it.next().is_some());
    assert!(it.next().is_none(), "iterator is exhausted after the start point");
    assert!(it.next().is_none(), "and stays exhausted (fused behaviour)");
}

#[test]
fn spacing_larger_than_the_whole_path_keeps_endpoints_and_corners() {
    // 3-4-5 L-shape, total 7 km; resample at 100 km.
    let t = Trajectory::new(vec![
        Vec2::new(0.0, 0.0),
        Vec2::new(3.0, 0.0),
        Vec2::new(3.0, 4.0),
    ]);
    let pts = t.resample(100.0);
    assert_eq!(pts.len(), 3, "start, corner waypoint, end — nothing in between");
    assert_eq!(pts[0].pos, Vec2::new(0.0, 0.0));
    assert_eq!(pts[1].pos, Vec2::new(3.0, 0.0));
    assert_eq!(pts[2].pos, Vec2::new(3.0, 4.0));
    assert_eq!(pts[0].cum_km, 0.0);
    assert!((pts[1].cum_km - 3.0).abs() < 1e-12);
    assert!((pts[2].cum_km - 7.0).abs() < 1e-12);
    // cum_km stays strictly increasing even at coarse spacing.
    for w in pts.windows(2) {
        assert!(w[1].cum_km > w[0].cum_km);
    }
}

#[test]
fn spacing_larger_than_a_straight_segment_yields_exactly_the_endpoints() {
    let t = Trajectory::new(vec![Vec2::ZERO, Vec2::new(0.3, 0.0)]);
    let pts = t.resample(5.0);
    assert_eq!(pts.len(), 2);
    assert_eq!(pts[1].pos, Vec2::new(0.3, 0.0));
}

#[test]
fn leading_and_trailing_degenerate_segments_are_skipped() {
    // Coincident waypoints at the start, middle and end must not produce
    // duplicate samples or stall cum_km.
    let t = Trajectory::new(vec![
        Vec2::ZERO,
        Vec2::ZERO,
        Vec2::new(1.0, 0.0),
        Vec2::new(1.0, 0.0),
        Vec2::new(2.0, 0.0),
        Vec2::new(2.0, 0.0),
    ]);
    for spacing in [0.25, 10.0] {
        let pts = t.resample(spacing);
        assert!((pts.last().unwrap().cum_km - 2.0).abs() < 1e-12);
        for w in pts.windows(2) {
            assert!(w[1].cum_km > w[0].cum_km, "strictly increasing at {spacing}");
        }
        let lazy: Vec<TracePoint> = t.resample_iter(spacing).collect();
        assert_eq!(pts, lazy);
    }
}

#[test]
fn with_speed_on_degenerate_trajectory_has_single_zero_timestamp() {
    let timed = pinned(3).with_speed(0.5, 30.0);
    assert_eq!(timed.len(), 1);
    assert_eq!(timed[0].0, 0.0, "no distance, no elapsed time");
}
