//! Deterministic straight-line motion (useful for calibration plots and
//! the received-power-versus-distance figures).

use crate::trace::Trajectory;
use crate::MobilityModel;
use cellgeom::Vec2;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Constant-heading motion from `start` for `length_km` at `heading_rad`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearMotion {
    /// Starting position.
    pub start: Vec2,
    /// Heading in radians.
    pub heading_rad: f64,
    /// Path length in km.
    pub length_km: f64,
}

impl LinearMotion {
    /// Construct (length must be positive).
    pub fn new(start: Vec2, heading_rad: f64, length_km: f64) -> Self {
        assert!(length_km > 0.0, "length must be positive");
        LinearMotion { start, heading_rad, length_km }
    }

    /// Straight line between two points.
    pub fn between(start: Vec2, end: Vec2) -> Self {
        let d = end - start;
        assert!(d.norm() > 0.0, "start and end coincide");
        LinearMotion { start, heading_rad: d.angle(), length_km: d.norm() }
    }

    /// End position.
    pub fn end(&self) -> Vec2 {
        self.start + Vec2::from_polar(self.length_km, self.heading_rad)
    }
}

impl MobilityModel for LinearMotion {
    fn generate(&self, _rng: &mut dyn RngCore) -> Trajectory {
        Trajectory::new(vec![self.start, self.end()])
    }

    fn start(&self) -> Vec2 {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn line_geometry() {
        let m = LinearMotion::new(Vec2::ZERO, 0.0, 5.0);
        let t = m.generate(&mut StdRng::seed_from_u64(0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.end(), Vec2::new(5.0, 0.0));
        assert!((t.total_length_km() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn between_points() {
        let m = LinearMotion::between(Vec2::new(1.0, 1.0), Vec2::new(4.0, 5.0));
        assert!((m.length_km - 5.0).abs() < 1e-12);
        assert!(m.end().distance(Vec2::new(4.0, 5.0)) < 1e-12);
    }

    #[test]
    fn rng_is_ignored() {
        let m = LinearMotion::new(Vec2::ZERO, 1.0, 2.0);
        assert_eq!(
            m.generate(&mut StdRng::seed_from_u64(1)),
            m.generate(&mut StdRng::seed_from_u64(999))
        );
    }

    #[test]
    #[should_panic(expected = "coincide")]
    fn degenerate_between_rejected() {
        let _ = LinearMotion::between(Vec2::ZERO, Vec2::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_rejected() {
        let _ = LinearMotion::new(Vec2::ZERO, 0.0, 0.0);
    }
}
