//! Random-waypoint mobility inside a rectangular region.

use crate::trace::Trajectory;
use crate::MobilityModel;
use cellgeom::Vec2;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Classic random-waypoint model: pick a uniform destination in the
/// bounding box, travel there in a straight line, repeat `n_legs` times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomWaypoint {
    /// Lower-left corner of the region (km).
    pub min: Vec2,
    /// Upper-right corner of the region (km).
    pub max: Vec2,
    /// Number of legs.
    pub n_legs: usize,
    /// Starting position (clamped into the region).
    pub start: Vec2,
}

impl RandomWaypoint {
    /// Model over `[-half, half]²` starting at the origin.
    pub fn centered(half_extent_km: f64, n_legs: usize) -> Self {
        assert!(half_extent_km > 0.0, "extent must be positive");
        RandomWaypoint {
            min: Vec2::new(-half_extent_km, -half_extent_km),
            max: Vec2::new(half_extent_km, half_extent_km),
            n_legs,
            start: Vec2::ZERO,
        }
    }
}

impl MobilityModel for RandomWaypoint {
    fn generate(&self, rng: &mut dyn RngCore) -> Trajectory {
        assert!(self.n_legs >= 1, "need at least one leg");
        assert!(self.min.x < self.max.x && self.min.y < self.max.y, "empty region");
        let clamp = |p: Vec2| Vec2 {
            x: p.x.clamp(self.min.x, self.max.x),
            y: p.y.clamp(self.min.y, self.max.y),
        };
        let mut waypoints = Vec::with_capacity(self.n_legs + 1);
        waypoints.push(clamp(self.start));
        for _ in 0..self.n_legs {
            let x = rng.gen_range(self.min.x..=self.max.x);
            let y = rng.gen_range(self.min.y..=self.max.y);
            waypoints.push(Vec2::new(x, y));
        }
        Trajectory::new(waypoints)
    }

    fn start(&self) -> Vec2 {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stays_in_region() {
        let m = RandomWaypoint::centered(3.0, 50);
        let t = m.generate(&mut StdRng::seed_from_u64(8));
        assert_eq!(t.len(), 51);
        for w in t.waypoints() {
            assert!(w.x.abs() <= 3.0 && w.y.abs() <= 3.0, "{w:?}");
        }
    }

    #[test]
    fn start_is_clamped() {
        let m = RandomWaypoint { start: Vec2::new(100.0, -100.0), ..RandomWaypoint::centered(2.0, 1) };
        let t = m.generate(&mut StdRng::seed_from_u64(1));
        assert_eq!(t.start(), Vec2::new(2.0, -2.0));
    }

    #[test]
    fn deterministic_under_seed() {
        let m = RandomWaypoint::centered(5.0, 10);
        assert_eq!(
            m.generate(&mut StdRng::seed_from_u64(77)),
            m.generate(&mut StdRng::seed_from_u64(77))
        );
    }

    #[test]
    fn covers_the_region() {
        let m = RandomWaypoint::centered(1.0, 400);
        let t = m.generate(&mut StdRng::seed_from_u64(2));
        let hits_ne = t.waypoints().iter().any(|w| w.x > 0.5 && w.y > 0.5);
        let hits_sw = t.waypoints().iter().any(|w| w.x < -0.5 && w.y < -0.5);
        assert!(hits_ne && hits_sw, "waypoints spread across the region");
    }

    #[test]
    #[should_panic(expected = "at least one leg")]
    fn zero_legs_rejected() {
        let m = RandomWaypoint::centered(1.0, 0);
        let _ = m.generate(&mut StdRng::seed_from_u64(0));
    }
}
