//! Trajectories and arclength resampling.

use cellgeom::Vec2;
use serde::{Deserialize, Serialize};

/// A point on a resampled trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// World position in km.
    pub pos: Vec2,
    /// Cumulative path distance from the trajectory start, in km.
    pub cum_km: f64,
}

/// An ordered polyline of waypoints (the output of a mobility model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    waypoints: Vec<Vec2>,
}

impl Trajectory {
    /// Build from waypoints (at least one required).
    pub fn new(waypoints: Vec<Vec2>) -> Self {
        assert!(!waypoints.is_empty(), "a trajectory needs at least one waypoint");
        assert!(waypoints.iter().all(|w| w.is_finite()), "waypoints must be finite");
        Trajectory { waypoints }
    }

    /// The waypoints.
    pub fn waypoints(&self) -> &[Vec2] {
        &self.waypoints
    }

    /// Number of waypoints.
    pub fn len(&self) -> usize {
        self.waypoints.len()
    }

    /// Never true (construction requires ≥ 1 waypoint).
    pub fn is_empty(&self) -> bool {
        self.waypoints.is_empty()
    }

    /// First waypoint.
    pub fn start(&self) -> Vec2 {
        self.waypoints[0]
    }

    /// Last waypoint.
    pub fn end(&self) -> Vec2 {
        *self.waypoints.last().expect("non-empty")
    }

    /// Total polyline length in km.
    pub fn total_length_km(&self) -> f64 {
        self.waypoints.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// Position at path distance `s` km from the start (clamped to the
    /// trajectory ends).
    pub fn position_at(&self, s: f64) -> Vec2 {
        if s <= 0.0 {
            return self.start();
        }
        let mut remaining = s;
        for w in self.waypoints.windows(2) {
            let seg = w[0].distance(w[1]);
            if remaining <= seg {
                if seg == 0.0 {
                    return w[0];
                }
                return w[0].lerp(w[1], remaining / seg);
            }
            remaining -= seg;
        }
        self.end()
    }

    /// Resample at (approximately) `spacing_km` intervals of arclength.
    ///
    /// Both the start and the exact end point are always included; every
    /// original waypoint is also included so corners are never cut. Points
    /// are strictly increasing in `cum_km`.
    pub fn resample(&self, spacing_km: f64) -> Vec<TracePoint> {
        self.resample_iter(spacing_km).collect()
    }

    /// Streaming version of [`Trajectory::resample`]: yields exactly the
    /// same points, lazily, without materialising the full vector. The
    /// fleet engine keeps one of these per mobile station so a 10k-UE run
    /// never holds 10k resampled trajectories in memory at once.
    pub fn resample_iter(&self, spacing_km: f64) -> ResampleIter<'_> {
        assert!(spacing_km > 0.0, "spacing must be positive");
        ResampleIter {
            waypoints: &self.waypoints,
            spacing_km,
            seg: 0,
            k: 0,
            n_steps: 0,
            seg_len: 0.0,
            cum: 0.0,
            started: false,
        }
    }

    /// Number of points [`Trajectory::resample`] would produce, without
    /// materialising them.
    pub fn resample_len(&self, spacing_km: f64) -> usize {
        self.resample_iter(spacing_km).count()
    }

    /// Pair each resampled point with a timestamp given a constant speed.
    /// Returns `(time_s, point)` tuples. Speed must be positive.
    pub fn with_speed(&self, spacing_km: f64, speed_kmh: f64) -> Vec<(f64, TracePoint)> {
        assert!(speed_kmh > 0.0, "speed must be positive");
        self.resample(spacing_km)
            .into_iter()
            .map(|p| (p.cum_km / speed_kmh * 3600.0, p))
            .collect()
    }
}

/// Lazy arclength resampler over a borrowed [`Trajectory`]; see
/// [`Trajectory::resample_iter`]. Yields the bit-identical point sequence
/// of [`Trajectory::resample`].
#[derive(Debug, Clone)]
pub struct ResampleIter<'a> {
    waypoints: &'a [Vec2],
    spacing_km: f64,
    /// Index of the current segment's start waypoint.
    seg: usize,
    /// Next sample within the current segment (`1..=n_steps`; 0 = the
    /// segment has not been entered yet).
    k: usize,
    n_steps: usize,
    seg_len: f64,
    /// Cumulative arclength at the start of the current segment.
    cum: f64,
    /// Whether the leading start point has been yielded.
    started: bool,
}

impl Iterator for ResampleIter<'_> {
    type Item = TracePoint;

    fn next(&mut self) -> Option<TracePoint> {
        if !self.started {
            self.started = true;
            return Some(TracePoint { pos: self.waypoints[0], cum_km: 0.0 });
        }
        loop {
            if self.k == 0 {
                // Enter the next non-degenerate segment.
                if self.seg + 1 >= self.waypoints.len() {
                    return None;
                }
                let seg_len = self.waypoints[self.seg].distance(self.waypoints[self.seg + 1]);
                if seg_len == 0.0 {
                    self.seg += 1;
                    continue;
                }
                self.seg_len = seg_len;
                self.n_steps = (seg_len / self.spacing_km).ceil() as usize;
                self.k = 1;
            }
            let t = self.k as f64 / self.n_steps as f64;
            let point = TracePoint {
                pos: self.waypoints[self.seg].lerp(self.waypoints[self.seg + 1], t),
                cum_km: self.cum + self.seg_len * t,
            };
            if self.k == self.n_steps {
                self.cum += self.seg_len;
                self.seg += 1;
                self.k = 0;
            } else {
                self.k += 1;
            }
            return Some(point);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Trajectory {
        Trajectory::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(3.0, 0.0),
            Vec2::new(3.0, 4.0),
        ])
    }

    #[test]
    fn lengths() {
        let t = l_shape();
        assert_eq!(t.len(), 3);
        assert!((t.total_length_km() - 7.0).abs() < 1e-12);
        assert_eq!(t.start(), Vec2::ZERO);
        assert_eq!(t.end(), Vec2::new(3.0, 4.0));
        let single = Trajectory::new(vec![Vec2::new(1.0, 1.0)]);
        assert_eq!(single.total_length_km(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one waypoint")]
    fn empty_rejected() {
        let _ = Trajectory::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_rejected() {
        let _ = Trajectory::new(vec![Vec2::new(f64::NAN, 0.0)]);
    }

    #[test]
    fn position_at_arclength() {
        let t = l_shape();
        assert_eq!(t.position_at(-1.0), Vec2::ZERO);
        assert_eq!(t.position_at(0.0), Vec2::ZERO);
        assert_eq!(t.position_at(1.5), Vec2::new(1.5, 0.0));
        assert_eq!(t.position_at(3.0), Vec2::new(3.0, 0.0));
        assert_eq!(t.position_at(5.0), Vec2::new(3.0, 2.0));
        assert_eq!(t.position_at(7.0), Vec2::new(3.0, 4.0));
        assert_eq!(t.position_at(100.0), Vec2::new(3.0, 4.0), "clamps at end");
    }

    #[test]
    fn resample_structure() {
        let t = l_shape();
        let pts = t.resample(0.5);
        // Starts at 0, ends at the full length.
        assert_eq!(pts[0].cum_km, 0.0);
        assert!((pts.last().unwrap().cum_km - 7.0).abs() < 1e-12);
        assert_eq!(pts.last().unwrap().pos, Vec2::new(3.0, 4.0));
        // Strictly increasing arclength, spacing never exceeds requested.
        for w in pts.windows(2) {
            assert!(w[1].cum_km > w[0].cum_km);
            assert!(w[1].cum_km - w[0].cum_km <= 0.5 + 1e-12);
        }
        // The corner waypoint is present.
        assert!(pts.iter().any(|p| p.pos.distance(Vec2::new(3.0, 0.0)) < 1e-12));
        // Positions are consistent with position_at.
        for p in &pts {
            assert!(p.pos.distance(t.position_at(p.cum_km)) < 1e-9);
        }
    }

    #[test]
    fn resample_coarse_spacing_still_keeps_corners() {
        let t = l_shape();
        let pts = t.resample(10.0);
        // start, corner, end.
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1].pos, Vec2::new(3.0, 0.0));
    }

    #[test]
    fn degenerate_segments_skipped() {
        let t = Trajectory::new(vec![
            Vec2::ZERO,
            Vec2::ZERO,
            Vec2::new(1.0, 0.0),
        ]);
        let pts = t.resample(0.25);
        assert!((pts.last().unwrap().cum_km - 1.0).abs() < 1e-12);
        for w in pts.windows(2) {
            assert!(w[1].cum_km > w[0].cum_km, "strictly increasing");
        }
    }

    #[test]
    fn timestamps_from_speed() {
        let t = l_shape();
        let timed = t.with_speed(1.0, 36.0); // 36 km/h = 10 m/s
        let (t_end, last) = timed.last().unwrap();
        assert!((last.cum_km - 7.0).abs() < 1e-12);
        assert!((t_end - 700.0).abs() < 1e-9, "7 km at 10 m/s = 700 s");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_spacing_rejected() {
        let _ = l_shape().resample(0.0);
    }

    #[test]
    fn serde_round_trip() {
        let t = l_shape();
        let back: Trajectory = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn resample_iter_matches_resample_bitwise() {
        let trajectories = [
            l_shape(),
            Trajectory::new(vec![Vec2::new(1.0, 1.0)]),
            Trajectory::new(vec![Vec2::ZERO, Vec2::ZERO, Vec2::new(1.0, 0.0), Vec2::new(1.0, 0.0)]),
            Trajectory::new(vec![Vec2::new(-2.0, 0.3), Vec2::new(0.7, -1.9), Vec2::new(0.7, 2.0)]),
        ];
        for t in &trajectories {
            for spacing in [0.05, 0.3, 1.0, 10.0] {
                let eager = t.resample(spacing);
                let lazy: Vec<TracePoint> = t.resample_iter(spacing).collect();
                assert_eq!(eager.len(), lazy.len());
                for (a, b) in eager.iter().zip(&lazy) {
                    assert_eq!(a.pos.x.to_bits(), b.pos.x.to_bits());
                    assert_eq!(a.pos.y.to_bits(), b.pos.y.to_bits());
                    assert_eq!(a.cum_km.to_bits(), b.cum_km.to_bits());
                }
                assert_eq!(t.resample_len(spacing), eager.len());
            }
        }
    }

    #[test]
    fn resample_iter_is_lazy_and_restartable() {
        let t = l_shape();
        let mut it = t.resample_iter(0.5);
        let first = it.next().unwrap();
        assert_eq!(first.cum_km, 0.0);
        // A fresh iterator starts over.
        let again = t.resample_iter(0.5).next().unwrap();
        assert_eq!(first, again);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn resample_iter_zero_spacing_rejected() {
        let _ = l_shape().resample_iter(0.0);
    }
}
