//! Trajectories and arclength resampling.

use cellgeom::Vec2;
use serde::{Deserialize, Serialize};

/// A point on a resampled trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// World position in km.
    pub pos: Vec2,
    /// Cumulative path distance from the trajectory start, in km.
    pub cum_km: f64,
}

/// An ordered polyline of waypoints (the output of a mobility model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    waypoints: Vec<Vec2>,
}

impl Trajectory {
    /// Build from waypoints (at least one required).
    pub fn new(waypoints: Vec<Vec2>) -> Self {
        assert!(!waypoints.is_empty(), "a trajectory needs at least one waypoint");
        assert!(waypoints.iter().all(|w| w.is_finite()), "waypoints must be finite");
        Trajectory { waypoints }
    }

    /// The waypoints.
    pub fn waypoints(&self) -> &[Vec2] {
        &self.waypoints
    }

    /// Number of waypoints.
    pub fn len(&self) -> usize {
        self.waypoints.len()
    }

    /// Never true (construction requires ≥ 1 waypoint).
    pub fn is_empty(&self) -> bool {
        self.waypoints.is_empty()
    }

    /// First waypoint.
    pub fn start(&self) -> Vec2 {
        self.waypoints[0]
    }

    /// Last waypoint.
    pub fn end(&self) -> Vec2 {
        *self.waypoints.last().expect("non-empty")
    }

    /// Total polyline length in km.
    pub fn total_length_km(&self) -> f64 {
        self.waypoints.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// Position at path distance `s` km from the start (clamped to the
    /// trajectory ends).
    pub fn position_at(&self, s: f64) -> Vec2 {
        if s <= 0.0 {
            return self.start();
        }
        let mut remaining = s;
        for w in self.waypoints.windows(2) {
            let seg = w[0].distance(w[1]);
            if remaining <= seg {
                if seg == 0.0 {
                    return w[0];
                }
                return w[0].lerp(w[1], remaining / seg);
            }
            remaining -= seg;
        }
        self.end()
    }

    /// Resample at (approximately) `spacing_km` intervals of arclength.
    ///
    /// Both the start and the exact end point are always included; every
    /// original waypoint is also included so corners are never cut. Points
    /// are strictly increasing in `cum_km`.
    pub fn resample(&self, spacing_km: f64) -> Vec<TracePoint> {
        assert!(spacing_km > 0.0, "spacing must be positive");
        let mut out = vec![TracePoint { pos: self.start(), cum_km: 0.0 }];
        let mut cum = 0.0;
        for w in self.waypoints.windows(2) {
            let seg = w[0].distance(w[1]);
            if seg == 0.0 {
                continue;
            }
            let n_steps = (seg / spacing_km).ceil() as usize;
            for k in 1..=n_steps {
                let t = k as f64 / n_steps as f64;
                out.push(TracePoint { pos: w[0].lerp(w[1], t), cum_km: cum + seg * t });
            }
            cum += seg;
        }
        out
    }

    /// Pair each resampled point with a timestamp given a constant speed.
    /// Returns `(time_s, point)` tuples. Speed must be positive.
    pub fn with_speed(&self, spacing_km: f64, speed_kmh: f64) -> Vec<(f64, TracePoint)> {
        assert!(speed_kmh > 0.0, "speed must be positive");
        self.resample(spacing_km)
            .into_iter()
            .map(|p| (p.cum_km / speed_kmh * 3600.0, p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Trajectory {
        Trajectory::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(3.0, 0.0),
            Vec2::new(3.0, 4.0),
        ])
    }

    #[test]
    fn lengths() {
        let t = l_shape();
        assert_eq!(t.len(), 3);
        assert!((t.total_length_km() - 7.0).abs() < 1e-12);
        assert_eq!(t.start(), Vec2::ZERO);
        assert_eq!(t.end(), Vec2::new(3.0, 4.0));
        let single = Trajectory::new(vec![Vec2::new(1.0, 1.0)]);
        assert_eq!(single.total_length_km(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one waypoint")]
    fn empty_rejected() {
        let _ = Trajectory::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_rejected() {
        let _ = Trajectory::new(vec![Vec2::new(f64::NAN, 0.0)]);
    }

    #[test]
    fn position_at_arclength() {
        let t = l_shape();
        assert_eq!(t.position_at(-1.0), Vec2::ZERO);
        assert_eq!(t.position_at(0.0), Vec2::ZERO);
        assert_eq!(t.position_at(1.5), Vec2::new(1.5, 0.0));
        assert_eq!(t.position_at(3.0), Vec2::new(3.0, 0.0));
        assert_eq!(t.position_at(5.0), Vec2::new(3.0, 2.0));
        assert_eq!(t.position_at(7.0), Vec2::new(3.0, 4.0));
        assert_eq!(t.position_at(100.0), Vec2::new(3.0, 4.0), "clamps at end");
    }

    #[test]
    fn resample_structure() {
        let t = l_shape();
        let pts = t.resample(0.5);
        // Starts at 0, ends at the full length.
        assert_eq!(pts[0].cum_km, 0.0);
        assert!((pts.last().unwrap().cum_km - 7.0).abs() < 1e-12);
        assert_eq!(pts.last().unwrap().pos, Vec2::new(3.0, 4.0));
        // Strictly increasing arclength, spacing never exceeds requested.
        for w in pts.windows(2) {
            assert!(w[1].cum_km > w[0].cum_km);
            assert!(w[1].cum_km - w[0].cum_km <= 0.5 + 1e-12);
        }
        // The corner waypoint is present.
        assert!(pts.iter().any(|p| p.pos.distance(Vec2::new(3.0, 0.0)) < 1e-12));
        // Positions are consistent with position_at.
        for p in &pts {
            assert!(p.pos.distance(t.position_at(p.cum_km)) < 1e-9);
        }
    }

    #[test]
    fn resample_coarse_spacing_still_keeps_corners() {
        let t = l_shape();
        let pts = t.resample(10.0);
        // start, corner, end.
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1].pos, Vec2::new(3.0, 0.0));
    }

    #[test]
    fn degenerate_segments_skipped() {
        let t = Trajectory::new(vec![
            Vec2::ZERO,
            Vec2::ZERO,
            Vec2::new(1.0, 0.0),
        ]);
        let pts = t.resample(0.25);
        assert!((pts.last().unwrap().cum_km - 1.0).abs() < 1e-12);
        for w in pts.windows(2) {
            assert!(w[1].cum_km > w[0].cum_km, "strictly increasing");
        }
    }

    #[test]
    fn timestamps_from_speed() {
        let t = l_shape();
        let timed = t.with_speed(1.0, 36.0); // 36 km/h = 10 m/s
        let (t_end, last) = timed.last().unwrap();
        assert!((last.cum_km - 7.0).abs() < 1e-12);
        assert!((t_end - 700.0).abs() < 1e-9, "7 km at 10 m/s = 700 s");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_spacing_rejected() {
        let _ = l_shape().resample(0.0);
    }

    #[test]
    fn serde_round_trip() {
        let t = l_shape();
        let back: Trajectory = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
        assert_eq!(t, back);
    }
}
