//! Standard-normal sampling via Box–Muller (keeps the dependency set at
//! the allowed crates; `rand_distr` is not among them).

use rand::Rng;

/// Draw one standard normal variate.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1], avoids ln(0)
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draw from `N(mean, std²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.03, "std {}", var.sqrt());
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..16).map(|_| standard_normal(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..16).map(|_| standard_normal(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
