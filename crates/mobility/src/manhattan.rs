//! Manhattan-grid mobility: axis-aligned movement between intersections.

use crate::trace::Trajectory;
use crate::MobilityModel;
use cellgeom::Vec2;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Movement constrained to a street grid with spacing `block_km`: at every
/// intersection the mobile continues straight, turns left or turns right
/// with the given probabilities (a standard urban model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ManhattanGrid {
    /// Street spacing in km.
    pub block_km: f64,
    /// Number of blocks to traverse.
    pub n_blocks: usize,
    /// Probability of turning (split evenly left/right); straight
    /// otherwise.
    pub turn_prob: f64,
    /// Starting intersection.
    pub start: Vec2,
}

impl ManhattanGrid {
    /// A 250 m downtown grid with 25% turn probability.
    pub fn downtown(n_blocks: usize) -> Self {
        ManhattanGrid { block_km: 0.25, n_blocks, turn_prob: 0.25, start: Vec2::ZERO }
    }
}

impl MobilityModel for ManhattanGrid {
    fn generate(&self, rng: &mut dyn RngCore) -> Trajectory {
        assert!(self.n_blocks >= 1, "need at least one block");
        assert!(self.block_km > 0.0, "block size must be positive");
        assert!((0.0..=1.0).contains(&self.turn_prob), "turn probability in [0, 1]");
        // Heading index: 0=E, 1=N, 2=W, 3=S.
        let mut heading: i32 = rng.gen_range(0..4);
        let dirs = [
            Vec2::new(1.0, 0.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(-1.0, 0.0),
            Vec2::new(0.0, -1.0),
        ];
        let mut pos = self.start;
        let mut waypoints = vec![pos];
        for _ in 0..self.n_blocks {
            if rng.gen::<f64>() < self.turn_prob {
                heading += if rng.gen::<bool>() { 1 } else { -1 };
            }
            let dir = dirs[heading.rem_euclid(4) as usize];
            pos += dir * self.block_km;
            waypoints.push(pos);
        }
        Trajectory::new(waypoints)
    }

    fn start(&self) -> Vec2 {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moves_exactly_one_block_per_step() {
        let m = ManhattanGrid::downtown(40);
        let t = m.generate(&mut StdRng::seed_from_u64(6));
        assert_eq!(t.len(), 41);
        for w in t.waypoints().windows(2) {
            let step = w[1] - w[0];
            assert!((step.norm() - 0.25).abs() < 1e-12, "block-length step");
            assert!(
                step.x.abs() < 1e-12 || step.y.abs() < 1e-12,
                "axis-aligned step {step:?}"
            );
        }
    }

    #[test]
    fn zero_turn_probability_goes_straight() {
        let m = ManhattanGrid { turn_prob: 0.0, ..ManhattanGrid::downtown(10) };
        let t = m.generate(&mut StdRng::seed_from_u64(5));
        let first = t.waypoints()[1] - t.waypoints()[0];
        for w in t.waypoints().windows(2) {
            let step = w[1] - w[0];
            assert!((step - first).norm() < 1e-12, "constant heading");
        }
        assert!((t.total_length_km() - 2.5).abs() < 1e-12);
        assert!((t.end().distance(t.start()) - 2.5).abs() < 1e-12, "straight line");
    }

    #[test]
    fn always_turning_never_straight() {
        let m = ManhattanGrid { turn_prob: 1.0, ..ManhattanGrid::downtown(30) };
        let t = m.generate(&mut StdRng::seed_from_u64(10));
        for w in t.waypoints().windows(3) {
            let a = w[1] - w[0];
            let b = w[2] - w[1];
            assert!(a.dot(b).abs() < 1e-12, "every consecutive pair turns 90°");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let m = ManhattanGrid::downtown(20);
        assert_eq!(
            m.generate(&mut StdRng::seed_from_u64(123)),
            m.generate(&mut StdRng::seed_from_u64(123))
        );
    }

    #[test]
    #[should_panic(expected = "block")]
    fn zero_blocks_rejected() {
        let m = ManhattanGrid::downtown(0);
        let _ = m.generate(&mut StdRng::seed_from_u64(0));
    }
}
