//! The paper's Monte-Carlo random-walk model (§3, eqs. (1)–(2)).

use crate::gauss::normal;
use crate::trace::Trajectory;
use crate::MobilityModel;
use cellgeom::Vec2;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Distribution of the per-walk heading angle θ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AngleDistribution {
    /// Uniform on `[0, 2π)` — the paper's "general distribution".
    Uniform,
    /// Gaussian around a mean heading (radians) — the paper's alternative;
    /// produces drifting walks that actually leave the starting cell.
    Gaussian {
        /// Mean heading in radians.
        mean_rad: f64,
        /// Heading standard deviation in radians.
        std_rad: f64,
    },
}

/// The paper's random-walk model: `nwalk` straight segments, each with a
/// random heading and a Gaussian length (mean 0.6 km in Table 2).
///
/// `Δxₙ = dₙ cos θₙ`, `Δyₙ = dₙ sin θₙ`; positions accumulate per eq. (2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomWalk {
    /// Number of walks (`nwalk`; paper uses 5 and 10).
    pub n_walks: usize,
    /// Mean segment length in km (paper Table 2: 0.6 km).
    pub step_mean_km: f64,
    /// Segment length standard deviation in km.
    pub step_std_km: f64,
    /// Heading distribution.
    pub angle: AngleDistribution,
    /// Starting position (the paper starts at the origin cell's BS).
    pub start: Vec2,
}

impl RandomWalk {
    /// The paper's configuration: Gaussian step length with mean 0.6 km,
    /// uniform headings, starting at the origin.
    pub fn paper_default(n_walks: usize) -> Self {
        RandomWalk {
            n_walks,
            step_mean_km: 0.6,
            step_std_km: 0.2,
            angle: AngleDistribution::Uniform,
            start: Vec2::ZERO,
        }
    }

    /// Builder-style start override.
    #[must_use]
    pub fn with_start(mut self, start: Vec2) -> Self {
        self.start = start;
        self
    }

    /// Builder-style heading-distribution override.
    #[must_use]
    pub fn with_angle(mut self, angle: AngleDistribution) -> Self {
        self.angle = angle;
        self
    }

    fn sample_angle<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self.angle {
            AngleDistribution::Uniform => rng.gen::<f64>() * std::f64::consts::TAU,
            AngleDistribution::Gaussian { mean_rad, std_rad } => {
                normal(rng, mean_rad, std_rad)
            }
        }
    }

    fn sample_step<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Gaussian length, folded to stay non-negative (a zero-length walk
        // is legal but a negative one is not).
        normal(rng, self.step_mean_km, self.step_std_km).abs()
    }
}

impl MobilityModel for RandomWalk {
    fn generate(&self, rng: &mut dyn RngCore) -> Trajectory {
        assert!(self.n_walks >= 1, "need at least one walk");
        assert!(self.step_mean_km > 0.0, "mean step must be positive");
        assert!(self.step_std_km >= 0.0, "step std must be non-negative");
        let mut waypoints = Vec::with_capacity(self.n_walks + 1);
        let mut pos = self.start;
        waypoints.push(pos);
        for _ in 0..self.n_walks {
            let theta = self.sample_angle(rng);
            let d = self.sample_step(rng);
            pos += Vec2::from_polar(d, theta); // eq. (1)–(2)
            waypoints.push(pos);
        }
        Trajectory::new(waypoints)
    }

    fn start(&self) -> Vec2 {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn walk_shape() {
        let rw = RandomWalk::paper_default(5);
        let mut rng = StdRng::seed_from_u64(100);
        let t = rw.generate(&mut rng);
        assert_eq!(t.len(), 6, "nwalk + 1 waypoints");
        assert_eq!(t.start(), Vec2::ZERO);
    }

    #[test]
    fn deterministic_under_seed() {
        let rw = RandomWalk::paper_default(10);
        let a = rw.generate(&mut StdRng::seed_from_u64(200));
        let b = rw.generate(&mut StdRng::seed_from_u64(200));
        let c = rw.generate(&mut StdRng::seed_from_u64(201));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn step_length_statistics() {
        let rw = RandomWalk::paper_default(1);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean_step: f64 = (0..n)
            .map(|_| {
                let t = rw.generate(&mut rng);
                t.total_length_km()
            })
            .sum::<f64>()
            / n as f64;
        // Folded Gaussian(0.6, 0.2) has mean ≈ 0.6 (folding is negligible
        // three sigmas from zero).
        assert!((mean_step - 0.6).abs() < 0.01, "mean step {mean_step}");
    }

    #[test]
    fn uniform_headings_cover_the_circle() {
        let rw = RandomWalk::paper_default(1);
        let mut rng = StdRng::seed_from_u64(3);
        let mut quadrants = [0usize; 4];
        for _ in 0..4000 {
            let t = rw.generate(&mut rng);
            let step = t.end() - t.start();
            let q = match (step.x >= 0.0, step.y >= 0.0) {
                (true, true) => 0,
                (false, true) => 1,
                (false, false) => 2,
                (true, false) => 3,
            };
            quadrants[q] += 1;
        }
        for (q, count) in quadrants.iter().enumerate() {
            assert!(
                (800..1200).contains(count),
                "quadrant {q} has {count} of 4000 samples"
            );
        }
    }

    #[test]
    fn gaussian_heading_drifts() {
        // Mean heading east with small spread: the walk ends well east.
        let rw = RandomWalk::paper_default(10)
            .with_angle(AngleDistribution::Gaussian { mean_rad: 0.0, std_rad: 0.2 });
        let mut rng = StdRng::seed_from_u64(9);
        let mut east = 0;
        for _ in 0..100 {
            let t = rw.generate(&mut rng);
            if t.end().x > 2.0 {
                east += 1;
            }
        }
        assert!(east > 90, "drifting walks end east: {east}/100");
    }

    #[test]
    fn custom_start() {
        let rw = RandomWalk::paper_default(3).with_start(Vec2::new(5.0, -2.0));
        assert_eq!(rw.start(), Vec2::new(5.0, -2.0));
        let t = rw.generate(&mut StdRng::seed_from_u64(1));
        assert_eq!(t.start(), Vec2::new(5.0, -2.0));
    }

    #[test]
    fn steps_are_never_negative() {
        let rw = RandomWalk {
            n_walks: 200,
            step_mean_km: 0.1,
            step_std_km: 0.5, // heavy folding
            angle: AngleDistribution::Uniform,
            start: Vec2::ZERO,
        };
        let t = rw.generate(&mut StdRng::seed_from_u64(4));
        for w in t.waypoints().windows(2) {
            assert!(w[0].distance(w[1]).is_finite());
        }
        assert!(t.total_length_km() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one walk")]
    fn zero_walks_rejected() {
        let rw = RandomWalk { n_walks: 0, ..RandomWalk::paper_default(1) };
        let _ = rw.generate(&mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn serde_round_trip() {
        let rw = RandomWalk::paper_default(5);
        let back: RandomWalk = serde_json::from_str(&serde_json::to_string(&rw).unwrap()).unwrap();
        assert_eq!(rw, back);
    }
}
