//! Gauss–Markov mobility: temporally correlated heading and speed.
//!
//! The classic model between the memoryless random walk (`α = 0`) and
//! straight-line motion (`α = 1`): at every step the heading and step
//! length are drawn as an AR(1) blend of their previous value, their
//! long-term mean, and Gaussian innovation:
//!
//! ```text
//! θ_{k+1} = α θ_k + (1 − α) θ̄ + √(1 − α²) · σ_θ · w
//! ```
//!
//! Used by the extension experiments for smoother, more vehicular
//! trajectories than the paper's uniform-heading walk.

use crate::gauss::normal;
use crate::trace::Trajectory;
use crate::MobilityModel;
use cellgeom::Vec2;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Gauss–Markov mobility parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussMarkov {
    /// Number of steps.
    pub n_steps: usize,
    /// Memory factor `α ∈ [0, 1]`: 0 = memoryless, 1 = frozen.
    pub alpha: f64,
    /// Long-term mean heading, radians.
    pub mean_heading_rad: f64,
    /// Heading innovation standard deviation, radians.
    pub heading_std_rad: f64,
    /// Long-term mean step length, km.
    pub mean_step_km: f64,
    /// Step-length innovation standard deviation, km.
    pub step_std_km: f64,
    /// Starting position.
    pub start: Vec2,
}

impl GaussMarkov {
    /// A vehicular default: strong memory, eastbound drift, 0.6 km steps.
    pub fn vehicular(n_steps: usize) -> Self {
        GaussMarkov {
            n_steps,
            alpha: 0.85,
            mean_heading_rad: 0.0,
            heading_std_rad: 0.6,
            mean_step_km: 0.6,
            step_std_km: 0.15,
            start: Vec2::ZERO,
        }
    }

    /// Builder-style start override.
    #[must_use]
    pub fn with_start(mut self, start: Vec2) -> Self {
        self.start = start;
        self
    }
}

impl MobilityModel for GaussMarkov {
    fn generate(&self, rng: &mut dyn RngCore) -> Trajectory {
        assert!(self.n_steps >= 1, "need at least one step");
        assert!((0.0..=1.0).contains(&self.alpha), "alpha must be in [0, 1]");
        assert!(self.mean_step_km > 0.0, "mean step must be positive");
        let blend = (1.0 - self.alpha * self.alpha).sqrt();

        let mut heading = self.mean_heading_rad;
        let mut step = self.mean_step_km;
        let mut pos = self.start;
        let mut waypoints = Vec::with_capacity(self.n_steps + 1);
        waypoints.push(pos);
        for _ in 0..self.n_steps {
            heading = self.alpha * heading
                + (1.0 - self.alpha) * self.mean_heading_rad
                + blend * normal(rng, 0.0, self.heading_std_rad);
            step = (self.alpha * step
                + (1.0 - self.alpha) * self.mean_step_km
                + blend * normal(rng, 0.0, self.step_std_km))
            .abs();
            pos += Vec2::from_polar(step, heading);
            waypoints.push(pos);
        }
        Trajectory::new(waypoints)
    }

    fn start(&self) -> Vec2 {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_and_determinism() {
        let m = GaussMarkov::vehicular(12);
        let a = m.generate(&mut StdRng::seed_from_u64(3));
        let b = m.generate(&mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        assert_eq!(a.len(), 13);
        assert_eq!(a.start(), Vec2::ZERO);
    }

    #[test]
    fn high_memory_walks_are_straighter() {
        // Mean squared turn angle shrinks as alpha grows.
        let turn_energy = |alpha: f64| -> f64 {
            let m = GaussMarkov { alpha, ..GaussMarkov::vehicular(60) };
            let mut total = 0.0;
            let mut count = 0usize;
            for seed in 0..30 {
                let t = m.generate(&mut StdRng::seed_from_u64(seed));
                let w = t.waypoints();
                for k in 1..w.len() - 1 {
                    let a = (w[k] - w[k - 1]).angle();
                    let b = (w[k + 1] - w[k]).angle();
                    let mut d = b - a;
                    while d > std::f64::consts::PI {
                        d -= std::f64::consts::TAU;
                    }
                    while d < -std::f64::consts::PI {
                        d += std::f64::consts::TAU;
                    }
                    total += d * d;
                    count += 1;
                }
            }
            total / count as f64
        };
        let wobbly = turn_energy(0.1);
        let smooth = turn_energy(0.95);
        assert!(
            smooth < wobbly / 2.0,
            "alpha 0.95 turn energy {smooth} vs alpha 0.1 {wobbly}"
        );
    }

    #[test]
    fn eastbound_drift() {
        // Mean heading 0 with strong memory: the walk ends east of start.
        let m = GaussMarkov::vehicular(20);
        let mut east = 0;
        for seed in 0..50 {
            let t = m.generate(&mut StdRng::seed_from_u64(seed));
            if t.end().x > t.start().x {
                east += 1;
            }
        }
        assert!(east >= 45, "{east}/50 walks drift east");
    }

    #[test]
    fn alpha_one_freezes_the_course() {
        // alpha = 1: no innovation leaks in, every step repeats the mean
        // heading/step exactly.
        let m = GaussMarkov {
            alpha: 1.0,
            mean_heading_rad: std::f64::consts::FRAC_PI_2,
            ..GaussMarkov::vehicular(5)
        };
        let t = m.generate(&mut StdRng::seed_from_u64(9));
        for w in t.waypoints().windows(2) {
            let step = w[1] - w[0];
            assert!((step.angle() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
            assert!((step.norm() - 0.6).abs() < 1e-12);
        }
    }

    #[test]
    fn custom_start() {
        let m = GaussMarkov::vehicular(3).with_start(Vec2::new(1.0, -1.0));
        assert_eq!(m.start(), Vec2::new(1.0, -1.0));
        let t = m.generate(&mut StdRng::seed_from_u64(0));
        assert_eq!(t.start(), Vec2::new(1.0, -1.0));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let m = GaussMarkov { alpha: 1.5, ..GaussMarkov::vehicular(3) };
        let _ = m.generate(&mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn serde_round_trip() {
        let m = GaussMarkov::vehicular(7);
        let back: GaussMarkov = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        assert_eq!(m, back);
    }
}
