//! Decibel arithmetic.
//!
//! Conventions: *power* ratios use `10 log₁₀`, *field/amplitude* ratios use
//! `20 log₁₀`. Absolute powers are carried in dBm (dB relative to 1 mW).

/// Convert a power ratio to decibels (`10 log₁₀`).
#[inline]
pub fn power_ratio_to_db(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// Convert decibels to a power ratio.
#[inline]
pub fn db_to_power_ratio(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Convert a power ratio to decibels with the ratio floored at `1e-12`
/// (−120 dB), keeping deep fades finite. This is the shared clamp the
/// fading models apply to instantaneous envelope powers, where an exact
/// zero is a measure-zero event of the underlying Gaussians but would
/// otherwise produce −∞ dB.
#[inline]
pub fn power_ratio_to_db_floored(ratio: f64) -> f64 {
    10.0 * ratio.max(1e-12).log10()
}

/// Convert a field (amplitude) ratio to decibels (`20 log₁₀`).
#[inline]
pub fn field_ratio_to_db(ratio: f64) -> f64 {
    20.0 * ratio.log10()
}

/// Convert watts to dBm.
#[inline]
pub fn watt_to_dbm(watts: f64) -> f64 {
    assert!(watts > 0.0, "power must be positive, got {watts} W");
    10.0 * (watts * 1000.0).log10()
}

/// Convert dBm to watts.
#[inline]
pub fn dbm_to_watt(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0) / 1000.0
}

/// Sum several powers given in dBm (addition happens in the linear
/// domain). Returns −∞ dBm for an empty slice.
pub fn combine_powers_dbm(powers: &[f64]) -> f64 {
    if powers.is_empty() {
        return f64::NEG_INFINITY;
    }
    let linear_mw: f64 = powers.iter().map(|&p| 10f64.powf(p / 10.0)).sum();
    10.0 * linear_mw.log10()
}

/// Arithmetic mean of dB values (used by the paper's 10-run averaging,
/// which averages the *reported* dB figures, not linear powers).
pub fn mean_db(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of an empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn power_ratio_round_trip() {
        for db in [-30.0, -3.0, 0.0, 3.0, 10.0, 20.0] {
            assert!((power_ratio_to_db(db_to_power_ratio(db)) - db).abs() < EPS);
        }
        assert!((power_ratio_to_db(2.0) - 3.0103).abs() < 1e-3);
        assert!((db_to_power_ratio(10.0) - 10.0).abs() < EPS);
    }

    #[test]
    fn field_ratio_doubles_the_decibels() {
        // A 10x field ratio is a 100x power ratio: 20 dB either way.
        assert!((field_ratio_to_db(10.0) - 20.0).abs() < EPS);
        assert!((field_ratio_to_db(2.0) - 2.0 * power_ratio_to_db(2.0)).abs() < EPS);
    }

    #[test]
    fn floored_ratio_conversion() {
        // Above the floor it is the plain conversion...
        for ratio in [1e-6, 0.5, 1.0, 2.0, 100.0] {
            assert_eq!(
                power_ratio_to_db_floored(ratio).to_bits(),
                power_ratio_to_db(ratio).to_bits()
            );
        }
        // ...below (and at exactly zero) it clamps to −120 dB instead of −∞.
        assert_eq!(power_ratio_to_db_floored(0.0), -120.0);
        assert_eq!(power_ratio_to_db_floored(1e-15), -120.0);
        assert_eq!(power_ratio_to_db_floored(1e-12), -120.0);
    }

    #[test]
    fn watt_dbm_conversions() {
        // The paper's 10 W / 20 W transmitters.
        assert!((watt_to_dbm(10.0) - 40.0).abs() < EPS);
        assert!((watt_to_dbm(20.0) - 43.0103).abs() < 1e-3);
        assert!((watt_to_dbm(0.001) - 0.0).abs() < EPS, "1 mW = 0 dBm");
        for w in [0.001, 0.5, 10.0, 20.0] {
            assert!((dbm_to_watt(watt_to_dbm(w)) - w).abs() < EPS * w.max(1.0));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_watts_rejected() {
        let _ = watt_to_dbm(-1.0);
    }

    #[test]
    fn combining_powers() {
        // Two equal powers add 3.01 dB.
        let sum = combine_powers_dbm(&[-90.0, -90.0]);
        assert!((sum - (-90.0 + 3.0103)).abs() < 1e-3);
        // A dominant signal barely moves.
        let sum = combine_powers_dbm(&[-60.0, -100.0]);
        assert!((sum - -60.0).abs() < 0.01);
        assert_eq!(combine_powers_dbm(&[]), f64::NEG_INFINITY);
        let single = combine_powers_dbm(&[-75.5]);
        assert!((single - -75.5).abs() < EPS);
    }

    #[test]
    fn mean_of_db_values() {
        assert!((mean_db(&[-90.0, -100.0]) - -95.0).abs() < EPS);
        assert!((mean_db(&[1.0]) - 1.0).abs() < EPS);
    }
}
