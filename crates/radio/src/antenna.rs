//! Tilted dipole antenna model (paper Fig. 1 and eq. (4)).
//!
//! The paper mounts a vertical dipole at height `H` with the main beam
//! tilted *down* by `φ` so the cell area is covered better than with a
//! horizontal (θ = 90°) beam. The vertical radiation pattern is
//! `D(θ) = sin(θ − φ)` where `θ` is measured from the dipole axis.
//!
//! For a mobile at horizontal distance `d` and height `h`, the depression
//! angle below the horizon is `α = atan((H − h) / d)`, so `θ = 90° + α`
//! and the pattern factor becomes `|cos(α − φ)|` — maximal when the mobile
//! sits exactly on the tilted beam axis, and with a deep null directly
//! under the tower (`α → 90°`).

use serde::{Deserialize, Serialize};

/// Ideal λ/2-style dipole with electrical downtilt, mounted at a fixed
/// height. Paper values: tilt 3°, BS height 40 m, MS height 1.5 m.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DipoleAntenna {
    /// Downtilt angle φ in degrees.
    pub tilt_deg: f64,
    /// Antenna (BS) height above ground in metres.
    pub height_m: f64,
    /// Peak gain over isotropic in dBi (1.5x power → ≈ 1.76 dBi for the
    /// ideal dipole the paper cites with G = 1.5).
    pub peak_gain_dbi: f64,
}

impl DipoleAntenna {
    /// The paper's transmission antenna: 3° tilt, 40 m mast, G = 1.5.
    pub fn paper_default() -> Self {
        DipoleAntenna { tilt_deg: 3.0, height_m: 40.0, peak_gain_dbi: 10.0 * 1.5f64.log10() }
    }

    /// Construct with explicit parameters.
    pub fn new(tilt_deg: f64, height_m: f64, peak_gain_dbi: f64) -> Self {
        assert!(height_m > 0.0, "antenna height must be positive");
        assert!((0.0..90.0).contains(&tilt_deg), "tilt must be in [0°, 90°)");
        DipoleAntenna { tilt_deg, height_m, peak_gain_dbi }
    }

    /// Depression angle α (radians) towards a mobile at `horizontal_km`
    /// and `ms_height_m`.
    pub fn depression_angle(&self, horizontal_km: f64, ms_height_m: f64) -> f64 {
        let dz = self.height_m - ms_height_m;
        (dz / 1000.0).atan2(horizontal_km.max(0.0))
    }

    /// Linear field pattern factor `|sin(θ − φ)| = |cos(α − φ)| ∈ [0, 1]`.
    pub fn pattern_factor(&self, horizontal_km: f64, ms_height_m: f64) -> f64 {
        let alpha = self.depression_angle(horizontal_km, ms_height_m);
        let phi = self.tilt_deg.to_radians();
        (alpha - phi).cos().abs()
    }

    /// Total antenna gain towards the mobile, in dB: peak gain plus the
    /// pattern roll-off (`20 log₁₀` of the field factor). Falls to −∞
    /// exactly on the pattern null; callers clamp via [`Self::gain_db_clamped`]
    /// when a finite floor is required.
    pub fn gain_db(&self, horizontal_km: f64, ms_height_m: f64) -> f64 {
        self.peak_gain_dbi + 20.0 * self.pattern_factor(horizontal_km, ms_height_m).log10()
    }

    /// [`Self::gain_db`] with a floor (default −40 dB below peak is a
    /// common front-to-back figure for sector antennas).
    pub fn gain_db_clamped(&self, horizontal_km: f64, ms_height_m: f64, floor_db: f64) -> f64 {
        self.gain_db(horizontal_km, ms_height_m).max(self.peak_gain_dbi + floor_db)
    }

    /// Slant range in km between the antenna and the mobile.
    pub fn slant_range_km(&self, horizontal_km: f64, ms_height_m: f64) -> f64 {
        let dz_km = (self.height_m - ms_height_m) / 1000.0;
        (horizontal_km * horizontal_km + dz_km * dz_km).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS_H: f64 = 1.5;

    #[test]
    fn paper_default_values() {
        let a = DipoleAntenna::paper_default();
        assert_eq!(a.tilt_deg, 3.0);
        assert_eq!(a.height_m, 40.0);
        assert!((a.peak_gain_dbi - 1.7609).abs() < 1e-3, "G = 1.5 → 1.76 dBi");
    }

    #[test]
    fn depression_angle_geometry() {
        let a = DipoleAntenna::paper_default();
        // At 38.5 m height difference and 38.5 m horizontal: 45°.
        let alpha = a.depression_angle(0.0385, MS_H);
        assert!((alpha.to_degrees() - 45.0).abs() < 1e-9);
        // Far away: angle approaches zero.
        assert!(a.depression_angle(50.0, MS_H).to_degrees() < 0.05);
        // Directly underneath: 90°.
        assert!((a.depression_angle(0.0, MS_H).to_degrees() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn beam_peak_at_tilt_angle() {
        let a = DipoleAntenna::paper_default();
        // The mobile on the tilted beam axis: α = 3° ⇒ d = Δh / tan 3°.
        let d_peak = (40.0 - MS_H) / 1000.0 / 3.0f64.to_radians().tan();
        let peak = a.pattern_factor(d_peak, MS_H);
        assert!((peak - 1.0).abs() < 1e-9, "unit factor on beam axis");
        // Slightly nearer or farther is below peak.
        assert!(a.pattern_factor(d_peak * 0.5, MS_H) < peak);
        assert!(a.pattern_factor(d_peak * 2.0, MS_H) <= peak);
    }

    #[test]
    fn null_under_the_tower() {
        let a = DipoleAntenna::paper_default();
        // α = 90°: factor = |cos(90° − 3°)| = sin 3° ≈ 0.052.
        let f = a.pattern_factor(0.0, MS_H);
        assert!((f - 3.0f64.to_radians().sin()).abs() < 1e-9);
        assert!(a.gain_db(0.0, MS_H) < -20.0, "deep null in dB");
    }

    #[test]
    fn gain_roll_off_monotone_beyond_peak() {
        let a = DipoleAntenna::paper_default();
        // Past the beam peak the factor decreases towards cos φ as d → ∞.
        let inf_factor = 3.0f64.to_radians().cos();
        let f7 = a.pattern_factor(7.0, MS_H);
        assert!(f7 > 0.99 && f7 < 1.0);
        assert!((a.pattern_factor(500.0, MS_H) - inf_factor).abs() < 1e-4);
    }

    #[test]
    fn clamped_gain_floor() {
        let a = DipoleAntenna::paper_default();
        let g = a.gain_db_clamped(0.0, a.height_m, -40.0); // exactly at mast height: α=0... pick null case instead
        assert!(g >= a.peak_gain_dbi - 40.0);
        // Construct an exact null: α − φ = 90° ⇒ α = 93°, impossible with
        // positive heights, but a 90° tilt-3° case still bounds at floor.
        let zero_tilt = DipoleAntenna::new(0.0, 40.0, 0.0);
        let under = zero_tilt.gain_db_clamped(0.0, 1.5, -40.0);
        assert_eq!(under, -40.0, "true null clamps to the floor");
    }

    #[test]
    fn slant_range() {
        let a = DipoleAntenna::paper_default();
        // 3-4-5 triangle: 30 m horizontal, 38.5 m vertical won't be round;
        // use a synthetic antenna for exactness.
        let s = DipoleAntenna::new(3.0, 31.5, 0.0); // Δh = 30 m with MS 1.5 m
        let r = s.slant_range_km(0.04, 1.5); // 40 m horizontal
        assert!((r - 0.05).abs() < 1e-12, "3-4-5 triangle scaled");
        assert!((a.slant_range_km(10.0, 1.5) - 10.0).abs() < 1e-4, "far range ≈ horizontal");
    }

    #[test]
    #[should_panic(expected = "height")]
    fn invalid_height_rejected() {
        let _ = DipoleAntenna::new(3.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "tilt")]
    fn invalid_tilt_rejected() {
        let _ = DipoleAntenna::new(95.0, 40.0, 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let a = DipoleAntenna::paper_default();
        let back: DipoleAntenna =
            serde_json::from_str(&serde_json::to_string(&a).unwrap()).unwrap();
        assert_eq!(a, back);
    }
}
