//! The per-base-station link budget: TX power + antenna pattern − path loss.

use crate::antenna::DipoleAntenna;
use crate::db::watt_to_dbm;
use crate::pathloss::PathLoss;
use cellgeom::Vec2;
use serde::{Deserialize, Serialize};

/// Radio parameters of one base station.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BsRadio {
    /// Transmit power in watts (paper Table 2: 10 W or 20 W).
    pub tx_power_w: f64,
    /// The BS antenna.
    pub antenna: DipoleAntenna,
    /// Propagation model.
    pub path_loss: PathLoss,
    /// Mobile antenna height in metres (paper Table 2: 1.5 m).
    pub ms_height_m: f64,
    /// Pattern floor in dB below peak gain (keeps the under-the-mast null
    /// finite).
    pub pattern_floor_db: f64,
}

impl BsRadio {
    /// The paper's configuration: 10 W, 3° tilt, 40 m mast, 1.5 m mobile,
    /// calibrated log-distance propagation.
    pub fn paper_default() -> Self {
        BsRadio {
            tx_power_w: 10.0,
            antenna: DipoleAntenna::paper_default(),
            path_loss: PathLoss::paper_calibrated(),
            ms_height_m: 1.5,
            pattern_floor_db: -40.0,
        }
    }

    /// Same as [`BsRadio::paper_default`] but with the literal eq.-(4)
    /// field model (n = 1.1) instead of the calibrated propagation.
    pub fn paper_field_model() -> Self {
        BsRadio { path_loss: PathLoss::paper_field(), ..Self::paper_default() }
    }

    /// Transmit power in dBm.
    pub fn tx_power_dbm(&self) -> f64 {
        watt_to_dbm(self.tx_power_w)
    }

    /// The position-dependent part of the budget, with the TX power (the
    /// only position-independent term) already converted to dBm. Shared
    /// by the scalar and batched entry points so both compute the exact
    /// same floating-point expression.
    #[inline]
    fn budget_dbm(&self, tx_dbm: f64, bs_pos: Vec2, ms_pos: Vec2) -> f64 {
        let horizontal_km = bs_pos.distance(ms_pos);
        let gain = self
            .antenna
            .gain_db_clamped(horizontal_km, self.ms_height_m, self.pattern_floor_db);
        let slant = self.antenna.slant_range_km(horizontal_km, self.ms_height_m);
        tx_dbm + gain - self.path_loss.loss_db(slant)
    }

    /// Mean received power in dBm at `ms_pos` from a BS at `bs_pos`
    /// (positions in km), before fading and measurement noise.
    pub fn received_power_dbm(&self, bs_pos: Vec2, ms_pos: Vec2) -> f64 {
        self.budget_dbm(self.tx_power_dbm(), bs_pos, ms_pos)
    }

    /// Mean received power for one BS over a batch of MS positions:
    /// `out[i]` receives the power at `ms_positions[i]`.
    ///
    /// Bit-identical to calling [`BsRadio::received_power_dbm`] once per
    /// position; the batch form hoists the dBm conversion of the TX power
    /// (a `log10`) out of the loop, so fleet-scale callers pay one
    /// conversion per (BS, UE-chunk) instead of one per (BS, UE).
    pub fn received_power_dbm_batch(&self, bs_pos: Vec2, ms_positions: &[Vec2], out: &mut [f64]) {
        assert_eq!(
            ms_positions.len(),
            out.len(),
            "output buffer length must match the position count"
        );
        let tx_dbm = self.tx_power_dbm();
        for (slot, &ms_pos) in out.iter_mut().zip(ms_positions) {
            *slot = self.budget_dbm(tx_dbm, bs_pos, ms_pos);
        }
    }

    /// Compile the link budget: precompute every position-independent
    /// term (TX dBm, antenna tilt in radians, height difference, gain
    /// floor, the path-loss model's constant sub-expressions) so a
    /// per-sample evaluation is just the position-dependent geometry and
    /// transcendentals. See [`CompiledBsRadio`] for the bit-identity
    /// contract.
    pub fn compiled(&self) -> CompiledBsRadio {
        let dz_km = (self.antenna.height_m - self.ms_height_m) / 1000.0;
        CompiledBsRadio {
            tx_dbm: self.tx_power_dbm(),
            dz_km,
            phi_rad: self.antenna.tilt_deg.to_radians(),
            peak_gain_dbi: self.antenna.peak_gain_dbi,
            floor_gain_db: self.antenna.peak_gain_dbi + self.pattern_floor_db,
            loss: CompiledPathLoss::compile(self.path_loss),
        }
    }
}

/// A [`PathLoss`] with its model-constant sub-expressions folded, leaving
/// one `log10` (plus adds/multiplies) per evaluation. Each folded
/// constant is the *same* sub-expression the interpreted
/// [`PathLoss::loss_db`] computes — merely computed once — and the
/// remaining arithmetic keeps the interpreted association order, so the
/// compiled loss is bit-identical to the interpreted one.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CompiledPathLoss {
    /// `PaperField` / `LogDistance`: `base + slope · log₁₀(d / d0)`.
    Reference {
        base_db: f64,
        slope_db: f64,
        d0_km: f64,
    },
    /// `FreeSpace`: `32.44 + 20 log₁₀ d + freq_term` (the association of
    /// the interpreted expression is preserved, so the frequency term
    /// stays the *last* addend).
    FreeSpace { freq_term_db: f64 },
    /// `TwoRay`: `40 log₁₀(1000 d) − height_term`.
    TwoRay { height_term_db: f64 },
    /// `OkumuraHata`: `base + slope · log₁₀(max(d, 0.02))`.
    Hata { base_db: f64, slope_db: f64 },
}

impl CompiledPathLoss {
    fn compile(model: PathLoss) -> Self {
        match model {
            PathLoss::PaperField { n, ref_km, ref_loss_db } => CompiledPathLoss::Reference {
                base_db: ref_loss_db,
                slope_db: 20.0 * n,
                d0_km: ref_km,
            },
            PathLoss::LogDistance { pl0_db, exponent, d0_km } => CompiledPathLoss::Reference {
                base_db: pl0_db,
                slope_db: 10.0 * exponent,
                d0_km,
            },
            PathLoss::FreeSpace { freq_mhz } => {
                CompiledPathLoss::FreeSpace { freq_term_db: 20.0 * freq_mhz.log10() }
            }
            PathLoss::TwoRay { h_bs_m, h_ms_m } => {
                CompiledPathLoss::TwoRay { height_term_db: 20.0 * (h_bs_m * h_ms_m).log10() }
            }
            PathLoss::OkumuraHata { freq_mhz, h_bs_m, h_ms_m } => {
                let a_hms = (1.1 * freq_mhz.log10() - 0.7) * h_ms_m
                    - (1.56 * freq_mhz.log10() - 0.8);
                let (c1, c2) = if freq_mhz > 1500.0 { (46.3, 33.9) } else { (69.55, 26.16) };
                CompiledPathLoss::Hata {
                    base_db: c1 + c2 * freq_mhz.log10() - 13.82 * h_bs_m.log10() - a_hms,
                    slope_db: 44.9 - 6.55 * h_bs_m.log10(),
                }
            }
        }
    }

    /// Loss at a (pre-clamped, ≥ 1 m) slant range — bit-identical to
    /// [`PathLoss::loss_db`] on the model this was compiled from.
    #[inline]
    fn loss_db(&self, d: f64) -> f64 {
        match *self {
            CompiledPathLoss::Reference { base_db, slope_db, d0_km } => {
                base_db + slope_db * (d / d0_km).log10()
            }
            CompiledPathLoss::FreeSpace { freq_term_db } => {
                32.44 + 20.0 * d.log10() + freq_term_db
            }
            CompiledPathLoss::TwoRay { height_term_db } => {
                40.0 * (d * 1000.0).log10() - height_term_db
            }
            CompiledPathLoss::Hata { base_db, slope_db } => {
                base_db + slope_db * d.max(0.02).log10()
            }
        }
    }
}

/// The compiled form of a [`BsRadio`] link budget — the measurement
/// plane's analogue of the fuzzy plane's `CompiledFis`.
///
/// Construction ([`BsRadio::compiled`]) folds every position-independent
/// term once: the TX power in dBm (a `log10`), the antenna tilt in
/// radians, the BS–MS height difference in km, the clamped gain floor,
/// and the path-loss model's constants (dispatching the model `match`
/// once instead of per sample). A per-sample evaluation is then one
/// distance, one `atan2`/`cos` for the pattern, two `log10`s (pattern
/// roll-off + path loss) and a handful of adds/multiplies.
///
/// ## Bit-identity contract
///
/// Every folded constant is the same floating-point sub-expression the
/// scalar [`BsRadio::received_power_dbm`] computes, and the remaining
/// per-sample arithmetic preserves the scalar association order — so the
/// compiled budget is **bit-identical** to the scalar one for every
/// model and position (asserted exhaustively by the unit tests here and
/// end-to-end by the 17 golden reports, which run the simulation engine
/// through this plane).
///
/// The same radio parameters are shared by every BS of a layout, so one
/// `CompiledBsRadio` serves all of them; the BS position is a call
/// argument, exactly like the scalar entry points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompiledBsRadio {
    tx_dbm: f64,
    dz_km: f64,
    phi_rad: f64,
    peak_gain_dbi: f64,
    floor_gain_db: f64,
    loss: CompiledPathLoss,
}

/// Fixed block width of the batched link-budget loops: the geometry pass
/// (distance per position) runs over one block at a time so the
/// subtract/multiply/add/sqrt chain autovectorizes, then the
/// transcendental pass consumes the block. Purely a loop-blocking factor
/// — every element still evaluates the exact scalar expression.
const BUDGET_BLOCK: usize = 8;

impl CompiledBsRadio {
    /// The budget from a precomputed horizontal distance — the shared
    /// per-sample tail of the scalar and batched entry points, so both
    /// compute the exact same floating-point expression. `loss_db` must
    /// be (an inlined copy of) [`CompiledPathLoss::loss_db`] on
    /// `self.loss`.
    #[inline(always)]
    fn budget_from_horizontal<L: Fn(f64) -> f64>(&self, horizontal_km: f64, loss_db: &L) -> f64 {
        // Antenna: depression angle → pattern factor → clamped gain, with
        // the tilt/height constants folded.
        let alpha = self.dz_km.atan2(horizontal_km.max(0.0));
        let factor = (alpha - self.phi_rad).cos().abs();
        let gain = (self.peak_gain_dbi + 20.0 * factor.log10()).max(self.floor_gain_db);
        // Path loss at the slant range (clamped below at 1 m).
        let slant = (horizontal_km * horizontal_km + self.dz_km * self.dz_km).sqrt();
        let loss = loss_db(slant.max(1e-3));
        self.tx_dbm + gain - loss
    }

    /// Mean received power in dBm at `ms_pos` from a BS at `bs_pos` —
    /// bit-identical to [`BsRadio::received_power_dbm`] on the source
    /// radio.
    #[inline]
    pub fn received_power_dbm(&self, bs_pos: Vec2, ms_pos: Vec2) -> f64 {
        self.budget_from_horizontal(bs_pos.distance(ms_pos), &|d| self.loss.loss_db(d))
    }

    /// The block-loop driver behind both batched entry points: per-BS
    /// constants live in locals (registers), the interior is branch-free
    /// (the path-loss `match` is dispatched once per batch, not per
    /// sample), positions stream through [`BUDGET_BLOCK`]-wide blocks
    /// with a vectorizable geometry pass, and the remainder drains
    /// through a scalar tail loop.
    #[inline(always)]
    fn fill_batch_with<T, L, C>(
        &self,
        bs_pos: Vec2,
        ms_positions: &[Vec2],
        out: &mut [T],
        loss_db: L,
        convert: C,
    ) where
        T: Copy,
        L: Fn(f64) -> f64,
        C: Fn(f64) -> T,
    {
        let mut horiz = [0.0f64; BUDGET_BLOCK];
        let mut pos_blocks = ms_positions.chunks_exact(BUDGET_BLOCK);
        let mut out_blocks = out.chunks_exact_mut(BUDGET_BLOCK);
        for (positions, slots) in (&mut pos_blocks).zip(&mut out_blocks) {
            // Geometry pass: distances only — autovectorizes.
            for (h, &ms) in horiz.iter_mut().zip(positions.iter()) {
                *h = bs_pos.distance(ms);
            }
            // Budget pass: the transcendental tail of the expression.
            for (slot, &h) in slots.iter_mut().zip(horiz.iter()) {
                *slot = convert(self.budget_from_horizontal(h, &loss_db));
            }
        }
        // Tail loop for the remainder.
        for (slot, &ms) in out_blocks.into_remainder().iter_mut().zip(pos_blocks.remainder()) {
            *slot = convert(self.budget_from_horizontal(bs_pos.distance(ms), &loss_db));
        }
    }

    /// Dispatch the path-loss variant once and run the block driver with
    /// a monomorphized (hence branch-free-interior) loss closure. Each
    /// closure calls [`CompiledPathLoss::loss_db`] on the known variant,
    /// so there is exactly one source of truth for the loss expression.
    #[inline(always)]
    fn dispatch_batch<T, C>(&self, bs_pos: Vec2, ms_positions: &[Vec2], out: &mut [T], convert: C)
    where
        T: Copy,
        C: Fn(f64) -> T + Copy,
    {
        match self.loss {
            loss @ CompiledPathLoss::Reference { .. } => {
                self.fill_batch_with(bs_pos, ms_positions, out, move |d| loss.loss_db(d), convert)
            }
            loss @ CompiledPathLoss::FreeSpace { .. } => {
                self.fill_batch_with(bs_pos, ms_positions, out, move |d| loss.loss_db(d), convert)
            }
            loss @ CompiledPathLoss::TwoRay { .. } => {
                self.fill_batch_with(bs_pos, ms_positions, out, move |d| loss.loss_db(d), convert)
            }
            loss @ CompiledPathLoss::Hata { .. } => {
                self.fill_batch_with(bs_pos, ms_positions, out, move |d| loss.loss_db(d), convert)
            }
        }
    }

    /// Batched form of [`CompiledBsRadio::received_power_dbm`]:
    /// `out[i]` receives the power at `ms_positions[i]`. Allocation-free
    /// and bit-identical to the scalar call per position (same
    /// per-sample expression; the block structure only reorders
    /// independent elements' evaluation, never an element's own math).
    pub fn received_power_dbm_batch(
        &self,
        bs_pos: Vec2,
        ms_positions: &[Vec2],
        out: &mut [f64],
    ) {
        assert_eq!(
            ms_positions.len(),
            out.len(),
            "output buffer length must match the position count"
        );
        self.dispatch_batch(bs_pos, ms_positions, out, |v| v);
    }

    /// Compact-precision batch: compute each sample in full `f64` (the
    /// exact expression of [`CompiledBsRadio::received_power_dbm`]) and
    /// store it rounded to `f32`. This is the fleet engine's
    /// `FleetPrecision::Compact` storage lane — it halves the RSS-matrix
    /// footprint at the cost of ~7 decimal digits, so it is *not*
    /// bit-identical to the `f64` path and stays behind an explicit
    /// opt-in.
    pub fn received_power_dbm_batch_f32(
        &self,
        bs_pos: Vec2,
        ms_positions: &[Vec2],
        out: &mut [f32],
    ) {
        assert_eq!(
            ms_positions.len(),
            out.len(),
            "output buffer length must match the position count"
        );
        self.dispatch_batch(bs_pos, ms_positions, out, |v| v as f32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_budget() {
        let bs = BsRadio::paper_default();
        assert!((bs.tx_power_dbm() - 40.0).abs() < 1e-9, "10 W = 40 dBm");
        // At 1 km the calibrated budget gives ≈ 40 + 1.76 − 128 ≈ −86 dBm.
        let rx = bs.received_power_dbm(Vec2::ZERO, Vec2::new(1.0, 0.0));
        assert!((-92.0..=-80.0).contains(&rx), "rx(1 km) = {rx}");
    }

    #[test]
    fn power_decreases_with_distance() {
        // The paper's Fig. 9 behaviour: monotone decay as the MS leaves
        // the serving BS (beyond the near-mast pattern region).
        let bs = BsRadio::paper_default();
        let mut prev = bs.received_power_dbm(Vec2::ZERO, Vec2::new(0.3, 0.0));
        for k in 1..70 {
            let d = 0.3 + 0.1 * k as f64;
            let rx = bs.received_power_dbm(Vec2::ZERO, Vec2::new(d, 0.0));
            assert!(rx < prev, "rx({d}) = {rx} not below {prev}");
            prev = rx;
        }
    }

    #[test]
    fn plotted_dynamic_range_matches_paper() {
        // Figs. 9–13 span roughly −60…−140 dB between ~0.2 and 7 km.
        let bs = BsRadio::paper_default();
        let near = bs.received_power_dbm(Vec2::ZERO, Vec2::new(0.15, 0.0));
        let far = bs.received_power_dbm(Vec2::ZERO, Vec2::new(7.0, 0.0));
        assert!(near > -70.0, "near reading {near}");
        assert!(far < -115.0, "far reading {far}");
        assert!(near - far > 55.0, "dynamic range {}", near - far);
    }

    #[test]
    fn rotational_symmetry() {
        let bs = BsRadio::paper_default();
        let d = 2.5;
        let a = bs.received_power_dbm(Vec2::ZERO, Vec2::new(d, 0.0));
        let b = bs.received_power_dbm(Vec2::ZERO, Vec2::new(0.0, d));
        let c = bs.received_power_dbm(Vec2::ZERO, Vec2::from_polar(d, 1.1));
        assert!((a - b).abs() < 1e-9);
        assert!((a - c).abs() < 1e-9);
    }

    #[test]
    fn translation_invariance() {
        let bs = BsRadio::paper_default();
        let offset = Vec2::new(3.46, -2.0);
        let a = bs.received_power_dbm(Vec2::ZERO, Vec2::new(1.0, 1.0));
        let b = bs.received_power_dbm(offset, Vec2::new(1.0, 1.0) + offset);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn under_mast_is_finite_and_weaker_than_beam_peak() {
        let bs = BsRadio::paper_default();
        let under = bs.received_power_dbm(Vec2::ZERO, Vec2::ZERO);
        assert!(under.is_finite());
        // Under the mast the pattern factor is sin 3° ≈ −25.6 dB, above the
        // −40 dB floor, so the raw pattern value applies.
        let gain_at_mast = bs.antenna.gain_db_clamped(0.0, 1.5, bs.pattern_floor_db);
        let expected = bs.antenna.peak_gain_dbi + 20.0 * 3.0f64.to_radians().sin().log10();
        assert!((gain_at_mast - expected).abs() < 1e-9);
        assert!(gain_at_mast >= bs.antenna.peak_gain_dbi + bs.pattern_floor_db);
    }

    #[test]
    fn doubling_tx_power_adds_3db() {
        let mut bs = BsRadio::paper_default();
        let a = bs.received_power_dbm(Vec2::ZERO, Vec2::new(2.0, 0.0));
        bs.tx_power_w = 20.0;
        let b = bs.received_power_dbm(Vec2::ZERO, Vec2::new(2.0, 0.0));
        assert!((b - a - 3.0103).abs() < 1e-3);
    }

    #[test]
    fn field_model_variant_is_shallower() {
        let cal = BsRadio::paper_default();
        let field = BsRadio::paper_field_model();
        let d1 = Vec2::new(1.0, 0.0);
        let d7 = Vec2::new(7.0, 0.0);
        let cal_drop =
            cal.received_power_dbm(Vec2::ZERO, d1) - cal.received_power_dbm(Vec2::ZERO, d7);
        let field_drop =
            field.received_power_dbm(Vec2::ZERO, d1) - field.received_power_dbm(Vec2::ZERO, d7);
        assert!(cal_drop > field_drop, "calibrated {cal_drop} vs field {field_drop}");
        // n = 1.1 amplitude exponent → 22 dB/decade → ~18.6 dB over 1→7 km.
        assert!((field_drop - 22.0 * 7f64.log10()).abs() < 0.5);
    }

    #[test]
    fn serde_round_trip() {
        let bs = BsRadio::paper_default();
        let back: BsRadio = serde_json::from_str(&serde_json::to_string(&bs).unwrap()).unwrap();
        assert_eq!(bs, back);
    }

    #[test]
    fn batch_is_bit_identical_to_scalar() {
        let bs = BsRadio::paper_default();
        let bs_pos = Vec2::new(1.5, -0.7);
        let positions: Vec<Vec2> = (0..97)
            .map(|k| Vec2::from_polar(0.05 + 0.11 * k as f64, 0.37 * k as f64))
            .collect();
        let mut batch = vec![0.0; positions.len()];
        bs.received_power_dbm_batch(bs_pos, &positions, &mut batch);
        for (p, b) in positions.iter().zip(&batch) {
            let scalar = bs.received_power_dbm(bs_pos, *p);
            assert_eq!(scalar.to_bits(), b.to_bits(), "at {p:?}");
        }
    }

    #[test]
    fn compiled_is_bit_identical_to_scalar_for_every_model() {
        let models = [
            PathLoss::paper_calibrated(),
            PathLoss::paper_field(),
            PathLoss::free_space_2ghz(),
            PathLoss::TwoRay { h_bs_m: 40.0, h_ms_m: 1.5 },
            PathLoss::okumura_hata_paper(),
        ];
        let bs_pos = Vec2::new(-0.8, 2.1);
        for model in models {
            let bs = BsRadio { path_loss: model, ..BsRadio::paper_default() };
            let compiled = bs.compiled();
            for k in 0..400 {
                // Spiral sweep from under the mast out to ~9 km.
                let ms = bs_pos + Vec2::from_polar(0.0225 * k as f64, 0.711 * k as f64);
                let scalar = bs.received_power_dbm(bs_pos, ms);
                let fast = compiled.received_power_dbm(bs_pos, ms);
                assert_eq!(scalar.to_bits(), fast.to_bits(), "{model:?} at {ms:?}");
            }
        }
    }

    #[test]
    fn compiled_batch_matches_scalar_batch_bitwise() {
        let bs = BsRadio::paper_default();
        let compiled = bs.compiled();
        let bs_pos = Vec2::new(1.5, -0.7);
        let positions: Vec<Vec2> = (0..97)
            .map(|k| Vec2::from_polar(0.05 + 0.11 * k as f64, 0.37 * k as f64))
            .collect();
        let mut reference = vec![0.0; positions.len()];
        let mut fast = vec![0.0; positions.len()];
        bs.received_power_dbm_batch(bs_pos, &positions, &mut reference);
        compiled.received_power_dbm_batch(bs_pos, &positions, &mut fast);
        for (r, f) in reference.iter().zip(&fast) {
            assert_eq!(r.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn compiled_f32_batch_is_rounded_f64() {
        let bs = BsRadio::paper_default();
        let compiled = bs.compiled();
        let bs_pos = Vec2::new(0.4, 0.9);
        let positions: Vec<Vec2> = (0..53)
            .map(|k| Vec2::from_polar(0.07 + 0.13 * k as f64, 0.29 * k as f64))
            .collect();
        let mut compact = vec![0.0f32; positions.len()];
        compiled.received_power_dbm_batch_f32(bs_pos, &positions, &mut compact);
        for (p, &c) in positions.iter().zip(&compact) {
            let full = compiled.received_power_dbm(bs_pos, *p);
            assert_eq!(c.to_bits(), (full as f32).to_bits(), "at {p:?}");
        }
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn compiled_f32_batch_length_mismatch_rejected() {
        let compiled = BsRadio::paper_default().compiled();
        let mut out = [0.0f32; 2];
        compiled.received_power_dbm_batch_f32(Vec2::ZERO, &[Vec2::ZERO], &mut out);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn compiled_batch_length_mismatch_rejected() {
        let compiled = BsRadio::paper_default().compiled();
        let mut out = [0.0; 2];
        compiled.received_power_dbm_batch(Vec2::ZERO, &[Vec2::ZERO], &mut out);
    }

    #[test]
    fn batch_over_empty_slice_is_a_no_op() {
        let bs = BsRadio::paper_default();
        bs.received_power_dbm_batch(Vec2::ZERO, &[], &mut []);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn batch_length_mismatch_rejected() {
        let bs = BsRadio::paper_default();
        let mut out = [0.0; 2];
        bs.received_power_dbm_batch(Vec2::ZERO, &[Vec2::ZERO], &mut out);
    }
}
