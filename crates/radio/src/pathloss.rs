//! Path-loss models.
//!
//! All models return a positive loss in dB as a function of slant range in
//! km. The paper's field model (eq. (4)) has amplitude ∝ `1/rⁿ` with
//! `n = 1.1`; because the paper never states the units of `r` or its
//! reference level, [`PathLoss::paper_calibrated`] provides a log-distance
//! model whose absolute dB range over 0–7 km matches the paper's
//! Figs. 9–13 (≈ −60 dB near the BS down to ≈ −140 dB at 7 km with a 40 dBm
//! transmitter). See DESIGN.md §3 for the substitution note.

use serde::{Deserialize, Serialize};

/// A path-loss model: positive dB loss versus slant range in km.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PathLoss {
    /// The paper's field model: amplitude ∝ `1/rⁿ`, i.e. a power loss of
    /// `20·n·log₁₀(r / r_ref)` relative to the reference range.
    PaperField {
        /// Amplitude exponent `n` (paper Table 2: 1.1).
        n: f64,
        /// Reference range in km at which the loss equals `ref_loss_db`.
        ref_km: f64,
        /// Loss at the reference range, in dB.
        ref_loss_db: f64,
    },
    /// Log-distance: `PL(d) = pl0_db + 10·exponent·log₁₀(d / d0_km)`.
    LogDistance {
        /// Loss at the reference distance, in dB.
        pl0_db: f64,
        /// Path-loss exponent (free space = 2).
        exponent: f64,
        /// Reference distance in km.
        d0_km: f64,
    },
    /// Free-space path loss at a carrier frequency:
    /// `32.44 + 20 log₁₀(d_km) + 20 log₁₀(f_MHz)`.
    FreeSpace {
        /// Carrier frequency in MHz (paper Table 2: 2000 MHz).
        freq_mhz: f64,
    },
    /// Plane-earth two-ray model: `40 log₁₀(d_m) − 20 log₁₀(h_bs·h_ms)`.
    TwoRay {
        /// BS antenna height in metres.
        h_bs_m: f64,
        /// MS antenna height in metres.
        h_ms_m: f64,
    },
    /// Okumura–Hata urban macro-cell model (valid 150–1500 MHz, extended
    /// here with the COST-231 correction above 1500 MHz up to 2 GHz;
    /// d in 1–20 km, h_bs 30–200 m, h_ms 1–10 m).
    OkumuraHata {
        /// Carrier frequency in MHz.
        freq_mhz: f64,
        /// BS antenna height in metres.
        h_bs_m: f64,
        /// MS antenna height in metres.
        h_ms_m: f64,
    },
}

impl PathLoss {
    /// Log-distance model calibrated so that a 40 dBm (10 W) transmitter
    /// reproduces the paper's plotted received-power range (≈ −60 dB at
    /// 0.1 km, ≈ −140 dB at 7 km): `PL(1 km) = 128 dB`, exponent 4.2.
    pub fn paper_calibrated() -> Self {
        PathLoss::LogDistance { pl0_db: 128.0, exponent: 4.2, d0_km: 1.0 }
    }

    /// The literal paper field model with `n = 1.1`, referenced to the
    /// calibrated 1-km loss so the two models agree at 1 km.
    pub fn paper_field() -> Self {
        PathLoss::PaperField { n: 1.1, ref_km: 1.0, ref_loss_db: 128.0 }
    }

    /// Free space at the paper's 2000 MHz carrier.
    pub fn free_space_2ghz() -> Self {
        PathLoss::FreeSpace { freq_mhz: 2000.0 }
    }

    /// Path loss in dB at a slant range of `d_km` (clamped below at 1 m so
    /// the loss stays finite at the mast).
    pub fn loss_db(&self, d_km: f64) -> f64 {
        let d = d_km.max(1e-3);
        match *self {
            PathLoss::PaperField { n, ref_km, ref_loss_db } => {
                ref_loss_db + 20.0 * n * (d / ref_km).log10()
            }
            PathLoss::LogDistance { pl0_db, exponent, d0_km } => {
                pl0_db + 10.0 * exponent * (d / d0_km).log10()
            }
            PathLoss::FreeSpace { freq_mhz } => {
                32.44 + 20.0 * d.log10() + 20.0 * freq_mhz.log10()
            }
            PathLoss::TwoRay { h_bs_m, h_ms_m } => {
                40.0 * (d * 1000.0).log10() - 20.0 * (h_bs_m * h_ms_m).log10()
            }
            PathLoss::OkumuraHata { freq_mhz, h_bs_m, h_ms_m } => {
                // Small-city mobile-antenna correction a(h_ms).
                let a_hms = (1.1 * freq_mhz.log10() - 0.7) * h_ms_m
                    - (1.56 * freq_mhz.log10() - 0.8);
                // COST-231 extension swaps the frequency constants above
                // 1500 MHz (metropolitan centre offset omitted).
                let (c1, c2) = if freq_mhz > 1500.0 { (46.3, 33.9) } else { (69.55, 26.16) };
                c1 + c2 * freq_mhz.log10() - 13.82 * h_bs_m.log10() - a_hms
                    + (44.9 - 6.55 * h_bs_m.log10()) * d.max(0.02).log10()
            }
        }
    }

    /// Effective power-domain slope in dB per decade of distance.
    pub fn db_per_decade(&self) -> f64 {
        match *self {
            PathLoss::PaperField { n, .. } => 20.0 * n,
            PathLoss::LogDistance { exponent, .. } => 10.0 * exponent,
            PathLoss::FreeSpace { .. } => 20.0,
            PathLoss::TwoRay { .. } => 40.0,
            PathLoss::OkumuraHata { h_bs_m, .. } => 44.9 - 6.55 * h_bs_m.log10(),
        }
    }

    /// Okumura–Hata (COST-231) with the paper's antennas at 2000 MHz.
    pub fn okumura_hata_paper() -> Self {
        PathLoss::OkumuraHata { freq_mhz: 2000.0, h_bs_m: 40.0, h_ms_m: 1.5 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn calibrated_anchors() {
        let pl = PathLoss::paper_calibrated();
        assert!((pl.loss_db(1.0) - 128.0).abs() < EPS);
        // One decade adds 42 dB.
        assert!((pl.loss_db(10.0) - 170.0).abs() < EPS);
        assert!((pl.loss_db(0.1) - 86.0).abs() < EPS);
        // With a 40 dBm TX + ~1.76 dBi dipole this spans the paper's plots:
        // RX(0.1 km) ≈ −44 dBm … RX(7 km) ≈ −122 dBm before the antenna
        // pattern and fading shave more off.
        let rx_7km = 40.0 + 1.76 - pl.loss_db(7.0);
        assert!(rx_7km < -118.0 && rx_7km > -130.0, "rx at 7 km: {rx_7km}");
    }

    #[test]
    fn paper_field_slope_matches_n() {
        let pl = PathLoss::paper_field();
        // Amplitude exponent 1.1 → 22 dB/decade in power.
        assert!((pl.db_per_decade() - 22.0).abs() < EPS);
        assert!((pl.loss_db(10.0) - pl.loss_db(1.0) - 22.0).abs() < EPS);
    }

    #[test]
    fn free_space_reference_values() {
        let pl = PathLoss::free_space_2ghz();
        // FSPL(1 km, 2 GHz) = 32.44 + 0 + 66.02 = 98.46 dB.
        assert!((pl.loss_db(1.0) - 98.46).abs() < 0.02);
        assert!((pl.db_per_decade() - 20.0).abs() < EPS);
    }

    #[test]
    fn two_ray_reference_values() {
        let pl = PathLoss::TwoRay { h_bs_m: 40.0, h_ms_m: 1.5 };
        // 40 log10(1000) − 20 log10(60) = 120 − 35.563 = 84.44 dB.
        assert!((pl.loss_db(1.0) - 84.437).abs() < 0.01);
        assert!((pl.db_per_decade() - 40.0).abs() < EPS);
    }

    #[test]
    fn okumura_hata_reference_values() {
        // COST-231 at 2 GHz, h_bs 40 m, h_ms 1.5 m, d = 1 km:
        // a(h_ms) = (1.1·3.301 − 0.7)·1.5 − (1.56·3.301 − 0.8) = 0.0509
        // PL = 46.3 + 33.9·3.301 − 13.82·1.602 − 0.051 + 0 = 136.0 dB.
        let pl = PathLoss::okumura_hata_paper();
        assert!((pl.loss_db(1.0) - 136.0).abs() < 0.5, "got {}", pl.loss_db(1.0));
        // Slope: 44.9 − 6.55·log10(40) = 34.4 dB/decade.
        assert!((pl.db_per_decade() - 34.41).abs() < 0.05);
        assert!((pl.loss_db(10.0) - pl.loss_db(1.0) - pl.db_per_decade()).abs() < 1e-9);
        // It is in the same ballpark as the calibrated model the figures
        // use (within ~10 dB at 1 km) — the calibration is physical.
        assert!((pl.loss_db(1.0) - PathLoss::paper_calibrated().loss_db(1.0)).abs() < 12.0);
    }

    #[test]
    fn okumura_hata_classic_band_constants() {
        // Below 1500 MHz the classic Hata constants apply: at 900 MHz,
        // 40 m / 1.5 m / 1 km the closed form gives
        // 69.55 + 26.16·log10(900) − 13.82·log10(40) − a(1.5) ≈ 124.7 dB.
        let pl = PathLoss::OkumuraHata { freq_mhz: 900.0, h_bs_m: 40.0, h_ms_m: 1.5 };
        let v = pl.loss_db(1.0);
        assert!((v - 124.7).abs() < 0.1, "got {v}");
    }

    #[test]
    fn all_models_monotone_increasing() {
        let models = [
            PathLoss::paper_calibrated(),
            PathLoss::paper_field(),
            PathLoss::free_space_2ghz(),
            PathLoss::TwoRay { h_bs_m: 40.0, h_ms_m: 1.5 },
            PathLoss::okumura_hata_paper(),
        ];
        for m in models {
            let mut prev = m.loss_db(0.01);
            for k in 1..100 {
                let d = 0.01 + k as f64 * 0.1;
                let cur = m.loss_db(d);
                assert!(cur > prev, "{m:?} not monotone at {d} km");
                prev = cur;
            }
        }
    }

    #[test]
    fn loss_finite_at_zero_range() {
        for m in [PathLoss::paper_calibrated(), PathLoss::free_space_2ghz()] {
            assert!(m.loss_db(0.0).is_finite(), "{m:?}");
            assert_eq!(m.loss_db(0.0), m.loss_db(1e-3), "clamped at 1 m");
        }
    }

    #[test]
    fn field_and_calibrated_agree_at_reference() {
        let field = PathLoss::paper_field();
        let cal = PathLoss::paper_calibrated();
        assert!((field.loss_db(1.0) - cal.loss_db(1.0)).abs() < EPS);
        // The calibrated model falls off much faster (42 vs 22 dB/decade),
        // which is what the paper's plotted dynamic range requires.
        assert!(cal.loss_db(7.0) > field.loss_db(7.0));
    }

    #[test]
    fn serde_round_trip() {
        for m in [
            PathLoss::paper_calibrated(),
            PathLoss::paper_field(),
            PathLoss::free_space_2ghz(),
            PathLoss::TwoRay { h_bs_m: 40.0, h_ms_m: 1.5 },
        ] {
            let back: PathLoss = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
            assert_eq!(m, back);
        }
    }
}
