//! RSS measurement pipeline: additive measurement noise and smoothing.
//!
//! Real handover controllers never see the raw propagation value; they see
//! a noisy sample passed through an averaging filter. Both stages are
//! modelled here so the ping-pong experiments can inject realistic
//! measurement jitter (the paper averages 10 simulation runs for the same
//! reason).

use crate::fading::{standard_normal, standard_normal_fill};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Zero-mean Gaussian measurement noise in dB.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasurementNoise {
    /// Standard deviation in dB (0 disables the noise).
    pub sigma_db: f64,
}

impl MeasurementNoise {
    /// Construct; σ must be non-negative.
    pub fn new(sigma_db: f64) -> Self {
        assert!(sigma_db >= 0.0, "noise sigma must be non-negative");
        MeasurementNoise { sigma_db }
    }

    /// No noise.
    pub fn none() -> Self {
        MeasurementNoise { sigma_db: 0.0 }
    }

    /// Apply the noise to a clean dB reading.
    pub fn apply<R: Rng + ?Sized>(&self, clean_db: f64, rng: &mut R) -> f64 {
        if self.sigma_db == 0.0 {
            return clean_db;
        }
        clean_db + self.sigma_db * standard_normal(rng)
    }

    /// Apply the noise to a whole slice of clean dB readings in place,
    /// drawing one gaussian per element in slice order — the batched
    /// sampler of the compiled measurement plane. Bit-identical to
    /// calling [`MeasurementNoise::apply`] once per element (the σ = 0
    /// early-out is hoisted out of the loop and, like the scalar path,
    /// consumes no randomness). Allocation-free.
    ///
    /// Unlike the scalar loop this is genuinely batched: the gaussians
    /// come from [`standard_normal_fill`] (bulk ChaCha12 block
    /// generation + tiled Box–Muller), and the add-back is a separate
    /// branch-free slice pass. The `radio/noise_2432` bench group pins
    /// the ≥ 1.5× throughput edge over the scalar loop so a regression
    /// back to secretly-scalar sampling shows up in `BENCH_radio.json`.
    pub fn apply_slice<R: Rng + ?Sized>(&self, values_db: &mut [f64], rng: &mut R) {
        if self.sigma_db == 0.0 {
            return;
        }
        let mut normals = [0.0f64; 64];
        for chunk in values_db.chunks_mut(normals.len()) {
            let draws = &mut normals[..chunk.len()];
            standard_normal_fill(draws, rng);
            for (value, &normal) in chunk.iter_mut().zip(draws.iter()) {
                *value += self.sigma_db * normal;
            }
        }
    }
}

/// Stateful RSS smoothing filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RssiSmoother {
    /// Pass-through.
    None,
    /// Exponentially weighted moving average with factor `alpha ∈ (0, 1]`
    /// (1 = no smoothing). State carries the running average.
    Ewma {
        /// Weight of the newest sample.
        alpha: f64,
        /// Current filtered value (None until the first sample).
        state: Option<f64>,
    },
    /// Sliding-window arithmetic mean over the last `capacity` samples.
    Window {
        /// Window length.
        capacity: usize,
        /// Stored samples, oldest first.
        buf: VecDeque<f64>,
    },
}

impl RssiSmoother {
    /// EWMA smoother.
    pub fn ewma(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1], got {alpha}");
        RssiSmoother::Ewma { alpha, state: None }
    }

    /// Sliding-window smoother.
    pub fn window(capacity: usize) -> Self {
        assert!(capacity >= 1, "window capacity must be at least 1");
        RssiSmoother::Window { capacity, buf: VecDeque::with_capacity(capacity) }
    }

    /// Feed one sample, get the filtered value.
    pub fn push(&mut self, sample_db: f64) -> f64 {
        match self {
            RssiSmoother::None => sample_db,
            RssiSmoother::Ewma { alpha, state } => {
                let next = match *state {
                    None => sample_db,
                    Some(prev) => prev + *alpha * (sample_db - prev),
                };
                *state = Some(next);
                next
            }
            RssiSmoother::Window { capacity, buf } => {
                if buf.len() == *capacity {
                    buf.pop_front();
                }
                buf.push_back(sample_db);
                buf.iter().sum::<f64>() / buf.len() as f64
            }
        }
    }

    /// Current filtered value without feeding a sample (None before any
    /// sample has been pushed, or for the pass-through filter).
    pub fn current(&self) -> Option<f64> {
        match self {
            RssiSmoother::None => None,
            RssiSmoother::Ewma { state, .. } => *state,
            RssiSmoother::Window { buf, .. } => {
                if buf.is_empty() {
                    None
                } else {
                    Some(buf.iter().sum::<f64>() / buf.len() as f64)
                }
            }
        }
    }

    /// Reset the filter state (e.g. after a handover to a new serving BS).
    pub fn reset(&mut self) {
        match self {
            RssiSmoother::None => {}
            RssiSmoother::Ewma { state, .. } => *state = None,
            RssiSmoother::Window { buf, .. } => buf.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_passthrough() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = MeasurementNoise::none();
        assert_eq!(n.apply(-90.0, &mut rng), -90.0);
    }

    #[test]
    fn noise_statistics() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = MeasurementNoise::new(2.0);
        let k = 40_000;
        let samples: Vec<f64> = (0..k).map(|_| n.apply(-90.0, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / k as f64;
        let sd = (samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / k as f64).sqrt();
        assert!((mean + 90.0).abs() < 0.05, "mean {mean}");
        assert!((sd - 2.0).abs() < 0.05, "sd {sd}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_noise_sigma_rejected() {
        let _ = MeasurementNoise::new(-0.1);
    }

    #[test]
    fn apply_slice_is_bit_identical_to_scalar_loop() {
        let clean: Vec<f64> = (0..57).map(|k| -110.0 + 0.7 * k as f64).collect();
        for sigma in [0.0, 1.0, 3.5] {
            let n = MeasurementNoise::new(sigma);
            let mut batch = clean.clone();
            n.apply_slice(&mut batch, &mut StdRng::seed_from_u64(17));
            let mut rng = StdRng::seed_from_u64(17);
            for (slot, &c) in batch.iter().zip(&clean) {
                let scalar = n.apply(c, &mut rng);
                assert_eq!(slot.to_bits(), scalar.to_bits(), "σ = {sigma}");
            }
        }
    }

    #[test]
    fn none_smoother_is_identity() {
        let mut s = RssiSmoother::None;
        assert_eq!(s.push(-80.0), -80.0);
        assert_eq!(s.push(-100.0), -100.0);
        assert_eq!(s.current(), None);
    }

    #[test]
    fn ewma_first_sample_initializes() {
        let mut s = RssiSmoother::ewma(0.25);
        assert_eq!(s.current(), None);
        assert_eq!(s.push(-90.0), -90.0, "first sample adopted as-is");
        let second = s.push(-80.0);
        assert!((second - (-90.0 + 0.25 * 10.0)).abs() < 1e-12);
        assert_eq!(s.current(), Some(second));
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut s = RssiSmoother::ewma(0.3);
        s.push(-120.0);
        let mut last = 0.0;
        for _ in 0..100 {
            last = s.push(-70.0);
        }
        assert!((last - -70.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_alpha_one_is_passthrough() {
        let mut s = RssiSmoother::ewma(1.0);
        s.push(-100.0);
        assert_eq!(s.push(-60.0), -60.0);
    }

    #[test]
    fn window_mean() {
        let mut s = RssiSmoother::window(3);
        assert_eq!(s.push(-90.0), -90.0);
        assert!((s.push(-80.0) - -85.0).abs() < 1e-12);
        assert!((s.push(-70.0) - -80.0).abs() < 1e-12);
        // Fourth sample evicts the first: mean of (-80, -70, -60) = -70.
        assert!((s.push(-60.0) - -70.0).abs() < 1e-12);
        assert_eq!(s.current(), Some(-70.0));
    }

    #[test]
    fn reset_clears_state() {
        let mut e = RssiSmoother::ewma(0.5);
        e.push(-90.0);
        e.reset();
        assert_eq!(e.current(), None);
        assert_eq!(e.push(-50.0), -50.0, "re-initialized");

        let mut w = RssiSmoother::window(4);
        w.push(-90.0);
        w.push(-80.0);
        w.reset();
        assert_eq!(w.current(), None);
        assert_eq!(w.push(-50.0), -50.0);
    }

    #[test]
    fn smoothing_reduces_variance() {
        let mut rng = StdRng::seed_from_u64(11);
        let noise = MeasurementNoise::new(4.0);
        let mut raw_var = 0.0;
        let mut smooth_var = 0.0;
        let mut ewma = RssiSmoother::ewma(0.2);
        let n = 20_000;
        // Warm up the filter first.
        for _ in 0..50 {
            ewma.push(noise.apply(-90.0, &mut rng));
        }
        for _ in 0..n {
            let raw = noise.apply(-90.0, &mut rng);
            let smooth = ewma.push(raw);
            raw_var += (raw + 90.0) * (raw + 90.0);
            smooth_var += (smooth + 90.0) * (smooth + 90.0);
        }
        assert!(
            smooth_var < raw_var / 4.0,
            "EWMA(0.2) cuts variance: raw {raw_var}, smooth {smooth_var}"
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let _ = RssiSmoother::ewma(0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn invalid_window_rejected() {
        let _ = RssiSmoother::window(0);
    }

    #[test]
    fn serde_round_trip() {
        let mut s = RssiSmoother::window(3);
        s.push(-75.0);
        let back: RssiSmoother = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(s, back);
    }
}
