//! # radiolink
//!
//! Radio propagation substrate for the fuzzy-handover reproduction.
//!
//! The paper computes received power from a vertically polarised dipole
//! with beam tilt (its eqs. (3)–(4)):
//!
//! ```text
//! E = √(45 W) · sin(θ − φ) · e^(−jκr) / rⁿ
//! ```
//!
//! This crate implements that model literally ([`PathLoss::PaperField`] +
//! [`DipoleAntenna`]) and adds the standard alternatives (free space,
//! log-distance, two-ray) plus log-normal shadow fading with Gudmundson
//! spatial correlation and an RSS measurement pipeline (noise + smoothing).
//!
//! Units: distances in **km**, heights in **m**, powers in **dBm**, gains
//! and losses in **dB**.
//!
//! ## The compiled measurement plane
//!
//! Fleet-scale simulation steps the radio substrate for every (BS, UE)
//! pair per measurement step, so — mirroring the fuzzy crate's
//! `CompiledFis` decision plane — the hot path runs through *compiled*,
//! batched forms of the three per-sample stages:
//!
//! * [`CompiledBsRadio`] ([`BsRadio::compiled`]) — the link budget with
//!   every position-independent term folded once (TX dBm, tilt radians,
//!   height delta, gain floor, path-loss constants), leaving the
//!   geometry and two `log10`s per sample.
//! * [`ShadowingLane`] — a struct-of-arrays bank of per-BS AR(1)
//!   shadowing processes whose batched update hoists the per-step
//!   Gudmundson `exp` and innovation gain out of the per-BS loop.
//! * [`MeasurementNoise::apply_slice`] — the batched gaussian noise
//!   sampler, one draw per reading in slice order.
//!
//! **Bit-identity contract:** each compiled form evaluates the *same*
//! floating-point expressions as its scalar counterpart (constants are
//! folded, never re-associated) and draws from the RNG in the same order
//! with the same [`fading::standard_normal`] sampler, so results are
//! bit-for-bit identical to the scalar loops. The contract is pinned by
//! proptests (`tests/radio_plane_props.rs`), a counting-allocator test
//! proving the per-step paths allocation-free
//! (`tests/zero_alloc_radio.rs`), and the 17 golden simulation reports,
//! which run entirely through this plane.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod antenna;
pub mod db;
pub mod fading;
pub mod link;
pub mod measurement;
pub mod pathloss;

pub use antenna::DipoleAntenna;
pub use fading::{
    speed_penalty_db, standard_normal, standard_normal_fill, RayleighFading, RicianFading,
    ShadowingConfig, ShadowingLane, ShadowingLaneState, ShadowingProcess,
};
pub use link::{BsRadio, CompiledBsRadio};
pub use measurement::{MeasurementNoise, RssiSmoother};
pub use pathloss::PathLoss;
