//! # radiolink
//!
//! Radio propagation substrate for the fuzzy-handover reproduction.
//!
//! The paper computes received power from a vertically polarised dipole
//! with beam tilt (its eqs. (3)–(4)):
//!
//! ```text
//! E = √(45 W) · sin(θ − φ) · e^(−jκr) / rⁿ
//! ```
//!
//! This crate implements that model literally ([`PathLoss::PaperField`] +
//! [`DipoleAntenna`]) and adds the standard alternatives (free space,
//! log-distance, two-ray) plus log-normal shadow fading with Gudmundson
//! spatial correlation and an RSS measurement pipeline (noise + smoothing).
//!
//! Units: distances in **km**, heights in **m**, powers in **dBm**, gains
//! and losses in **dB**.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod antenna;
pub mod db;
pub mod fading;
pub mod link;
pub mod measurement;
pub mod pathloss;

pub use antenna::DipoleAntenna;
pub use fading::{speed_penalty_db, RayleighFading, RicianFading, ShadowingConfig, ShadowingProcess};
pub use link::BsRadio;
pub use measurement::{MeasurementNoise, RssiSmoother};
pub use pathloss::PathLoss;
