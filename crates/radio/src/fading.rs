//! Fading models.
//!
//! * [`ShadowingProcess`] — log-normal shadow fading with Gudmundson
//!   spatial correlation (`ρ(Δd) = e^(−Δd/d_corr)`), the mechanism that
//!   produces the RSS fluctuations behind the ping-pong effect.
//! * [`RayleighFading`] — small-scale envelope fading (extension hook).
//! * [`speed_penalty_db`] — the paper's empirical "2 dB per 10 km/h"
//!   degradation applied to the neighbour-BS RSS in Tables 3/4.

use rand::Rng;
use rand_distr::{Distribution, StandardNormal};
use serde::{Deserialize, Serialize};

// `rand_distr` is not among the offline crates; a standard normal is easy
// to produce from `rand` alone via Box–Muller, so we implement it locally
// and keep the dependency list at exactly the allowed set.
mod rand_distr {
    pub struct StandardNormal;
    pub trait Distribution<T> {
        fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
    impl Distribution<f64> for StandardNormal {
        fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // Box–Muller; u1 in (0, 1] avoids ln(0).
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        }
    }
}

/// Configuration of a log-normal shadowing process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowingConfig {
    /// Standard deviation of the shadowing in dB (urban macro: 6–12 dB).
    pub sigma_db: f64,
    /// Gudmundson decorrelation distance in km (urban: 0.02–0.1 km).
    pub decorrelation_km: f64,
}

impl ShadowingConfig {
    /// A moderate urban default: σ = 4 dB, d_corr = 50 m.
    pub fn moderate() -> Self {
        ShadowingConfig { sigma_db: 4.0, decorrelation_km: 0.05 }
    }

    /// Shadowing disabled (σ = 0).
    pub fn none() -> Self {
        ShadowingConfig { sigma_db: 0.0, decorrelation_km: 0.05 }
    }
}

/// A stateful, spatially correlated log-normal shadowing process
/// (first-order Gudmundson autoregression along the mobile's path).
///
/// One independent process is kept **per base station**: shadowing towards
/// different BSs is uncorrelated, which is what makes boundary walks
/// flip-flop between serving cells.
#[derive(Debug, Clone)]
pub struct ShadowingProcess {
    config: ShadowingConfig,
    current_db: f64,
    initialized: bool,
}

impl ShadowingProcess {
    /// New process; the first sample is drawn fresh from `N(0, σ²)`.
    pub fn new(config: ShadowingConfig) -> Self {
        assert!(config.sigma_db >= 0.0, "sigma must be non-negative");
        assert!(config.decorrelation_km > 0.0, "decorrelation distance must be positive");
        ShadowingProcess { config, current_db: 0.0, initialized: false }
    }

    /// The configuration.
    pub fn config(&self) -> ShadowingConfig {
        self.config
    }

    /// Advance the mobile by `delta_km` and return the shadowing value in
    /// dB at the new position.
    pub fn advance<R: Rng + ?Sized>(&mut self, delta_km: f64, rng: &mut R) -> f64 {
        let sigma = self.config.sigma_db;
        if sigma == 0.0 {
            self.initialized = true;
            self.current_db = 0.0;
            return 0.0;
        }
        let innovation: f64 = StandardNormal.sample(rng);
        if !self.initialized {
            self.initialized = true;
            self.current_db = sigma * innovation;
        } else {
            let rho = (-delta_km.max(0.0) / self.config.decorrelation_km).exp();
            self.current_db =
                rho * self.current_db + sigma * (1.0 - rho * rho).sqrt() * innovation;
        }
        self.current_db
    }

    /// The last returned value (0 before the first `advance`).
    pub fn current_db(&self) -> f64 {
        self.current_db
    }
}

/// Rayleigh envelope fading: returns the instantaneous power deviation in
/// dB relative to the local mean (`E[power] = 1`).
#[derive(Debug, Clone, Copy, Default)]
pub struct RayleighFading;

impl RayleighFading {
    /// Draw one independent fade in dB.
    pub fn sample_db<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Envelope² = X² + Y² with X, Y ~ N(0, 1/2) → unit mean power.
        let x: f64 = StandardNormal.sample(rng);
        let y: f64 = StandardNormal.sample(rng);
        let power = 0.5 * (x * x + y * y);
        10.0 * power.max(1e-12).log10()
    }
}

/// Rician fading: a dominant line-of-sight component of power
/// `K/(K+1)` plus scattered power `1/(K+1)` (unit total mean power).
/// `K → 0` degenerates to Rayleigh; large `K` approaches a constant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RicianFading {
    /// Rice factor `K` (linear, ≥ 0): LOS-to-scatter power ratio.
    pub k_factor: f64,
}

impl RicianFading {
    /// Construct with a non-negative K factor.
    pub fn new(k_factor: f64) -> Self {
        assert!(k_factor >= 0.0, "K factor must be non-negative");
        RicianFading { k_factor }
    }

    /// Draw one independent fade in dB (unit mean power).
    pub fn sample_db<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let k = self.k_factor;
        // LOS amplitude ν with ν² = K/(K+1); scatter σ² = 1/(2(K+1)) per
        // quadrature branch.
        let nu = (k / (k + 1.0)).sqrt();
        let sigma = (1.0 / (2.0 * (k + 1.0))).sqrt();
        let x: f64 = nu + sigma * StandardNormal.sample(rng);
        let y: f64 = sigma * StandardNormal.sample(rng);
        let power = x * x + y * y;
        10.0 * power.max(1e-12).log10()
    }
}

/// The paper's speed rule: "during the RW, for each 10 km/h the signal
/// strength is decreased 2 dB" (applied to the neighbour-BS RSS in the
/// Table 3/4 sweeps).
#[inline]
pub fn speed_penalty_db(speed_kmh: f64) -> f64 {
    assert!(speed_kmh >= 0.0, "speed must be non-negative");
    0.2 * speed_kmh
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn speed_penalty_matches_paper_tables() {
        // Tables 3/4: neighbour RSS drops exactly 2 dB per 10 km/h step.
        assert_eq!(speed_penalty_db(0.0), 0.0);
        assert!((speed_penalty_db(10.0) - 2.0).abs() < 1e-12);
        assert!((speed_penalty_db(30.0) - 6.0).abs() < 1e-12);
        assert!((speed_penalty_db(50.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_sigma_process_is_silent() {
        let mut p = ShadowingProcess::new(ShadowingConfig::none());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(p.advance(0.1, &mut rng), 0.0);
        }
    }

    #[test]
    fn shadowing_statistics() {
        let cfg = ShadowingConfig { sigma_db: 6.0, decorrelation_km: 0.05 };
        let mut rng = StdRng::seed_from_u64(42);
        // Large steps → essentially independent samples.
        let mut p = ShadowingProcess::new(cfg);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| p.advance(5.0, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.2, "zero-mean, got {mean}");
        assert!((var.sqrt() - 6.0).abs() < 0.2, "σ ≈ 6, got {}", var.sqrt());
    }

    #[test]
    fn gudmundson_correlation_decays() {
        let cfg = ShadowingConfig { sigma_db: 8.0, decorrelation_km: 0.1 };
        let mut rng = StdRng::seed_from_u64(13);
        // Estimate lag-1 autocorrelation for small steps: ρ = e^(−Δ/d).
        let step = 0.02; // ρ = e^-0.2 ≈ 0.8187
        let mut p = ShadowingProcess::new(cfg);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| p.advance(step, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        let cov = samples
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        let rho = cov / var;
        let expected = (-step / 0.1f64).exp();
        assert!((rho - expected).abs() < 0.02, "ρ {rho} vs {expected}");
    }

    #[test]
    fn small_steps_move_slowly() {
        let cfg = ShadowingConfig { sigma_db: 8.0, decorrelation_km: 1.0 };
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = ShadowingProcess::new(cfg);
        let first = p.advance(0.001, &mut rng);
        let second = p.advance(0.001, &mut rng);
        // With ρ ≈ 0.999 consecutive values are nearly identical.
        assert!((first - second).abs() < 8.0 * 0.1, "{first} vs {second}");
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = ShadowingConfig::moderate();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p = ShadowingProcess::new(cfg);
            (0..50).map(|_| p.advance(0.05, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn rayleigh_mean_power_is_unity() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 50_000;
        let mean_linear: f64 = (0..n)
            .map(|_| 10f64.powf(RayleighFading.sample_db(&mut rng) / 10.0))
            .sum::<f64>()
            / n as f64;
        assert!((mean_linear - 1.0).abs() < 0.03, "mean power {mean_linear}");
        // Deep fades exist: Rayleigh should dip below −10 dB sometimes.
        let mut rng = StdRng::seed_from_u64(22);
        let deep = (0..10_000).any(|_| RayleighFading.sample_db(&mut rng) < -10.0);
        assert!(deep);
    }

    #[test]
    fn rician_mean_power_is_unity_and_k_controls_spread() {
        let n = 50_000;
        let spread = |k: f64, seed: u64| -> (f64, f64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let fading = RicianFading::new(k);
            let samples: Vec<f64> = (0..n)
                .map(|_| 10f64.powf(fading.sample_db(&mut rng) / 10.0))
                .collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
            (mean, var)
        };
        let (m0, v0) = spread(0.0, 31);
        let (m10, v10) = spread(10.0, 32);
        assert!((m0 - 1.0).abs() < 0.03, "K=0 mean {m0}");
        assert!((m10 - 1.0).abs() < 0.03, "K=10 mean {m10}");
        // Rayleigh (K=0) power variance is 1; strong LOS shrinks it.
        assert!((v0 - 1.0).abs() < 0.05, "K=0 var {v0}");
        assert!(v10 < 0.25, "K=10 var {v10}");
        // Deep fades vanish with a strong LOS component.
        let mut rng = StdRng::seed_from_u64(33);
        let strong = RicianFading::new(20.0);
        let deep = (0..20_000).any(|_| strong.sample_db(&mut rng) < -10.0);
        assert!(!deep, "K=20 should show no deep fades");
    }

    #[test]
    #[should_panic(expected = "K factor")]
    fn negative_k_rejected() {
        let _ = RicianFading::new(-0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_rejected() {
        let _ = ShadowingProcess::new(ShadowingConfig { sigma_db: -1.0, decorrelation_km: 0.1 });
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_speed_rejected() {
        let _ = speed_penalty_db(-5.0);
    }
}
