//! Fading models.
//!
//! * [`ShadowingProcess`] — log-normal shadow fading with Gudmundson
//!   spatial correlation (`ρ(Δd) = e^(−Δd/d_corr)`), the mechanism that
//!   produces the RSS fluctuations behind the ping-pong effect.
//! * [`ShadowingLane`] — the same AR(1) recursion over a struct-of-arrays
//!   bank of processes (one per base station), bit-identical to a loop of
//!   [`ShadowingProcess`]es but with the per-step `exp`/gain hoisted out
//!   of the per-BS loop. This is the compiled measurement plane's
//!   shadowing stage.
//! * [`RayleighFading`] — small-scale envelope fading (extension hook).
//! * [`speed_penalty_db`] — the paper's empirical "2 dB per 10 km/h"
//!   degradation applied to the neighbour-BS RSS in Tables 3/4.

use crate::db::power_ratio_to_db_floored;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Draw one standard-normal variate via Box–Muller (`u1 ∈ (0, 1]` avoids
/// `ln 0`). `rand_distr` is not among the offline crates, so this is the
/// single gaussian sampler the whole measurement plane shares: the
/// shadowing processes and lanes, the Rayleigh/Rician envelopes and the
/// measurement noise all draw through this exact expression, which is
/// what makes the scalar and batched paths bit-identical.
#[inline]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Tile width of the batched gaussian kernels: draws are pulled from the
/// RNG in stack tiles of this many output values (2× as many uniforms),
/// sized so one tile's uniforms cover two full eight-block groups of the
/// AVX2 ChaCha12 kernel through [`rand::RngCore::fill_u64_slice`] while
/// staying comfortably on the stack. Purely an internal blocking factor
/// — it never changes which draws happen in which order, so it is
/// invisible to bit-identity and to checkpointing.
const NORMAL_TILE: usize = 64;

/// Fill `dest` with standard-normal draws — the batched form of
/// [`standard_normal`], bit-identical to calling it once per slot in
/// order. The uniforms come from the RNG's bulk block generator
/// ([`rand::RngCore::fill_standard_uniform`], whole ChaCha12 blocks at a
/// time) and each output evaluates the exact Box–Muller expression of the
/// scalar sampler on its `(u1, u2)` pair, so draw order and
/// floating-point math are unchanged. Allocation-free (stack tiles).
pub fn standard_normal_fill<R: Rng + ?Sized>(dest: &mut [f64], rng: &mut R) {
    let mut uniforms = [0.0f64; 2 * NORMAL_TILE];
    let mut cosines = [0.0f64; NORMAL_TILE];
    for chunk in dest.chunks_mut(NORMAL_TILE) {
        let pairs = &mut uniforms[..2 * chunk.len()];
        rng.fill_standard_uniform(pairs);
        // Pass 1 — the libm calls (can't vectorize): squared radius
        // −2·ln(1 − u1) into the output slots, cos(τ·u2) into a tile.
        let angles = &mut cosines[..chunk.len()];
        for ((slot, angle), uv) in chunk.iter_mut().zip(angles.iter_mut()).zip(pairs.chunks_exact(2))
        {
            let u1 = 1.0 - uv[0];
            let u2 = uv[1];
            *slot = -2.0 * u1.ln();
            *angle = (std::f64::consts::TAU * u2).cos();
        }
        // Pass 2 — branch-free √r²·cos over contiguous tiles, which the
        // compiler turns into packed sqrt/mul. The expression tree per
        // sample is exactly the scalar sampler's, so the split changes
        // nothing bit-wise.
        for (slot, &angle) in chunk.iter_mut().zip(angles.iter()) {
            *slot = slot.sqrt() * angle;
        }
    }
}

/// Configuration of a log-normal shadowing process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowingConfig {
    /// Standard deviation of the shadowing in dB (urban macro: 6–12 dB).
    pub sigma_db: f64,
    /// Gudmundson decorrelation distance in km (urban: 0.02–0.1 km).
    pub decorrelation_km: f64,
}

impl ShadowingConfig {
    /// A moderate urban default: σ = 4 dB, d_corr = 50 m.
    pub fn moderate() -> Self {
        ShadowingConfig { sigma_db: 4.0, decorrelation_km: 0.05 }
    }

    /// Shadowing disabled (σ = 0).
    pub fn none() -> Self {
        ShadowingConfig { sigma_db: 0.0, decorrelation_km: 0.05 }
    }
}

/// A stateful, spatially correlated log-normal shadowing process
/// (first-order Gudmundson autoregression along the mobile's path).
///
/// One independent process is kept **per base station**: shadowing towards
/// different BSs is uncorrelated, which is what makes boundary walks
/// flip-flop between serving cells.
#[derive(Debug, Clone)]
pub struct ShadowingProcess {
    config: ShadowingConfig,
    current_db: f64,
    initialized: bool,
}

impl ShadowingProcess {
    /// New process; the first sample is drawn fresh from `N(0, σ²)`.
    pub fn new(config: ShadowingConfig) -> Self {
        assert!(config.sigma_db >= 0.0, "sigma must be non-negative");
        assert!(config.decorrelation_km > 0.0, "decorrelation distance must be positive");
        ShadowingProcess { config, current_db: 0.0, initialized: false }
    }

    /// The configuration.
    pub fn config(&self) -> ShadowingConfig {
        self.config
    }

    /// Advance the mobile by `delta_km` and return the shadowing value in
    /// dB at the new position.
    pub fn advance<R: Rng + ?Sized>(&mut self, delta_km: f64, rng: &mut R) -> f64 {
        let sigma = self.config.sigma_db;
        if sigma == 0.0 {
            self.initialized = true;
            self.current_db = 0.0;
            return 0.0;
        }
        let innovation: f64 = standard_normal(rng);
        if !self.initialized {
            self.initialized = true;
            self.current_db = sigma * innovation;
        } else {
            let rho = (-delta_km.max(0.0) / self.config.decorrelation_km).exp();
            self.current_db =
                rho * self.current_db + sigma * (1.0 - rho * rho).sqrt() * innovation;
        }
        self.current_db
    }

    /// The last returned value (0 before the first `advance`).
    pub fn current_db(&self) -> f64 {
        self.current_db
    }
}

/// A struct-of-arrays bank of [`ShadowingProcess`]es sharing one
/// configuration — the compiled measurement plane's shadowing stage.
///
/// A mobile keeps one independent shadowing process **per base station**;
/// all of them advance by the *same* travelled distance at every
/// measurement step. The scalar loop therefore recomputes the identical
/// Gudmundson correlation `ρ = e^(−Δd/d_corr)` (an `exp`) and the
/// innovation gain `σ·√(1 − ρ²)` once per process; the lane hoists both
/// out and updates the flat value array in one pass.
///
/// ## Bit-identity contract
///
/// [`ShadowingLane::advance_all`] draws innovations in slot order from the
/// same RNG and evaluates the exact floating-point expression of
/// [`ShadowingProcess::advance`] (the hoisted `ρ` and gain are the same
/// sub-expressions, merely computed once), so a lane is **bit-identical**
/// to advancing a `Vec<ShadowingProcess>` in a loop — pinned by the
/// proptests in `tests/radio_plane_props.rs`. [`ShadowingLane::advance_one`]
/// advances a single slot by its own distance, which is what the
/// neighbour-pruned candidate mode uses together with per-slot
/// accumulated distances (the Gudmundson recursion composes exactly:
/// `ρ(d₁+d₂) = ρ(d₁)·ρ(d₂)`, so skipping a slot for a few steps and then
/// advancing it by the summed distance yields the same process law).
///
/// Neither entry point allocates: the lane owns flat state sized at
/// construction (proven by the counting-allocator test in
/// `tests/zero_alloc_radio.rs`).
#[derive(Debug, Clone)]
pub struct ShadowingLane {
    config: ShadowingConfig,
    values: Vec<f64>,
    fresh: Vec<bool>,
    any_fresh: bool,
}

impl ShadowingLane {
    /// A lane of `n` fresh processes; each slot's first sample is drawn
    /// from `N(0, σ²)` exactly like a fresh [`ShadowingProcess`].
    pub fn new(config: ShadowingConfig, n: usize) -> Self {
        assert!(config.sigma_db >= 0.0, "sigma must be non-negative");
        assert!(config.decorrelation_km > 0.0, "decorrelation distance must be positive");
        ShadowingLane {
            config,
            values: vec![0.0; n],
            fresh: vec![true; n],
            any_fresh: true,
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> ShadowingConfig {
        self.config
    }

    /// Number of processes in the lane.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for a zero-process lane.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The current shadowing values in dB, one per slot (0 before a
    /// slot's first advance).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Advance **every** slot by the same `delta_km`, drawing one
    /// innovation per slot in slot order. Bit-identical to calling
    /// [`ShadowingProcess::advance`] on a vector of processes with the
    /// same RNG: the innovations come from [`standard_normal_fill`]
    /// (same draws, same order, bulk-generated) and the AR(1) update is
    /// the same expression per slot.
    pub fn advance_all<R: Rng + ?Sized>(&mut self, delta_km: f64, rng: &mut R) {
        let sigma = self.config.sigma_db;
        if sigma == 0.0 {
            if self.any_fresh {
                self.fresh.fill(false);
                self.any_fresh = false;
            }
            self.values.fill(0.0);
            return;
        }
        let rho = (-delta_km.max(0.0) / self.config.decorrelation_km).exp();
        let gain = sigma * (1.0 - rho * rho).sqrt();
        let mut innovations = [0.0f64; NORMAL_TILE];
        if self.any_fresh {
            for (values, fresh_slots) in self
                .values
                .chunks_mut(NORMAL_TILE)
                .zip(self.fresh.chunks_mut(NORMAL_TILE))
            {
                let tile = &mut innovations[..values.len()];
                standard_normal_fill(tile, rng);
                for ((value, fresh), &innovation) in
                    values.iter_mut().zip(fresh_slots.iter_mut()).zip(tile.iter())
                {
                    if *fresh {
                        *fresh = false;
                        *value = sigma * innovation;
                    } else {
                        *value = rho * *value + gain * innovation;
                    }
                }
            }
            self.any_fresh = false;
        } else {
            for values in self.values.chunks_mut(NORMAL_TILE) {
                let tile = &mut innovations[..values.len()];
                standard_normal_fill(tile, rng);
                // No branches, no calls: one fused multiply-add lane.
                for (value, &innovation) in values.iter_mut().zip(tile.iter()) {
                    *value = rho * *value + gain * innovation;
                }
            }
        }
    }

    /// [`ShadowingLane::advance_all`] with the innovations already drawn
    /// by the caller (one per slot, slot order) — the fused fleet kernel
    /// pulls one bulk gaussian fill per UE step and feeds the shadowing
    /// share through here. Slot-for-slot the same update expression as
    /// `advance_all`; passing draws from [`standard_normal_fill`] on the
    /// UE's RNG is therefore bit-identical to `advance_all` on that RNG.
    ///
    /// With σ = 0 the lane zeroes itself and `innovations` must be empty
    /// (the σ = 0 paths never consume randomness); otherwise it must hold
    /// exactly one draw per slot.
    pub fn advance_all_with(&mut self, delta_km: f64, innovations: &[f64]) {
        let sigma = self.config.sigma_db;
        if sigma == 0.0 {
            assert!(innovations.is_empty(), "σ = 0 advance consumes no draws");
            if self.any_fresh {
                self.fresh.fill(false);
                self.any_fresh = false;
            }
            self.values.fill(0.0);
            return;
        }
        assert_eq!(innovations.len(), self.values.len(), "one innovation per slot");
        let rho = (-delta_km.max(0.0) / self.config.decorrelation_km).exp();
        let gain = sigma * (1.0 - rho * rho).sqrt();
        if self.any_fresh {
            for ((value, fresh), &innovation) in
                self.values.iter_mut().zip(&mut self.fresh).zip(innovations)
            {
                if *fresh {
                    *fresh = false;
                    *value = sigma * innovation;
                } else {
                    *value = rho * *value + gain * innovation;
                }
            }
            self.any_fresh = false;
        } else {
            for (value, &innovation) in self.values.iter_mut().zip(innovations) {
                *value = rho * *value + gain * innovation;
            }
        }
    }

    /// Advance the given subset of slots to the travelled distance
    /// `now_km`, drawing one innovation per listed slot in list order.
    ///
    /// `last_km[slot]` carries the travelled distance at which each slot
    /// last advanced; the slot advances by `now_km − last_km[slot]` and
    /// the entry is updated to `now_km`. This is the neighbour-pruned
    /// engine's lazy update: unlisted slots simply keep their `last_km`,
    /// which is exact under the Gudmundson composition law
    /// `ρ(d₁+d₂) = ρ(d₁)·ρ(d₂)`. Slot-for-slot the arithmetic is the
    /// [`ShadowingProcess::advance`] expression; the correlation/gain
    /// pair is memoized across consecutive equal deltas (the common case
    /// — every slot that was listed on the previous step shares one
    /// delta), which changes nothing but the number of `exp` calls.
    pub fn advance_subset<R: Rng + ?Sized>(
        &mut self,
        slots: &[u32],
        now_km: f64,
        last_km: &mut [f64],
        rng: &mut R,
    ) {
        let sigma = self.config.sigma_db;
        if sigma == 0.0 {
            for &slot in slots {
                let k = slot as usize;
                self.fresh[k] = false;
                self.values[k] = 0.0;
                last_km[k] = now_km;
            }
            return;
        }
        let mut memo_delta = f64::NAN;
        let mut memo_rho = 0.0;
        let mut memo_gain = 0.0;
        // Innovations are bulk-drawn per tile (the memo survives tile
        // boundaries); drawing a tile up front instead of one draw per
        // slot reorders nothing — the computation between draws consumes
        // no randomness.
        let mut innovations = [0.0f64; NORMAL_TILE];
        for slot_tile in slots.chunks(NORMAL_TILE) {
            let tile = &mut innovations[..slot_tile.len()];
            standard_normal_fill(tile, rng);
            for (&slot, &innovation) in slot_tile.iter().zip(tile.iter()) {
                let k = slot as usize;
                if self.fresh[k] {
                    self.fresh[k] = false;
                    self.values[k] = sigma * innovation;
                } else {
                    let delta_km = now_km - last_km[k];
                    if delta_km != memo_delta {
                        memo_delta = delta_km;
                        memo_rho = (-delta_km.max(0.0) / self.config.decorrelation_km).exp();
                        memo_gain = sigma * (1.0 - memo_rho * memo_rho).sqrt();
                    }
                    self.values[k] = memo_rho * self.values[k] + memo_gain * innovation;
                }
                last_km[k] = now_km;
            }
        }
    }

    /// Advance a single slot by `delta_km` (one innovation draw, or none
    /// for σ = 0), returning the slot's new value. Slot-for-slot
    /// bit-identical to [`ShadowingProcess::advance`].
    pub fn advance_one<R: Rng + ?Sized>(
        &mut self,
        slot: usize,
        delta_km: f64,
        rng: &mut R,
    ) -> f64 {
        let sigma = self.config.sigma_db;
        if sigma == 0.0 {
            self.fresh[slot] = false;
            self.values[slot] = 0.0;
            return 0.0;
        }
        let innovation = standard_normal(rng);
        if self.fresh[slot] {
            self.fresh[slot] = false;
            self.values[slot] = sigma * innovation;
        } else {
            let rho = (-delta_km.max(0.0) / self.config.decorrelation_km).exp();
            self.values[slot] =
                rho * self.values[slot] + sigma * (1.0 - rho * rho).sqrt() * innovation;
        }
        self.values[slot]
    }

    /// Reset every slot to the fresh (pre-first-sample) state, keeping
    /// the allocation. A reset lane is indistinguishable from
    /// [`ShadowingLane::new`] with the same configuration and length —
    /// this is what lets chunk arenas recycle lanes across UEs.
    pub fn reset(&mut self) {
        self.values.fill(0.0);
        self.fresh.fill(true);
        self.any_fresh = true;
    }

    /// Capture the lane's exact state (values and per-slot freshness) as
    /// plain serializable data for checkpointing.
    pub fn state(&self) -> ShadowingLaneState {
        ShadowingLaneState {
            values: self.values.clone(),
            fresh: self.fresh.clone(),
            any_fresh: self.any_fresh,
        }
    }

    /// Rebuild a lane from a captured state; advancing the restored lane
    /// with the same RNG stream is bit-identical to advancing the
    /// original. Panics when the state's `values` and `fresh` lengths
    /// disagree.
    pub fn from_state(config: ShadowingConfig, state: ShadowingLaneState) -> Self {
        assert!(config.sigma_db >= 0.0, "sigma must be non-negative");
        assert!(config.decorrelation_km > 0.0, "decorrelation distance must be positive");
        assert_eq!(
            state.values.len(),
            state.fresh.len(),
            "lane state values/fresh lengths must match"
        );
        ShadowingLane {
            config,
            values: state.values,
            fresh: state.fresh,
            any_fresh: state.any_fresh,
        }
    }
}

/// Plain serializable capture of a [`ShadowingLane`]'s mutable state
/// (the shared [`ShadowingConfig`] is carried by the owning simulation
/// config, so it is not duplicated here).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShadowingLaneState {
    /// Current shadowing values in dB, one per slot.
    pub values: Vec<f64>,
    /// Per-slot "has not yet drawn its first sample" flags.
    pub fresh: Vec<bool>,
    /// True while any slot is still fresh (fast-path flag).
    pub any_fresh: bool,
}

/// Rayleigh envelope fading: returns the instantaneous power deviation in
/// dB relative to the local mean (`E[power] = 1`).
#[derive(Debug, Clone, Copy, Default)]
pub struct RayleighFading;

impl RayleighFading {
    /// Draw one independent fade in dB.
    pub fn sample_db<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Envelope² = X² + Y² with X, Y ~ N(0, 1/2) → unit mean power.
        let x: f64 = standard_normal(rng);
        let y: f64 = standard_normal(rng);
        let power = 0.5 * (x * x + y * y);
        power_ratio_to_db_floored(power)
    }

    /// Fill `out` with independent fades — bit-identical to calling
    /// [`RayleighFading::sample_db`] once per slot in order (the two
    /// quadrature gaussians per fade come from [`standard_normal_fill`]
    /// in the same x-then-y sequence). Allocation-free.
    pub fn sample_db_fill<R: Rng + ?Sized>(&self, out: &mut [f64], rng: &mut R) {
        let mut normals = [0.0f64; 2 * NORMAL_TILE];
        for chunk in out.chunks_mut(NORMAL_TILE) {
            let pairs = &mut normals[..2 * chunk.len()];
            standard_normal_fill(pairs, rng);
            for (slot, xy) in chunk.iter_mut().zip(pairs.chunks_exact(2)) {
                let power = 0.5 * (xy[0] * xy[0] + xy[1] * xy[1]);
                *slot = power_ratio_to_db_floored(power);
            }
        }
    }
}

/// Rician fading: a dominant line-of-sight component of power
/// `K/(K+1)` plus scattered power `1/(K+1)` (unit total mean power).
/// `K → 0` degenerates to Rayleigh; large `K` approaches a constant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RicianFading {
    /// Rice factor `K` (linear, ≥ 0): LOS-to-scatter power ratio.
    pub k_factor: f64,
}

impl RicianFading {
    /// Construct with a non-negative K factor.
    pub fn new(k_factor: f64) -> Self {
        assert!(k_factor >= 0.0, "K factor must be non-negative");
        RicianFading { k_factor }
    }

    /// Draw one independent fade in dB (unit mean power).
    pub fn sample_db<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let k = self.k_factor;
        // LOS amplitude ν with ν² = K/(K+1); scatter σ² = 1/(2(K+1)) per
        // quadrature branch.
        let nu = (k / (k + 1.0)).sqrt();
        let sigma = (1.0 / (2.0 * (k + 1.0))).sqrt();
        let x: f64 = nu + sigma * standard_normal(rng);
        let y: f64 = sigma * standard_normal(rng);
        let power = x * x + y * y;
        power_ratio_to_db_floored(power)
    }

    /// Fill `out` with independent fades — bit-identical to calling
    /// [`RicianFading::sample_db`] once per slot in order, with the LOS
    /// and scatter constants hoisted out of the loop (they are
    /// position-independent sub-expressions, computed once instead of
    /// per fade) and the gaussians bulk-drawn. Allocation-free.
    pub fn sample_db_fill<R: Rng + ?Sized>(&self, out: &mut [f64], rng: &mut R) {
        let k = self.k_factor;
        let nu = (k / (k + 1.0)).sqrt();
        let sigma = (1.0 / (2.0 * (k + 1.0))).sqrt();
        let mut normals = [0.0f64; 2 * NORMAL_TILE];
        for chunk in out.chunks_mut(NORMAL_TILE) {
            let pairs = &mut normals[..2 * chunk.len()];
            standard_normal_fill(pairs, rng);
            for (slot, xy) in chunk.iter_mut().zip(pairs.chunks_exact(2)) {
                let x = nu + sigma * xy[0];
                let y = sigma * xy[1];
                let power = x * x + y * y;
                *slot = power_ratio_to_db_floored(power);
            }
        }
    }
}

/// The paper's speed rule: "during the RW, for each 10 km/h the signal
/// strength is decreased 2 dB" (applied to the neighbour-BS RSS in the
/// Table 3/4 sweeps).
#[inline]
pub fn speed_penalty_db(speed_kmh: f64) -> f64 {
    assert!(speed_kmh >= 0.0, "speed must be non-negative");
    0.2 * speed_kmh
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn speed_penalty_matches_paper_tables() {
        // Tables 3/4: neighbour RSS drops exactly 2 dB per 10 km/h step.
        assert_eq!(speed_penalty_db(0.0), 0.0);
        assert!((speed_penalty_db(10.0) - 2.0).abs() < 1e-12);
        assert!((speed_penalty_db(30.0) - 6.0).abs() < 1e-12);
        assert!((speed_penalty_db(50.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_sigma_process_is_silent() {
        let mut p = ShadowingProcess::new(ShadowingConfig::none());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(p.advance(0.1, &mut rng), 0.0);
        }
    }

    #[test]
    fn shadowing_statistics() {
        let cfg = ShadowingConfig { sigma_db: 6.0, decorrelation_km: 0.05 };
        let mut rng = StdRng::seed_from_u64(42);
        // Large steps → essentially independent samples.
        let mut p = ShadowingProcess::new(cfg);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| p.advance(5.0, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.2, "zero-mean, got {mean}");
        assert!((var.sqrt() - 6.0).abs() < 0.2, "σ ≈ 6, got {}", var.sqrt());
    }

    #[test]
    fn gudmundson_correlation_decays() {
        let cfg = ShadowingConfig { sigma_db: 8.0, decorrelation_km: 0.1 };
        let mut rng = StdRng::seed_from_u64(13);
        // Estimate lag-1 autocorrelation for small steps: ρ = e^(−Δ/d).
        let step = 0.02; // ρ = e^-0.2 ≈ 0.8187
        let mut p = ShadowingProcess::new(cfg);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| p.advance(step, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        let cov = samples
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        let rho = cov / var;
        let expected = (-step / 0.1f64).exp();
        assert!((rho - expected).abs() < 0.02, "ρ {rho} vs {expected}");
    }

    #[test]
    fn small_steps_move_slowly() {
        let cfg = ShadowingConfig { sigma_db: 8.0, decorrelation_km: 1.0 };
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = ShadowingProcess::new(cfg);
        let first = p.advance(0.001, &mut rng);
        let second = p.advance(0.001, &mut rng);
        // With ρ ≈ 0.999 consecutive values are nearly identical.
        assert!((first - second).abs() < 8.0 * 0.1, "{first} vs {second}");
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = ShadowingConfig::moderate();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p = ShadowingProcess::new(cfg);
            (0..50).map(|_| p.advance(0.05, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn standard_normal_fill_matches_scalar_loop_bitwise() {
        // Lengths straddling the tile width and starting at mid-block RNG
        // offsets: the bulk sampler must reproduce the scalar draws.
        for offset in [0usize, 1, 5] {
            for len in [0usize, 1, 2, 31, 32, 33, 64, 100] {
                let mut bulk_rng = StdRng::seed_from_u64(0xB0B5);
                let mut scalar_rng = StdRng::seed_from_u64(0xB0B5);
                for _ in 0..offset {
                    bulk_rng.gen::<f64>();
                    scalar_rng.gen::<f64>();
                }
                let mut batch = vec![0.0f64; len];
                standard_normal_fill(&mut batch, &mut bulk_rng);
                for (i, &b) in batch.iter().enumerate() {
                    let s = standard_normal(&mut scalar_rng);
                    assert_eq!(b.to_bits(), s.to_bits(), "offset {offset} len {len} slot {i}");
                }
                // Streams stay in lockstep afterwards.
                assert_eq!(bulk_rng.gen::<u64>(), scalar_rng.gen::<u64>());
            }
        }
    }

    #[test]
    fn lane_advance_all_with_matches_advance_all_bitwise() {
        let cfg = ShadowingConfig { sigma_db: 4.5, decorrelation_km: 0.06 };
        let n = 19;
        let mut reference = ShadowingLane::new(cfg, n);
        let mut fused = ShadowingLane::new(cfg, n);
        let mut ref_rng = StdRng::seed_from_u64(0xFADE);
        let mut fused_rng = StdRng::seed_from_u64(0xFADE);
        let mut innovations = vec![0.0f64; n];
        for step in 0..25 {
            let delta = 0.02 * (step % 5) as f64;
            reference.advance_all(delta, &mut ref_rng);
            standard_normal_fill(&mut innovations, &mut fused_rng);
            fused.advance_all_with(delta, &innovations);
            for k in 0..n {
                assert_eq!(
                    reference.values()[k].to_bits(),
                    fused.values()[k].to_bits(),
                    "slot {k} step {step}"
                );
            }
        }
    }

    #[test]
    fn lane_advance_all_with_zero_sigma_is_silent() {
        let mut lane = ShadowingLane::new(ShadowingConfig::none(), 3);
        lane.advance_all_with(0.5, &[]);
        assert!(lane.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "one innovation per slot")]
    fn lane_advance_all_with_wrong_length_rejected() {
        let mut lane = ShadowingLane::new(ShadowingConfig::moderate(), 4);
        lane.advance_all_with(0.1, &[0.0; 3]);
    }

    #[test]
    fn rayleigh_fill_matches_scalar_loop_bitwise() {
        let fading = RayleighFading;
        let mut batch = vec![0.0f64; 77];
        fading.sample_db_fill(&mut batch, &mut StdRng::seed_from_u64(0xAA));
        let mut rng = StdRng::seed_from_u64(0xAA);
        for (i, &b) in batch.iter().enumerate() {
            assert_eq!(b.to_bits(), fading.sample_db(&mut rng).to_bits(), "slot {i}");
        }
    }

    #[test]
    fn rician_fill_matches_scalar_loop_bitwise() {
        for k in [0.0, 3.7, 12.0] {
            let fading = RicianFading::new(k);
            let mut batch = vec![0.0f64; 50];
            fading.sample_db_fill(&mut batch, &mut StdRng::seed_from_u64(0xBB));
            let mut rng = StdRng::seed_from_u64(0xBB);
            for (i, &b) in batch.iter().enumerate() {
                assert_eq!(b.to_bits(), fading.sample_db(&mut rng).to_bits(), "K {k} slot {i}");
            }
        }
    }

    #[test]
    fn lane_matches_process_loop_bitwise() {
        let cfg = ShadowingConfig { sigma_db: 5.5, decorrelation_km: 0.07 };
        let n = 19;
        let mut lane = ShadowingLane::new(cfg, n);
        let mut processes: Vec<ShadowingProcess> =
            (0..n).map(|_| ShadowingProcess::new(cfg)).collect();
        let mut lane_rng = StdRng::seed_from_u64(99);
        let mut loop_rng = StdRng::seed_from_u64(99);
        for step in 0..40 {
            let delta = 0.01 * (step % 7) as f64;
            lane.advance_all(delta, &mut lane_rng);
            for p in &mut processes {
                p.advance(delta, &mut loop_rng);
            }
            for (slot, p) in processes.iter().enumerate() {
                assert_eq!(
                    lane.values()[slot].to_bits(),
                    p.current_db().to_bits(),
                    "slot {slot} step {step}"
                );
            }
        }
    }

    #[test]
    fn lane_advance_one_matches_scalar_process() {
        let cfg = ShadowingConfig::moderate();
        let mut lane = ShadowingLane::new(cfg, 3);
        let mut process = ShadowingProcess::new(cfg);
        let mut lane_rng = StdRng::seed_from_u64(5);
        let mut scalar_rng = StdRng::seed_from_u64(5);
        for step in 0..20 {
            let delta = 0.02 + 0.01 * (step % 3) as f64;
            let a = lane.advance_one(1, delta, &mut lane_rng);
            let b = process.advance(delta, &mut scalar_rng);
            assert_eq!(a.to_bits(), b.to_bits(), "step {step}");
        }
        // Untouched slots stay at their pre-first-sample zero.
        assert_eq!(lane.values()[0], 0.0);
        assert_eq!(lane.values()[2], 0.0);
    }

    #[test]
    fn lane_advance_subset_matches_advance_one_bitwise() {
        let cfg = ShadowingConfig { sigma_db: 6.0, decorrelation_km: 0.08 };
        let n = 9;
        let mut fast = ShadowingLane::new(cfg, n);
        let mut reference = ShadowingLane::new(cfg, n);
        let mut fast_rng = StdRng::seed_from_u64(11);
        let mut ref_rng = StdRng::seed_from_u64(11);
        let mut last = vec![0.0f64; n];
        let mut ref_last = vec![0.0f64; n];
        let mut now = 0.0;
        // Rotating subsets: slots drop out and re-enter with accumulated
        // distances; the memoized batch must match the per-slot calls.
        for step in 1..30u32 {
            now += 0.05 + 0.01 * (step % 4) as f64;
            let subset: Vec<u32> = (0..n as u32).filter(|s| (s + step) % 3 != 0).collect();
            fast.advance_subset(&subset, now, &mut last, &mut fast_rng);
            for &s in &subset {
                let k = s as usize;
                reference.advance_one(k, now - ref_last[k], &mut ref_rng);
                ref_last[k] = now;
            }
            for k in 0..n {
                assert_eq!(
                    fast.values()[k].to_bits(),
                    reference.values()[k].to_bits(),
                    "slot {k} step {step}"
                );
                assert_eq!(last[k], ref_last[k]);
            }
        }
    }

    #[test]
    fn lane_zero_sigma_is_silent_and_drawless() {
        let mut lane = ShadowingLane::new(ShadowingConfig::none(), 4);
        let mut rng = StdRng::seed_from_u64(3);
        let before: u64 = rng.gen();
        let mut rng = StdRng::seed_from_u64(3);
        lane.advance_all(0.5, &mut rng);
        lane.advance_one(2, 0.1, &mut rng);
        assert!(lane.values().iter().all(|&v| v == 0.0));
        assert_eq!(rng.gen::<u64>(), before, "σ = 0 must not consume the RNG");
        assert_eq!(lane.len(), 4);
        assert!(!lane.is_empty());
        assert_eq!(lane.config(), ShadowingConfig::none());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn lane_negative_sigma_rejected() {
        let _ = ShadowingLane::new(
            ShadowingConfig { sigma_db: -0.1, decorrelation_km: 0.1 },
            2,
        );
    }

    #[test]
    fn lane_state_round_trip_is_bitwise() {
        let cfg = ShadowingConfig { sigma_db: 5.0, decorrelation_km: 0.06 };
        let mut lane = ShadowingLane::new(cfg, 7);
        let mut rng = StdRng::seed_from_u64(17);
        lane.advance_all(0.04, &mut rng);
        lane.advance_one(3, 0.02, &mut rng);
        let mut restored = ShadowingLane::from_state(cfg, lane.state());
        let mut rng_a = StdRng::seed_from_u64(101);
        let mut rng_b = StdRng::seed_from_u64(101);
        for step in 0..10 {
            lane.advance_all(0.03, &mut rng_a);
            restored.advance_all(0.03, &mut rng_b);
            for k in 0..7 {
                assert_eq!(
                    lane.values()[k].to_bits(),
                    restored.values()[k].to_bits(),
                    "slot {k} step {step}"
                );
            }
        }
    }

    #[test]
    fn lane_reset_matches_fresh_lane() {
        let cfg = ShadowingConfig::moderate();
        let mut lane = ShadowingLane::new(cfg, 5);
        let mut rng = StdRng::seed_from_u64(4);
        lane.advance_all(0.1, &mut rng);
        lane.reset();
        let fresh = ShadowingLane::new(cfg, 5);
        assert_eq!(lane.state(), fresh.state());
        let mut rng_a = StdRng::seed_from_u64(8);
        let mut rng_b = StdRng::seed_from_u64(8);
        let mut also_fresh = ShadowingLane::new(cfg, 5);
        lane.advance_all(0.05, &mut rng_a);
        also_fresh.advance_all(0.05, &mut rng_b);
        assert_eq!(lane.values(), also_fresh.values());
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn lane_state_length_mismatch_rejected() {
        let state = ShadowingLaneState { values: vec![0.0; 3], fresh: vec![true; 2], any_fresh: true };
        let _ = ShadowingLane::from_state(ShadowingConfig::moderate(), state);
    }

    #[test]
    fn rayleigh_mean_power_is_unity() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 50_000;
        let mean_linear: f64 = (0..n)
            .map(|_| 10f64.powf(RayleighFading.sample_db(&mut rng) / 10.0))
            .sum::<f64>()
            / n as f64;
        assert!((mean_linear - 1.0).abs() < 0.03, "mean power {mean_linear}");
        // Deep fades exist: Rayleigh should dip below −10 dB sometimes.
        let mut rng = StdRng::seed_from_u64(22);
        let deep = (0..10_000).any(|_| RayleighFading.sample_db(&mut rng) < -10.0);
        assert!(deep);
    }

    #[test]
    fn rician_mean_power_is_unity_and_k_controls_spread() {
        let n = 50_000;
        let spread = |k: f64, seed: u64| -> (f64, f64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let fading = RicianFading::new(k);
            let samples: Vec<f64> = (0..n)
                .map(|_| 10f64.powf(fading.sample_db(&mut rng) / 10.0))
                .collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
            (mean, var)
        };
        let (m0, v0) = spread(0.0, 31);
        let (m10, v10) = spread(10.0, 32);
        assert!((m0 - 1.0).abs() < 0.03, "K=0 mean {m0}");
        assert!((m10 - 1.0).abs() < 0.03, "K=10 mean {m10}");
        // Rayleigh (K=0) power variance is 1; strong LOS shrinks it.
        assert!((v0 - 1.0).abs() < 0.05, "K=0 var {v0}");
        assert!(v10 < 0.25, "K=10 var {v10}");
        // Deep fades vanish with a strong LOS component.
        let mut rng = StdRng::seed_from_u64(33);
        let strong = RicianFading::new(20.0);
        let deep = (0..20_000).any(|_| strong.sample_db(&mut rng) < -10.0);
        assert!(!deep, "K=20 should show no deep fades");
    }

    #[test]
    #[should_panic(expected = "K factor")]
    fn negative_k_rejected() {
        let _ = RicianFading::new(-0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_rejected() {
        let _ = ShadowingProcess::new(ShadowingConfig { sigma_db: -1.0, decorrelation_km: 0.1 });
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_speed_rejected() {
        let _ = speed_penalty_db(-5.0);
    }
}
