//! Seed-search utility that discovered the pinned scenario seeds
//! (`cargo run -p handover-sim --example seed_search --release`).
//!
//! Scenario A: boundary walk, 0 fuzzy handovers at every speed.
//! Scenario B: crossing walk, 3 fuzzy handovers / 0 ping-pongs at every
//! speed.

use handover_sim::engine::{SimConfig, Simulation};
use handover_sim::scenario::{ideal_cell_sequence, is_boundary_walk};
use handover_core::{ControllerConfig, FuzzyHandoverController};
use mobility::{MobilityModel, RandomWalk};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_at(traj: &mobility::Trajectory, speed: f64) -> (usize, usize) {
    let mut config = SimConfig::paper_default();
    config.speed_kmh = speed;
    let window = config.pingpong_window_steps;
    let sim = Simulation::new(config);
    let mut policy = FuzzyHandoverController::new(ControllerConfig::paper_default(2.0));
    let r = sim.run(traj, &mut policy, 0);
    (r.handover_count(), r.log.ping_pong_report(window).ping_pongs)
}

fn main() {
    let layout = SimConfig::paper_default().layout;
    let mut a_found = 0;
    for seed in 0..20_000u64 {
        let ta = RandomWalk::paper_default(5).generate(&mut StdRng::seed_from_u64(seed));
        if !is_boundary_walk(&ta) {
            continue;
        }
        if !(0..=5).all(|s| run_at(&ta, s as f64 * 10.0).0 == 0) {
            continue;
        }
        let seq = ideal_cell_sequence(&layout, &ta);
        println!("A seed={seed} seq={seq:?}");
        a_found += 1;
        if a_found >= 6 {
            break;
        }
    }
    let mut b_found = 0;
    for seed in 0..1_500_000u64 {
        let tb = RandomWalk::paper_default(10).generate(&mut StdRng::seed_from_u64(seed));
        if tb.resample(0.2).iter().any(|p| layout.containing_cell(p.pos).is_none()) {
            continue;
        }
        if run_at(&tb, 50.0) != (3, 0) || run_at(&tb, 40.0) != (3, 0) {
            continue;
        }
        if (0..4).all(|s| run_at(&tb, s as f64 * 10.0) == (3, 0)) {
            println!("B seed={seed} seq={:?}", ideal_cell_sequence(&layout, &tb));
            b_found += 1;
            if b_found >= 1 {
                break;
            }
        }
    }
    println!("done: A={a_found} B={b_found}");
}
