//! Dynamic-workload configuration: UE churn, tidal offered load, BS
//! failure events, and service-class mixes.
//!
//! Every feature here is a *pure function of (config, base seed, UE id,
//! step)* — churn windows, tidal intensities, failure timelines and
//! class draws are all recomputable from the configuration at any
//! point, so nothing in this module adds state to the (frozen)
//! checkpoint format and a resumed run reconstructs the exact dynamic
//! workload of the uninterrupted one. Randomized draws run on their own
//! domain-separated streams ([`CHURN_STREAM`], [`SERVICE_STREAM`]) so
//! enabling a feature never perturbs the measurement, trajectory or
//! traffic streams: the differential suite (`tests/dynamic_diff.rs`)
//! pins that every feature switched off yields bit-identical fleet
//! output.

use crate::fleet::ue_seed;
use crate::traffic::exp_sample;
use cellgeom::Axial;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Domain-separation mask for the churn stream: per-UE arrival and
/// lifetime draws run on `ue_seed(base_seed ^ CHURN_STREAM, ue_id)` so
/// churn never perturbs the measurement, trajectory, or traffic
/// streams (ASCII `"churn!!!"`).
pub const CHURN_STREAM: u64 = 0x6368_7572_6E21_2121;

/// Domain-separation mask for the service-class stream: per-UE class
/// draws mix `ue_seed(base_seed ^ SERVICE_STREAM, ue_id)` (ASCII
/// `"service!"`), so a single-class mix leaves the session draws of the
/// base traffic plane untouched.
pub const SERVICE_STREAM: u64 = 0x7365_7276_6963_6521;

/// SplitMix64 finalizer: one avalanche round turning a stream seed into
/// an unbiased 64-bit draw (the same construction the scenario matrix
/// uses for its cell seeds).
fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// UE churn: a birth–death population process. The run's id universe
/// splits into an initial population (present from step 0, exponential
/// *residual* lifetimes — the memoryless stationary view) and churned
/// arrivals whose start times fall uniformly over the horizon (the
/// conditional-uniform property of a Poisson arrival process: `k`
/// arrivals in `[0, T)` are i.i.d. uniform given `k`). With
/// `initial_ues = arrival_rate × mean_lifetime` the expected concurrent
/// population is stationary at that value for the whole horizon, which
/// the statistical suite (`tests/dynamic_stats.rs`) checks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Ids below this bound are present at step 0; the rest churn in.
    /// The implied arrival rate is `(n_ids − initial_ues) /
    /// horizon_steps`.
    pub initial_ues: u64,
    /// Arrival window length in steps. Arrivals land uniformly in
    /// `[0, horizon_steps)`.
    pub horizon_steps: u64,
    /// Mean exponential lifetime, in steps. A UE departs after its
    /// lifetime elapses (or when its trajectory ends, whichever is
    /// first).
    pub mean_lifetime_steps: f64,
}

impl ChurnConfig {
    /// Validate the configuration, panicking with a descriptive message
    /// on nonsense values.
    pub fn validate(&self) {
        if let Err(err) = self.validated() {
            panic!("{err}");
        }
    }

    /// Typed form of [`ChurnConfig::validate`].
    pub fn validated(&self) -> Result<(), crate::resilience::ConfigError> {
        use crate::resilience::{require_positive, ConfigError};
        if self.horizon_steps < 1 {
            return Err(ConfigError::TooSmall {
                field: "churn horizon (steps)",
                minimum: 1,
                got: self.horizon_steps,
            });
        }
        require_positive("mean lifetime", self.mean_lifetime_steps)?;
        Ok(())
    }

    /// The presence window of one UE: `(arrival_step, lifetime_steps)`.
    /// A pure function of `(self, base_seed, ue_id)` on the
    /// [`CHURN_STREAM`] — the fleet engine and a resumed checkpoint
    /// recompute identical windows. Lifetimes round up to at least one
    /// step.
    pub fn window(&self, base_seed: u64, ue_id: u64) -> (u64, u64) {
        let mut rng = StdRng::seed_from_u64(ue_seed(base_seed ^ CHURN_STREAM, ue_id));
        // Draw order is fixed (arrival, then lifetime) for every UE so
        // the two margins stay decoupled from the id split.
        let u: f64 = rng.gen();
        let arrival = if ue_id < self.initial_ues {
            0
        } else {
            ((u * self.horizon_steps as f64) as u64).min(self.horizon_steps - 1)
        };
        let lifetime = (exp_sample(&mut rng, self.mean_lifetime_steps).ceil() as u64).max(1);
        (arrival, lifetime)
    }

    /// Compact label, e.g. `churn100i-h500-l80`.
    pub fn label(&self) -> String {
        format!(
            "churn{}i-h{}-l{:.0}",
            self.initial_ues, self.horizon_steps, self.mean_lifetime_steps
        )
    }
}

/// Tidal offered load: a sinusoidal commute wave sweeping across the
/// layout's `q` axis. The wave multiplies the *arrival rate* of new
/// call sessions (and scales their holding mean) as a pure function of
/// `(step, cell.q)`:
///
/// ```text
/// intensity(step, q) = 1 + amplitude · sin(2π(step/period − q·phase_per_q))
/// ```
///
/// so offered load migrates from cell column to cell column over the
/// period — the "hotspot moves downtown in the morning" shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TidalWave {
    /// Wave period in steps (one commute cycle).
    pub period_steps: u64,
    /// Relative swing in `[0, 1]`: 0 is flat (no tide), 1 swings
    /// between 0× and 2× the base rate.
    pub amplitude: f64,
    /// Phase shift per unit of the cell's axial `q` coordinate, in
    /// turns — nonzero values make the wave *travel* across columns.
    pub phase_per_q: f64,
}

impl TidalWave {
    /// Validate the configuration.
    pub fn validate(&self) {
        if let Err(err) = self.validated() {
            panic!("{err}");
        }
    }

    /// Typed form of [`TidalWave::validate`].
    pub fn validated(&self) -> Result<(), crate::resilience::ConfigError> {
        use crate::resilience::{require_finite, require_in_range, ConfigError};
        if self.period_steps < 1 {
            return Err(ConfigError::TooSmall {
                field: "tidal period (steps)",
                minimum: 1,
                got: self.period_steps,
            });
        }
        require_in_range("tidal amplitude", self.amplitude, 0.0, 1.0)?;
        require_finite("phase shift", self.phase_per_q)?;
        Ok(())
    }

    /// True for a zero-amplitude (inert) wave.
    pub fn is_flat(&self) -> bool {
        self.amplitude == 0.0
    }

    /// The rate multiplier at `step` for a cell in column `q`; always in
    /// `[1 − amplitude, 1 + amplitude]`.
    pub fn intensity(&self, step: u64, q: i32) -> f64 {
        let turns = step as f64 / self.period_steps as f64 - q as f64 * self.phase_per_q;
        1.0 + self.amplitude * (std::f64::consts::TAU * turns).sin()
    }

    /// Compact label, e.g. `tide0.40p96`.
    pub fn label(&self) -> String {
        format!("tide{:.2}p{}", self.amplitude, self.period_steps)
    }
}

/// One scheduled base-station outage: the cell is down (energy-saving
/// sleep or failure) for `from_step ≤ step < until_step`. While down,
/// the cell admits no calls, leaves the handover candidate set, and its
/// serving UEs are force-evicted through the regular handover path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellOutage {
    /// The failing cell.
    pub cell: Axial,
    /// First step the cell is down (inclusive).
    pub from_step: u64,
    /// First step the cell is back up (exclusive bound).
    pub until_step: u64,
}

impl CellOutage {
    /// Validate the outage window.
    pub fn validate(&self) {
        if let Err(err) = self.validated() {
            panic!("{err}");
        }
    }

    /// Typed form of [`CellOutage::validate`].
    pub fn validated(&self) -> Result<(), crate::resilience::ConfigError> {
        if self.from_step >= self.until_step {
            return Err(crate::resilience::ConfigError::InvertedWindow {
                field: "outage",
                from: self.from_step,
                until: self.until_step,
            });
        }
        Ok(())
    }

    /// True while the cell is down at `step`.
    pub fn is_down_at(&self, step: u64) -> bool {
        (self.from_step..self.until_step).contains(&step)
    }
}

/// Per-class session parameters of a [`ServiceMix`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceParams {
    /// Mean exponential idle time between this class's calls, in steps.
    pub mean_idle_steps: f64,
    /// Mean exponential call-holding time, in steps.
    pub mean_holding_steps: f64,
    /// Extra guard channels this class's *new* calls must leave free on
    /// top of the traffic plane's handover guard — the admission
    /// priority knob (0 for the privileged class, > 0 deprioritizes).
    pub extra_guard_channels: u32,
}

impl ServiceParams {
    /// Validate the parameters.
    pub fn validate(&self) {
        if let Err(err) = self.validated() {
            panic!("{err}");
        }
    }

    /// Typed form of [`ServiceParams::validate`].
    pub fn validated(&self) -> Result<(), crate::resilience::ConfigError> {
        use crate::resilience::require_positive;
        require_positive("mean idle time", self.mean_idle_steps)?;
        require_positive("mean holding time", self.mean_holding_steps)?;
        Ok(())
    }
}

/// A two-class voice/data service mix. Each UE is assigned a class once
/// per run on the [`SERVICE_STREAM`]; its sessions then use that
/// class's idle/holding means, and admission charges the class's extra
/// guard channels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceMix {
    /// Fraction of UEs assigned [`handover_core::ServiceClass::Voice`],
    /// in `[0, 1]`.
    pub voice_share: f64,
    /// Voice-class session parameters.
    pub voice: ServiceParams,
    /// Data-class session parameters.
    pub data: ServiceParams,
}

impl ServiceMix {
    /// Validate the mix.
    pub fn validate(&self) {
        if let Err(err) = self.validated() {
            panic!("{err}");
        }
    }

    /// Typed form of [`ServiceMix::validate`].
    pub fn validated(&self) -> Result<(), crate::resilience::ConfigError> {
        crate::resilience::require_in_range("voice share", self.voice_share, 0.0, 1.0)?;
        self.voice.validated()?;
        self.data.validated()?;
        Ok(())
    }

    /// The class of one UE: a pure function of `(self, base_seed,
    /// ue_id)` on the [`SERVICE_STREAM`].
    pub fn class_of(&self, base_seed: u64, ue_id: u64) -> handover_core::ServiceClass {
        let z = splitmix(ue_seed(base_seed ^ SERVICE_STREAM, ue_id));
        // Top 53 bits → uniform in [0, 1).
        let u = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u < self.voice_share {
            handover_core::ServiceClass::Voice
        } else {
            handover_core::ServiceClass::Data
        }
    }

    /// Session parameters of a class.
    pub fn params(&self, class: handover_core::ServiceClass) -> ServiceParams {
        match class {
            handover_core::ServiceClass::Voice => self.voice,
            handover_core::ServiceClass::Data => self.data,
        }
    }

    /// Compact label, e.g. `svc0.70v`.
    pub fn label(&self) -> String {
        format!("svc{:.2}v", self.voice_share)
    }
}

/// The dynamic-workload plane configuration: any combination of UE
/// churn, tidal offered load, scheduled cell outages, and a
/// service-class mix. Every field defaults to "off"; an entirely inert
/// configuration normalizes to `None` (see
/// [`DynamicsConfig::normalized`]), so the fleet engine's byte-pinned
/// static path never even sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicsConfig {
    /// UE churn (`None`: the population is static).
    pub churn: Option<ChurnConfig>,
    /// Tidal offered-load wave (`None`: time-invariant offered load).
    pub tide: Option<TidalWave>,
    /// Scheduled cell outages (empty: every cell stays up).
    pub failures: Vec<CellOutage>,
    /// Service-class mix (`None`: one undifferentiated class).
    pub services: Option<ServiceMix>,
}

impl DynamicsConfig {
    /// A fully-off configuration (normalizes to `None`).
    pub fn none() -> Self {
        DynamicsConfig { churn: None, tide: None, failures: Vec::new(), services: None }
    }

    /// Validate every configured feature.
    pub fn validate(&self) {
        if let Err(err) = self.validated() {
            panic!("{err}");
        }
    }

    /// Typed form of [`DynamicsConfig::validate`]: the first defect of
    /// any configured feature, as a value.
    pub fn validated(&self) -> Result<(), crate::resilience::ConfigError> {
        if let Some(churn) = &self.churn {
            churn.validated()?;
        }
        if let Some(tide) = &self.tide {
            tide.validated()?;
        }
        for outage in &self.failures {
            outage.validated()?;
        }
        if let Some(services) = &self.services {
            services.validated()?;
        }
        Ok(())
    }

    /// Normalize: drop a zero-amplitude tide, then return `None` if
    /// nothing remains switched on. The fleet builder routes inert
    /// configurations back onto the exact static code path, which is
    /// what makes "feature off ⇒ bit-identical" trivially true.
    pub fn normalized(mut self) -> Option<Self> {
        if self.tide.is_some_and(|t| t.is_flat()) {
            self.tide = None;
        }
        if self.churn.is_none()
            && self.tide.is_none()
            && self.failures.is_empty()
            && self.services.is_none()
        {
            None
        } else {
            Some(self)
        }
    }

    /// Compact label for matrix axes, e.g.
    /// `churn100i-h500-l80+tide0.40p96+fail2+svc0.70v`.
    pub fn label(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some(churn) = &self.churn {
            parts.push(churn.label());
        }
        if let Some(tide) = &self.tide {
            parts.push(tide.label());
        }
        if !self.failures.is_empty() {
            parts.push(format!("fail{}", self.failures.len()));
        }
        if let Some(services) = &self.services {
            parts.push(services.label());
        }
        if parts.is_empty() {
            "dyn-off".to_string()
        } else {
            parts.join("+")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use handover_core::ServiceClass;

    fn churn() -> ChurnConfig {
        ChurnConfig { initial_ues: 10, horizon_steps: 100, mean_lifetime_steps: 25.0 }
    }

    #[test]
    fn churn_windows_are_deterministic_and_in_range() {
        let c = churn();
        c.validate();
        for id in 0..200 {
            let (a1, l1) = c.window(0xABCD, id);
            let (a2, l2) = c.window(0xABCD, id);
            assert_eq!((a1, l1), (a2, l2), "ue {id}");
            assert!(l1 >= 1);
            if id < c.initial_ues {
                assert_eq!(a1, 0, "initial population present at step 0");
            } else {
                assert!(a1 < c.horizon_steps, "arrival inside the horizon");
            }
        }
        // Different seeds, different windows (overwhelmingly).
        let differs = (10..110)
            .filter(|&id| c.window(1, id) != c.window(2, id))
            .count();
        assert!(differs > 90, "{differs}");
    }

    #[test]
    fn churn_arrivals_spread_over_the_horizon() {
        let c = churn();
        // Mean of uniform [0, 100) arrivals ≈ 50.
        let n = 2000u64;
        let sum: u64 = (c.initial_ues..c.initial_ues + n)
            .map(|id| c.window(7, id).0)
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 49.5).abs() < 3.0, "{mean}");
    }

    #[test]
    fn churn_stream_is_domain_separated() {
        // Same (seed, id) on churn vs. traffic streams: unrelated draws.
        let base = 0x5EED;
        let a = ue_seed(base ^ CHURN_STREAM, 3);
        let b = ue_seed(base ^ crate::traffic::TRAFFIC_STREAM, 3);
        let c = ue_seed(base, 3);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tide_intensity_wave_shape() {
        let t = TidalWave { period_steps: 100, amplitude: 0.5, phase_per_q: 0.25 };
        t.validate();
        // Peak at a quarter period (sin = 1), trough at three quarters.
        assert!((t.intensity(25, 0) - 1.5).abs() < 1e-9);
        assert!((t.intensity(75, 0) - 0.5).abs() < 1e-9);
        // Period-repeating.
        assert!((t.intensity(10, 0) - t.intensity(110, 0)).abs() < 1e-9);
        // One q unit shifts the wave by a quarter turn here.
        assert!((t.intensity(50, 1) - t.intensity(25, 0)).abs() < 1e-9);
        // Bounds.
        for s in 0..200 {
            let i = t.intensity(s, -2);
            assert!((0.5..=1.5).contains(&i), "{i}");
        }
        assert!(TidalWave { period_steps: 10, amplitude: 0.0, phase_per_q: 0.0 }.is_flat());
        assert!(!t.is_flat());
    }

    #[test]
    fn outage_window_membership() {
        let o = CellOutage { cell: Axial::ORIGIN, from_step: 10, until_step: 20 };
        o.validate();
        assert!(!o.is_down_at(9));
        assert!(o.is_down_at(10));
        assert!(o.is_down_at(19));
        assert!(!o.is_down_at(20));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_outage_window_rejected() {
        CellOutage { cell: Axial::ORIGIN, from_step: 5, until_step: 5 }.validate();
    }

    #[test]
    fn service_class_draw_matches_share_and_is_deterministic() {
        let mix = ServiceMix {
            voice_share: 0.7,
            voice: ServiceParams {
                mean_idle_steps: 10.0,
                mean_holding_steps: 3.0,
                extra_guard_channels: 0,
            },
            data: ServiceParams {
                mean_idle_steps: 20.0,
                mean_holding_steps: 12.0,
                extra_guard_channels: 1,
            },
        };
        mix.validate();
        let n = 5000u64;
        let voice = (0..n)
            .filter(|&id| mix.class_of(0xF00D, id) == ServiceClass::Voice)
            .count() as f64;
        let share = voice / n as f64;
        assert!((share - 0.7).abs() < 0.03, "{share}");
        assert_eq!(mix.class_of(1, 9), mix.class_of(1, 9));
        assert_eq!(mix.params(ServiceClass::Voice).mean_holding_steps, 3.0);
        assert_eq!(mix.params(ServiceClass::Data).extra_guard_channels, 1);
        // Degenerate shares are exact.
        let mut all_voice = mix;
        all_voice.voice_share = 1.0;
        assert!((0..500).all(|id| all_voice.class_of(3, id) == ServiceClass::Voice));
        let mut all_data = mix;
        all_data.voice_share = 0.0;
        assert!((0..500).all(|id| all_data.class_of(3, id) == ServiceClass::Data));
    }

    #[test]
    fn normalization_drops_inert_configurations() {
        assert_eq!(DynamicsConfig::none().normalized(), None);
        // A flat tide is inert.
        let flat = DynamicsConfig {
            tide: Some(TidalWave { period_steps: 10, amplitude: 0.0, phase_per_q: 0.1 }),
            ..DynamicsConfig::none()
        };
        assert_eq!(flat.normalized(), None);
        // Any live feature survives.
        let churned = DynamicsConfig { churn: Some(churn()), ..DynamicsConfig::none() };
        let n = churned.clone().normalized().expect("live config survives");
        assert_eq!(n, churned);
        // A live feature plus a flat tide: the tide is stripped, the
        // rest survives.
        let mixed = DynamicsConfig {
            churn: Some(churn()),
            tide: Some(TidalWave { period_steps: 10, amplitude: 0.0, phase_per_q: 0.0 }),
            ..DynamicsConfig::none()
        };
        assert_eq!(mixed.normalized(), Some(churned));
    }

    #[test]
    fn labels_compose() {
        assert_eq!(DynamicsConfig::none().label(), "dyn-off");
        let full = DynamicsConfig {
            churn: Some(churn()),
            tide: Some(TidalWave { period_steps: 96, amplitude: 0.4, phase_per_q: 0.1 }),
            failures: vec![CellOutage { cell: Axial::ORIGIN, from_step: 1, until_step: 2 }],
            services: Some(ServiceMix {
                voice_share: 0.7,
                voice: ServiceParams {
                    mean_idle_steps: 10.0,
                    mean_holding_steps: 3.0,
                    extra_guard_channels: 0,
                },
                data: ServiceParams {
                    mean_idle_steps: 20.0,
                    mean_holding_steps: 12.0,
                    extra_guard_channels: 1,
                },
            }),
        };
        assert_eq!(full.label(), "churn10i-h100-l25+tide0.40p96+fail1+svc0.70v");
    }

    #[test]
    fn config_serde_round_trip() {
        let full = DynamicsConfig {
            churn: Some(churn()),
            tide: Some(TidalWave { period_steps: 96, amplitude: 0.4, phase_per_q: 0.1 }),
            failures: vec![CellOutage { cell: Axial::new(1, -1), from_step: 3, until_step: 9 }],
            services: None,
        };
        let json = serde_json::to_string(&full).unwrap();
        let back: DynamicsConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(full, back);
    }
}
