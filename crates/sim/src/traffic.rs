//! The cell-load traffic plane: per-UE call sessions, per-cell channel
//! capacity with admission control, and the replay that turns a fleet
//! run's serving-cell traces into a [`TrafficReport`].
//!
//! ## Model
//!
//! Every UE is an on/off traffic source living on its own
//! domain-separated RNG stream (`ue_seed(base_seed ^ TRAFFIC_STREAM,
//! ue_id)`): exponential idle periods (mean
//! [`TrafficConfig::mean_idle_steps`]) alternate with exponential call
//! holding times (mean [`TrafficConfig::mean_holding_steps`]), measured
//! in *measurement steps* — the same clock the fleet engine ticks. The
//! superposition of thousands of such sources is Poisson to within
//! statistical error (Palm–Khintchine), which is what lets the
//! statistical suite pin the replay against the analytic
//! [`erlang_b`](handover_core::erlang_b) formula. A source stays busy
//! for the drawn holding time whether or not the call was admitted
//! (blocked calls cleared), so the *offered* process is a pure function
//! of `(seed, ue_id)` — admission outcomes never feed back into arrival
//! times, which is what keeps the whole plane deterministic.
//!
//! ## Admission control
//!
//! Each cell owns [`TrafficConfig::channels_per_cell`] channels.
//! A *new* call is admitted only when strictly fewer than
//! `channels_per_cell − guard_channels` are busy (the guard channels are
//! reserved for incoming handover calls, the classic trade of a little
//! blocking for less dropping). A *handover* call — an active call whose
//! UE's serving cell changed — is admitted whenever any channel is free;
//! if the target cell is full the call is **dropped**.
//!
//! ## Determinism and the replay split
//!
//! The fleet engine steps UEs in sharded chunks with no global step
//! barrier, so per-step admission cannot be decided inside the workers
//! without making results depend on scheduling. The traffic plane
//! therefore splits: workers record each UE's per-step serving cell
//! (a [`UeTrace`], a pure function of the UE id), and a sequential
//! [`CellLoadTracker`] replay merges the traces in UE-id order on one
//! global timeline — making the [`TrafficReport`] bit-identical for any
//! worker count, chunk size, or UE submission order. Occupancy feeds
//! back into the fleet loop through the replay's second product, the
//! frozen per-(cell, step) [`LoadField`]: with
//! [`TrafficConfig::load_feedback`] the engine reruns the fleet with
//! every policy's [`set_load_field`](handover_core::HandoverPolicy::set_load_field)
//! hook pointing at the previous pass's field — the delayed-load-report
//! semantics of real RRM, and the only feedback shape that preserves the
//! determinism contract.

use crate::dynamics::{DynamicsConfig, TidalWave};
use crate::fleet::ue_seed;
use cellgeom::Axial;
use handover_core::{
    CellTraffic, ClassTraffic, DynamicTrafficStats, LoadField, ServiceClass, TrafficReport,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Domain-separation mask for call-session streams: the replay folds it
/// into the fleet's measurement `base_seed` before deriving per-UE
/// session streams, so the traffic plane never consumes (or perturbs)
/// the measurement randomness — the contract behind the "traffic
/// disabled ≡ traffic enabled, fleet-wise" differential suite.
pub const TRAFFIC_STREAM: u64 = 0x7472_6166_6669_6321; // "traffic!"

/// Configuration of the traffic plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Channels per cell (c of the M/M/c cell).
    pub channels_per_cell: u32,
    /// Channels reserved for handover calls: new calls are admitted only
    /// below `channels_per_cell − guard_channels` busy channels. Must be
    /// strictly less than `channels_per_cell`.
    pub guard_channels: u32,
    /// Mean idle period between a UE's calls, in measurement steps
    /// (exponentially distributed; `1/λ`).
    pub mean_idle_steps: f64,
    /// Mean call holding time, in measurement steps (exponentially
    /// distributed; `1/μ`).
    pub mean_holding_steps: f64,
    /// Run a second fleet pass with the first pass's occupancy timeline
    /// injected into every policy (see the module docs) — required for
    /// load-aware policies to actually see congestion.
    pub load_feedback: bool,
}

impl TrafficConfig {
    /// A traffic plane offering `erlangs_per_ue` of load per UE (the
    /// long-run fraction of time a source is in a call,
    /// `h / (i + h) ∈ (0, 1)`) with the given holding time: the idle
    /// mean is derived as `i = h·(1 − a)/a`.
    pub fn erlang(
        channels_per_cell: u32,
        guard_channels: u32,
        erlangs_per_ue: f64,
        mean_holding_steps: f64,
    ) -> Self {
        assert!(
            erlangs_per_ue > 0.0 && erlangs_per_ue < 1.0,
            "per-UE offered load must lie in (0, 1)"
        );
        let cfg = TrafficConfig {
            channels_per_cell,
            guard_channels,
            mean_idle_steps: mean_holding_steps * (1.0 - erlangs_per_ue) / erlangs_per_ue,
            mean_holding_steps,
            load_feedback: false,
        };
        cfg.validate();
        cfg
    }

    /// Panic on invalid parameters (constructors and engines call this).
    pub fn validate(&self) {
        if let Err(err) = self.validated() {
            panic!("{err}");
        }
    }

    /// Typed form of [`TrafficConfig::validate`]: at least one channel
    /// per cell, guard channels strictly below capacity, and finite
    /// positive idle/holding means (NaN used to slip through the
    /// panicking asserts).
    pub fn validated(&self) -> Result<(), crate::resilience::ConfigError> {
        use crate::resilience::{require_positive, ConfigError};
        if self.channels_per_cell < 1 {
            return Err(ConfigError::TooSmall {
                field: "channels per cell (a cell needs at least one channel)",
                minimum: 1,
                got: u64::from(self.channels_per_cell),
            });
        }
        if self.guard_channels >= self.channels_per_cell {
            return Err(ConfigError::GuardChannelsExhaustCapacity {
                guard: self.guard_channels,
                channels: self.channels_per_cell,
            });
        }
        require_positive("mean idle time", self.mean_idle_steps)?;
        require_positive("mean holding time", self.mean_holding_steps)?;
        Ok(())
    }

    /// The long-run offered load of one UE, in Erlangs:
    /// `h / (i + h)` — the fraction of time the source spends in a call.
    pub fn offered_erlangs_per_ue(&self) -> f64 {
        self.mean_holding_steps / (self.mean_idle_steps + self.mean_holding_steps)
    }

    /// Enable the load-feedback second pass (see the module docs).
    #[must_use]
    pub fn with_load_feedback(mut self) -> Self {
        self.load_feedback = true;
        self
    }

    /// Compact label for matrix tables and bench ids: the per-UE offered
    /// load, the holding-time scale (two configs can offer the same load
    /// with very different session dynamics), the per-cell
    /// capacity/guard split, and a `-fb` suffix for feedback levels —
    /// e.g. `load0.10-h5-c4g1-fb`. Every knob reaches the label (the
    /// idle mean is implied by load + holding), so sweep levels
    /// differing in any of them never collide into one series key or
    /// table column; only loads equal to two decimals share a prefix.
    pub fn label(&self) -> String {
        format!(
            "load{:.2}-h{}-c{}g{}{}",
            self.offered_erlangs_per_ue(),
            self.mean_holding_steps,
            self.channels_per_cell,
            self.guard_channels,
            if self.load_feedback { "-fb" } else { "" }
        )
    }
}

/// One offered call session of a UE, in continuous step time: the call
/// is dialled at `start` and would hold for `duration` steps. Both are
/// pure functions of the UE's session stream — admission outcomes never
/// shift later sessions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfferedSession {
    /// Dial time, in steps from the UE's first measurement.
    pub start: f64,
    /// Holding time, in steps.
    pub duration: f64,
}

/// Draw an exponential variate with the given mean by inversion.
/// `gen::<f64>()` yields `u ∈ [0, 1)`, so `1 − u ∈ (0, 1]` keeps the
/// logarithm finite. Crate-visible: the dynamics plane draws churn
/// lifetimes from the same primitive.
pub(crate) fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    -mean * (1.0 - rng.gen::<f64>()).ln()
}

/// Generate one UE's offered sessions over `horizon_steps` measurement
/// steps, seeded with the UE's domain-separated session stream
/// (`ue_seed(base_seed ^ TRAFFIC_STREAM, ue_id)` — the caller passes the
/// final seed). Sessions are returned in dial order; a session's holding
/// time may run past the horizon (the replay clips it to the UE's
/// lifetime).
pub fn generate_sessions(cfg: &TrafficConfig, seed: u64, horizon_steps: usize) -> Vec<OfferedSession> {
    generate_sessions_with(cfg.mean_idle_steps, cfg.mean_holding_steps, seed, horizon_steps)
}

/// [`generate_sessions`] with explicit idle/holding means: the dynamic
/// replay substitutes per-service-class means while keeping the draw
/// sequence of the base plane (so a degenerate single-class mix with
/// the base means reproduces the static sessions bit-for-bit).
pub(crate) fn generate_sessions_with(
    mean_idle_steps: f64,
    mean_holding_steps: f64,
    seed: u64,
    horizon_steps: usize,
) -> Vec<OfferedSession> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sessions = Vec::new();
    let horizon = horizon_steps as f64;
    let mut t = 0.0f64;
    loop {
        t += exp_sample(&mut rng, mean_idle_steps);
        if t >= horizon {
            break;
        }
        let duration = exp_sample(&mut rng, mean_holding_steps);
        sessions.push(OfferedSession { start: t, duration });
        // The source stays busy for the full holding time whether the
        // call is admitted or not (blocked calls cleared).
        t += duration;
    }
    sessions
}

/// Generate one UE's offered sessions under a [`TidalWave`]: the idle
/// hazard `λ(t) = intensity(⌊t⌋, q(⌊t⌋)) / mean_idle` is integrated
/// piecewise-constantly per step (the time-rescaling construction of an
/// inhomogeneous Poisson process), where `q(s)` is the axial column of
/// the UE's serving cell at step `s` — so the wave a UE feels travels
/// with it across the city. Holding times stay exponential with the
/// class mean; only the *arrival* rate breathes. A pure function of
/// `(wave, means, seed, trace)`, like everything else in this plane.
fn generate_sessions_tidal(
    wave: &TidalWave,
    mean_idle_steps: f64,
    mean_holding_steps: f64,
    seed: u64,
    arrival_step: u64,
    trace: &UeTrace,
    cells: &[Axial],
) -> Vec<OfferedSession> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sessions = Vec::new();
    let steps = trace.steps;
    let horizon = steps as f64;
    let mut cursor = (0usize, 0u32);
    let mut t = arrival_step as f64;
    'sessions: loop {
        // One unit-mean exponential, consumed against the accumulated
        // hazard of the piecewise-constant rate.
        let mut e = exp_sample(&mut rng, 1.0);
        loop {
            if t >= horizon {
                break 'sessions;
            }
            let s = (t as u64).min(steps - 1);
            let q = cells[current_cell(trace, &mut cursor, s) as usize].q;
            let lambda = wave.intensity(s, q) / mean_idle_steps;
            let step_end = (s + 1) as f64;
            let hazard = (step_end - t) * lambda;
            if lambda > 0.0 && e <= hazard {
                t += e / lambda;
                break;
            }
            e -= hazard;
            t = step_end;
        }
        if t >= horizon {
            break;
        }
        let duration = exp_sample(&mut rng, mean_holding_steps);
        sessions.push(OfferedSession { start: t, duration });
        t += duration;
    }
    sessions
}

/// One UE's serving-cell history (layout indices, post-decision),
/// recorded by the fleet engine when the traffic plane is enabled and
/// **run-length encoded**: the step count plus the `(step, cell)`
/// change points. A UE's serving cell changes only on handover — a
/// handful of times per run — so a fleet's traces cost
/// O(UEs + handovers) memory instead of O(UEs × steps). A pure
/// function of the UE id and the fleet spec/seed, which is what lets
/// the sequential replay be worker-count invariant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UeTrace {
    /// The UE id.
    pub ue_id: u64,
    /// Measurement steps the UE took (the trace covers instants
    /// `0..steps`). `u64`: production-scale runs overflow a `u32` step
    /// counter (4.3 G steps), and a silent wrap would corrupt the
    /// replay's timeline.
    pub steps: u64,
    /// `(step, serving cell layout index)` change points, strictly
    /// ascending by step; the first entry sits at step 0 whenever
    /// `steps > 0`.
    pub changes: Vec<(u64, u32)>,
}

impl UeTrace {
    /// A UE pinned to one cell for its whole run — the M/M/c test and
    /// bench workhorse.
    pub fn pinned(ue_id: u64, steps: u64, cell: u32) -> Self {
        let changes = if steps == 0 { Vec::new() } else { vec![(0, cell)] };
        UeTrace { ue_id, steps, changes }
    }

    /// Build from a dense per-step serving list (tests / adapters).
    pub fn from_serving(ue_id: u64, serving: &[u32]) -> Self {
        let mut changes = Vec::new();
        for (s, &cell) in serving.iter().enumerate() {
            if changes.last().map_or(true, |&(_, c)| c != cell) {
                changes.push((s as u64, cell));
            }
        }
        UeTrace { ue_id, steps: serving.len() as u64, changes }
    }

    /// The serving cell at `step` (must be `< steps`).
    pub fn cell_at(&self, step: u64) -> u32 {
        assert!(step < self.steps, "step {step} outside the trace");
        match self.changes.binary_search_by_key(&step, |&(s, _)| s) {
            Ok(k) => self.changes[k].1,
            Err(k) => self.changes[k - 1].1,
        }
    }
}

/// The serving cell of one UE at instant `s`, read through its lazy
/// replay cursor (`(next change index, current cell)`). Queries must be
/// monotone in `s` per UE — exactly what the timeline walk guarantees —
/// so each change point is consumed once, O(1) amortised.
fn current_cell(trace: &UeTrace, cursor: &mut (usize, u32), s: u64) -> u32 {
    while cursor.0 < trace.changes.len() && trace.changes[cursor.0].0 <= s {
        cursor.1 = trace.changes[cursor.0].1;
        cursor.0 += 1;
    }
    cursor.1
}

/// The timeline window a session occupies over a `steps`-instant run:
/// `Some((start_step, last_step, natural_end))` when the call contends
/// for a channel at one or more sample instants, `None` otherwise.
///
/// * `start_step = ⌈start⌉` — the first sampled instant at or after the
///   dial time.
/// * `last_step = min(⌈start + duration⌉ − 1, steps − 1)` — the last
///   sampled instant inside the holding time, clipped to the UE's
///   lifetime. The subtraction is `checked`: a zero-duration session
///   dialled at an integer instant has `⌈end⌉ == start_step` (or even
///   `⌈end⌉ == 0` at `t = 0`), and the old saturating arithmetic turned
///   that last case into an inverted-then-"valid" `[0, 0]` window that
///   wrongly seized a channel for a call of zero length.
/// * `natural_end` — whether `last_step` is the call's own end rather
///   than the run's.
///
/// All arithmetic stays in `u64`: holding times drawn from heavy-tailed
/// exponentials can exceed `2³²` steps, and a `u32` truncation silently
/// wrapped the window bounds.
fn call_window(session: &OfferedSession, steps: u64) -> Option<(u64, u64, bool)> {
    let start_step = session.start.ceil() as u64;
    if start_step >= steps {
        // Dialled after the UE's last sample.
        return None;
    }
    let natural_last = ((session.start + session.duration).ceil() as u64).checked_sub(1)?;
    if natural_last < start_step {
        // Over entirely between two samples: never contends.
        return None;
    }
    Some((start_step, natural_last.min(steps - 1), natural_last < steps))
}

/// One admission-visible call waiting to be offered (the replay's
/// precomputed arrival event).
#[derive(Debug, Clone, Copy)]
struct PendingCall {
    /// Index into the trace list (not the UE id).
    ue: u32,
    /// Admission instant (`ceil` of the dial time).
    step: u64,
    /// Last timeline instant the call is sampled at (inclusive, clipped
    /// to the UE's lifetime).
    last_step: u64,
    /// Whether `last_step` is the call's natural end (vs. the UE's run
    /// ending first).
    natural_end: bool,
}

/// One call currently holding a channel during the replay.
#[derive(Debug, Clone, Copy)]
struct ActiveCall {
    /// Index into the trace list (not the UE id).
    ue: u32,
    /// Cell (layout index) currently carrying the call.
    cell: u32,
    /// Last timeline instant the call is sampled at (inclusive).
    last_step: u64,
    /// Whether `last_step` is the call's natural end (vs. the UE's run
    /// ending first).
    natural_end: bool,
}

/// Per-step channel-occupancy tracker: the sequential replay core of the
/// traffic plane. Feed it releases, handover relocations and new-call
/// arrivals for each timeline step, close the step with
/// [`CellLoadTracker::record_step`], and it accumulates the per-cell
/// occupancy histograms, the admission counters, and the step-major
/// utilization timeline that becomes the [`LoadField`].
#[derive(Debug, Clone)]
pub struct CellLoadTracker {
    capacity: u32,
    guard: u32,
    occupancy: Vec<u32>,
    per_cell: Vec<CellTraffic>,
    util_timeline: Vec<f64>,
    steps: u64,
    busy_channel_steps: u64,
}

impl CellLoadTracker {
    /// Zeroed tracker over the layout's cells.
    pub fn new(cells: &[Axial], capacity: u32, guard: u32) -> Self {
        assert!(capacity >= 1, "a cell needs at least one channel");
        assert!(guard < capacity, "guard channels must leave room for new calls");
        CellLoadTracker {
            capacity,
            guard,
            occupancy: vec![0; cells.len()],
            per_cell: cells.iter().map(|&c| CellTraffic::new(c, capacity)).collect(),
            util_timeline: Vec::new(),
            steps: 0,
            busy_channel_steps: 0,
        }
    }

    /// Current busy-channel count of a cell.
    pub fn occupancy(&self, cell_idx: usize) -> u32 {
        self.occupancy[cell_idx]
    }

    /// Offer a new call to `cell_idx`: admitted (and a channel seized)
    /// only below the guard-reduced capacity.
    pub fn offer_new_call(&mut self, cell_idx: usize) -> bool {
        self.offer_new_call_guarded(cell_idx, 0)
    }

    /// [`CellLoadTracker::offer_new_call`] with `extra_guard` additional
    /// channels reserved against this call — the service-class admission
    /// priority knob (a class's new calls must leave
    /// `guard + extra_guard` channels free). Saturates at zero admission
    /// room: a class whose extra guard exceeds the cell's new-call
    /// capacity is always blocked.
    pub fn offer_new_call_guarded(&mut self, cell_idx: usize, extra_guard: u32) -> bool {
        self.per_cell[cell_idx].offered_calls += 1;
        let room = (self.capacity - self.guard).saturating_sub(extra_guard);
        if self.occupancy[cell_idx] < room {
            self.occupancy[cell_idx] += 1;
            true
        } else {
            self.per_cell[cell_idx].blocked_calls += 1;
            false
        }
    }

    /// Record a new call refused without consulting occupancy — the
    /// admission outcome for a cell that is down (a failed BS offers no
    /// channels at all).
    pub fn refuse_new_call(&mut self, cell_idx: usize) {
        self.per_cell[cell_idx].offered_calls += 1;
        self.per_cell[cell_idx].blocked_calls += 1;
    }

    /// Relocate an active call from `from_idx` to `to_idx`: admitted
    /// whenever the target has any free channel; on refusal the call is
    /// dropped (the source channel is released either way).
    pub fn offer_handover(&mut self, from_idx: usize, to_idx: usize) -> bool {
        debug_assert!(self.occupancy[from_idx] > 0, "handover of a call nobody carries");
        self.occupancy[from_idx] -= 1;
        if self.occupancy[to_idx] < self.capacity {
            self.occupancy[to_idx] += 1;
            self.per_cell[to_idx].handover_arrivals += 1;
            true
        } else {
            self.per_cell[to_idx].dropped_calls += 1;
            false
        }
    }

    /// Release the channel of a call ending in `cell_idx`.
    pub fn release(&mut self, cell_idx: usize) {
        debug_assert!(self.occupancy[cell_idx] > 0, "release of a call nobody carries");
        self.occupancy[cell_idx] -= 1;
    }

    /// Close one timeline step: record every cell's occupancy into its
    /// histogram and append the utilization row of the [`LoadField`].
    pub fn record_step(&mut self) {
        self.steps += 1;
        for (k, &occ) in self.occupancy.iter().enumerate() {
            self.per_cell[k].occupancy_steps[occ as usize] += 1;
            self.busy_channel_steps += occ as u64;
            self.util_timeline.push(occ as f64 / self.capacity as f64);
        }
    }

    /// Consume the tracker into its two products: the per-cell half of
    /// the [`TrafficReport`] and the [`LoadField`] feedback timeline.
    fn finish(self) -> (Vec<CellTraffic>, u64, u64, LoadField) {
        let cells: Vec<Axial> = self.per_cell.iter().map(|c| c.cell).collect();
        let field = LoadField::new(cells, self.steps as usize, self.util_timeline);
        (self.per_cell, self.steps, self.busy_channel_steps, field)
    }
}

/// Replay a fleet run's serving-cell traces against the traffic plane:
/// generate every UE's offered sessions, walk the global timeline once,
/// and account admission, handover relocation and occupancy per step.
///
/// `traces` must be sorted by ascending UE id (the fleet engine sorts
/// its merge before calling) — the replay processes same-step events in
/// UE-id order, which pins the one remaining ordering degree of freedom
/// and makes the result a pure function of `(config, traces, base_seed)`.
pub fn replay_traffic(
    cfg: &TrafficConfig,
    cells: &[Axial],
    traces: &[UeTrace],
    base_seed: u64,
) -> (TrafficReport, LoadField) {
    cfg.validate();
    debug_assert!(
        traces.windows(2).all(|w| w[0].ue_id < w[1].ue_id),
        "traces must be sorted by UE id"
    );
    let mut tracker = CellLoadTracker::new(cells, cfg.channels_per_cell, cfg.guard_channels);

    // Generate every UE's offered sessions (pure per-UE streams) and
    // flatten the admission-visible ones — dialled before the UE's last
    // sample, spanning at least one sample instant — into one arrival
    // list. Building it UE-ascending and stable-sorting by step keeps
    // same-step arrivals in UE-id order, the replay's pinned event
    // order. Sessions that never reach admission contribute neither an
    // offered call nor offered call-time, so `offered_erlangs` and
    // `blocking_probability` describe the same call population.
    let mut arrivals: Vec<PendingCall> = Vec::new();
    let mut offered_call_time = 0.0f64;
    for (ue, trace) in traces.iter().enumerate() {
        let steps = trace.steps;
        let sessions = generate_sessions(
            cfg,
            ue_seed(base_seed ^ TRAFFIC_STREAM, trace.ue_id),
            steps as usize,
        );
        for session in &sessions {
            let Some((start_step, last_step, natural_end)) = call_window(session, steps) else {
                continue;
            };
            offered_call_time += (session.start + session.duration).min(steps as f64) - session.start;
            arrivals.push(PendingCall { ue: ue as u32, step: start_step, last_step, natural_end });
        }
    }
    arrivals.sort_by_key(|a| a.step);

    // Per-UE lazy serving-cell cursors into the RLE traces (the
    // timeline walk queries each UE monotonically).
    let mut cursors: Vec<(usize, u32)> = vec![(0, 0); traces.len()];

    let timeline = traces.iter().map(|t| t.steps).max().unwrap_or(0);
    let mut active: Vec<ActiveCall> = Vec::new();
    let mut next_arrival = 0usize;
    let mut offered = 0u64;
    let mut blocked = 0u64;
    let mut carried = 0u64;
    let mut ho_attempts = 0u64;
    let mut dropped = 0u64;
    let mut completed = 0u64;

    for s in 0..timeline {
        // 1 — releases: calls whose last sampled instant was s−1 free
        // their channel before anything else contends for it.
        active.retain(|call| {
            if call.last_step < s {
                tracker.release(call.cell as usize);
                if call.natural_end {
                    completed += 1;
                }
                false
            } else {
                true
            }
        });

        // 2 — handover relocations, in call-admission order (which the
        // sequential replay makes deterministic): an active call whose
        // UE now sits in a different cell must find a free channel
        // there or die.
        active.retain_mut(|call| {
            let ue = call.ue as usize;
            let now = current_cell(&traces[ue], &mut cursors[ue], s);
            if now == call.cell {
                return true;
            }
            ho_attempts += 1;
            if tracker.offer_handover(call.cell as usize, now as usize) {
                call.cell = now;
                true
            } else {
                dropped += 1;
                false
            }
        });

        // 3 — new-call arrivals dialled in (s−1, s], in UE-id order.
        while let Some(arrival) = arrivals.get(next_arrival) {
            if arrival.step > s {
                break;
            }
            next_arrival += 1;
            let ue = arrival.ue as usize;
            let cell = current_cell(&traces[ue], &mut cursors[ue], s);
            offered += 1;
            if tracker.offer_new_call(cell as usize) {
                carried += 1;
                active.push(ActiveCall {
                    ue: arrival.ue,
                    cell,
                    last_step: arrival.last_step,
                    natural_end: arrival.natural_end,
                });
            } else {
                blocked += 1;
            }
        }

        // 4 — close the step: histogram + utilization row.
        tracker.record_step();
    }

    // Drain the calls still holding a channel when the timeline ends:
    // the ones whose own holding time ran out exactly on the final
    // sampled instant completed naturally, the rest were cut off by
    // their UE's run ending.
    for call in &active {
        if call.natural_end {
            completed += 1;
        }
    }

    let (per_cell, steps, busy_channel_steps, field) = tracker.finish();
    let report = TrafficReport {
        channels_per_cell: cfg.channels_per_cell,
        guard_channels: cfg.guard_channels,
        steps,
        offered_calls: offered,
        blocked_calls: blocked,
        carried_calls: carried,
        handover_attempts: ho_attempts,
        dropped_calls: dropped,
        completed_calls: completed,
        offered_erlangs: if steps == 0 { 0.0 } else { offered_call_time / steps as f64 },
        carried_erlangs: if steps == 0 {
            0.0
        } else {
            busy_channel_steps as f64 / steps as f64
        },
        per_cell,
    };
    (report, field)
}

/// [`replay_traffic`] under a dynamic workload: per-service-class
/// session streams, tidal arrival rates, churn-delayed UE arrivals
/// (read off the traces' first change points), and scheduled cell
/// outages that refuse admission and strand or force-relocate active
/// calls. Returns the base [`TrafficReport`] (whose counters keep the
/// static plane's meaning — failure-caused losses are broken out into
/// the [`DynamicTrafficStats`], not mixed into the ordinary
/// blocking/dropping columns), the [`LoadField`] feedback timeline, and
/// the dropped-Erlang breakdown by cause.
///
/// The degenerate contracts the differential suite pins:
///
/// * a single-class mix whose parameters equal `cfg`'s reproduces the
///   static session draws bit-for-bit (the class draw runs on
///   [`SERVICE_STREAM`](crate::dynamics::SERVICE_STREAM), not the
///   session stream);
/// * outages that never intersect the timeline change nothing;
/// * without churn every trace starts at step 0 and the arrival shift
///   is the identity.
pub fn replay_traffic_dynamic(
    cfg: &TrafficConfig,
    cells: &[Axial],
    traces: &[UeTrace],
    base_seed: u64,
    dynamics: &DynamicsConfig,
) -> (TrafficReport, LoadField, DynamicTrafficStats) {
    cfg.validate();
    dynamics.validate();
    debug_assert!(
        traces.windows(2).all(|w| w[0].ue_id < w[1].ue_id),
        "traces must be sorted by UE id"
    );
    let mut tracker = CellLoadTracker::new(cells, cfg.channels_per_cell, cfg.guard_channels);

    // Per-UE class assignment (`None`: one undifferentiated class using
    // the base config's means).
    let classes: Option<Vec<ServiceClass>> = dynamics
        .services
        .as_ref()
        .map(|mix| traces.iter().map(|t| mix.class_of(base_seed, t.ue_id)).collect());
    let class_params = |ue: usize| -> (f64, f64, u32) {
        match (&dynamics.services, &classes) {
            (Some(mix), Some(cls)) => {
                let p = mix.params(cls[ue]);
                (p.mean_idle_steps, p.mean_holding_steps, p.extra_guard_channels)
            }
            _ => (cfg.mean_idle_steps, cfg.mean_holding_steps, 0),
        }
    };
    let cls = |ue: usize| -> Option<usize> {
        classes.as_ref().map(|c| match c[ue] {
            ServiceClass::Voice => 0,
            ServiceClass::Data => 1,
        })
    };
    let mut per_class: Vec<ClassTraffic> = if classes.is_some() {
        vec![ClassTraffic::new(ServiceClass::Voice), ClassTraffic::new(ServiceClass::Data)]
    } else {
        Vec::new()
    };
    let mut class_time = [0.0f64; 2];

    // Scheduled outages, resolved to layout indices once.
    let outages: Vec<(u32, u64, u64)> = dynamics
        .failures
        .iter()
        .map(|o| {
            let idx = cells
                .iter()
                .position(|&c| c == o.cell)
                .expect("outage cell must be in the layout");
            (idx as u32, o.from_step, o.until_step)
        })
        .collect();
    let down = |cell: u32, s: u64| outages.iter().any(|&(k, f, u)| k == cell && f <= s && s < u);

    // Offered sessions per UE, windowed to the UE's presence `[arrival,
    // steps)` read off its trace — churned-in UEs dial their first call
    // after they arrive, and a departed UE's tail sessions never reach
    // admission (`call_window` clips against `trace.steps`).
    let mut arrivals: Vec<PendingCall> = Vec::new();
    let mut offered_call_time = 0.0f64;
    for (ue, trace) in traces.iter().enumerate() {
        let steps = trace.steps;
        let Some(&(arrival, _)) = trace.changes.first() else {
            continue;
        };
        let (idle, holding, _) = class_params(ue);
        let seed = ue_seed(base_seed ^ TRAFFIC_STREAM, trace.ue_id);
        let sessions: Vec<OfferedSession> = match &dynamics.tide {
            Some(wave) => {
                generate_sessions_tidal(wave, idle, holding, seed, arrival, trace, cells)
            }
            None => generate_sessions_with(idle, holding, seed, (steps - arrival) as usize)
                .into_iter()
                .map(|s| OfferedSession { start: s.start + arrival as f64, ..s })
                .collect(),
        };
        for session in &sessions {
            let Some((start_step, last_step, natural_end)) = call_window(session, steps) else {
                continue;
            };
            let time = (session.start + session.duration).min(steps as f64) - session.start;
            offered_call_time += time;
            if let Some(k) = cls(ue) {
                class_time[k] += time;
            }
            arrivals.push(PendingCall { ue: ue as u32, step: start_step, last_step, natural_end });
        }
    }
    arrivals.sort_by_key(|a| a.step);

    let mut cursors: Vec<(usize, u32)> = vec![(0, 0); traces.len()];
    let timeline = traces.iter().map(|t| t.steps).max().unwrap_or(0);
    let mut active: Vec<ActiveCall> = Vec::new();
    let mut next_arrival = 0usize;
    let mut offered = 0u64;
    let mut blocked = 0u64;
    let mut carried = 0u64;
    let mut ho_attempts = 0u64;
    let mut dropped = 0u64;
    let mut completed = 0u64;
    let mut failure_evicted = 0u64;
    let mut failure_dropped = 0u64;
    let mut blocked_time = 0.0f64;
    let mut dropped_time = 0.0f64;
    let mut failure_time = 0.0f64;

    for s in 0..timeline {
        // 1 — releases (identical to the static replay).
        active.retain(|call| {
            if call.last_step < s {
                tracker.release(call.cell as usize);
                if call.natural_end {
                    completed += 1;
                    if let Some(k) = cls(call.ue as usize) {
                        per_class[k].completed_calls += 1;
                    }
                }
                false
            } else {
                true
            }
        });

        // 2 — relocations and failure evictions. A call whose UE stayed
        // put on a cell that is down this step is stranded (the engine
        // found it no live target) and lost to the failure; a call whose
        // UE moved off a down cell was force-evicted by the engine and
        // relocates outside the ordinary handover accounting.
        active.retain_mut(|call| {
            let ue = call.ue as usize;
            let now = current_cell(&traces[ue], &mut cursors[ue], s);
            if now == call.cell {
                if down(call.cell, s) {
                    tracker.release(call.cell as usize);
                    failure_dropped += 1;
                    failure_time += (call.last_step - s + 1) as f64;
                    return false;
                }
                return true;
            }
            let forced = down(call.cell, s);
            if forced {
                failure_evicted += 1;
            } else {
                ho_attempts += 1;
                if let Some(k) = cls(ue) {
                    per_class[k].handover_attempts += 1;
                }
            }
            if tracker.offer_handover(call.cell as usize, now as usize) {
                call.cell = now;
                true
            } else {
                let lost = (call.last_step - s + 1) as f64;
                if forced {
                    failure_dropped += 1;
                    failure_time += lost;
                } else {
                    dropped += 1;
                    dropped_time += lost;
                    if let Some(k) = cls(ue) {
                        per_class[k].dropped_calls += 1;
                    }
                }
                false
            }
        });

        // 3 — new-call arrivals, in UE-id order. A down cell offers no
        // channels: the call is blocked and its holding time charged to
        // the failure cause.
        while let Some(arrival) = arrivals.get(next_arrival) {
            if arrival.step > s {
                break;
            }
            next_arrival += 1;
            let ue = arrival.ue as usize;
            let cell = current_cell(&traces[ue], &mut cursors[ue], s);
            offered += 1;
            if let Some(k) = cls(ue) {
                per_class[k].offered_calls += 1;
            }
            let window = (arrival.last_step - s + 1) as f64;
            if down(cell, s) {
                tracker.refuse_new_call(cell as usize);
                blocked += 1;
                failure_time += window;
                if let Some(k) = cls(ue) {
                    per_class[k].blocked_calls += 1;
                }
            } else {
                let (_, _, extra_guard) = class_params(ue);
                if tracker.offer_new_call_guarded(cell as usize, extra_guard) {
                    carried += 1;
                    if let Some(k) = cls(ue) {
                        per_class[k].carried_calls += 1;
                    }
                    active.push(ActiveCall {
                        ue: arrival.ue,
                        cell,
                        last_step: arrival.last_step,
                        natural_end: arrival.natural_end,
                    });
                } else {
                    blocked += 1;
                    blocked_time += window;
                    if let Some(k) = cls(ue) {
                        per_class[k].blocked_calls += 1;
                    }
                }
            }
        }

        // 4 — close the step.
        tracker.record_step();
    }

    for call in &active {
        if call.natural_end {
            completed += 1;
            if let Some(k) = cls(call.ue as usize) {
                per_class[k].completed_calls += 1;
            }
        }
    }

    let (per_cell, steps, busy_channel_steps, field) = tracker.finish();
    let over = |t: f64| if steps == 0 { 0.0 } else { t / steps as f64 };
    for (k, class) in per_class.iter_mut().enumerate() {
        class.offered_erlangs = over(class_time[k]);
    }
    let stats = DynamicTrafficStats {
        failure_evicted_calls: failure_evicted,
        failure_dropped_calls: failure_dropped,
        blocked_erlangs: over(blocked_time),
        dropped_erlangs: over(dropped_time),
        failure_erlangs: over(failure_time),
        per_class,
    };
    let report = TrafficReport {
        channels_per_cell: cfg.channels_per_cell,
        guard_channels: cfg.guard_channels,
        steps,
        offered_calls: offered,
        blocked_calls: blocked,
        carried_calls: carried,
        handover_attempts: ho_attempts,
        dropped_calls: dropped,
        completed_calls: completed,
        offered_erlangs: over(offered_call_time),
        carried_erlangs: over(busy_channel_steps as f64),
        per_cell,
    };
    (report, field, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cells() -> Vec<Axial> {
        vec![Axial::ORIGIN, Axial::new(1, 0)]
    }

    fn cfg(channels: u32, guard: u32) -> TrafficConfig {
        TrafficConfig {
            channels_per_cell: channels,
            guard_channels: guard,
            mean_idle_steps: 10.0,
            mean_holding_steps: 5.0,
            load_feedback: false,
        }
    }

    #[test]
    fn erlang_constructor_inverts_the_load_formula() {
        let c = TrafficConfig::erlang(8, 1, 0.25, 20.0);
        assert!((c.offered_erlangs_per_ue() - 0.25).abs() < 1e-12);
        assert_eq!(c.mean_holding_steps, 20.0);
        assert!((c.mean_idle_steps - 60.0).abs() < 1e-12);
        assert!(!c.load_feedback);
        assert!(c.with_load_feedback().load_feedback);
        assert_eq!(c.label(), "load0.25-h20-c8g1");
        assert_eq!(c.with_load_feedback().label(), "load0.25-h20-c8g1-fb");
    }

    #[test]
    #[should_panic(expected = "guard channels")]
    fn guard_must_leave_room() {
        TrafficConfig::erlang(4, 4, 0.1, 10.0).validate();
    }

    #[test]
    fn sessions_are_deterministic_and_ordered() {
        let c = cfg(4, 0);
        let a = generate_sessions(&c, 42, 500);
        let b = generate_sessions(&c, 42, 500);
        assert_eq!(a, b);
        assert_ne!(a, generate_sessions(&c, 43, 500), "the seed reaches the stream");
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[1].start >= w[0].start + w[0].duration, "sessions never overlap");
        }
        for s in &a {
            assert!(s.start >= 0.0 && s.start < 500.0);
            assert!(s.duration >= 0.0);
        }
    }

    #[test]
    fn zero_horizon_generates_nothing() {
        assert!(generate_sessions(&cfg(4, 0), 7, 0).is_empty());
    }

    /// A trace pinning `n` UEs to cell 0 for `steps` steps.
    fn pinned_traces(n: u64, steps: u64) -> Vec<UeTrace> {
        (0..n).map(|ue_id| UeTrace::pinned(ue_id, steps, 0)).collect()
    }

    #[test]
    fn rle_traces_round_trip_dense_histories() {
        let serving = [0u32, 0, 1, 1, 1, 0, 2, 2];
        let t = UeTrace::from_serving(9, &serving);
        assert_eq!(t.steps, 8);
        assert_eq!(t.changes, vec![(0, 0), (2, 1), (5, 0), (6, 2)]);
        for (s, &cell) in serving.iter().enumerate() {
            assert_eq!(t.cell_at(s as u64), cell, "step {s}");
        }
        let p = UeTrace::pinned(1, 4, 3);
        assert_eq!(p.changes, vec![(0, 3)]);
        assert_eq!(p.cell_at(3), 3);
        assert_eq!(UeTrace::pinned(2, 0, 0).changes, vec![]);
        assert_eq!(UeTrace::from_serving(3, &[]).steps, 0);
    }

    #[test]
    fn replay_accounts_every_offered_call() {
        let c = cfg(8, 0);
        let traces = pinned_traces(20, 400);
        let (report, field) = replay_traffic(&c, &two_cells(), &traces, 9);
        assert_eq!(report.steps, 400);
        assert!(report.offered_calls > 0);
        assert_eq!(report.offered_calls, report.carried_calls + report.blocked_calls);
        assert!(report.completed_calls <= report.carried_calls);
        assert_eq!(report.handover_attempts, 0, "pinned UEs never hand over");
        assert_eq!(report.dropped_calls, 0);
        // All load lands on cell 0.
        assert_eq!(report.per_cell[1].offered_calls, 0);
        assert!(report.per_cell[0].erlangs() > 0.0);
        assert!((report.carried_erlangs - report.per_cell[0].erlangs()).abs() < 1e-12);
        assert!(report.offered_erlangs >= report.carried_erlangs);
        assert_eq!(field.n_steps(), 400);
        assert_eq!(field.utilization(Axial::new(1, 0), 10), 0.0);
    }

    #[test]
    fn replay_is_deterministic() {
        let c = cfg(4, 1);
        let traces = pinned_traces(10, 300);
        let a = replay_traffic(&c, &two_cells(), &traces, 5);
        let b = replay_traffic(&c, &two_cells(), &traces, 5);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn single_channel_cell_serializes_calls() {
        // One channel, heavy load: occupancy never exceeds 1 and blocking
        // is substantial.
        let c = TrafficConfig {
            channels_per_cell: 1,
            guard_channels: 0,
            mean_idle_steps: 2.0,
            mean_holding_steps: 10.0,
            load_feedback: false,
        };
        let traces = pinned_traces(30, 500);
        let (report, _) = replay_traffic(&c, &two_cells(), &traces, 3);
        assert_eq!(report.per_cell[0].peak_occupancy(), 1);
        assert!(report.blocking_probability() > 0.5, "{}", report.blocking_probability());
        assert!(report.carried_erlangs <= 1.0);
    }

    #[test]
    fn guard_channels_shift_blocking_onto_new_calls() {
        // Two UEs ping-ponging between cells under load: with a guard
        // channel, new calls see capacity c−1 while handovers see c, so
        // blocking rises and dropping falls relative to guard = 0.
        let mk_traces = || -> Vec<UeTrace> {
            (0..40)
                .map(|ue_id| {
                    let serving: Vec<u32> =
                        (0..400).map(|s| ((s / 40 + ue_id as usize) % 2) as u32).collect();
                    UeTrace::from_serving(ue_id, &serving)
                })
                .collect()
        };
        let base = TrafficConfig {
            channels_per_cell: 4,
            guard_channels: 0,
            mean_idle_steps: 8.0,
            mean_holding_steps: 30.0,
            load_feedback: false,
        };
        let guarded = TrafficConfig { guard_channels: 2, ..base };
        let (no_guard, _) = replay_traffic(&base, &two_cells(), &mk_traces(), 11);
        let (with_guard, _) = replay_traffic(&guarded, &two_cells(), &mk_traces(), 11);
        assert!(with_guard.handover_attempts > 0);
        assert!(
            with_guard.blocking_probability() > no_guard.blocking_probability(),
            "guard channels block more new calls: {} vs {}",
            with_guard.blocking_probability(),
            no_guard.blocking_probability()
        );
        assert!(
            with_guard.dropping_probability() <= no_guard.dropping_probability(),
            "guard channels drop fewer handovers: {} vs {}",
            with_guard.dropping_probability(),
            no_guard.dropping_probability()
        );
    }

    #[test]
    fn handover_moves_the_call_and_full_targets_drop_it() {
        // A hand-built scenario: UE 0 holds a call in cell 0 and moves to
        // cell 1 at step 5; UEs 1..=c fill cell 1 completely so the
        // relocation must be refused.
        let c = TrafficConfig {
            channels_per_cell: 2,
            guard_channels: 0,
            // Practically deterministic sessions: the first idle period
            // of every stream lands near 0 and the call outlives the run.
            mean_idle_steps: 1e-6,
            mean_holding_steps: 1e9,
            load_feedback: false,
        };
        let moving: Vec<u32> = (0..10).map(|s| u32::from(s >= 5)).collect();
        let mut traces = vec![UeTrace::from_serving(0, &moving)];
        for ue_id in 1..=2 {
            traces.push(UeTrace::pinned(ue_id, 10, 1));
        }
        let (report, field) = replay_traffic(&c, &two_cells(), &traces, 1);
        assert_eq!(report.carried_calls, 3, "all three calls admitted at step ~0");
        assert_eq!(report.handover_attempts, 1);
        assert_eq!(report.dropped_calls, 1, "cell 1 was full");
        assert_eq!(report.per_cell[1].dropped_calls, 1);
        // After the drop, cell 0 is empty and cell 1 stays saturated.
        assert_eq!(field.utilization(Axial::ORIGIN, 9), 0.0);
        assert_eq!(field.utilization(Axial::new(1, 0), 9), 1.0);
    }

    #[test]
    fn calls_ending_on_the_final_step_count_as_completed() {
        // A call cut off by the run's end is not "completed"…
        let cut_off = TrafficConfig {
            channels_per_cell: 2,
            guard_channels: 0,
            mean_idle_steps: 1e-6,
            mean_holding_steps: 1e9,
            load_feedback: false,
        };
        let (report, _) = replay_traffic(&cut_off, &two_cells(), &pinned_traces(1, 10), 1);
        assert_eq!(report.carried_calls, 1);
        assert_eq!(report.completed_calls, 0, "the run ended mid-call");

        // …but a call whose holding time runs out exactly ON the final
        // sampled instant is. Size the trace so the first session's
        // natural end lands on the last step, then count every session
        // the replay must see as completed, independently of the replay.
        let cfg = TrafficConfig {
            channels_per_cell: 2,
            guard_channels: 0,
            mean_idle_steps: 3.0,
            mean_holding_steps: 5.0,
            load_feedback: false,
        };
        let base_seed = 7u64;
        let stream = ue_seed(base_seed ^ TRAFFIC_STREAM, 0);
        let first = generate_sessions(&cfg, stream, 1_000_000)[0];
        let len = (first.start + first.duration).ceil() as u64; // natural_last + 1
        let expected: u64 = generate_sessions(&cfg, stream, len as usize)
            .iter()
            // Visible and ending inside the run: exactly a natural-end
            // call window.
            .filter(|s| matches!(call_window(s, len), Some((_, _, true))))
            .count() as u64;
        assert!(expected >= 1, "the first session ends exactly on the final step");
        let (report, _) = replay_traffic(&cfg, &two_cells(), &pinned_traces(1, len), base_seed);
        assert_eq!(
            report.completed_calls, expected,
            "final-step natural ends must be drained into the completed count"
        );
    }

    #[test]
    fn call_window_bounds_are_consistent() {
        // A zero-duration session dialled exactly at t = 0 must not
        // contend: the old `saturating_sub(1)` arithmetic turned its
        // `⌈end⌉ = 0` into a bogus [0, 0] window that seized a channel.
        assert_eq!(call_window(&OfferedSession { start: 0.0, duration: 0.0 }, 10), None);
        // Zero duration at a later integer instant: over between samples.
        assert_eq!(call_window(&OfferedSession { start: 3.0, duration: 0.0 }, 10), None);
        // Sub-step duration straddling a sample instant does contend.
        assert_eq!(
            call_window(&OfferedSession { start: 2.9, duration: 0.2 }, 10),
            Some((3, 3, true))
        );
        // Sub-step duration strictly between samples never does.
        assert_eq!(call_window(&OfferedSession { start: 2.1, duration: 0.2 }, 10), None);
        // Dialled after the last sample.
        assert_eq!(call_window(&OfferedSession { start: 10.0, duration: 5.0 }, 10), None);
        // A holding time past 2³² steps must clip, not wrap: the old
        // `as u32` truncation folded the end bound modulo 2³².
        assert_eq!(
            call_window(&OfferedSession { start: 1.0, duration: 1.0e10 }, 100),
            Some((1, 99, false))
        );
        // Every produced window is well-ordered.
        for k in 0..200 {
            let s = OfferedSession { start: 0.37 * k as f64, duration: 0.11 * k as f64 };
            if let Some((start, last, _)) = call_window(&s, 50) {
                assert!(start <= last && last < 50, "window {start}..={last} for {s:?}");
            }
        }
    }

    #[test]
    fn near_zero_holding_times_never_invert_the_window() {
        // Practically-zero holding times: nearly every session is over
        // between two samples. The replay must stay consistent (no
        // inverted windows, offered = carried + blocked) instead of
        // seizing channels for zero-length calls.
        let c = TrafficConfig {
            channels_per_cell: 2,
            guard_channels: 0,
            mean_idle_steps: 0.5,
            mean_holding_steps: 1e-12,
            load_feedback: false,
        };
        let traces = pinned_traces(50, 200);
        let (report, _) = replay_traffic(&c, &two_cells(), &traces, 21);
        assert_eq!(report.offered_calls, report.carried_calls + report.blocked_calls);
        assert_eq!(report.blocked_calls, 0, "nothing holds a channel long enough to block");
        assert!(report.carried_erlangs < 1e-6, "{}", report.carried_erlangs);
        // Each admitted call must still satisfy start ≤ last by
        // construction — replay would panic on an inverted retain window.
        assert!(report.completed_calls <= report.carried_calls);
    }

    #[test]
    fn empty_traces_make_an_empty_report() {
        let (report, field) = replay_traffic(&cfg(4, 0), &two_cells(), &[], 1);
        assert_eq!(report.steps, 0);
        assert_eq!(report.offered_calls, 0);
        assert_eq!(report.offered_erlangs, 0.0);
        assert_eq!(report.carried_erlangs, 0.0);
        assert_eq!(field.n_steps(), 0);
        assert_eq!(field.utilization(Axial::ORIGIN, 0), 0.0);
    }

    #[test]
    fn tracker_rejects_degenerate_capacity() {
        let cells = two_cells();
        assert!(std::panic::catch_unwind(|| CellLoadTracker::new(&cells, 0, 0)).is_err());
        assert!(std::panic::catch_unwind(|| CellLoadTracker::new(&cells, 2, 2)).is_err());
    }
}
