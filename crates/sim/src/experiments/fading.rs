//! Extension experiment — robustness to shadow-fading severity.
//!
//! The ping-pong effect is *caused* by shadow fading (paper §1), so the
//! natural stress test sweeps the fading σ and compares the fuzzy
//! pipeline with the zero-margin comparator on the boundary scenario.

use crate::engine::{SimConfig, Simulation};
use crate::monte_carlo::{run_repetitions_parallel, summarize};
use crate::scenario::Scenario;
use crate::table::{fmt_f, TextTable};
use handover_core::baselines::HysteresisPolicy;
use handover_core::{ControllerConfig, FuzzyHandoverController, HandoverPolicy};
use radiolink::ShadowingConfig;

/// Swept shadowing standard deviations in dB.
pub const SIGMAS_DB: [f64; 6] = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0];

/// One sweep row.
#[derive(Debug, Clone, PartialEq)]
pub struct FadingRow {
    /// Shadowing σ in dB.
    pub sigma_db: f64,
    /// Mean fuzzy handovers / ping-pongs on scenario A.
    pub fuzzy: (f64, f64),
    /// Mean naive handovers / ping-pongs on scenario A.
    pub naive: (f64, f64),
}

/// Run the sweep: scenario A under increasing fading, 10 repetitions per
/// point, crossbeam-parallel.
pub fn data() -> Vec<FadingRow> {
    let walk = Scenario::a().trajectory();
    SIGMAS_DB
        .iter()
        .map(|&sigma| {
            let mut cfg = SimConfig::paper_default();
            cfg.shadowing = ShadowingConfig { sigma_db: sigma, decorrelation_km: 0.05 };
            let window = cfg.pingpong_window_steps;
            let sim = Simulation::new(cfg);
            let fuzzy_runs = run_repetitions_parallel(
                &sim,
                &walk,
                || -> Box<dyn HandoverPolicy + Send> {
                    Box::new(FuzzyHandoverController::new(ControllerConfig::paper_default(2.0)))
                },
                7,
                10,
                4,
            );
            let naive_runs = run_repetitions_parallel(
                &sim,
                &walk,
                || -> Box<dyn HandoverPolicy + Send> { Box::new(HysteresisPolicy::new(0.0)) },
                7,
                10,
                4,
            );
            let f = summarize(&fuzzy_runs, window);
            let n = summarize(&naive_runs, window);
            FadingRow {
                sigma_db: sigma,
                fuzzy: (f.mean_handovers, f.mean_ping_pongs),
                naive: (n.mean_handovers, n.mean_ping_pongs),
            }
        })
        .collect()
}

/// Render the sweep.
pub fn render() -> String {
    let rows = data();
    let mut t = TextTable::new(
        "Extension — shadow-fading robustness on scenario A (10 runs per point)",
    )
    .headers([
        "σ [dB]",
        "fuzzy HO",
        "fuzzy PP",
        "naive HO",
        "naive PP",
    ]);
    for r in &rows {
        t.row([
            fmt_f(r.sigma_db, 0),
            fmt_f(r.fuzzy.0, 1),
            fmt_f(r.fuzzy.1, 1),
            fmt_f(r.naive.0, 1),
            fmt_f(r.naive.1, 1),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\nthe boundary walk stays handover-free for the fuzzy pipeline at low σ and\n\
         degrades gracefully, while the naive comparator ping-pongs as soon as fading\n\
         can flip the instantaneous winner.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzzy_never_worse_than_naive() {
        for r in data() {
            assert!(
                r.fuzzy.1 <= r.naive.1,
                "σ = {}: fuzzy PP {} vs naive PP {}",
                r.sigma_db,
                r.fuzzy.1,
                r.naive.1
            );
            assert!(
                r.fuzzy.0 <= r.naive.0,
                "σ = {}: fuzzy HO {} vs naive HO {}",
                r.sigma_db,
                r.fuzzy.0,
                r.naive.0
            );
        }
    }

    #[test]
    fn clean_channel_matches_the_paper_claim() {
        let rows = data();
        let clean = &rows[0];
        assert_eq!(clean.sigma_db, 0.0);
        assert_eq!(clean.fuzzy.0, 0.0, "no fading → scenario A stays put");
        assert_eq!(clean.fuzzy.1, 0.0);
    }

    #[test]
    fn naive_ping_pongs_under_heavy_fading() {
        let rows = data();
        let heavy = rows.last().unwrap();
        assert!(
            heavy.naive.1 > 0.0,
            "10 dB shadowing must flip the naive comparator: {heavy:?}"
        );
    }

    #[test]
    fn render_has_all_sigmas() {
        let s = render();
        for sigma in SIGMAS_DB {
            assert!(s.contains(&format!("{sigma:.0}")));
        }
    }
}
