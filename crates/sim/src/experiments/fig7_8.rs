//! Figs. 7 and 8 — the random-walk patterns of the two scenarios.

use crate::engine::SimConfig;
use crate::scenario::{ideal_cell_sequence, Scenario};
use crate::series::{ascii_plot, Series};
use crate::table::{fmt_f, TextTable};
use mobility::Trajectory;

/// Scenario-A trajectory (paper Fig. 7, `iseed = 100`, `nwalk = 5`).
pub fn fig7_data() -> Trajectory {
    Scenario::a().trajectory()
}

/// Scenario-B trajectory (paper Fig. 8, `iseed = 200`, `nwalk = 10`).
pub fn fig8_data() -> Trajectory {
    Scenario::b().trajectory()
}

fn render_walk(title: &str, scenario: Scenario) -> String {
    let traj = scenario.trajectory();
    let layout = SimConfig::paper_default().layout;

    let mut t = TextTable::new(title).headers(["Waypoint", "x [km]", "y [km]", "cell (i,j)"]);
    for (k, w) in traj.waypoints().iter().enumerate() {
        let cell = layout
            .containing_cell(*w)
            .map(|c| layout.paper_label(c).to_string())
            .unwrap_or_else(|| "outside".into());
        t.row([k.to_string(), fmt_f(w.x, 3), fmt_f(w.y, 3), cell]);
    }
    let mut out = t.render();

    let seq = ideal_cell_sequence(&layout, &traj);
    let labels: Vec<String> = seq.iter().map(|c| layout.paper_label(*c).to_string()).collect();
    out.push_str(&format!("\ncell sequence: {}\n", labels.join(" -> ")));
    out.push_str(&format!("total length: {:.2} km\n\n", traj.total_length_km()));

    let mut walk = Series::new("walk (resampled)");
    for p in traj.resample(0.05) {
        walk.push(p.pos.x, p.pos.y);
    }
    let mut centers = Series::new("BS positions");
    for &c in layout.cells() {
        let p = layout.bs_position(c);
        centers.push(p.x, p.y);
    }
    out.push_str(&ascii_plot(&[walk, centers], 72, 24, "walk over the cell plane"));
    out
}

/// Render Fig. 7 (scenario A).
pub fn render_fig7() -> String {
    render_walk("Fig. 7 — random walk, scenario A (iseed=100, nwalk=5)", Scenario::a())
}

/// Render Fig. 8 (scenario B).
pub fn render_fig8() -> String {
    render_walk("Fig. 8 — random walk, scenario B (iseed=200, nwalk=10)", Scenario::b())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::has_return;

    #[test]
    fn fig7_walk_shape() {
        let t = fig7_data();
        assert_eq!(t.len(), 6, "nwalk = 5 gives 6 waypoints");
        // The paper's A walk wanders near the origin cell's boundary.
        let layout = SimConfig::paper_default().layout;
        let seq = ideal_cell_sequence(&layout, &t);
        assert!(seq.len() >= 3, "visits other cells: {seq:?}");
        assert!(has_return(&seq), "and returns: {seq:?}");
    }

    #[test]
    fn fig8_walk_shape() {
        let t = fig8_data();
        assert_eq!(t.len(), 11, "nwalk = 10 gives 11 waypoints");
        assert!(t.total_length_km() > 3.0, "long enough to cross cells");
    }

    #[test]
    fn renders_mention_cells_and_length() {
        let s7 = render_fig7();
        assert!(s7.contains("cell sequence"));
        assert!(s7.contains("(0,0)"));
        assert!(s7.contains("total length"));
        let s8 = render_fig8();
        assert!(s8.contains("Fig. 8"));
        assert!(s8.contains("->"), "sequence arrows present");
    }
}
