//! Table 1 — the 64-rule Fuzzy Rule Base, rendered exactly like the paper
//! (two side-by-side 32-rule columns).

use crate::table::TextTable;
use handover_core::flc::PAPER_FRB;

/// Render the FRB in the paper's layout.
pub fn render() -> String {
    let mut t = TextTable::new("Table 1 — FRB (64 rules)").headers([
        "Rule", "CSSP", "SSN", "DMB", "HD", "│", "Rule", "CSSP", "SSN", "DMB", "HD",
    ]);
    for k in 0..32 {
        let a = &PAPER_FRB[k];
        let b = &PAPER_FRB[k + 32];
        t.row([
            a.number.to_string(),
            a.cssp.label().to_string(),
            a.ssn.label().to_string(),
            a.dmb.label().to_string(),
            a.hd.label().to_string(),
            "│".to_string(),
            b.number.to_string(),
            b.cssp.label().to_string(),
            b.ssn.label().to_string(),
            b.dmb.label().to_string(),
            b.hd.label().to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_64_rules() {
        let s = render();
        // Title (2 lines) + header + separator + 32 data rows.
        assert_eq!(s.lines().count(), 32 + 4);
        // Spot-check the paper's corners.
        let lines: Vec<&str> = s.lines().collect();
        let first = lines[4];
        assert!(first.starts_with('1'), "row 1: {first}");
        assert!(first.contains("SM") && first.contains("WK") && first.contains("NR"));
        assert!(first.contains("33") && first.contains("NC"));
        let last = lines.last().unwrap();
        assert!(last.starts_with("32") && last.contains("64"));
        assert!(last.contains("BG") && last.contains("ST") && last.contains("FA"));
    }
}
