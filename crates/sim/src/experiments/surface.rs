//! Extension experiment — the FLC control surface.
//!
//! HD over the (SSN, DMB) plane at a fixed CSSP slice, rendered as a
//! character heat map. Makes the 64-rule table's geometry visible: the
//! high-HD plateau sits exactly at (strong neighbour, far from serving),
//! and the 0.7 threshold contour separates it from the boundary regime.

use crate::table::fmt_f;
use fuzzylogic::Fis;
use handover_core::flc::{build_paper_flc, CSSP_INPUT, DMB_INPUT, SSN_INPUT};

/// Surface resolution.
const NX: usize = 33;
const NY: usize = 17;

/// CSSP slices rendered by the experiment.
pub const CSSP_SLICES: [f64; 3] = [-6.0, -2.0, 2.0];

/// Sample the HD surface over (SSN, DMB) for a fixed CSSP.
pub fn data(cssp_db: f64) -> Vec<Vec<f64>> {
    data_with(&build_paper_flc(), cssp_db)
}

/// [`data`] against a caller-built FIS, so one construction can serve
/// many slices (the renderer sweeps three CSSP slices over one system).
fn data_with(fis: &Fis, cssp_db: f64) -> Vec<Vec<f64>> {
    fis.control_surface(
        SSN_INPUT,
        DMB_INPUT,
        &{
            let mut fixed = [0.0; 3];
            fixed[CSSP_INPUT] = cssp_db;
            fixed
        },
        NX,
        NY,
        0,
    )
    .expect("the paper FLC accepts the whole plane")
}

fn glyph(hd: f64) -> char {
    match hd {
        h if h > 0.8 => '#',
        h if h > 0.7 => '+',
        h if h > 0.55 => ':',
        h if h > 0.4 => '.',
        _ => ' ',
    }
}

/// Render the heat maps for every CSSP slice.
pub fn render() -> String {
    let fis = build_paper_flc();
    let ssn = &fis.inputs()[SSN_INPUT];
    let dmb = &fis.inputs()[DMB_INPUT];
    let mut out = String::from("Extension — HD control surface over (SSN, DMB)\n");
    out.push_str("legend: ' '≤0.4 < '.' ≤0.55 < ':' ≤0.7 < '+' ≤0.8 < '#'  (handover above '+')\n\n");
    for cssp in CSSP_SLICES {
        out.push_str(&format!(
            "CSSP = {} dB   (x: SSN {}..{} dBm, y: DMB {}..{})\n",
            fmt_f(cssp, 1),
            ssn.min,
            ssn.max,
            dmb.min,
            dmb.max
        ));
        let surface = data_with(&fis, cssp);
        // Render with DMB increasing upward.
        for row in surface.iter().rev() {
            let line: String = row.iter().map(|&hd| glyph(hd)).collect();
            out.push_str("  |");
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str("  +");
        out.push_str(&"-".repeat(NX));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_shape_and_bounds() {
        let s = data(-3.5);
        assert_eq!(s.len(), NY);
        assert_eq!(s[0].len(), NX);
        for row in &s {
            for &hd in row {
                assert!((0.0..=1.0).contains(&hd));
            }
        }
    }

    #[test]
    fn handover_plateau_sits_at_strong_and_far() {
        // For a dropping signal, the top-right corner (strong neighbour,
        // far away) exceeds the threshold; the bottom-left (weak, near)
        // does not.
        let s = data(-6.0);
        let top_right = s[NY - 1][NX - 1];
        let bottom_left = s[0][0];
        assert!(top_right > 0.7, "strong/far corner: {top_right}");
        assert!(bottom_left < 0.5, "weak/near corner: {bottom_left}");
    }

    #[test]
    fn improving_signal_flattens_the_surface() {
        // At CSSP = +2 dB (improving) the whole surface stays below the
        // clearly-handover band except the ST/FA corner rules.
        let s = data(2.0);
        let above: usize = s
            .iter()
            .flat_map(|row| row.iter())
            .filter(|&&hd| hd > 0.8)
            .count();
        assert_eq!(above, 0, "no '#' region when the serving signal improves");
    }

    #[test]
    fn surface_monotone_in_ssn_along_rows() {
        let s = data(-4.0);
        for row in &s {
            for w in row.windows(2) {
                assert!(w[1] >= w[0] - 0.06, "row not monotone: {w:?}");
            }
        }
    }

    #[test]
    fn render_draws_all_slices() {
        let s = render();
        for cssp in CSSP_SLICES {
            assert!(s.contains(&format!("CSSP = {cssp:.1} dB")));
        }
        assert!(s.contains('#'), "a handover plateau is visible");
    }
}
