//! Table 2 — the simulation parameters.

use crate::params::PaperParams;
use crate::table::TextTable;

/// Render the parameter table (paper values; the active choice is the one
/// the scenario plots use).
pub fn render() -> String {
    let p = PaperParams::paper();
    let mut t = TextTable::new("Table 2 — simulation parameters")
        .headers(["Parameter", "Paper", "Active"]);
    t.row([
        "Distribution law",
        "Gaussian",
        if p.gaussian_steps { "Gaussian" } else { "uniform" },
    ]);
    t.row([
        "Number of walks".to_string(),
        "5, 10".to_string(),
        format!("{} (A), {} (B)", p.n_walks_a, p.n_walks_b),
    ]);
    t.row([
        "Random types (iseed)".to_string(),
        "100, 200".to_string(),
        format!(
            "StdRng seeds {} (A), {} (B)",
            crate::scenario::SCENARIO_A_SEED,
            crate::scenario::SCENARIO_B_SEED
        ),
    ]);
    t.row([
        "Cell radius".to_string(),
        "1 km, 2 km".to_string(),
        format!("{} km", p.cell_radius_km),
    ]);
    t.row([
        "Transmission power".to_string(),
        "10 W, 20 W".to_string(),
        format!("{} W", p.tx_power_w),
    ]);
    t.row(["Frequency".to_string(), "2000 MHz".to_string(), format!("{} MHz", p.frequency_mhz)]);
    t.row([
        "TX antenna beam tilt".to_string(),
        "3°".to_string(),
        format!("{}°", p.beam_tilt_deg),
    ]);
    t.row([
        "TX antenna height".to_string(),
        "40 m".to_string(),
        format!("{} m", p.tx_antenna_height_m),
    ]);
    t.row([
        "RX antenna height".to_string(),
        "1.5 m".to_string(),
        format!("{} m", p.rx_antenna_height_m),
    ]);
    t.row([
        "Average walk length".to_string(),
        "0.6 km".to_string(),
        format!("{} km", p.avg_walk_km),
    ]);
    t.row([
        "Path-loss exponent n".to_string(),
        "1.1".to_string(),
        format!("{} (field model; calibrated log-distance for plots)", p.field_exponent_n),
    ]);
    t.row([
        "Handover threshold".to_string(),
        "HD > 0.7".to_string(),
        format!("HD > {}", p.hd_threshold),
    ]);
    t.row([
        "Speed penalty".to_string(),
        "2 dB / 10 km/h".to_string(),
        format!("{} dB / 10 km/h", p.db_per_10kmh),
    ]);
    t.row(["Repetitions".to_string(), "10".to_string(), format!("{}", p.repetitions)]);
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_every_table2_row() {
        let s = super::render();
        for needle in [
            "Gaussian",
            "2000 MHz",
            "3°",
            "40 m",
            "1.5 m",
            "0.6 km",
            "1.1",
            "HD > 0.7",
            "2 dB / 10 km/h",
        ] {
            assert!(s.contains(needle), "missing `{needle}` in:\n{s}");
        }
        assert!(s.lines().count() >= 17);
    }
}
