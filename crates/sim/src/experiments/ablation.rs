//! Extension experiment — ablation of the FLC design choices.
//!
//! DESIGN.md calls out three knobs worth isolating: the defuzzifier, the
//! operator family (min/max vs product/probabilistic-sum) and the Mamdani
//! vs Sugeno engine. Each variant is scored on the two pinned scenarios:
//! scenario A must stay at 0 handovers, scenario B at 3.

use crate::engine::{SimConfig, Simulation};
use crate::scenario::Scenario;
use crate::table::TextTable;
use fuzzylogic::Defuzzifier;
use handover_core::flc::{build_flc_with, build_paper_sugeno, FlcProfile};
use handover_core::{ControllerConfig, FuzzyHandoverController};

/// One ablation variant's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Variant description.
    pub variant: String,
    /// Handover count on scenario A (target 0).
    pub handovers_a: usize,
    /// Handover count on scenario B (target 3).
    pub handovers_b: usize,
    /// HD on a reference crossing input.
    pub crossing_hd: f64,
    /// HD on a reference boundary input.
    pub boundary_hd: f64,
}

/// Reference inputs: a mid-boundary sample and a deep-crossing sample.
pub const BOUNDARY_REF: [f64; 3] = [-2.7, -93.4, 0.44];
/// Reference crossing input (CSSP, SSN, DMB).
pub const CROSSING_REF: [f64; 3] = [-3.5, -89.0, 1.2];

fn run_scenarios(fis: &fuzzylogic::Fis) -> (usize, usize) {
    let sim = Simulation::new(SimConfig::paper_default());
    // Compile the variant once; both scenario controllers share the plan.
    let plan = std::sync::Arc::new(fuzzylogic::CompiledFis::compile(fis));
    let mk = || {
        FuzzyHandoverController::with_plan(plan.clone(), ControllerConfig::paper_default(2.0))
    };
    let mut a = mk();
    let mut b = mk();
    let ha = sim.run(&Scenario::a().trajectory(), &mut a, 0).handover_count();
    let hb = sim.run(&Scenario::b().trajectory(), &mut b, 0).handover_count();
    (ha, hb)
}

/// Evaluate every (profile, defuzzifier) variant plus the Sugeno bridge.
pub fn data() -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for profile in [FlcProfile::Paper, FlcProfile::Product] {
        for defuzz in Defuzzifier::ALL {
            let fis = build_flc_with(profile, defuzz);
            let crossing = fis.evaluate(&CROSSING_REF).unwrap()[0];
            let boundary = fis.evaluate(&BOUNDARY_REF).unwrap()[0];
            let (ha, hb) = run_scenarios(&fis);
            rows.push(AblationRow {
                variant: format!("{profile:?} / {defuzz:?}"),
                handovers_a: ha,
                handovers_b: hb,
                crossing_hd: crossing,
                boundary_hd: boundary,
            });
        }
    }
    // Zero-order Sugeno variant (no defuzzifier involved).
    let sugeno = build_paper_sugeno();
    rows.push(AblationRow {
        variant: "Sugeno (zero-order)".to_string(),
        handovers_a: usize::MAX, // not driveable through the Mamdani controller
        handovers_b: usize::MAX,
        crossing_hd: sugeno.evaluate(&CROSSING_REF).unwrap()[0],
        boundary_hd: sugeno.evaluate(&BOUNDARY_REF).unwrap()[0],
    });
    rows
}

/// Render the ablation table.
pub fn render() -> String {
    let rows = data();
    let mut t = TextTable::new("Extension — FLC design ablation (targets: A = 0, B = 3)")
        .headers(["Variant", "HO on A", "HO on B", "HD crossing", "HD boundary"]);
    for r in &rows {
        let fmt_ho = |h: usize| {
            if h == usize::MAX {
                "n/a".to_string()
            } else {
                h.to_string()
            }
        };
        t.row([
            r.variant.clone(),
            fmt_ho(r.handovers_a),
            fmt_ho(r.handovers_b),
            format!("{:.3}", r.crossing_hd),
            format!("{:.3}", r.boundary_hd),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\nThe paper configuration (Paper / Centroid) meets both targets; maxima-family\n\
         defuzzifiers quantise HD onto term cores and lose the threshold separation.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_variant_meets_both_targets() {
        let rows = data();
        let paper = rows
            .iter()
            .find(|r| r.variant == "Paper / Centroid")
            .expect("paper variant present");
        assert_eq!(paper.handovers_a, 0);
        assert_eq!(paper.handovers_b, 3);
        assert!(paper.crossing_hd > 0.7);
        assert!(paper.boundary_hd < 0.7);
    }

    #[test]
    fn full_grid_present() {
        let rows = data();
        // 2 profiles × 5 defuzzifiers + 1 Sugeno row.
        assert_eq!(rows.len(), 11);
        let unique: std::collections::HashSet<_> =
            rows.iter().map(|r| r.variant.clone()).collect();
        assert_eq!(unique.len(), rows.len());
    }

    #[test]
    fn every_variant_separates_reference_inputs() {
        // Whatever the operators, the crossing reference must score above
        // the boundary reference — the rule base dominates the ordering.
        for r in data() {
            assert!(
                r.crossing_hd > r.boundary_hd,
                "{}: crossing {} vs boundary {}",
                r.variant,
                r.crossing_hd,
                r.boundary_hd
            );
        }
    }

    #[test]
    fn render_flags_paper_row() {
        let s = render();
        assert!(s.contains("Paper / Centroid"));
        assert!(s.contains("Sugeno (zero-order)"));
    }
}
