//! Figs. 12 and 13 — received power from the three relevant base stations
//! with the three measurement points marked.
//!
//! Fig. 12 shows scenario A (points on the boundary, no handover should
//! happen); Fig. 13 shows scenario B (points inside the neighbour cells,
//! handover necessary).

use crate::engine::{SimConfig, Simulation};
use crate::experiments::table3_4::{scenario_a_points, scenario_b_points, PointInputs};
use crate::scenario::Scenario;
use crate::series::{ascii_plot, Series};
use cellgeom::Axial;
use handover_core::{ControllerConfig, FuzzyHandoverController};

/// The data behind one figure: the RX-power series of the three plotted
/// cells along the walk, plus the frozen measurement points.
pub struct FigData {
    /// `(cell, series)` for the three plotted BSs.
    pub series: Vec<(Axial, Series)>,
    /// The frozen measurement points of the matching table.
    pub points: Vec<PointInputs>,
}

fn cells_for(scenario: &Scenario) -> Vec<Axial> {
    let cfg = SimConfig::paper_default();
    let sim = Simulation::new(cfg.clone());
    let mut policy = FuzzyHandoverController::new(ControllerConfig::paper_default(
        cfg.layout.cell_radius_km(),
    ));
    let run = sim.run(&scenario.trajectory(), &mut policy, 0);
    // The serving cell plus the cells the walk interacts with: handover
    // targets for B, strongest-recorded neighbours for A.
    let mut cells = vec![Axial::ORIGIN];
    for e in run.log.events() {
        if !cells.contains(&e.to) {
            cells.push(e.to);
        }
    }
    let mut by_strength: Vec<(Axial, f64)> = Vec::new();
    for s in &run.steps {
        match by_strength.iter_mut().find(|(c, _)| *c == s.neighbor) {
            Some((_, best)) => *best = best.max(s.neighbor_rss_dbm),
            None => by_strength.push((s.neighbor, s.neighbor_rss_dbm)),
        }
    }
    by_strength.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("RSS finite"));
    for (c, _) in by_strength {
        if cells.len() >= 3 {
            break;
        }
        if !cells.contains(&c) {
            cells.push(c);
        }
    }
    cells.truncate(3);
    cells
}

fn fig_data(scenario: Scenario, points: Vec<PointInputs>) -> FigData {
    let cfg = SimConfig::paper_default();
    let traj = scenario.trajectory();
    let series = cells_for(&scenario)
        .into_iter()
        .map(|cell| {
            let label = format!("RX from BS{}", cfg.layout.paper_label(cell));
            let mut s = Series::new(label);
            for p in traj.resample(0.05) {
                s.push(
                    p.cum_km,
                    cfg.radio.received_power_dbm(cfg.layout.bs_position(cell), p.pos),
                );
            }
            (cell, s)
        })
        .collect();
    FigData { series, points }
}

/// Fig. 12 data (scenario A).
pub fn fig12_data() -> FigData {
    fig_data(Scenario::a(), scenario_a_points())
}

/// Fig. 13 data (scenario B).
pub fn fig13_data() -> FigData {
    fig_data(Scenario::b(), scenario_b_points())
}

fn render(title: &str, data: &FigData) -> String {
    let series: Vec<Series> = data.series.iter().map(|(_, s)| s.clone()).collect();
    let mut out = ascii_plot(&series, 72, 18, title);
    out.push_str("\nmeasurement points (distance to serving BS, neighbour RSS at 0 km/h):\n");
    for p in &data.points {
        out.push_str(&format!(
            "  {}: sub-1 {:.3} km / {:.2} dBm, sub-2 {:.3} km / {:.2} dBm\n",
            p.label, p.distance_km[0], p.ssn_dbm[0], p.distance_km[1], p.ssn_dbm[1]
        ));
    }
    out
}

/// Render Fig. 12.
pub fn render_fig12() -> String {
    render("Fig. 12 — 3 measurement points, scenario A (no handover expected)", &fig12_data())
}

/// Render Fig. 13.
pub fn render_fig13() -> String {
    render("Fig. 13 — 3 measurement points, scenario B (handover necessary)", &fig13_data())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_series_three_points_each() {
        for data in [fig12_data(), fig13_data()] {
            assert_eq!(data.series.len(), 3);
            assert_eq!(data.points.len(), 3);
            for (_, s) in &data.series {
                assert!(!s.points.is_empty());
            }
        }
    }

    #[test]
    fn fig13_includes_the_handover_targets() {
        // Fig. 13 plots the origin plus the first two entered cells.
        let data = fig13_data();
        assert_eq!(data.series[0].0, Axial::ORIGIN);
        assert_ne!(data.series[1].0, Axial::ORIGIN);
    }

    #[test]
    fn series_cover_the_whole_walk() {
        let data = fig12_data();
        let walk_len = Scenario::a().trajectory().total_length_km();
        for (_, s) in &data.series {
            let last_x = s.points.last().unwrap().0;
            assert!((last_x - walk_len).abs() < 0.01, "{last_x} vs {walk_len}");
        }
    }

    #[test]
    fn renders_list_points() {
        let s12 = render_fig12();
        assert!(s12.contains("Point 1") && s12.contains("Point 3"));
        let s13 = render_fig13();
        assert!(s13.contains("Fig. 13"));
        assert!(s13.contains("dBm"));
    }
}
