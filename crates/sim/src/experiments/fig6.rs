//! Fig. 6 — the hexagonal cell layout with the paper's `(i, j)` labels.

use crate::engine::SimConfig;
use crate::table::{fmt_f, TextTable};
use cellgeom::{PaperCoord, Vec2};

/// The layout cells with their paper labels and BS positions.
pub fn data() -> Vec<(PaperCoord, Vec2)> {
    let layout = SimConfig::paper_default().layout;
    layout
        .cells()
        .iter()
        .map(|&c| (layout.paper_label(c), layout.bs_position(c)))
        .collect()
}

/// Render the cell table plus a coarse ASCII map.
pub fn render() -> String {
    let cells = data();
    let mut t = TextTable::new("Fig. 6 — cell layout (2 rings, R = 2 km)")
        .headers(["Cell (i,j)", "BS x [km]", "BS y [km]"]);
    for (label, pos) in &cells {
        t.row([label.to_string(), fmt_f(pos.x, 2), fmt_f(pos.y, 2)]);
    }
    let mut out = t.render();
    out.push('\n');

    // Coarse map: place each label on a character grid.
    let (w, h) = (64usize, 21usize);
    let extent = 8.0; // km, covers 2 rings comfortably
    let mut grid = vec![vec![' '; w]; h];
    for (label, pos) in &cells {
        let cx = ((pos.x + extent) / (2.0 * extent) * (w - 8) as f64) as usize;
        let cy = ((extent - pos.y) / (2.0 * extent) * (h - 1) as f64) as usize;
        let text = label.to_string();
        for (k, ch) in text.chars().enumerate() {
            let col = cx + k;
            if col < w && cy < h {
                grid[cy][col] = ch;
            }
        }
    }
    for row in grid {
        let line: String = row.into_iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_cells_with_valid_labels() {
        let cells = data();
        assert_eq!(cells.len(), 19, "2 rings = 19 cells");
        for (label, _) in &cells {
            assert!(label.is_valid(), "{label}");
        }
        // The paper's named cells are all present.
        for (i, j) in [(0, 0), (2, -1), (1, -2), (-1, 2), (-2, 1), (1, 1), (-1, -1)] {
            assert!(
                cells.iter().any(|(l, _)| l.i == i && l.j == j),
                "({i},{j}) missing"
            );
        }
    }

    #[test]
    fn origin_cell_at_origin() {
        let cells = data();
        let (_, pos) = cells.iter().find(|(l, _)| l.i == 0 && l.j == 0).unwrap();
        assert_eq!(*pos, Vec2::ZERO);
    }

    #[test]
    fn render_places_labels() {
        let s = render();
        assert!(s.contains("(0,0)"));
        assert!(s.contains("(2,-1)"));
        assert!(s.contains("(-1,2)"));
    }
}
