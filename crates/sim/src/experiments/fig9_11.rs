//! Figs. 9–11 — received power from the three relevant base stations
//! along the scenario-B walk.
//!
//! The paper plots the power received from BS(0,0) and from the two
//! neighbour cells the walk enters. The x axis is the distance travelled
//! along the walk (0–7 km), the y axis received power in dB.

use crate::engine::{SimConfig, Simulation};
use crate::scenario::Scenario;
use crate::series::{ascii_plot, Series};
use cellgeom::Axial;
use handover_core::{ControllerConfig, FuzzyHandoverController};

/// The three plotted cells: the origin plus the first two handover
/// targets of scenario B (the paper's BS(0,0), BS(−1,2), BS(−2,1)).
pub fn plotted_cells() -> [Axial; 3] {
    let sim = Simulation::new(SimConfig::paper_default());
    let mut policy = FuzzyHandoverController::new(ControllerConfig::paper_default(2.0));
    let result = sim.run(&Scenario::b().trajectory(), &mut policy, 0);
    let events = result.log.events();
    assert!(
        events.len() >= 2,
        "scenario B must cross at least two cells, got {events:?}"
    );
    [Axial::ORIGIN, events[0].to, events[1].to]
}

/// Received power (mean propagation, no fading) from `cell` along the
/// scenario-B walk, sampled every 50 m.
pub fn rx_series(cell: Axial) -> Series {
    let cfg = SimConfig::paper_default();
    let layout = &cfg.layout;
    let label = format!("RX from BS{}", layout.paper_label(cell));
    let mut s = Series::new(label);
    for p in Scenario::b().trajectory().resample(0.05) {
        let rx = cfg.radio.received_power_dbm(layout.bs_position(cell), p.pos);
        s.push(p.cum_km, rx);
    }
    s
}

fn render_one(fig: &str, which: usize) -> String {
    let cell = plotted_cells()[which];
    let layout = SimConfig::paper_default().layout;
    let series = rx_series(cell);
    let title = format!(
        "{fig} — received power from BS{} along the scenario-B walk",
        layout.paper_label(cell)
    );
    let mut out = ascii_plot(std::slice::from_ref(&series), 72, 18, &title);
    out.push('\n');
    out.push_str(&series.to_tsv());
    out
}

/// Render Fig. 9 (serving BS(0,0)).
pub fn render_fig9() -> String {
    render_one("Fig. 9", 0)
}

/// Render Fig. 10 (first entered neighbour).
pub fn render_fig10() -> String {
    render_one("Fig. 10", 1)
}

/// Render Fig. 11 (second entered neighbour).
pub fn render_fig11() -> String {
    render_one("Fig. 11", 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_distinct_cells() {
        let cells = plotted_cells();
        assert_eq!(cells[0], Axial::ORIGIN);
        assert_ne!(cells[1], cells[0]);
        assert_ne!(cells[2], cells[1]);
    }

    #[test]
    fn serving_power_falls_as_the_walk_leaves() {
        // Fig. 9 shape: the origin-BS power near the start beats the power
        // at the walk's farthest excursion by tens of dB.
        let s = rx_series(Axial::ORIGIN);
        let start = s.points.first().unwrap().1;
        let min = s.points.iter().map(|&(_, y)| y).fold(f64::INFINITY, f64::min);
        assert!(start - min > 15.0, "dynamic range start {start} vs min {min}");
    }

    #[test]
    fn neighbour_power_peaks_mid_walk() {
        // Figs. 10/11 shape: approaching a neighbour raises its RX power
        // well above its value at the walk start.
        for cell in &plotted_cells()[1..] {
            let s = rx_series(*cell);
            let start = s.points.first().unwrap().1;
            let max = s.points.iter().map(|&(_, y)| y).fold(f64::NEG_INFINITY, f64::max);
            assert!(max - start > 10.0, "{cell}: start {start}, max {max}");
        }
    }

    #[test]
    fn powers_lie_in_the_papers_plot_range() {
        // The paper's axes span −140…−60 dB.
        for cell in plotted_cells() {
            for &(_, y) in &rx_series(cell).points {
                assert!((-145.0..=-30.0).contains(&y), "{cell}: {y}");
            }
        }
    }

    #[test]
    fn renders_include_tsv_payload() {
        let s = render_fig9();
        assert!(s.contains("Fig. 9"));
        assert!(s.contains("# RX from BS(0,0)"));
        assert!(render_fig10().contains("Fig. 10"));
        assert!(render_fig11().contains("Fig. 11"));
    }
}
