//! Fig. 5 — the membership functions of CSSP, SSN, DMB and HD.

use crate::series::{ascii_plot, Series};
use fuzzylogic::LinguisticVariable;
use handover_core::flc::{cssp_variable, dmb_variable, hd_variable, ssn_variable};

/// Sampled membership curves for one variable: `(term label, points)`.
pub type VariableCurves = Vec<(String, Vec<(f64, f64)>)>;

/// Sample every term of every FLC variable at `n` points.
pub fn data(n: usize) -> Vec<(String, VariableCurves)> {
    [cssp_variable(), ssn_variable(), dmb_variable(), hd_variable()]
        .into_iter()
        .map(|var| {
            let curves = sample_variable(&var, n);
            (var.name.clone(), curves)
        })
        .collect()
}

fn sample_variable(var: &LinguisticVariable, n: usize) -> VariableCurves {
    let xs = var.sample_universe(n);
    var.terms()
        .iter()
        .enumerate()
        .map(|(ti, term)| {
            let pts = xs.iter().map(|&x| (x, var.membership(ti, x))).collect();
            (term.name.clone(), pts)
        })
        .collect()
}

/// Render each variable as an ASCII plot of its term curves.
pub fn render() -> String {
    let mut out = String::from("Fig. 5 — membership functions\n\n");
    for (var, curves) in data(121) {
        let series: Vec<Series> = curves
            .into_iter()
            .map(|(label, points)| Series { label, points })
            .collect();
        out.push_str(&ascii_plot(&series, 72, 9, &format!("μ({var})")));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_variables_four_terms_each() {
        let d = data(121);
        assert_eq!(d.len(), 4);
        let names: Vec<&str> = d.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["CSSP", "SSN", "DMB", "HD"]);
        for (var, curves) in &d {
            assert_eq!(curves.len(), 4, "{var}");
            for (term, pts) in curves {
                assert_eq!(pts.len(), 121, "{var}:{term}");
                assert!(pts.iter().all(|&(_, mu)| (0.0..=1.0).contains(&mu)));
                // Every term peaks at 1 somewhere on the sampled universe.
                let max = pts.iter().map(|&(_, mu)| mu).fold(0.0, f64::max);
                assert!(max > 0.99, "{var}:{term} peaks at {max}");
            }
        }
    }

    #[test]
    fn render_mentions_every_term() {
        let s = render();
        for term in [
            "SM", "LC", "NC", "BG", "WK", "NSW", "NO", "ST", "NR", "NSN", "NSF", "FA", "VL",
            "LO", "LH", "HG",
        ] {
            assert!(s.contains(term), "missing {term}");
        }
    }
}
