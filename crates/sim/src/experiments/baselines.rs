//! Extension experiment — the comparison the paper defers to future work:
//! the fuzzy controller versus conventional handover algorithms.
//!
//! Every policy runs the same three workloads under shadow fading:
//! the two pinned scenarios plus a batch of random boundary-stressing
//! walks. Reported per policy: mean handovers, mean ping-pongs and mean
//! outage over the Monte-Carlo repetitions (crossbeam-parallel).

use crate::engine::{SimConfig, Simulation};
use crate::monte_carlo::{run_repetitions_parallel, summarize, McSummary};
use crate::scenario::Scenario;
use crate::table::{fmt_f, TextTable};
use handover_core::baselines::{
    DwellTimerPolicy, HysteresisPolicy, HysteresisThresholdPolicy, ThresholdPolicy,
};
use handover_core::{ControllerConfig, FuzzyHandoverController, HandoverPolicy};
use mobility::{MobilityModel, RandomWalk, Trajectory};
use rand::rngs::StdRng;
use rand::SeedableRng;
use radiolink::ShadowingConfig;

/// Number of Monte-Carlo repetitions per (policy, workload).
const REPS: usize = 10;
/// Worker threads for the Monte-Carlo batches.
const THREADS: usize = 4;

/// A factory producing one boxed policy per Monte-Carlo run.
pub type PolicyFactory = fn() -> Box<dyn HandoverPolicy + Send>;

/// The compared policy set (name, factory).
pub fn policy_set() -> Vec<(&'static str, PolicyFactory)> {
    vec![
        ("fuzzy (paper)", || {
            Box::new(FuzzyHandoverController::new(ControllerConfig::paper_default(2.0)))
        }),
        ("hysteresis 0 dB", || Box::new(HysteresisPolicy::new(0.0))),
        ("hysteresis 4 dB", || Box::new(HysteresisPolicy::new(4.0))),
        ("threshold −95 dBm", || Box::new(ThresholdPolicy::new(-95.0))),
        ("hyst 4 dB + thr −95", || {
            Box::new(HysteresisThresholdPolicy::new(-95.0, 4.0))
        }),
        ("dwell(2) hyst 2 dB", || {
            Box::new(DwellTimerPolicy::new(HysteresisPolicy::new(2.0), 2))
        }),
    ]
}

/// The evaluated workloads: `(name, trajectory)`.
pub fn workloads() -> Vec<(String, Trajectory)> {
    let mut w = vec![
        ("scenario A".to_string(), Scenario::a().trajectory()),
        ("scenario B".to_string(), Scenario::b().trajectory()),
    ];
    // Boundary-stressing random walks: start on the edge between the
    // origin cell and its east neighbour.
    let edge = cellgeom::Vec2::new(3.0f64.sqrt(), 0.0);
    for k in 0..3u64 {
        let walk = RandomWalk::paper_default(8).with_start(edge);
        let traj = walk.generate(&mut StdRng::seed_from_u64(1000 + k));
        w.push((format!("edge walk {}", k + 1), traj));
    }
    w
}

/// One result row.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Policy name.
    pub policy: &'static str,
    /// Workload name.
    pub workload: String,
    /// Monte-Carlo summary.
    pub summary: McSummary,
}

/// Run the full comparison under moderate shadowing.
pub fn data() -> Vec<ComparisonRow> {
    let mut cfg = SimConfig::paper_default();
    cfg.shadowing = ShadowingConfig { sigma_db: 4.0, decorrelation_km: 0.05 };
    cfg.noise = radiolink::MeasurementNoise::new(1.0);
    let window = cfg.pingpong_window_steps;
    let sim = Simulation::new(cfg);

    let mut rows = Vec::new();
    for (wname, traj) in workloads() {
        for (pname, factory) in policy_set() {
            let runs = run_repetitions_parallel(&sim, &traj, factory, 0xC0FFEE, REPS, THREADS);
            rows.push(ComparisonRow {
                policy: pname,
                workload: wname.clone(),
                summary: summarize(&runs, window),
            });
        }
    }
    rows
}

/// Render the comparison table.
pub fn render() -> String {
    let rows = data();
    let mut t = TextTable::new(
        "Extension — fuzzy vs conventional handover algorithms (10 runs, σ = 4 dB shadowing)",
    )
    .headers(["Workload", "Policy", "Handovers", "Ping-pongs", "Outage"]);
    for r in &rows {
        t.row([
            r.workload.clone(),
            r.policy.to_string(),
            format!("{:.1} ± {:.1}", r.summary.mean_handovers, r.summary.std_handovers),
            fmt_f(r.summary.mean_ping_pongs, 2),
            fmt_f(r.summary.mean_outage, 3),
        ]);
    }
    let mut out = t.render();

    // Aggregate verdict: total ping-pongs fuzzy vs the 0 dB baseline.
    let total = |name: &str| -> f64 {
        rows.iter()
            .filter(|r| r.policy == name)
            .map(|r| r.summary.mean_ping_pongs)
            .sum()
    };
    out.push_str(&format!(
        "\ntotal mean ping-pongs: fuzzy {:.2} vs hysteresis-0dB {:.2}\n",
        total("fuzzy (paper)"),
        total("hysteresis 0 dB"),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_of_rows() {
        let rows = data();
        assert_eq!(rows.len(), workloads().len() * policy_set().len());
    }

    #[test]
    fn fuzzy_ping_pongs_less_than_naive() {
        // The headline claim, quantified: summed over all workloads the
        // fuzzy controller must ping-pong strictly less than the 0 dB
        // hysteresis baseline (which flips on any instantaneous
        // advantage).
        let rows = data();
        let total = |name: &str| -> f64 {
            rows.iter()
                .filter(|r| r.policy == name)
                .map(|r| r.summary.mean_ping_pongs)
                .sum()
        };
        let fuzzy = total("fuzzy (paper)");
        let naive = total("hysteresis 0 dB");
        assert!(fuzzy < naive, "fuzzy {fuzzy} vs naive {naive}");
        // And also fewer raw handovers.
        let count = |name: &str| -> f64 {
            rows.iter()
                .filter(|r| r.policy == name)
                .map(|r| r.summary.mean_handovers)
                .sum()
        };
        assert!(count("fuzzy (paper)") < count("hysteresis 0 dB"));
    }

    #[test]
    fn render_lists_all_policies() {
        let s = render();
        for (name, _) in policy_set() {
            assert!(s.contains(name), "missing {name}");
        }
        assert!(s.contains("total mean ping-pongs"));
    }
}
