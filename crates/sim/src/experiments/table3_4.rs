//! Tables 3 and 4 — the speed sweep at three measurement points.
//!
//! The paper's methodology (visible in its tables: CSSP and distance rows
//! are constant across speeds while the neighbour row drops exactly
//! 2 dB per 10 km/h): measurement points are frozen from the scenario
//! walk, then the FLC is re-evaluated per speed with the penalised SSN,
//! averaged over 10 noisy repetitions.
//!
//! * **Table 3** (scenario A): the three most handover-tempted samples of
//!   the boundary walk; every averaged output must stay below 0.7 —
//!   the ping-pong is avoided.
//! * **Table 4** (scenario B): per executed handover, the approach sample
//!   and the deepest-penetration sample of the entered cell (measured
//!   against the *previous* serving BS, as the paper's 1.8–3 km distances
//!   indicate); the deep sub-measurement must exceed 0.7 at every speed —
//!   "the proposed system in all cases has done 3 handovers".

use crate::engine::{SimConfig, Simulation};
use crate::scenario::Scenario;
use crate::table::{fmt_f, TextTable};
use cellgeom::Vec2;
use handover_core::{ControllerConfig, FlcInputs, FuzzyHandoverController};
use radiolink::MeasurementNoise;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-repetition jitter applied to the frozen inputs, in dB (models the
/// measurement spread the paper averages away over its 10 runs).
const REP_NOISE_DB: f64 = 0.3;

/// One frozen measurement point: two sub-measurements of (CSSP, SSN,
/// distance), as in the paper's two columns per point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointInputs {
    /// Point label ("Point 1"…).
    pub label: String,
    /// CSSP of the two sub-measurements, dB.
    pub cssp_db: [f64; 2],
    /// Neighbour RSS of the two sub-measurements at 0 km/h, dBm.
    pub ssn_dbm: [f64; 2],
    /// Distance to the serving BS, km.
    pub distance_km: [f64; 2],
}

/// A full sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTable {
    /// "A" or "B".
    pub scenario: &'static str,
    /// The frozen measurement points.
    pub points: Vec<PointInputs>,
    /// Swept speeds, km/h.
    pub speeds: Vec<f64>,
    /// `hd[speed][point][sub]`: 10-repetition mean FLC outputs.
    pub hd: Vec<Vec<[f64; 2]>>,
    /// Cell radius used for DMB normalisation.
    pub cell_radius_km: f64,
}

fn controller() -> FuzzyHandoverController {
    FuzzyHandoverController::new(ControllerConfig::paper_default(
        SimConfig::paper_default().layout.cell_radius_km(),
    ))
}

/// Mean (fading-free) RSS from a cell's BS at a position.
fn mean_rss(cfg: &SimConfig, cell: cellgeom::Axial, pos: Vec2) -> f64 {
    cfg.radio.received_power_dbm(cfg.layout.bs_position(cell), pos)
}

/// Freeze the three scenario-A measurement points: the samples with the
/// highest offline FLC output (the moments a handover was most tempting).
pub fn scenario_a_points() -> Vec<PointInputs> {
    let cfg = SimConfig::paper_default();
    let sim = Simulation::new(cfg.clone());
    let mut policy = controller();
    let run = sim.run(&Scenario::a().trajectory(), &mut policy, 0);
    let mut ctl = controller();
    let radius = cfg.layout.cell_radius_km();

    // Offline HD for every interior sample (needs a predecessor for CSSP
    // and a successor for the second sub-measurement).
    let mut offline_hd = |k: usize| -> f64 {
        let s = &run.steps[k];
        let prev = &run.steps[k - 1];
        let inputs = FlcInputs::from_measurements(
            s.serving_rss_dbm,
            Some(prev.serving_rss_dbm),
            s.neighbor_rss_dbm,
            s.distance_to_serving_km,
            radius,
        );
        ctl.evaluate_hd(&inputs)
    };

    let mut candidates: Vec<(usize, f64)> =
        (1..run.steps.len() - 1).map(|k| (k, offline_hd(k))).collect();
    candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("HD is finite"));
    let mut chosen: Vec<usize> = Vec::new();
    for (k, _) in candidates {
        if chosen.iter().all(|c| c.abs_diff(k) >= 2) {
            chosen.push(k);
            if chosen.len() == 3 {
                break;
            }
        }
    }
    assert_eq!(chosen.len(), 3, "scenario A yields three separated points");
    chosen.sort_unstable();

    chosen
        .iter()
        .enumerate()
        .map(|(idx, &k)| {
            let sub = |j: usize| {
                let s = &run.steps[k + j];
                let prev = &run.steps[k + j - 1];
                (
                    s.serving_rss_dbm - prev.serving_rss_dbm,
                    s.neighbor_rss_dbm,
                    s.distance_to_serving_km,
                )
            };
            let (c0, s0, d0) = sub(0);
            let (c1, s1, d1) = sub(1);
            PointInputs {
                label: format!("Point {}", idx + 1),
                cssp_db: [c0, c1],
                ssn_dbm: [s0, s1],
                distance_km: [d0, d1],
            }
        })
        .collect()
}

/// Freeze the three scenario-B measurement points: per handover, the
/// approach sample (just before the handover fired) and the deepest
/// sample inside the entered cell, both measured against the old serving
/// BS.
pub fn scenario_b_points() -> Vec<PointInputs> {
    let cfg = SimConfig::paper_default();
    let sim = Simulation::new(cfg.clone());
    let mut policy = controller();
    let run = sim.run(&Scenario::b().trajectory(), &mut policy, 0);
    let events = run.log.events().to_vec();
    assert_eq!(events.len(), 3, "scenario B executes exactly three handovers");

    events
        .iter()
        .enumerate()
        .map(|(idx, e)| {
            let from = e.from;
            let to = e.to;
            // Sub-measurement 1: the handover sample itself (serving still
            // the old BS in the engine's report).
            let h = e.step;
            let s1 = &run.steps[h];
            let p1 = &run.steps[h - 1];
            let cssp1 = s1.serving_rss_dbm - p1.serving_rss_dbm;
            let ssn1 = mean_rss(&cfg, to, s1.pos);
            let dist1 = cfg.layout.distance_to_bs(from, s1.pos);

            // Sub-measurement 2: the deepest sample of the entered cell's
            // serving period, judged by distance to the new BS, with all
            // quantities still measured against the old serving BS.
            let end = events.get(idx + 1).map(|n| n.step).unwrap_or(run.steps.len());
            let deep = run.steps[h + 1..end]
                .iter()
                .min_by(|a, b| {
                    cfg.layout
                        .distance_to_bs(to, a.pos)
                        .partial_cmp(&cfg.layout.distance_to_bs(to, b.pos))
                        .expect("distances are finite")
                })
                .unwrap_or(s1);
            let k = deep.step;
            let prev_pos = run.steps[k - 1].pos;
            let cssp2 = mean_rss(&cfg, from, deep.pos) - mean_rss(&cfg, from, prev_pos);
            let ssn2 = mean_rss(&cfg, to, deep.pos);
            let dist2 = cfg.layout.distance_to_bs(from, deep.pos);

            PointInputs {
                label: format!("Point {}", idx + 1),
                cssp_db: [cssp1, cssp2],
                ssn_dbm: [ssn1, ssn2],
                distance_km: [dist1, dist2],
            }
        })
        .collect()
}

/// Sweep the frozen points over the paper's speeds, averaging the FLC
/// output over 10 noisy repetitions (paper §5).
pub fn sweep(scenario: &'static str, points: Vec<PointInputs>) -> SweepTable {
    let params = crate::params::PaperParams::paper();
    let radius = params.cell_radius_km;
    let mut ctl = controller();
    let noise = MeasurementNoise::new(REP_NOISE_DB);
    let speeds: Vec<f64> = params.speeds_kmh.to_vec();

    let hd = speeds
        .iter()
        .map(|&v| {
            points
                .iter()
                .enumerate()
                .map(|(pi, p)| {
                    let mut out = [0.0f64; 2];
                    for (sub, slot) in out.iter_mut().enumerate() {
                        let mut acc = 0.0;
                        for rep in 0..params.repetitions {
                            // One deterministic stream per (point, sub, rep).
                            let seed = 0x5EED_0000
                                + (pi as u64) * 1000
                                + (sub as u64) * 100
                                + rep as u64;
                            let mut rng = StdRng::seed_from_u64(seed);
                            let inputs = FlcInputs {
                                cssp_db: noise.apply(p.cssp_db[sub], &mut rng),
                                ssn_dbm: noise
                                    .apply(p.ssn_dbm[sub] - params.db_per_10kmh / 10.0 * v, &mut rng),
                                dmb_norm: p.distance_km[sub] / radius,
                            };
                            acc += ctl.evaluate_hd(&inputs);
                        }
                        *slot = acc / params.repetitions as f64;
                    }
                    out
                })
                .collect()
        })
        .collect();

    SweepTable { scenario, points, speeds, hd, cell_radius_km: radius }
}

/// Table 3 data (scenario A).
pub fn table3_data() -> SweepTable {
    sweep("A", scenario_a_points())
}

/// Table 4 data (scenario B).
pub fn table4_data() -> SweepTable {
    sweep("B", scenario_b_points())
}

/// Render a sweep in the paper's row layout.
pub fn render_sweep(title: &str, data: &SweepTable) -> String {
    let mut t = TextTable::new(title).headers([
        "Speed".to_string(),
        "Row".to_string(),
        format!("{} (1)", data.points[0].label),
        format!("{} (2)", data.points[0].label),
        format!("{} (1)", data.points[1].label),
        format!("{} (2)", data.points[1].label),
        format!("{} (1)", data.points[2].label),
        format!("{} (2)", data.points[2].label),
    ]);
    for (si, &v) in data.speeds.iter().enumerate() {
        let speed = format!("{v:.0} km/h");
        let mut cssp = vec![speed.clone(), "CSSP BS [dB]".into()];
        let mut ssn = vec![String::new(), "Neighbor BS [dBm]".into()];
        let mut dist = vec![String::new(), "Distance [km]".into()];
        let mut hd = vec![String::new(), "System Output Value".into()];
        for (pi, p) in data.points.iter().enumerate() {
            for sub in 0..2 {
                cssp.push(fmt_f(p.cssp_db[sub], 3));
                ssn.push(fmt_f(p.ssn_dbm[sub] - 0.2 * v, 2));
                dist.push(fmt_f(p.distance_km[sub], 3));
                hd.push(fmt_f(data.hd[si][pi][sub], 3));
            }
        }
        t.row(cssp);
        t.row(ssn);
        t.row(dist);
        t.row(hd);
    }
    t.render()
}

/// Render Table 3.
pub fn render_table3() -> String {
    let data = table3_data();
    let mut out = render_sweep("Table 3 — simulation results, scenario A (iseed=100)", &data);
    let max = data
        .hd
        .iter()
        .flatten()
        .flat_map(|p| p.iter())
        .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    out.push_str(&format!(
        "\nmax output {:.3} < 0.7 at every point and speed → no handover, ping-pong avoided\n",
        max
    ));
    out
}

/// Render Table 4.
pub fn render_table4() -> String {
    let data = table4_data();
    let mut out = render_sweep("Table 4 — simulation results, scenario B (iseed=200)", &data);
    let min_deep = data
        .hd
        .iter()
        .flat_map(|speed| speed.iter().map(|p| p[1]))
        .fold(f64::INFINITY, f64::min);
    out.push_str(&format!(
        "\nmin deep-sample output {:.3} > 0.7 at every speed → 3 handovers in all cases\n",
        min_deep
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_every_output_below_threshold() {
        let data = table3_data();
        assert_eq!(data.speeds.len(), 6);
        assert_eq!(data.points.len(), 3);
        for (si, speed_row) in data.hd.iter().enumerate() {
            for (pi, point) in speed_row.iter().enumerate() {
                for (sub, &hd) in point.iter().enumerate() {
                    assert!(
                        hd < 0.7,
                        "A point {pi} sub {sub} speed {} gives {hd}",
                        data.speeds[si]
                    );
                    assert!(hd > 0.0);
                }
            }
        }
    }

    #[test]
    fn table3_points_match_paper_envelope() {
        // Boundary measurements stay within one cell radius of the serving
        // BS and never show an *improving* signal strong enough to matter.
        // (The CSSP lower bound is looser than the paper's −8 dB because
        // the calibrated propagation is steeper near the mast; the FLC
        // clamps at the −10 dB universe edge.)
        for p in scenario_a_points() {
            for sub in 0..2 {
                assert!((-30.0..=8.0).contains(&p.cssp_db[sub]), "CSSP {p:?}");
                assert!(p.distance_km[sub] < 2.2, "distance {p:?}");
            }
        }
    }

    #[test]
    fn table4_deep_outputs_above_threshold_at_every_speed() {
        let data = table4_data();
        for (si, speed_row) in data.hd.iter().enumerate() {
            for (pi, point) in speed_row.iter().enumerate() {
                assert!(
                    point[1] > 0.7,
                    "B point {pi} deep sample at {} km/h gives {}",
                    data.speeds[si],
                    point[1]
                );
            }
        }
    }

    #[test]
    fn table4_points_are_the_three_crossings() {
        let points = scenario_b_points();
        assert_eq!(points.len(), 3);
        for p in &points {
            // Deep sub-measurement sits far from the old serving BS
            // (the paper's 1.8–3 km band).
            assert!(p.distance_km[1] > 1.6, "{p:?}");
            // And the neighbour is healthy at 0 km/h.
            assert!(p.ssn_dbm[1] > -102.0, "{p:?}");
        }
    }

    #[test]
    fn speed_only_shifts_ssn() {
        // Within a sweep the frozen CSSP/distance are shared by all
        // speeds; only the SSN row and the outputs change — the paper's
        // table structure.
        let data = table4_data();
        let rendered = render_sweep("t", &data);
        // CSSP row of point 1 sub 1 appears 6 times (once per speed).
        let needle = fmt_f(data.points[0].cssp_db[0], 3);
        let hits = rendered.matches(&needle).count();
        assert!(hits >= 6, "frozen CSSP repeated per speed ({hits}x)");
    }

    #[test]
    fn renders_contain_verdicts() {
        assert!(render_table3().contains("ping-pong avoided"));
        assert!(render_table4().contains("3 handovers in all cases"));
    }
}
