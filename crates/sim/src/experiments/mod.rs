//! One module per paper table/figure plus the extension studies.
//!
//! Every experiment exposes a `*_data()` function returning structured
//! results (assertable from tests and benches) and a `render()` function
//! producing the text report the `repro` binary prints. The experiment
//! index in DESIGN.md maps each module to its paper artefact.

pub mod ablation;
pub mod baselines;
pub mod fading;
pub mod fig12_13;
pub mod fig5;
pub mod fig6;
pub mod fig7_8;
pub mod fig9_11;
pub mod surface;
pub mod table1;
pub mod table2;
pub mod table3_4;

/// An experiment registry entry: id, title, and renderer.
pub struct Experiment {
    /// Short id used on the `repro` command line (e.g. `"table3"`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Render the full text report.
    pub render: fn() -> String,
}

/// All experiments, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment { id: "table1", title: "Table 1 — the 64-rule FRB", render: table1::render },
        Experiment { id: "table2", title: "Table 2 — simulation parameters", render: table2::render },
        Experiment { id: "fig5", title: "Fig. 5 — membership functions", render: fig5::render },
        Experiment { id: "fig6", title: "Fig. 6 — hexagonal cell layout", render: fig6::render },
        Experiment { id: "fig7", title: "Fig. 7 — random walk, scenario A", render: fig7_8::render_fig7 },
        Experiment { id: "fig8", title: "Fig. 8 — random walk, scenario B", render: fig7_8::render_fig8 },
        Experiment { id: "fig9", title: "Fig. 9 — RX power from serving BS (B)", render: fig9_11::render_fig9 },
        Experiment { id: "fig10", title: "Fig. 10 — RX power from 1st neighbour (B)", render: fig9_11::render_fig10 },
        Experiment { id: "fig11", title: "Fig. 11 — RX power from 2nd neighbour (B)", render: fig9_11::render_fig11 },
        Experiment { id: "fig12", title: "Fig. 12 — 3 measurement points (A)", render: fig12_13::render_fig12 },
        Experiment { id: "fig13", title: "Fig. 13 — 3 measurement points (B)", render: fig12_13::render_fig13 },
        Experiment { id: "table3", title: "Table 3 — scenario A speed sweep", render: table3_4::render_table3 },
        Experiment { id: "table4", title: "Table 4 — scenario B speed sweep", render: table3_4::render_table4 },
        Experiment { id: "baselines", title: "Extension — fuzzy vs conventional algorithms", render: baselines::render },
        Experiment { id: "ablation", title: "Extension — defuzzifier / operator ablation", render: ablation::render },
        Experiment { id: "fading", title: "Extension — shadow-fading robustness sweep", render: fading::render },
        Experiment { id: "surface", title: "Extension — FLC control surface", render: surface::render },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique_and_ordered() {
        let reg = registry();
        assert_eq!(reg.len(), 17);
        let ids: std::collections::HashSet<_> = reg.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), reg.len());
        assert_eq!(reg[0].id, "table1");
        assert_eq!(reg[12].id, "table4");
        assert_eq!(reg.last().unwrap().id, "surface");
    }
}
