//! Numeric (x, y) series and a small ASCII plotter for the figure
//! experiments.

use serde::{Deserialize, Serialize};

/// A labelled (x, y) series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points, in x order for plots.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// New, empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series { label: label.into(), points: Vec::new() }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Minimum and maximum y (None when empty or all-NaN).
    pub fn y_range(&self) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(_, y) in &self.points {
            if y.is_finite() {
                lo = lo.min(y);
                hi = hi.max(y);
            }
        }
        (lo <= hi).then_some((lo, hi))
    }

    /// Render as gnuplot-compatible two-column text.
    pub fn to_tsv(&self) -> String {
        let mut out = format!("# {}\n", self.label);
        for &(x, y) in &self.points {
            out.push_str(&format!("{x:.6}\t{y:.6}\n"));
        }
        out
    }
}

/// Plot one or more series on a character grid. Each series uses its own
/// glyph (`*`, `+`, `o`, `x`, …); axes carry min/max annotations.
pub fn ascii_plot(series: &[Series], width: usize, height: usize, title: &str) -> String {
    assert!(width >= 16 && height >= 4, "plot area too small");
    const GLYPHS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];

    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in series {
        for &(x, y) in &s.points {
            if x.is_finite() && y.is_finite() {
                x_lo = x_lo.min(x);
                x_hi = x_hi.max(x);
                y_lo = y_lo.min(y);
                y_hi = y_hi.max(y);
            }
        }
    }
    if x_lo > x_hi {
        return format!("{title}\n(no data)\n");
    }
    if x_hi == x_lo {
        x_hi = x_lo + 1.0;
    }
    if y_hi == y_lo {
        y_hi = y_lo + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            if !(x.is_finite() && y.is_finite()) {
                continue;
            }
            let cx = ((x - x_lo) / (x_hi - x_lo) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out.push_str(&format!("{y_hi:>10.2} ┐\n"));
    for row in &grid {
        out.push_str("           │");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{y_lo:>10.2} ┘"));
    out.push_str(&format!(
        "  x: [{x_lo:.2} … {x_hi:.2}]\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_basics() {
        let mut s = Series::new("rx");
        s.push(0.0, -60.0);
        s.push(1.0, -80.0);
        assert_eq!(s.y_range(), Some((-80.0, -60.0)));
        let tsv = s.to_tsv();
        assert!(tsv.starts_with("# rx\n"));
        assert!(tsv.contains("0.000000\t-60.000000"));
    }

    #[test]
    fn empty_series_has_no_range() {
        assert_eq!(Series::new("e").y_range(), None);
        let mut nan_only = Series::new("n");
        nan_only.push(0.0, f64::NAN);
        assert_eq!(nan_only.y_range(), None);
    }

    #[test]
    fn plot_contains_glyphs_and_bounds() {
        let mut s = Series::new("data");
        for k in 0..20 {
            s.push(k as f64, (k * k) as f64);
        }
        let plot = ascii_plot(&[s], 40, 10, "Parabola");
        assert!(plot.contains("Parabola"));
        assert!(plot.contains('*'));
        assert!(plot.contains("361.00"), "max y annotated: {plot}");
        assert!(plot.contains("0.00"));
    }

    #[test]
    fn plot_two_series_distinct_glyphs() {
        let mut a = Series::new("a");
        let mut b = Series::new("b");
        for k in 0..10 {
            a.push(k as f64, k as f64);
            b.push(k as f64, 9.0 - k as f64);
        }
        let plot = ascii_plot(&[a, b], 30, 8, "Cross");
        assert!(plot.contains('*') && plot.contains('+'));
    }

    #[test]
    fn empty_plot_reports_no_data() {
        let plot = ascii_plot(&[Series::new("void")], 30, 8, "Empty");
        assert!(plot.contains("(no data)"));
    }

    #[test]
    fn degenerate_ranges_handled() {
        let mut s = Series::new("flat");
        s.push(1.0, 5.0);
        s.push(1.0, 5.0);
        let plot = ascii_plot(&[s], 20, 5, "Flat");
        assert!(plot.contains('*'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_plot_rejected() {
        let _ = ascii_plot(&[], 4, 2, "nope");
    }
}
