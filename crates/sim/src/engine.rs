//! The measurement/decision loop.
//!
//! At every resampled point of the MS trajectory the engine measures the
//! serving-BS and strongest-neighbour RSS (mean propagation + correlated
//! shadowing + measurement noise), applies the paper's speed penalty to
//! the neighbour reading, hands the report to the configured
//! [`HandoverPolicy`], and executes handovers the policy orders.

use cellgeom::{Axial, CellLayout, NeighborIndex, Vec2};
use handover_core::{
    Decision, EventLog, HandoverEvent, HandoverPolicy, MeasurementReport, StayReason,
};
use mobility::{TracePoint, Trajectory};
use radiolink::{
    speed_penalty_db, standard_normal_fill, BsRadio, CompiledBsRadio, MeasurementNoise,
    RssiSmoother, ShadowingConfig, ShadowingLane,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The cellular layout (cells + BS positions).
    pub layout: CellLayout,
    /// Radio parameters shared by every BS.
    pub radio: BsRadio,
    /// Shadow-fading configuration (one independent process per BS).
    pub shadowing: ShadowingConfig,
    /// Measurement noise added to every RSS sample.
    pub noise: MeasurementNoise,
    /// Per-BS RSS smoothing filter applied after the noise (template;
    /// each BS gets its own stateful copy). `RssiSmoother::None` feeds
    /// raw samples to the policy, as the paper does.
    pub smoothing: RssiSmoother,
    /// Spacing of measurement/decision points along the path, in km.
    /// The paper's CSSP magnitudes (1–8 dB per measurement) correspond to
    /// walk-scale intervals, so the default matches the paper's 0.6 km
    /// average walk length (one measurement per walk).
    pub sample_spacing_km: f64,
    /// MS speed in km/h; the paper degrades the *neighbour* RSS by
    /// 2 dB per 10 km/h.
    pub speed_kmh: f64,
    /// Serving RSS below this counts as outage.
    pub outage_threshold_dbm: f64,
    /// Ping-pong detection window, in measurement steps.
    pub pingpong_window_steps: usize,
}

impl SimConfig {
    /// The paper's configuration: 2-ring hexagonal layout with R = 2 km,
    /// 10 W BSs, no fading/noise (the tables add noise explicitly),
    /// stationary MS.
    pub fn paper_default() -> Self {
        SimConfig {
            layout: CellLayout::hexagonal(2.0, 2),
            radio: BsRadio::paper_default(),
            shadowing: ShadowingConfig::none(),
            noise: MeasurementNoise::none(),
            smoothing: RssiSmoother::None,
            sample_spacing_km: 0.6,
            speed_kmh: 0.0,
            outage_threshold_dbm: -110.0,
            pingpong_window_steps: 6,
        }
    }

    /// Typed validation of the measurement-plane configuration: the
    /// sample spacing must be positive and finite, the speed
    /// non-negative and finite, the shadowing and noise sigmas
    /// non-negative and finite (NaN sigmas used to propagate silently
    /// through every RSS sample), the shadowing decorrelation distance
    /// positive whenever shadowing is active, and the outage threshold
    /// never NaN (`-inf` legitimately disables outage accounting).
    pub fn validated(&self) -> Result<(), crate::resilience::ConfigError> {
        use crate::resilience::{require_non_negative, require_positive, ConfigError};
        require_positive("sample spacing", self.sample_spacing_km)?;
        require_non_negative("speed", self.speed_kmh)?;
        require_non_negative("shadowing sigma", self.shadowing.sigma_db)?;
        if self.shadowing.sigma_db > 0.0 {
            require_positive("shadowing decorrelation distance", self.shadowing.decorrelation_km)?;
        }
        require_non_negative("measurement noise sigma", self.noise.sigma_db)?;
        if self.outage_threshold_dbm.is_nan() {
            return Err(ConfigError::NotFinite {
                field: "outage threshold",
                value: self.outage_threshold_dbm,
            });
        }
        require_positive("transmission power", self.radio.tx_power_w)?;
        Ok(())
    }
}

/// One measurement step of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Step index.
    pub step: usize,
    /// Path distance from the trajectory start, km.
    pub cum_km: f64,
    /// MS position.
    pub pos: Vec2,
    /// Serving cell at the time of the measurement.
    pub serving: Axial,
    /// Measured serving RSS, dBm.
    pub serving_rss_dbm: f64,
    /// Strongest neighbour cell.
    pub neighbor: Axial,
    /// Measured neighbour RSS (speed penalty applied), dBm.
    pub neighbor_rss_dbm: f64,
    /// MS distance to the serving BS, km.
    pub distance_to_serving_km: f64,
    /// The FLC output if the policy evaluated it this step.
    pub hd: Option<f64>,
    /// Whether a handover was executed at this step.
    pub handover: bool,
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Handover events and outage accounting.
    pub log: EventLog,
    /// Every measurement step, in order.
    pub steps: Vec<StepRecord>,
    /// The serving cell at the end of the run.
    pub final_serving: Axial,
}

impl SimResult {
    /// Convenience: number of executed handovers.
    pub fn handover_count(&self) -> usize {
        self.log.handover_count()
    }

    /// HD values observed along the run (steps where the FLC ran).
    pub fn hd_values(&self) -> Vec<f64> {
        self.steps.iter().filter_map(|s| s.hd).collect()
    }
}

/// Precomputed handover-candidate table: for every serving cell (by
/// layout index) the candidate target cells, in decision order — the
/// in-layout neighbours, falling back to every other cell when a rim
/// cell has none. Shared by [`Simulation::run`] and the fleet engine so
/// neither re-derives neighbour lists per step.
#[derive(Debug, Clone)]
pub(crate) struct CandidateTable {
    per_cell: Vec<Vec<usize>>,
}

impl CandidateTable {
    pub(crate) fn new(layout: &CellLayout) -> Self {
        let cells = layout.cells();
        let index_of = |cell: Axial| -> usize {
            cells.iter().position(|&c| c == cell).expect("cell is in the layout")
        };
        let per_cell = cells
            .iter()
            .map(|&serving| {
                let neighbors = layout.neighbors_of(serving);
                if neighbors.is_empty() {
                    cells
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c != serving)
                        .map(|(k, _)| k)
                        .collect()
                } else {
                    neighbors.into_iter().map(index_of).collect()
                }
            })
            .collect();
        CandidateTable { per_cell }
    }

    pub(crate) fn of(&self, serving_idx: usize) -> &[usize] {
        &self.per_cell[serving_idx]
    }
}

/// The outcome of one [`UeState::step`], consumed either into a full
/// [`StepRecord`] (single-UE runs) or into reduced fleet tallies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct StepOutcome {
    pub serving_before: Axial,
    pub serving_after_idx: usize,
    pub serving_rss_dbm: f64,
    pub neighbor: Axial,
    pub neighbor_rss_dbm: f64,
    pub distance_to_serving_km: f64,
    pub hd: Option<f64>,
    pub handover: bool,
    pub outage: bool,
}

/// Per-UE dynamic simulation state: serving cell, one shadowing lane
/// (one AR(1) process per BS) and one smoothing filter per BS, the UE's
/// private RNG stream, and the event log. [`Simulation::run`] drives
/// exactly one of these; the fleet engine drives thousands, which is what
/// makes a 1-UE fleet bit-identical to a single-trajectory run by
/// construction.
#[derive(Debug)]
pub(crate) struct UeState {
    serving_idx: usize,
    /// SoA bank of per-BS shadowing processes, in layout order (the lane
    /// draws in slot order, so seed determinism is preserved exactly as
    /// the earlier `Vec<ShadowingProcess>` loop did).
    shadow: ShadowingLane,
    smoothers: Vec<RssiSmoother>,
    /// True when `cfg.smoothing` is the pass-through filter — lets the
    /// hot path skip the per-BS smoother loop entirely.
    passthrough_smoothing: bool,
    rng: StdRng,
    log: EventLog,
    /// Scratch buffer of post-noise, post-smoothing measurements.
    measured: Vec<f64>,
    /// Per-BS travelled distance at which the shadowing slot last
    /// advanced — used only by the neighbour-pruned candidate mode, which
    /// advances a slot lazily by `cum_km − last_advanced_km[slot]` when
    /// the cell re-enters the candidate set (exact under the Gudmundson
    /// composition law `ρ(d₁+d₂) = ρ(d₁)·ρ(d₂)`). Empty until the first
    /// pruned step.
    last_advanced_km: Vec<f64>,
    prev_cum: f64,
    steps: usize,
}

impl UeState {
    /// Fresh state at the start of a trajectory; all randomness (shadowing
    /// innovations + measurement noise) flows from `seed`.
    pub(crate) fn new(cfg: &SimConfig, start: Vec2, seed: u64) -> Self {
        let serving_cell = cfg.layout.nearest_cell(start);
        let serving_idx = cfg
            .layout
            .cells()
            .iter()
            .position(|&c| c == serving_cell)
            .expect("nearest cell is in the layout");
        // One stateful smoothing filter per BS (cloned from the template).
        let smoothers = cfg.layout.cells().iter().map(|_| cfg.smoothing.clone()).collect();
        UeState {
            serving_idx,
            shadow: ShadowingLane::new(cfg.shadowing, cfg.layout.len()),
            smoothers,
            passthrough_smoothing: cfg.smoothing == RssiSmoother::None,
            rng: StdRng::seed_from_u64(seed),
            log: EventLog::new(),
            measured: Vec::with_capacity(cfg.layout.len()),
            last_advanced_km: Vec::new(),
            prev_cum: 0.0,
            steps: 0,
        }
    }

    /// Re-initialize this state in place for a new UE (same layout,
    /// fresh trajectory start and seed), reusing every allocation — the
    /// fleet engine's chunk arenas recycle retired states through this
    /// instead of building a new [`UeState`] per UE.
    pub(crate) fn reset(&mut self, cfg: &SimConfig, start: Vec2, seed: u64) {
        let serving_cell = cfg.layout.nearest_cell(start);
        self.serving_idx = cfg
            .layout
            .cells()
            .iter()
            .position(|&c| c == serving_cell)
            .expect("nearest cell is in the layout");
        self.shadow.reset();
        for smoother in &mut self.smoothers {
            smoother.reset();
        }
        self.passthrough_smoothing = cfg.smoothing == RssiSmoother::None;
        self.rng = StdRng::seed_from_u64(seed);
        self.log.clear();
        self.measured.clear();
        self.last_advanced_km.clear();
        self.prev_cum = 0.0;
        self.steps = 0;
    }

    /// Capture the UE's complete dynamic state (serving cell, shadowing
    /// lane, smoother filters, RNG stream, event log, pruned-mode lazy
    /// distances) as plain serializable data — the engine half of a
    /// fleet checkpoint. `measured` is per-step scratch and is rebuilt on
    /// restore.
    pub(crate) fn snapshot(&self) -> crate::checkpoint::UeEngineState {
        crate::checkpoint::UeEngineState {
            serving_idx: self.serving_idx as u32,
            shadow: self.shadow.state(),
            smoothers: self.smoothers.clone(),
            rng: crate::checkpoint::RngCheckpoint::capture(&self.rng),
            log: self.log.clone(),
            last_advanced_km: self.last_advanced_km.clone(),
            prev_cum: self.prev_cum,
            steps: self.steps as u64,
        }
    }

    /// Rebuild a UE from a [`snapshot`](UeState::snapshot) taken under
    /// the same configuration; stepping the restored state draws the
    /// exact random stream and decisions the original would have.
    pub(crate) fn from_snapshot(cfg: &SimConfig, snap: &crate::checkpoint::UeEngineState) -> Self {
        let n = cfg.layout.len();
        assert!(
            (snap.serving_idx as usize) < n,
            "checkpointed serving index {} is outside the {}-cell layout",
            snap.serving_idx,
            n
        );
        assert_eq!(snap.smoothers.len(), n, "one smoother per layout cell");
        assert_eq!(snap.shadow.values.len(), n, "one shadowing slot per layout cell");
        assert!(
            snap.last_advanced_km.is_empty() || snap.last_advanced_km.len() == n,
            "pruned-mode distance vector must be empty or one slot per cell"
        );
        UeState {
            serving_idx: snap.serving_idx as usize,
            shadow: ShadowingLane::from_state(cfg.shadowing, snap.shadow.clone()),
            smoothers: snap.smoothers.clone(),
            passthrough_smoothing: cfg.smoothing == RssiSmoother::None,
            rng: snap.rng.restore(),
            log: snap.log.clone(),
            measured: Vec::with_capacity(n),
            last_advanced_km: snap.last_advanced_km.clone(),
            prev_cum: snap.prev_cum,
            steps: snap.steps as usize,
        }
    }

    pub(crate) fn serving_cell(&self, cfg: &SimConfig) -> Axial {
        cfg.layout.cells()[self.serving_idx]
    }

    /// Layout index of the current serving cell.
    pub(crate) fn serving_index(&self) -> usize {
        self.serving_idx
    }

    pub(crate) fn step_count(&self) -> usize {
        self.steps
    }

    pub(crate) fn into_log(self) -> EventLog {
        self.log
    }

    /// Borrow the event log (the fleet engine reduces outcomes from it
    /// without consuming the state, so the allocation can be recycled).
    pub(crate) fn log(&self) -> &EventLog {
        &self.log
    }

    /// Advance one measurement step. `means_dbm[k]` is the mean (pre-fade,
    /// pre-noise) received power from the layout's `k`-th BS at
    /// `point.pos` — computed by the caller, scalar for single runs and
    /// batched per (BS, UE-chunk) for fleets.
    pub(crate) fn step(
        &mut self,
        cfg: &SimConfig,
        candidates: &CandidateTable,
        means_dbm: &[f64],
        point: TracePoint,
        policy: &mut dyn HandoverPolicy,
    ) -> StepOutcome {
        let report = self.begin_step(cfg, candidates, means_dbm, point);
        let decision = policy.decide(&report);
        self.finish_step(cfg, &report, decision, point, policy)
    }

    /// The measurement half of a step: advance the shadowing processes and
    /// the RNG, measure every BS, pick the strongest neighbour and build
    /// the report. The fleet engine calls this for a whole chunk before
    /// deciding, so the FLC stage can run batched between the halves;
    /// [`UeState::step`] composes the same halves for the scalar path, so
    /// the two orderings draw identical per-UE random streams.
    pub(crate) fn begin_step(
        &mut self,
        cfg: &SimConfig,
        candidates: &CandidateTable,
        means_dbm: &[f64],
        point: TracePoint,
    ) -> MeasurementReport {
        let cells = cfg.layout.cells();
        debug_assert_eq!(means_dbm.len(), cells.len());
        let delta = point.cum_km - self.prev_cum;
        self.prev_cum = point.cum_km;
        // Compiled measurement plane: one batched shadowing update (same
        // draws, slot order) and one batched noise pass. Measuring all
        // cells keeps every filter's sample stream contiguous across
        // handovers.
        self.shadow.advance_all(delta, &mut self.rng);
        self.measured.clear();
        self.measured
            .extend(means_dbm.iter().zip(self.shadow.values()).map(|(&m, &s)| m + s));
        cfg.noise.apply_slice(&mut self.measured, &mut self.rng);
        if !self.passthrough_smoothing {
            for (value, smoother) in self.measured.iter_mut().zip(&mut self.smoothers) {
                *value = smoother.push(*value);
            }
        }
        self.report_from_measured(cfg, candidates, point)
    }

    /// The fused measurement half: bit-identical to
    /// [`UeState::begin_step`], but the whole step's gaussian budget —
    /// one shadowing innovation per cell (σ_shadow > 0) plus one noise
    /// draw per cell (σ_noise > 0) — is bulk-generated in a *single*
    /// [`standard_normal_fill`] pass into the caller's scratch buffer,
    /// and shadowing update, mean+shadow+noise combine and (optional)
    /// smoothing then run as branch-free slice passes. The fleet engine's
    /// dense path calls this with its per-chunk arena scratch.
    ///
    /// ## Bit-identity and the buffer-sizing rule
    ///
    /// `begin_step` draws n shadowing innovations (via
    /// `ShadowingLane::advance_all`) and then n noise gaussians (via
    /// `MeasurementNoise::apply_slice`), each gaussian consuming exactly
    /// two `u64`s — so one bulk fill of `shadow_draws + noise_draws`
    /// gaussians consumes the identical RNG stream in the identical
    /// order, and each output value evaluates the identical expression
    /// (`(mean + shadow) + σ·noise` is precisely `apply_slice`'s add-back
    /// on `begin_step`'s sum). The scratch is resized to exactly that
    /// draw count, which depends only on the `SimConfig` sigmas — never
    /// on step number, UE, or chunk — so checkpoint/resume boundaries
    /// cannot change how many draws any UE makes. The buffer holds only
    /// within-step scratch; nothing in it survives the call, so it is
    /// (correctly) absent from [`UeState::snapshot`].
    pub(crate) fn begin_step_fused(
        &mut self,
        cfg: &SimConfig,
        candidates: &CandidateTable,
        means_dbm: &[f64],
        point: TracePoint,
        normals: &mut Vec<f64>,
    ) -> MeasurementReport {
        let cells = cfg.layout.cells();
        let n = cells.len();
        debug_assert_eq!(means_dbm.len(), n);
        let delta = point.cum_km - self.prev_cum;
        self.prev_cum = point.cum_km;
        let shadow_draws = if cfg.shadowing.sigma_db > 0.0 { n } else { 0 };
        let noise_draws = if cfg.noise.sigma_db > 0.0 { n } else { 0 };
        normals.resize(shadow_draws + noise_draws, 0.0);
        // One bulk gaussian pass covers both measurement stages.
        standard_normal_fill(normals, &mut self.rng);
        self.shadow.advance_all_with(delta, &normals[..shadow_draws]);
        self.measured.clear();
        if noise_draws == 0 {
            self.measured
                .extend(means_dbm.iter().zip(self.shadow.values()).map(|(&m, &s)| m + s));
        } else {
            let sigma = cfg.noise.sigma_db;
            let noise = &normals[shadow_draws..];
            self.measured.extend(
                means_dbm
                    .iter()
                    .zip(self.shadow.values())
                    .zip(noise)
                    .map(|((&m, &s), &e)| (m + s) + sigma * e),
            );
        }
        if !self.passthrough_smoothing {
            for (value, smoother) in self.measured.iter_mut().zip(&mut self.smoothers) {
                *value = smoother.push(*value);
            }
        }
        self.report_from_measured(cfg, candidates, point)
    }

    /// The neighbour-pruned measurement half: like
    /// [`UeState::begin_step`], but only the cells in `subset` (layout
    /// indices, draw order) are measured — their shadowing slots advance
    /// by their accumulated travelled distance, one noise draw each —
    /// while every other cell's slot just accrues distance for later.
    /// The caller guarantees `subset` covers the serving cell and its
    /// whole candidate table, so the report never reads an unmeasured
    /// value; unmeasured entries are parked at −∞ dBm.
    ///
    /// `means_dbm` entries are read only at `subset` positions.
    pub(crate) fn begin_step_pruned(
        &mut self,
        cfg: &SimConfig,
        candidates: &CandidateTable,
        means_dbm: &[f64],
        point: TracePoint,
        subset: &[u32],
    ) -> MeasurementReport {
        let n = cfg.layout.len();
        // `prev_cum` is only consumed by the dense path, but keeping it
        // current costs nothing and keeps the state coherent.
        self.prev_cum = point.cum_km;
        if self.last_advanced_km.is_empty() {
            self.last_advanced_km.resize(n, 0.0);
        }
        self.measured.clear();
        self.measured.resize(n, f64::NEG_INFINITY);
        self.shadow.advance_subset(
            subset,
            point.cum_km,
            &mut self.last_advanced_km,
            &mut self.rng,
        );
        if cfg.noise.sigma_db == 0.0 {
            // `MeasurementNoise::apply` with σ = 0 passes the reading
            // through and consumes no randomness.
            for &slot in subset {
                let k = slot as usize;
                let raw = means_dbm[k] + self.shadow.values()[k];
                self.measured[k] = if self.passthrough_smoothing {
                    raw
                } else {
                    self.smoothers[k].push(raw)
                };
            }
        } else {
            // Batched noise: draw the subset's gaussians in one bulk tile
            // pass, then combine. Same draws in the same subset order as
            // per-slot `apply` calls (the combine consumes no
            // randomness), and `clean + σ·normal` is `apply`'s exact
            // expression.
            let sigma = cfg.noise.sigma_db;
            let mut draws = [0.0f64; 64];
            for slot_tile in subset.chunks(draws.len()) {
                let tile = &mut draws[..slot_tile.len()];
                standard_normal_fill(tile, &mut self.rng);
                for (&slot, &normal) in slot_tile.iter().zip(tile.iter()) {
                    let k = slot as usize;
                    let raw = means_dbm[k] + self.shadow.values()[k] + sigma * normal;
                    self.measured[k] = if self.passthrough_smoothing {
                        raw
                    } else {
                        self.smoothers[k].push(raw)
                    };
                }
            }
        }
        self.report_from_measured(cfg, candidates, point)
    }

    /// Build the step's report from the `measured` buffer: serving
    /// reading, strongest (speed-penalised) neighbour, distances.
    fn report_from_measured(
        &self,
        cfg: &SimConfig,
        candidates: &CandidateTable,
        point: TracePoint,
    ) -> MeasurementReport {
        let cells = cfg.layout.cells();
        // Serving measurement (no speed penalty: the paper applies the
        // 2 dB/10 km/h rule to the neighbour reading).
        let serving = cells[self.serving_idx];
        let serving_rss = self.measured[self.serving_idx];

        // Strongest neighbour among the precomputed candidates.
        let penalty = speed_penalty_db(cfg.speed_kmh);
        let (neighbor_idx, neighbor_rss) = candidates
            .of(self.serving_idx)
            .iter()
            .map(|&k| (k, self.measured[k] - penalty))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("RSS is finite"))
            .expect("layouts have at least two cells");
        let neighbor = cells[neighbor_idx];

        MeasurementReport {
            serving,
            serving_rss_dbm: serving_rss,
            neighbor,
            neighbor_rss_dbm: neighbor_rss,
            distance_to_serving_km: cfg.layout.distance_to_bs(serving, point.pos),
            distance_to_neighbor_km: cfg.layout.distance_to_bs(neighbor, point.pos),
        }
    }

    /// Rebuild the current step's report with the neighbour restricted
    /// to *live* cells: the strongest measured, speed-penalised
    /// candidate with `!down[k]` (the serving reading is reported
    /// as-is, down or not — a failed BS radiates nothing the UE can
    /// decide on, but the report shape stays intact). `None` when every
    /// measured candidate of the serving cell is down, in which case
    /// the caller forces a Stay: no handover target exists this step.
    /// Must be called after [`UeState::begin_step`] /
    /// [`UeState::begin_step_pruned`] populated `measured` for this
    /// step. Used only by the fleet engine's BS-failure plane — the
    /// static path never reaches it.
    pub(crate) fn report_excluding(
        &self,
        cfg: &SimConfig,
        candidates: &CandidateTable,
        point: TracePoint,
        down: &[bool],
    ) -> Option<MeasurementReport> {
        let cells = cfg.layout.cells();
        let serving = cells[self.serving_idx];
        let serving_rss = self.measured[self.serving_idx];
        let penalty = speed_penalty_db(cfg.speed_kmh);
        let (neighbor_idx, neighbor_rss) = candidates
            .of(self.serving_idx)
            .iter()
            .filter(|&&k| !down[k] && self.measured[k] != f64::NEG_INFINITY)
            .map(|&k| (k, self.measured[k] - penalty))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("RSS is finite"))?;
        let neighbor = cells[neighbor_idx];
        Some(MeasurementReport {
            serving,
            serving_rss_dbm: serving_rss,
            neighbor,
            neighbor_rss_dbm: neighbor_rss,
            distance_to_serving_km: cfg.layout.distance_to_bs(serving, point.pos),
            distance_to_neighbor_km: cfg.layout.distance_to_bs(neighbor, point.pos),
        })
    }

    /// The commit half of a step: record/execute the decision made on a
    /// [`UeState::begin_step`] report, notify the policy of an executed
    /// handover, and account the step.
    pub(crate) fn finish_step(
        &mut self,
        cfg: &SimConfig,
        report: &MeasurementReport,
        decision: Decision,
        point: TracePoint,
        policy: &mut dyn HandoverPolicy,
    ) -> StepOutcome {
        let cells = cfg.layout.cells();
        let serving_rss = report.serving_rss_dbm;
        let hd = match decision {
            Decision::Handover { hd, .. } => Some(hd),
            Decision::Stay(StayReason::BelowThreshold { hd })
            | Decision::Stay(StayReason::SignalRecovering { hd }) => Some(hd),
            Decision::Stay(_) => None,
        };
        let mut handover = false;
        if let Decision::Handover { target, hd } = decision {
            self.log.record_handover(HandoverEvent {
                step: self.steps,
                at_km: point.cum_km,
                from: report.serving,
                to: target,
                hd,
            });
            policy.notify_handover(target);
            self.serving_idx = cells
                .iter()
                .position(|&c| c == target)
                .expect("handover target is in the layout");
            handover = true;
        }
        let outage = serving_rss < cfg.outage_threshold_dbm;
        self.log.record_step(outage);
        self.steps += 1;

        StepOutcome {
            serving_before: report.serving,
            serving_after_idx: self.serving_idx,
            serving_rss_dbm: serving_rss,
            neighbor: report.neighbor,
            neighbor_rss_dbm: report.neighbor_rss_dbm,
            distance_to_serving_km: report.distance_to_serving_km,
            hd,
            handover,
            outage,
        }
    }
}

/// The simulation engine. Construction compiles the measurement plane
/// once: the link budget ([`BsRadio::compiled`]), the per-cell BS
/// positions, and the [`NeighborIndex`] the fleet engine's pruned
/// candidate mode queries.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimConfig,
    candidates: CandidateTable,
    compiled_radio: CompiledBsRadio,
    bs_positions: Vec<Vec2>,
    neighbor_index: NeighborIndex,
}

impl Simulation {
    /// Build an engine for the given configuration.
    pub fn new(config: SimConfig) -> Self {
        // Route through the typed validation so a bad config panics
        // with the same message the fallible fleet paths report.
        if let Err(err) = config.validated() {
            panic!("{err}");
        }
        let candidates = CandidateTable::new(&config.layout);
        let compiled_radio = config.radio.compiled();
        let bs_positions =
            config.layout.cells().iter().map(|&c| config.layout.bs_position(c)).collect();
        let neighbor_index = NeighborIndex::new(&config.layout);
        Simulation { config, candidates, compiled_radio, bs_positions, neighbor_index }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    pub(crate) fn candidates(&self) -> &CandidateTable {
        &self.candidates
    }

    /// The compiled link budget (shared by every BS of the layout).
    pub(crate) fn compiled_radio(&self) -> &CompiledBsRadio {
        &self.compiled_radio
    }

    /// Per-cell BS positions, in layout order.
    pub(crate) fn bs_positions(&self) -> &[Vec2] {
        &self.bs_positions
    }

    /// The position → nearest-cells index of the layout.
    pub(crate) fn neighbor_index(&self) -> &NeighborIndex {
        &self.neighbor_index
    }

    /// Fill `means_dbm` with the mean (pre-fade, pre-noise) received
    /// power from every BS at `pos`, in layout order — through the
    /// compiled link budget (bit-identical to the scalar
    /// [`BsRadio::received_power_dbm`]).
    pub(crate) fn mean_rss_all(&self, pos: Vec2, means_dbm: &mut [f64]) {
        for (slot, &bs_pos) in means_dbm.iter_mut().zip(&self.bs_positions) {
            *slot = self.compiled_radio.received_power_dbm(bs_pos, pos);
        }
    }

    /// Run the trajectory under `policy`, seeding all randomness
    /// (shadowing + measurement noise) from `seed`.
    pub fn run(
        &self,
        trajectory: &Trajectory,
        policy: &mut dyn HandoverPolicy,
        seed: u64,
    ) -> SimResult {
        let cfg = &self.config;
        let mut ue = UeState::new(cfg, trajectory.start(), seed);
        let mut means = vec![0.0; cfg.layout.len()];
        let mut steps = Vec::new();

        for (idx, point) in trajectory.resample_iter(cfg.sample_spacing_km).enumerate() {
            self.mean_rss_all(point.pos, &mut means);
            let out = ue.step(cfg, &self.candidates, &means, point, policy);
            steps.push(StepRecord {
                step: idx,
                cum_km: point.cum_km,
                pos: point.pos,
                serving: out.serving_before,
                serving_rss_dbm: out.serving_rss_dbm,
                neighbor: out.neighbor,
                neighbor_rss_dbm: out.neighbor_rss_dbm,
                distance_to_serving_km: out.distance_to_serving_km,
                hd: out.hd,
                handover: out.handover,
            });
        }

        let final_serving = ue.serving_cell(cfg);
        SimResult { log: ue.into_log(), steps, final_serving }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use handover_core::{ControllerConfig, FuzzyHandoverController};
    use handover_core::baselines::HysteresisPolicy;
    use mobility::LinearMotion;
    use mobility::MobilityModel;

    fn fuzzy_policy() -> FuzzyHandoverController {
        FuzzyHandoverController::new(ControllerConfig::paper_default(2.0))
    }

    /// Straight east from the origin BS through cell (1,0) into (2,0).
    fn eastbound() -> Trajectory {
        LinearMotion::new(Vec2::ZERO, 0.0, 6.5).generate(&mut StdRng::seed_from_u64(0))
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = Simulation::new(SimConfig::paper_default());
        let t = eastbound();
        let a = sim.run(&t, &mut fuzzy_policy(), 42);
        let b = sim.run(&t, &mut fuzzy_policy(), 42);
        assert_eq!(a, b);
    }

    #[test]
    fn eastbound_crossing_hands_over_in_order() {
        let sim = Simulation::new(SimConfig::paper_default());
        let result = sim.run(&eastbound(), &mut fuzzy_policy(), 1);
        assert!(
            result.handover_count() >= 1,
            "a 6.5 km straight line must leave the origin cell (events: {:?})",
            result.log.events()
        );
        // The serving sequence walks east without ever going back.
        let seq = result.log.serving_sequence(Axial::ORIGIN);
        for w in seq.windows(2) {
            let from = sim.config().layout.bs_position(w[0]).x;
            let to = sim.config().layout.bs_position(w[1]).x;
            assert!(to > from, "eastbound handovers move east: {seq:?}");
        }
        assert_eq!(result.log.ping_pong_report(12).ping_pongs, 0);
    }

    #[test]
    fn handovers_happen_past_the_boundary() {
        // The fuzzy pipeline is conservative: the first handover must not
        // happen before the MS is at least near the cell border
        // (inradius ≈ 1.73 km).
        let sim = Simulation::new(SimConfig::paper_default());
        let result = sim.run(&eastbound(), &mut fuzzy_policy(), 1);
        let first = &result.log.events()[0];
        assert!(first.at_km > 1.6, "first handover at {} km", first.at_km);
        // And not absurdly late either (by 3 km the origin BS is 1.3 km
        // behind the border).
        assert!(first.at_km < 3.2, "first handover at {} km", first.at_km);
    }

    #[test]
    fn stationary_ms_never_hands_over() {
        let sim = Simulation::new(SimConfig::paper_default());
        let t = Trajectory::new(vec![Vec2::new(0.3, 0.2), Vec2::new(0.31, 0.2)]);
        let result = sim.run(&t, &mut fuzzy_policy(), 7);
        assert_eq!(result.handover_count(), 0);
        assert_eq!(result.final_serving, Axial::ORIGIN);
        assert_eq!(result.log.outage_ratio(), 0.0, "near the BS there is no outage");
    }

    #[test]
    fn zero_margin_hysteresis_flips_on_boundary_wobble() {
        // With shadowing on, a 0 dB-margin hysteresis policy flip-flops
        // when the MS lingers at a cell border — the classic ping-pong.
        let mut cfg = SimConfig::paper_default();
        cfg.shadowing = ShadowingConfig { sigma_db: 6.0, decorrelation_km: 0.05 };
        cfg.sample_spacing_km = 0.05;
        let sim = Simulation::new(cfg);
        // Walk along the border between the origin cell and (1,0):
        // x = inradius, y sweeping.
        let border_x = 3.0f64.sqrt(); // inradius for R = 2
        let t = Trajectory::new(vec![
            Vec2::new(border_x, -1.0),
            Vec2::new(border_x, 1.0),
            Vec2::new(border_x, -1.0),
        ]);
        let mut naive = HysteresisPolicy::new(0.0);
        let result = sim.run(&t, &mut naive, 3);
        let pp = result.log.ping_pong_report(sim.config().pingpong_window_steps);
        assert!(pp.handovers >= 2, "naive policy flips: {pp:?}");
        assert!(pp.ping_pongs >= 1, "and ping-pongs: {pp:?}");
    }

    #[test]
    fn fuzzy_resists_boundary_wobble_better_than_naive() {
        let mut cfg = SimConfig::paper_default();
        cfg.shadowing = ShadowingConfig { sigma_db: 6.0, decorrelation_km: 0.05 };
        cfg.sample_spacing_km = 0.05;
        let sim = Simulation::new(cfg);
        let border_x = 3.0f64.sqrt();
        let t = Trajectory::new(vec![
            Vec2::new(border_x, -1.0),
            Vec2::new(border_x, 1.0),
            Vec2::new(border_x, -1.0),
        ]);
        let mut total_naive = 0;
        let mut total_fuzzy = 0;
        for seed in 0..8 {
            let mut naive = HysteresisPolicy::new(0.0);
            total_naive += sim.run(&t, &mut naive, seed).handover_count();
            let mut fuzzy = fuzzy_policy();
            total_fuzzy += sim.run(&t, &mut fuzzy, seed).handover_count();
        }
        assert!(
            total_fuzzy < total_naive,
            "fuzzy ({total_fuzzy}) must hand over less than naive ({total_naive})"
        );
    }

    #[test]
    fn speed_penalty_reduces_neighbor_rss() {
        let mut cfg = SimConfig::paper_default();
        cfg.speed_kmh = 50.0;
        let slow = Simulation::new(SimConfig::paper_default());
        let fast = Simulation::new(cfg);
        let t = Trajectory::new(vec![Vec2::new(1.0, 0.0), Vec2::new(1.1, 0.0)]);
        let a = slow.run(&t, &mut fuzzy_policy(), 5);
        let b = fast.run(&t, &mut fuzzy_policy(), 5);
        for (x, y) in a.steps.iter().zip(&b.steps) {
            assert!((x.neighbor_rss_dbm - 10.0 - y.neighbor_rss_dbm).abs() < 1e-9);
            assert!((x.serving_rss_dbm - y.serving_rss_dbm).abs() < 1e-9, "serving unaffected");
        }
    }

    #[test]
    fn outage_recorded_far_from_every_bs() {
        let sim = Simulation::new(SimConfig::paper_default());
        // 30 km east of everything.
        let t = Trajectory::new(vec![Vec2::new(30.0, 0.0), Vec2::new(30.3, 0.0)]);
        let mut policy = fuzzy_policy();
        let result = sim.run(&t, &mut policy, 2);
        assert!(result.log.outage_ratio() > 0.99);
    }

    #[test]
    fn step_records_are_consistent() {
        let sim = Simulation::new(SimConfig::paper_default());
        let result = sim.run(&eastbound(), &mut fuzzy_policy(), 9);
        assert_eq!(result.log.step_count(), result.steps.len());
        for w in result.steps.windows(2) {
            assert!(w[1].cum_km > w[0].cum_km);
            assert_eq!(w[1].step, w[0].step + 1);
        }
        let logged = result.steps.iter().filter(|s| s.handover).count();
        assert_eq!(logged, result.handover_count());
        // The neighbour is never the serving cell.
        for s in &result.steps {
            assert_ne!(s.neighbor, s.serving);
        }
    }

    #[test]
    fn smoothing_suppresses_noise_driven_handovers() {
        // Under heavy measurement noise at a cell border, an EWMA filter
        // in front of the controller cuts the handover churn.
        let border_x = 3.0f64.sqrt();
        let walk = Trajectory::new(vec![
            Vec2::new(border_x, -1.0),
            Vec2::new(border_x, 1.0),
            Vec2::new(border_x, -1.0),
        ]);
        let mut raw_cfg = SimConfig::paper_default();
        raw_cfg.noise = radiolink::MeasurementNoise::new(5.0);
        raw_cfg.sample_spacing_km = 0.1;
        let mut smooth_cfg = raw_cfg.clone();
        smooth_cfg.smoothing = radiolink::RssiSmoother::ewma(0.2);

        let raw_sim = Simulation::new(raw_cfg);
        let smooth_sim = Simulation::new(smooth_cfg);
        let mut raw_total = 0;
        let mut smooth_total = 0;
        for seed in 0..10 {
            raw_total += raw_sim.run(&walk, &mut fuzzy_policy(), seed).handover_count();
            smooth_total += smooth_sim.run(&walk, &mut fuzzy_policy(), seed).handover_count();
        }
        assert!(
            smooth_total < raw_total,
            "EWMA smoothing must reduce churn: {smooth_total} vs {raw_total}"
        );
    }

    #[test]
    fn smoothing_none_is_the_default_and_transparent() {
        // With no noise/fading, smoothing (even windowed) leaves the
        // decisions unchanged on clean signals only in the None case;
        // the default config must be None.
        let cfg = SimConfig::paper_default();
        assert_eq!(cfg.smoothing, radiolink::RssiSmoother::None);
    }

    #[test]
    #[should_panic(expected = "spacing")]
    fn invalid_spacing_rejected() {
        let mut cfg = SimConfig::paper_default();
        cfg.sample_spacing_km = 0.0;
        let _ = Simulation::new(cfg);
    }
}
