//! The measurement/decision loop.
//!
//! At every resampled point of the MS trajectory the engine measures the
//! serving-BS and strongest-neighbour RSS (mean propagation + correlated
//! shadowing + measurement noise), applies the paper's speed penalty to
//! the neighbour reading, hands the report to the configured
//! [`HandoverPolicy`], and executes handovers the policy orders.

use cellgeom::{Axial, CellLayout, Vec2};
use handover_core::{
    Decision, EventLog, HandoverEvent, HandoverPolicy, MeasurementReport, StayReason,
};
use mobility::Trajectory;
use radiolink::{
    speed_penalty_db, BsRadio, MeasurementNoise, RssiSmoother, ShadowingConfig,
    ShadowingProcess,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The cellular layout (cells + BS positions).
    pub layout: CellLayout,
    /// Radio parameters shared by every BS.
    pub radio: BsRadio,
    /// Shadow-fading configuration (one independent process per BS).
    pub shadowing: ShadowingConfig,
    /// Measurement noise added to every RSS sample.
    pub noise: MeasurementNoise,
    /// Per-BS RSS smoothing filter applied after the noise (template;
    /// each BS gets its own stateful copy). `RssiSmoother::None` feeds
    /// raw samples to the policy, as the paper does.
    pub smoothing: RssiSmoother,
    /// Spacing of measurement/decision points along the path, in km.
    /// The paper's CSSP magnitudes (1–8 dB per measurement) correspond to
    /// walk-scale intervals, so the default matches the paper's 0.6 km
    /// average walk length (one measurement per walk).
    pub sample_spacing_km: f64,
    /// MS speed in km/h; the paper degrades the *neighbour* RSS by
    /// 2 dB per 10 km/h.
    pub speed_kmh: f64,
    /// Serving RSS below this counts as outage.
    pub outage_threshold_dbm: f64,
    /// Ping-pong detection window, in measurement steps.
    pub pingpong_window_steps: usize,
}

impl SimConfig {
    /// The paper's configuration: 2-ring hexagonal layout with R = 2 km,
    /// 10 W BSs, no fading/noise (the tables add noise explicitly),
    /// stationary MS.
    pub fn paper_default() -> Self {
        SimConfig {
            layout: CellLayout::hexagonal(2.0, 2),
            radio: BsRadio::paper_default(),
            shadowing: ShadowingConfig::none(),
            noise: MeasurementNoise::none(),
            smoothing: RssiSmoother::None,
            sample_spacing_km: 0.6,
            speed_kmh: 0.0,
            outage_threshold_dbm: -110.0,
            pingpong_window_steps: 6,
        }
    }
}

/// One measurement step of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Step index.
    pub step: usize,
    /// Path distance from the trajectory start, km.
    pub cum_km: f64,
    /// MS position.
    pub pos: Vec2,
    /// Serving cell at the time of the measurement.
    pub serving: Axial,
    /// Measured serving RSS, dBm.
    pub serving_rss_dbm: f64,
    /// Strongest neighbour cell.
    pub neighbor: Axial,
    /// Measured neighbour RSS (speed penalty applied), dBm.
    pub neighbor_rss_dbm: f64,
    /// MS distance to the serving BS, km.
    pub distance_to_serving_km: f64,
    /// The FLC output if the policy evaluated it this step.
    pub hd: Option<f64>,
    /// Whether a handover was executed at this step.
    pub handover: bool,
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Handover events and outage accounting.
    pub log: EventLog,
    /// Every measurement step, in order.
    pub steps: Vec<StepRecord>,
    /// The serving cell at the end of the run.
    pub final_serving: Axial,
}

impl SimResult {
    /// Convenience: number of executed handovers.
    pub fn handover_count(&self) -> usize {
        self.log.handover_count()
    }

    /// HD values observed along the run (steps where the FLC ran).
    pub fn hd_values(&self) -> Vec<f64> {
        self.steps.iter().filter_map(|s| s.hd).collect()
    }
}

/// The simulation engine.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimConfig,
}

impl Simulation {
    /// Build an engine for the given configuration.
    pub fn new(config: SimConfig) -> Self {
        assert!(config.sample_spacing_km > 0.0, "sample spacing must be positive");
        assert!(config.speed_kmh >= 0.0, "speed must be non-negative");
        Simulation { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Measure the RSS from one BS at a position (mean propagation plus
    /// the BS's current shadowing state), without noise or penalty.
    fn mean_rss(&self, cell: Axial, pos: Vec2, shadow: &[(Axial, ShadowingProcess)]) -> f64 {
        let bs = self.config.layout.bs_position(cell);
        let base = self.config.radio.received_power_dbm(bs, pos);
        let fade = shadow
            .iter()
            .find(|(c, _)| *c == cell)
            .map_or(0.0, |(_, p)| p.current_db());
        base + fade
    }

    /// Run the trajectory under `policy`, seeding all randomness
    /// (shadowing + measurement noise) from `seed`.
    pub fn run(
        &self,
        trajectory: &Trajectory,
        policy: &mut dyn HandoverPolicy,
        seed: u64,
    ) -> SimResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = &self.config;
        let points = trajectory.resample(cfg.sample_spacing_km);

        // Independent, spatially correlated shadowing per BS, in layout
        // order (a Vec, not a HashMap: per-instance hash randomisation
        // would reorder the RNG draws and break seed determinism).
        let mut shadow: Vec<(Axial, ShadowingProcess)> = cfg
            .layout
            .cells()
            .iter()
            .map(|&c| (c, ShadowingProcess::new(cfg.shadowing)))
            .collect();

        // One stateful smoothing filter per BS (cloned from the template).
        let mut smoothers: Vec<RssiSmoother> =
            cfg.layout.cells().iter().map(|_| cfg.smoothing.clone()).collect();

        let mut serving = cfg.layout.nearest_cell(trajectory.start());
        let mut log = EventLog::new();
        let mut steps = Vec::with_capacity(points.len());
        let mut prev_cum = 0.0;

        for (idx, point) in points.iter().enumerate() {
            let delta = point.cum_km - prev_cum;
            prev_cum = point.cum_km;
            for (_, process) in shadow.iter_mut() {
                process.advance(delta, &mut rng);
            }

            // Measure every BS: mean propagation + shadowing + noise,
            // then the per-BS smoothing filter. Measuring all cells keeps
            // every filter's sample stream contiguous across handovers.
            let measured: Vec<f64> = cfg
                .layout
                .cells()
                .iter()
                .zip(smoothers.iter_mut())
                .map(|(&c, smoother)| {
                    let raw = cfg.noise.apply(self.mean_rss(c, point.pos, &shadow), &mut rng);
                    smoother.push(raw)
                })
                .collect();
            let rss_of = |cell: Axial| -> f64 {
                let k = cfg
                    .layout
                    .cells()
                    .iter()
                    .position(|&c| c == cell)
                    .expect("cell is in the layout");
                measured[k]
            };

            // Serving measurement (no speed penalty: the paper applies the
            // 2 dB/10 km/h rule to the neighbour reading).
            let serving_rss = rss_of(serving);

            // Strongest neighbour among the serving cell's in-layout
            // neighbours (fall back to any other cell at the layout rim).
            let mut neighbor_cells = cfg.layout.neighbors_of(serving);
            if neighbor_cells.is_empty() {
                neighbor_cells = cfg
                    .layout
                    .cells()
                    .iter()
                    .copied()
                    .filter(|c| *c != serving)
                    .collect();
            }
            let penalty = speed_penalty_db(cfg.speed_kmh);
            let (neighbor, neighbor_rss) = neighbor_cells
                .into_iter()
                .map(|c| (c, rss_of(c) - penalty))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("RSS is finite"))
                .expect("layouts have at least two cells");

            let report = MeasurementReport {
                serving,
                serving_rss_dbm: serving_rss,
                neighbor,
                neighbor_rss_dbm: neighbor_rss,
                distance_to_serving_km: cfg.layout.distance_to_bs(serving, point.pos),
                distance_to_neighbor_km: cfg.layout.distance_to_bs(neighbor, point.pos),
            };

            let decision = policy.decide(&report);
            let hd = match decision {
                Decision::Handover { hd, .. } => Some(hd),
                Decision::Stay(StayReason::BelowThreshold { hd })
                | Decision::Stay(StayReason::SignalRecovering { hd }) => Some(hd),
                Decision::Stay(_) => None,
            };
            let mut handover = false;
            if let Decision::Handover { target, hd } = decision {
                log.record_handover(HandoverEvent {
                    step: idx,
                    at_km: point.cum_km,
                    from: serving,
                    to: target,
                    hd,
                });
                policy.notify_handover(target);
                serving = target;
                handover = true;
            }
            log.record_step(serving_rss < cfg.outage_threshold_dbm);

            steps.push(StepRecord {
                step: idx,
                cum_km: point.cum_km,
                pos: point.pos,
                serving: report.serving,
                serving_rss_dbm: serving_rss,
                neighbor,
                neighbor_rss_dbm: neighbor_rss,
                distance_to_serving_km: report.distance_to_serving_km,
                hd,
                handover,
            });
        }

        SimResult { log, steps, final_serving: serving }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use handover_core::{ControllerConfig, FuzzyHandoverController};
    use handover_core::baselines::HysteresisPolicy;
    use mobility::LinearMotion;
    use mobility::MobilityModel;

    fn fuzzy_policy() -> FuzzyHandoverController {
        FuzzyHandoverController::new(ControllerConfig::paper_default(2.0))
    }

    /// Straight east from the origin BS through cell (1,0) into (2,0).
    fn eastbound() -> Trajectory {
        LinearMotion::new(Vec2::ZERO, 0.0, 6.5).generate(&mut StdRng::seed_from_u64(0))
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = Simulation::new(SimConfig::paper_default());
        let t = eastbound();
        let a = sim.run(&t, &mut fuzzy_policy(), 42);
        let b = sim.run(&t, &mut fuzzy_policy(), 42);
        assert_eq!(a, b);
    }

    #[test]
    fn eastbound_crossing_hands_over_in_order() {
        let sim = Simulation::new(SimConfig::paper_default());
        let result = sim.run(&eastbound(), &mut fuzzy_policy(), 1);
        assert!(
            result.handover_count() >= 1,
            "a 6.5 km straight line must leave the origin cell (events: {:?})",
            result.log.events()
        );
        // The serving sequence walks east without ever going back.
        let seq = result.log.serving_sequence(Axial::ORIGIN);
        for w in seq.windows(2) {
            let from = sim.config().layout.bs_position(w[0]).x;
            let to = sim.config().layout.bs_position(w[1]).x;
            assert!(to > from, "eastbound handovers move east: {seq:?}");
        }
        assert_eq!(result.log.ping_pong_report(12).ping_pongs, 0);
    }

    #[test]
    fn handovers_happen_past_the_boundary() {
        // The fuzzy pipeline is conservative: the first handover must not
        // happen before the MS is at least near the cell border
        // (inradius ≈ 1.73 km).
        let sim = Simulation::new(SimConfig::paper_default());
        let result = sim.run(&eastbound(), &mut fuzzy_policy(), 1);
        let first = &result.log.events()[0];
        assert!(first.at_km > 1.6, "first handover at {} km", first.at_km);
        // And not absurdly late either (by 3 km the origin BS is 1.3 km
        // behind the border).
        assert!(first.at_km < 3.2, "first handover at {} km", first.at_km);
    }

    #[test]
    fn stationary_ms_never_hands_over() {
        let sim = Simulation::new(SimConfig::paper_default());
        let t = Trajectory::new(vec![Vec2::new(0.3, 0.2), Vec2::new(0.31, 0.2)]);
        let result = sim.run(&t, &mut fuzzy_policy(), 7);
        assert_eq!(result.handover_count(), 0);
        assert_eq!(result.final_serving, Axial::ORIGIN);
        assert_eq!(result.log.outage_ratio(), 0.0, "near the BS there is no outage");
    }

    #[test]
    fn zero_margin_hysteresis_flips_on_boundary_wobble() {
        // With shadowing on, a 0 dB-margin hysteresis policy flip-flops
        // when the MS lingers at a cell border — the classic ping-pong.
        let mut cfg = SimConfig::paper_default();
        cfg.shadowing = ShadowingConfig { sigma_db: 6.0, decorrelation_km: 0.05 };
        cfg.sample_spacing_km = 0.05;
        let sim = Simulation::new(cfg);
        // Walk along the border between the origin cell and (1,0):
        // x = inradius, y sweeping.
        let border_x = 3.0f64.sqrt(); // inradius for R = 2
        let t = Trajectory::new(vec![
            Vec2::new(border_x, -1.0),
            Vec2::new(border_x, 1.0),
            Vec2::new(border_x, -1.0),
        ]);
        let mut naive = HysteresisPolicy::new(0.0);
        let result = sim.run(&t, &mut naive, 3);
        let pp = result.log.ping_pong_report(sim.config().pingpong_window_steps);
        assert!(pp.handovers >= 2, "naive policy flips: {pp:?}");
        assert!(pp.ping_pongs >= 1, "and ping-pongs: {pp:?}");
    }

    #[test]
    fn fuzzy_resists_boundary_wobble_better_than_naive() {
        let mut cfg = SimConfig::paper_default();
        cfg.shadowing = ShadowingConfig { sigma_db: 6.0, decorrelation_km: 0.05 };
        cfg.sample_spacing_km = 0.05;
        let sim = Simulation::new(cfg);
        let border_x = 3.0f64.sqrt();
        let t = Trajectory::new(vec![
            Vec2::new(border_x, -1.0),
            Vec2::new(border_x, 1.0),
            Vec2::new(border_x, -1.0),
        ]);
        let mut total_naive = 0;
        let mut total_fuzzy = 0;
        for seed in 0..8 {
            let mut naive = HysteresisPolicy::new(0.0);
            total_naive += sim.run(&t, &mut naive, seed).handover_count();
            let mut fuzzy = fuzzy_policy();
            total_fuzzy += sim.run(&t, &mut fuzzy, seed).handover_count();
        }
        assert!(
            total_fuzzy < total_naive,
            "fuzzy ({total_fuzzy}) must hand over less than naive ({total_naive})"
        );
    }

    #[test]
    fn speed_penalty_reduces_neighbor_rss() {
        let mut cfg = SimConfig::paper_default();
        cfg.speed_kmh = 50.0;
        let slow = Simulation::new(SimConfig::paper_default());
        let fast = Simulation::new(cfg);
        let t = Trajectory::new(vec![Vec2::new(1.0, 0.0), Vec2::new(1.1, 0.0)]);
        let a = slow.run(&t, &mut fuzzy_policy(), 5);
        let b = fast.run(&t, &mut fuzzy_policy(), 5);
        for (x, y) in a.steps.iter().zip(&b.steps) {
            assert!((x.neighbor_rss_dbm - 10.0 - y.neighbor_rss_dbm).abs() < 1e-9);
            assert!((x.serving_rss_dbm - y.serving_rss_dbm).abs() < 1e-9, "serving unaffected");
        }
    }

    #[test]
    fn outage_recorded_far_from_every_bs() {
        let sim = Simulation::new(SimConfig::paper_default());
        // 30 km east of everything.
        let t = Trajectory::new(vec![Vec2::new(30.0, 0.0), Vec2::new(30.3, 0.0)]);
        let mut policy = fuzzy_policy();
        let result = sim.run(&t, &mut policy, 2);
        assert!(result.log.outage_ratio() > 0.99);
    }

    #[test]
    fn step_records_are_consistent() {
        let sim = Simulation::new(SimConfig::paper_default());
        let result = sim.run(&eastbound(), &mut fuzzy_policy(), 9);
        assert_eq!(result.log.step_count(), result.steps.len());
        for w in result.steps.windows(2) {
            assert!(w[1].cum_km > w[0].cum_km);
            assert_eq!(w[1].step, w[0].step + 1);
        }
        let logged = result.steps.iter().filter(|s| s.handover).count();
        assert_eq!(logged, result.handover_count());
        // The neighbour is never the serving cell.
        for s in &result.steps {
            assert_ne!(s.neighbor, s.serving);
        }
    }

    #[test]
    fn smoothing_suppresses_noise_driven_handovers() {
        // Under heavy measurement noise at a cell border, an EWMA filter
        // in front of the controller cuts the handover churn.
        let border_x = 3.0f64.sqrt();
        let walk = Trajectory::new(vec![
            Vec2::new(border_x, -1.0),
            Vec2::new(border_x, 1.0),
            Vec2::new(border_x, -1.0),
        ]);
        let mut raw_cfg = SimConfig::paper_default();
        raw_cfg.noise = radiolink::MeasurementNoise::new(5.0);
        raw_cfg.sample_spacing_km = 0.1;
        let mut smooth_cfg = raw_cfg.clone();
        smooth_cfg.smoothing = radiolink::RssiSmoother::ewma(0.2);

        let raw_sim = Simulation::new(raw_cfg);
        let smooth_sim = Simulation::new(smooth_cfg);
        let mut raw_total = 0;
        let mut smooth_total = 0;
        for seed in 0..10 {
            raw_total += raw_sim.run(&walk, &mut fuzzy_policy(), seed).handover_count();
            smooth_total += smooth_sim.run(&walk, &mut fuzzy_policy(), seed).handover_count();
        }
        assert!(
            smooth_total < raw_total,
            "EWMA smoothing must reduce churn: {smooth_total} vs {raw_total}"
        );
    }

    #[test]
    fn smoothing_none_is_the_default_and_transparent() {
        // With no noise/fading, smoothing (even windowed) leaves the
        // decisions unchanged on clean signals only in the None case;
        // the default config must be None.
        let cfg = SimConfig::paper_default();
        assert_eq!(cfg.smoothing, radiolink::RssiSmoother::None);
    }

    #[test]
    #[should_panic(expected = "spacing")]
    fn invalid_spacing_rejected() {
        let mut cfg = SimConfig::paper_default();
        cfg.sample_spacing_km = 0.0;
        let _ = Simulation::new(cfg);
    }
}
