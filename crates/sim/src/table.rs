//! Plain-text table rendering for the experiment reports.

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        TextTable { title: title.into(), ..Default::default() }
    }

    /// Set the column headers.
    #[must_use]
    pub fn headers<S: Into<String>>(mut self, headers: impl IntoIterator<Item = S>) -> Self {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Append one row (cells are padded/truncated to the header count at
    /// render time).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }

        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
            out.push_str(&"=".repeat(self.title.chars().count()));
            out.push('\n');
        }
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{cell:<width$}"));
                if i + 1 != widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        if !self.headers.is_empty() {
            out.push_str(&render_row(&self.headers, &widths));
            out.push('\n');
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with the given precision, rendering NaN as "-".
pub fn fmt_f(value: f64, precision: usize) -> String {
    if value.is_nan() {
        "-".to_string()
    } else {
        format!("{value:.precision$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo").headers(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22.5"]);
        let s = t.render();
        assert!(s.contains("Demo\n====\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2], "name   value");
        assert_eq!(lines[4], "alpha  1");
        assert_eq!(lines[5], "b      22.5");
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = TextTable::new("").headers(["a", "b", "c"]);
        t.row(["1"]);
        t.row(["1", "2", "3", "4"]); // extra cell widens the table
        let s = t.render();
        assert!(s.contains('4'));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn no_title_no_header() {
        let mut t = TextTable::new("");
        t.row(["only", "data"]);
        let s = t.render();
        assert_eq!(s, "only  data\n");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.6934, 3), "0.693");
        assert_eq!(fmt_f(-92.4851, 2), "-92.49");
        assert_eq!(fmt_f(f64::NAN, 2), "-");
    }
}
