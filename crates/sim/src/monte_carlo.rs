//! Monte-Carlo repetition: the paper "carried out 10 times simulations and
//! calculated the average values". Repetitions differ only in the RNG
//! stream (shadowing + measurement noise); they can run sequentially or on
//! a crossbeam thread pool.
//!
//! `make_policy` builds one fresh policy per repetition; fuzzy policies
//! built through [`FuzzyHandoverController::new`] all borrow the
//! process-wide compiled plan ([`handover_core::paper_flc_plan`]), so
//! spawning a policy per repetition costs a scratch buffer, not a rule
//! base.
//!
//! [`FuzzyHandoverController::new`]: handover_core::FuzzyHandoverController::new

use crate::engine::{SimResult, Simulation};
use crate::fleet::{panic_message, FleetError};
use crate::resilience::ConfigError;
use handover_core::HandoverPolicy;
use mobility::Trajectory;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Aggregate statistics over a batch of runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McSummary {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Mean handover count per run.
    pub mean_handovers: f64,
    /// Standard deviation of the handover count.
    pub std_handovers: f64,
    /// Mean ping-pong count per run (window from the sim config).
    pub mean_ping_pongs: f64,
    /// Mean outage ratio per run.
    pub mean_outage: f64,
    /// Mean of all FLC outputs observed across all runs. `None` when the
    /// policy never produced an HD value (conventional baselines that
    /// never handed over): previously this was `NaN`, which serde_json
    /// silently serializes as `null` and then refuses to deserialize —
    /// `Option` makes the "no data" case explicit and round-trippable.
    pub mean_hd: Option<f64>,
}

/// Run `reps` repetitions sequentially. `make_policy` builds a fresh
/// policy per run; run `k` uses seed `base_seed + k`.
pub fn run_repetitions(
    sim: &Simulation,
    trajectory: &Trajectory,
    make_policy: impl Fn() -> Box<dyn HandoverPolicy + Send>,
    base_seed: u64,
    reps: usize,
) -> Vec<SimResult> {
    assert!(reps >= 1, "need at least one repetition");
    (0..reps)
        .map(|k| {
            let mut policy = make_policy();
            sim.run(trajectory, policy.as_mut(), base_seed + k as u64)
        })
        .collect()
}

/// Run `reps` repetitions on `threads` crossbeam-scoped workers. Results
/// are returned in repetition order and are bit-identical to the
/// sequential version (each repetition owns its seed).
pub fn run_repetitions_parallel(
    sim: &Simulation,
    trajectory: &Trajectory,
    make_policy: impl Fn() -> Box<dyn HandoverPolicy + Send> + Sync,
    base_seed: u64,
    reps: usize,
    threads: usize,
) -> Vec<SimResult> {
    assert!(reps >= 1, "need at least one repetition");
    try_run_repetitions_parallel(sim, trajectory, make_policy, base_seed, reps, threads)
        .unwrap_or_else(|err| panic!("{err}"))
}

/// Fallible form of [`run_repetitions_parallel`]: a panicking policy or
/// engine surfaces as the [`FleetError::WorkerPanic`] of the *first
/// failing repetition* (lowest repetition index — the same error for
/// every thread count), and `reps == 0` comes back as
/// [`FleetError::InvalidConfig`] instead of an assert.
pub fn try_run_repetitions_parallel(
    sim: &Simulation,
    trajectory: &Trajectory,
    make_policy: impl Fn() -> Box<dyn HandoverPolicy + Send> + Sync,
    base_seed: u64,
    reps: usize,
    threads: usize,
) -> Result<Vec<SimResult>, FleetError> {
    if reps < 1 {
        return Err(ConfigError::TooSmall { field: "repetitions", minimum: 1, got: 0 }.into());
    }
    let threads = threads.clamp(1, reps);
    let results: Mutex<Vec<(usize, Result<SimResult, FleetError>)>> =
        Mutex::new(Vec::with_capacity(reps));
    crossbeam::scope(|scope| {
        for t in 0..threads {
            let results = &results;
            let make_policy = &make_policy;
            scope.spawn(move |_| {
                // Static round-robin split keeps the partition independent
                // of thread scheduling.
                let mut k = t;
                while k < reps {
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        let mut policy = make_policy();
                        sim.run(trajectory, policy.as_mut(), base_seed + k as u64)
                    }))
                    .map_err(|payload| FleetError::WorkerPanic(panic_message(payload.as_ref())));
                    results.lock().push((k, r));
                    k += threads;
                }
            });
        }
    })
    // invariant: repetition panics are caught by the catch_unwind above,
    // so a worker thread itself can never unwind.
    .expect("monte-carlo workers do not panic");
    let mut out = results.into_inner();
    out.sort_by_key(|(k, _)| *k);
    let mut runs = Vec::with_capacity(out.len());
    for (_, r) in out {
        runs.push(r?);
    }
    Ok(runs)
}

/// Aggregate a batch of runs.
pub fn summarize(results: &[SimResult], pingpong_window: usize) -> McSummary {
    assert!(!results.is_empty(), "cannot summarize zero runs");
    let n = results.len() as f64;
    let counts: Vec<f64> = results.iter().map(|r| r.handover_count() as f64).collect();
    let mean_handovers = counts.iter().sum::<f64>() / n;
    let var = counts.iter().map(|c| (c - mean_handovers).powi(2)).sum::<f64>() / n;
    let mean_ping_pongs = results
        .iter()
        .map(|r| r.log.ping_pong_report(pingpong_window).ping_pongs as f64)
        .sum::<f64>()
        / n;
    let mean_outage = results.iter().map(|r| r.log.outage_ratio()).sum::<f64>() / n;
    let mut hd_sum = 0.0;
    let mut hd_count = 0usize;
    for r in results {
        for hd in r.hd_values() {
            hd_sum += hd;
            hd_count += 1;
        }
    }
    McSummary {
        runs: results.len(),
        mean_handovers,
        std_handovers: var.sqrt(),
        mean_ping_pongs,
        mean_outage,
        mean_hd: (hd_count > 0).then(|| hd_sum / hd_count as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimConfig;
    use cellgeom::Vec2;
    use handover_core::{ControllerConfig, FuzzyHandoverController};
    use radiolink::{MeasurementNoise, ShadowingConfig};

    fn noisy_sim() -> Simulation {
        let mut cfg = SimConfig::paper_default();
        cfg.shadowing = ShadowingConfig { sigma_db: 4.0, decorrelation_km: 0.05 };
        cfg.noise = MeasurementNoise::new(1.0);
        Simulation::new(cfg)
    }

    fn crossing_walk() -> Trajectory {
        Trajectory::new(vec![Vec2::ZERO, Vec2::new(6.5, 0.0)])
    }

    fn fuzzy() -> Box<dyn HandoverPolicy + Send> {
        Box::new(FuzzyHandoverController::new(ControllerConfig::paper_default(2.0)))
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let sim = noisy_sim();
        let t = crossing_walk();
        let seq = run_repetitions(&sim, &t, fuzzy, 77, 6);
        let par = run_repetitions_parallel(&sim, &t, fuzzy, 77, 6, 3);
        assert_eq!(seq, par, "bit-identical results regardless of threading");
    }

    #[test]
    fn parallel_with_more_threads_than_reps() {
        let sim = noisy_sim();
        let t = crossing_walk();
        let par = run_repetitions_parallel(&sim, &t, fuzzy, 5, 2, 16);
        assert_eq!(par.len(), 2);
    }

    #[test]
    fn repetitions_differ_by_seed() {
        let sim = noisy_sim();
        let t = crossing_walk();
        let runs = run_repetitions(&sim, &t, fuzzy, 1, 3);
        // With fading and noise on, different seeds yield different RSS
        // traces.
        assert_ne!(runs[0].steps[5].serving_rss_dbm, runs[1].steps[5].serving_rss_dbm);
    }

    #[test]
    fn summary_statistics() {
        let sim = noisy_sim();
        let t = crossing_walk();
        let runs = run_repetitions(&sim, &t, fuzzy, 9, 10);
        let s = summarize(&runs, 12);
        assert_eq!(s.runs, 10);
        assert!(s.mean_handovers >= 1.0, "crossing walk hands over: {s:?}");
        assert!(s.std_handovers >= 0.0);
        assert!((0.0..=1.0).contains(&s.mean_outage));
        let hd = s.mean_hd.expect("fuzzy policy exposes HD values");
        assert!(hd.is_finite());
        assert!((0.0..=1.0).contains(&hd));
    }

    #[test]
    fn mean_hd_is_none_without_flc_data_and_round_trips() {
        // A threshold that never fires: no handovers, no HD stream.
        let sim = noisy_sim();
        let t = crossing_walk();
        let make = || -> Box<dyn HandoverPolicy + Send> {
            Box::new(handover_core::baselines::ThresholdPolicy::new(-500.0))
        };
        let runs = run_repetitions(&sim, &t, make, 3, 4);
        let s = summarize(&runs, 12);
        assert_eq!(s.mean_hd, None, "no FLC data is None, never NaN");
        // The summary serializes without NaN and deserializes back —
        // exactly what the old NaN representation broke.
        let json = serde_json::to_string(&s).unwrap();
        assert!(!json.contains("NaN"), "{json}");
        let back: McSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn summary_with_flc_data_round_trips() {
        let sim = noisy_sim();
        let t = crossing_walk();
        let s = summarize(&run_repetitions(&sim, &t, fuzzy, 9, 3), 12);
        let back: McSummary = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn fallible_parallel_agrees_and_surfaces_typed_errors() {
        let sim = noisy_sim();
        let t = crossing_walk();
        // Clean runs: identical to the panicking form.
        let ok = try_run_repetitions_parallel(&sim, &t, fuzzy, 77, 6, 3)
            .expect("clean repetitions succeed");
        assert_eq!(ok, run_repetitions(&sim, &t, fuzzy, 77, 6));

        // Zero repetitions: a typed config error, not an assert.
        let err = try_run_repetitions_parallel(&sim, &t, fuzzy, 77, 0, 3)
            .expect_err("zero reps rejected");
        assert!(matches!(err, FleetError::InvalidConfig(_)), "{err:?}");

        // A panicking policy factory: the panic is caught and reported,
        // identically for every thread count.
        let exploding = || -> Box<dyn HandoverPolicy + Send> {
            panic!("policy factory exploded on purpose");
        };
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err_a = try_run_repetitions_parallel(&sim, &t, exploding, 77, 4, 1)
            .expect_err("exploding factory fails");
        let err_b = try_run_repetitions_parallel(&sim, &t, exploding, 77, 4, 4)
            .expect_err("exploding factory fails");
        std::panic::set_hook(prev_hook);
        match &err_a {
            FleetError::WorkerPanic(msg) => {
                assert!(msg.contains("exploded on purpose"), "{msg}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        assert_eq!(err_a, err_b, "first-repetition error is thread-count invariant");
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_reps_rejected() {
        let sim = noisy_sim();
        let t = crossing_walk();
        let _ = run_repetitions(&sim, &t, fuzzy, 0, 0);
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn empty_summary_rejected() {
        let _ = summarize(&[], 12);
    }
}
